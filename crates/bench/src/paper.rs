//! The paper's published reference values, for paper-vs-measured reporting.

/// Table 6 (MV1): `(queries, budget $, IP rate)`.
pub const TABLE6: [(usize, f64, f64); 3] = [(3, 0.8, 0.25), (5, 1.2, 0.36), (10, 2.4, 0.60)];

/// Table 7 (MV2): `(queries, time limit h, IC rate)`.
pub const TABLE7: [(usize, f64, f64); 3] = [(3, 0.57, 0.75), (5, 0.99, 0.72), (10, 2.24, 0.75)];

/// Table 8 (MV3): `(queries, rate at α=0.3, rate at α=0.7)`.
pub const TABLE8: [(usize, f64, f64); 3] = [(3, 0.55, 0.32), (5, 0.50, 0.35), (10, 0.68, 0.45)];

/// Worked examples (§3–§4): `(id, description, dollars)`.
/// Example 3 records the value the paper's own formula yields ($2101.76);
/// the printed $2131.76 is a typo (see EXPERIMENTS.md).
pub const EXAMPLES: [(&str, &str, &str); 7] = [
    ("EX1", "data transfer cost", "1.08"),
    ("EX2", "computing cost (no views)", "12.00"),
    ("EX3", "storage cost with intervals", "2101.76"),
    ("EX4", "materialization cost", "0.24"),
    ("EX6", "processing cost with views", "9.60"),
    ("EX8", "maintenance cost", "1.20"),
    ("EX9", "storage cost with views", "924.00"),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_tables_are_consistent() {
        // Rates are fractions in (0, 1); budgets/limits positive.
        for (q, b, r) in TABLE6 {
            assert!(q > 0 && b > 0.0 && (0.0..1.0).contains(&r));
        }
        for (q, t, r) in TABLE7 {
            assert!(q > 0 && t > 0.0 && (0.0..1.0).contains(&r));
        }
        for (_, a, b) in TABLE8 {
            assert!((0.0..1.0).contains(&a) && (0.0..1.0).contains(&b));
        }
        assert_eq!(EXAMPLES.len(), 7);
    }
}
