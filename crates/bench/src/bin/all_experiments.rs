//! Runs every experiment and writes the CSV series to `results/`
//! (relative to the working directory), printing a summary of
//! paper-vs-measured rates. This is the one-command regeneration entry
//! point referenced by EXPERIMENTS.md.

use std::fs;
use std::path::Path;

use mv_bench::experiments::{scenario_mv1, scenario_mv2, scenario_mv3, ScenarioRow};
use mv_bench::{paper, render_comparison, render_scenario_csv};
use mvcloud::SolverKind;

fn write_csv(dir: &Path, name: &str, rows: &[ScenarioRow]) {
    let path = dir.join(name);
    fs::write(&path, render_scenario_csv(rows)).expect("write csv");
    println!("wrote {}", path.display());
}

fn main() {
    let dir = Path::new("results");
    fs::create_dir_all(dir).expect("create results directory");

    println!("== Running all scenario experiments (paper Tables 6-8, Figure 5) ==\n");

    let mv1 = scenario_mv1(SolverKind::PaperKnapsack);
    write_csv(dir, "table6_fig5a_mv1.csv", &mv1);
    let paper6: Vec<(usize, f64)> = paper::TABLE6.iter().map(|(q, _, r)| (*q, *r)).collect();
    println!("{}\n", render_comparison(&mv1, &paper6, "IP rate"));

    let mv2 = scenario_mv2(SolverKind::PaperKnapsack);
    write_csv(dir, "table7_fig5b_mv2.csv", &mv2);
    let paper7: Vec<(usize, f64)> = paper::TABLE7.iter().map(|(q, _, r)| (*q, *r)).collect();
    println!("{}\n", render_comparison(&mv2, &paper7, "IC rate"));

    for (alpha, fname) in [
        (0.3, "table8_fig5c_mv3_a03.csv"),
        (0.7, "table8_fig5d_mv3_a07.csv"),
    ] {
        let rows = scenario_mv3(alpha, SolverKind::PaperKnapsack);
        write_csv(dir, fname, &rows);
        let paper8: Vec<(usize, f64)> = paper::TABLE8
            .iter()
            .map(|(q, low, high)| (*q, if alpha < 0.5 { *low } else { *high }))
            .collect();
        println!("alpha = {alpha}:");
        println!("{}\n", render_comparison(&rows, &paper8, "tradeoff rate"));
    }

    println!("done; see results/*.csv and EXPERIMENTS.md");
}
