//! Regenerates **Figures 2–4**: the (time, cost) solution space of each
//! scenario with the chosen solution highlighted.
//!
//! The paper sketches these spaces conceptually; here they are computed
//! exactly — every subset of an 8-candidate problem evaluated under the
//! true cost models, the Pareto frontier marked, and each scenario's
//! chosen selection drawn as `X`.

use mv_bench::experiments::build_advisor;
use mv_units::Money;
use mvcloud::select::pareto;
use mvcloud::{Scenario, SizingMode, SolverKind};

fn main() {
    // A compact problem so the full 2^n space is visible: closure
    // candidates over the 5-query workload.
    let advisor = {
        let mut a = build_advisor(5, 1.0, 12.0, 0.0, SizingMode::MeasuredScaled);
        // Shrink to the closure strategy if too many candidates for a
        // readable scatter.
        if a.problem().len() > 10 {
            let domain = mvcloud::sales_domain(
                mv_bench::experiments::ENGINE_ROWS,
                5,
                1.0,
                mv_bench::experiments::SEED,
            );
            let config = mvcloud::AdvisorConfig {
                candidates: mvcloud::CandidateStrategy::WorkloadClosure,
                sizing: SizingMode::MeasuredScaled,
                months: mv_units::Months::new(12.0),
                maintenance_delta_fraction: 0.0,
                ..mvcloud::AdvisorConfig::default()
            };
            a = mvcloud::Advisor::build(domain, config).unwrap();
        }
        a
    };
    let problem = advisor.problem();
    println!(
        "solution space over {} candidates = {} subsets\n",
        problem.len(),
        1u64 << problem.len()
    );
    let points = pareto::solution_space(problem);
    let frontier = points.iter().filter(|p| p.on_frontier).count();
    println!("Pareto frontier: {frontier} of {} points\n", points.len());

    let budget = problem.baseline().cost() + Money::from_cents(60);
    let scenarios = [
        ("Figure 2 — MV1 (budget limit)", Scenario::budget(budget)),
        (
            "Figure 3 — MV2 (response-time limit)",
            Scenario::time_limit(mv_units::Hours::new(problem.baseline().time.value() * 0.5)),
        ),
        (
            "Figure 4 — MV3 (tradeoff, alpha=0.5)",
            Scenario::tradeoff_normalized(0.5),
        ),
    ];
    for (title, scenario) in scenarios {
        let outcome = mvcloud::select::solve(problem, scenario, SolverKind::Exhaustive);
        println!("== {title} ==");
        println!(
            "chosen: {} views, time {}, cost {}\n",
            outcome.evaluation.num_selected(),
            outcome.evaluation.time,
            outcome.evaluation.cost()
        );
        println!(
            "{}\n",
            pareto::render_ascii(&points, outcome.evaluation.selection.as_mask(), 64, 18)
        );
    }
}
