//! Regenerates the paper's worked **Examples 1–9** (§3–§4) and the §1
//! introduction figures, printing computed-vs-paper values.

use mvcloud::cost::{CloudCostModel, CostContext, QueryCharge, SelectionSet, ViewCharge};
use mvcloud::pricing::{presets, StorageTimeline};
use mvcloud::report::render_table;
use mvcloud::units::{Gb, Hours, Months};

fn main() {
    let pricing = presets::aws_2012();
    let instance = pricing.compute.instance("small").unwrap().clone();
    let model = CloudCostModel::new(CostContext {
        pricing: pricing.clone(),
        instance,
        nb_instances: 2,
        months: Months::new(12.0),
        dataset_size: Gb::new(500.0),
        inserts: vec![],
        workload: vec![QueryCharge::new("Q", Gb::new(10.0), Hours::new(50.0))],
    });
    let v1 = ViewCharge::new("V1", Gb::new(50.0), Hours::new(1.0), Hours::new(5.0), 1)
        .answers(0, Hours::new(40.0));
    let with_views = model.with_views(&[v1], &SelectionSet::full(1));

    // Example 3's storage timeline.
    let mut tl = StorageTimeline::new(Gb::from_tb(0.5), Months::new(12.0));
    tl.insert(Months::new(7.0), Gb::from_tb(2.0)).unwrap();
    let ex3 = pricing.storage.period_cost(&tl);

    let rows = vec![
        vec![
            "EX1".into(),
            "data transfer cost (10 GB result)".into(),
            "$1.08".into(),
            model.transfer_cost().to_string(),
        ],
        vec![
            "EX2".into(),
            "computing cost, no views (50 h x 2 small)".into(),
            "$12.00".into(),
            model.compute_cost_without_views().to_string(),
        ],
        vec![
            "EX3".into(),
            "storage with intervals (512 GB + 2 TB at month 8)".into(),
            "$2131.76 (paper misprint; formula gives $2101.76)".into(),
            ex3.to_string(),
        ],
        vec![
            "EX4".into(),
            "materialization cost (1 h)".into(),
            "$0.24".into(),
            with_views.compute_materialization.to_string(),
        ],
        vec![
            "EX5".into(),
            "processing time with views".into(),
            "40 h".into(),
            model
                .processing_time_with_views(
                    &[
                        ViewCharge::new("V1", Gb::new(50.0), Hours::new(1.0), Hours::new(5.0), 1)
                            .answers(0, Hours::new(40.0)),
                    ],
                    &SelectionSet::full(1),
                )
                .to_string(),
        ],
        vec![
            "EX6".into(),
            "processing cost with views".into(),
            "$9.60".into(),
            with_views.compute_processing.to_string(),
        ],
        vec![
            "EX7".into(),
            "maintenance time".into(),
            "5 h".into(),
            "5.00 h".into(),
        ],
        vec![
            "EX8".into(),
            "maintenance cost".into(),
            "$1.20".into(),
            with_views.compute_maintenance.to_string(),
        ],
        vec![
            "EX9".into(),
            "storage with views (550 GB x 12 months)".into(),
            "$924.00".into(),
            with_views.storage.to_string(),
        ],
    ];
    println!("== Worked examples, Sections 3-4 ==");
    println!(
        "{}\n",
        render_table(&["id", "description", "paper", "computed"], &rows)
    );

    println!("== Section 1 introduction ==");
    let intro = presets::intro_fictitious();
    let std = intro.compute.instance("std").unwrap().clone();
    let intro_model = CloudCostModel::new(CostContext {
        pricing: intro,
        instance: std,
        nb_instances: 1,
        months: Months::new(1.0),
        dataset_size: Gb::new(500.0),
        inserts: vec![],
        workload: vec![QueryCharge::new("Q", Gb::ZERO, Hours::new(50.0))],
    });
    let without = intro_model.without_views();
    let intro_view = ViewCharge::new("V", Gb::new(50.0), Hours::ZERO, Hours::ZERO, 1)
        .answers(0, Hours::new(40.0));
    let with = intro_model.with_views(&[intro_view], &SelectionSet::full(1));
    println!(
        "  without views: {} (paper: $62)  |  with views: {} (paper: $64.60)",
        without.total(),
        with.total()
    );
    println!("  performance +20%, cost +4% — the paper's opening trade-off.");
}
