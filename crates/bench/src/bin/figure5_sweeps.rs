//! Continuous sweeps behind Figure 5: budget → time (5a), deadline → cost
//! (5b), and α → (time, cost) (5c/d), written as CSV series for plotting.
//!
//! The paper reports three discrete points per scenario; these sweeps show
//! the full curves the advisor moves along.

use std::fs;
use std::path::Path;

use mv_bench::experiments::build_advisor;
use mv_units::Money;
use mvcloud::whatif::{alpha_sweep, budget_sweep, deadline_sweep, sweep_csv};
use mvcloud::{SizingMode, SolverKind};

fn main() {
    let dir = Path::new("results");
    fs::create_dir_all(dir).expect("create results directory");

    // MV1 regime: ad-hoc workload, yearly storage.
    let mv1 = build_advisor(10, 1.0, 12.0, 0.0, SizingMode::MeasuredScaled);
    let budget = budget_sweep(&mv1, Money::from_dollars(5), 20, SolverKind::PaperKnapsack);
    let csv = sweep_csv(&budget, "budget_usd");
    fs::write(dir.join("fig5a_budget_sweep.csv"), &csv).expect("write");
    println!("budget sweep (MV1 regime): {} points", budget.len());
    for p in budget.iter().step_by(5) {
        println!(
            "  budget ${:>7.2} -> {:>7.4} h, {} views",
            p.x, p.time_hours, p.views
        );
    }

    // MV2/MV3 regime: recurring workload.
    let rec = build_advisor(10, 50.0, 1.0, 0.02, SizingMode::Extrapolated);
    let deadline = deadline_sweep(
        &rec,
        &[0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.0],
        SolverKind::PaperKnapsack,
    );
    fs::write(
        dir.join("fig5b_deadline_sweep.csv"),
        sweep_csv(&deadline, "deadline_hours"),
    )
    .expect("write");
    println!("\ndeadline sweep (MV2 regime): {} points", deadline.len());
    for p in &deadline {
        println!(
            "  limit {:>7.2} h -> cost ${:>8.2}, feasible {}",
            p.x, p.cost_dollars, p.feasible
        );
    }

    let alpha = alpha_sweep(&rec, 10, SolverKind::PaperKnapsack);
    fs::write(
        dir.join("fig5cd_alpha_sweep.csv"),
        sweep_csv(&alpha, "alpha"),
    )
    .expect("write");
    println!("\nalpha sweep (MV3 regime): {} points", alpha.len());
    for p in &alpha {
        println!(
            "  alpha {:>4.1} -> {:>7.4} h, ${:>8.2}, {} views",
            p.x, p.time_hours, p.cost_dollars, p.views
        );
    }
    println!(
        "\nwrote results/fig5a_budget_sweep.csv, fig5b_deadline_sweep.csv, fig5cd_alpha_sweep.csv"
    );
}
