//! Regenerates **Table 1**: the sales dataset excerpt, plus a sample of
//! the generated dataset and its lattice.

use mvcloud::engine::{datagen, SalesConfig};
use mvcloud::lattice::Lattice;

fn main() {
    println!("== Table 1: sales dataset excerpt ==");
    println!("{}\n", datagen::paper_excerpt().render(4));

    println!("== Generated dataset sample (seed 42) ==");
    let t = datagen::generate_sales(&SalesConfig::with_rows(1_000));
    println!("{}\n", t.render(8));
    println!(
        "rows: {}, engine size: {}, distinct countries: {}",
        t.num_rows(),
        t.size(),
        t.column_by_name("country")
            .unwrap()
            .as_str()
            .unwrap()
            .1
            .len()
    );

    println!("\n== The 16-cuboid lattice of the running example ==");
    let lattice = Lattice::paper_running_example();
    for c in lattice.all_cuboids() {
        println!(
            "  {:<22} key columns: [{}]  domain: {}",
            lattice.label(&c),
            lattice.key_columns(&c).join(", "),
            lattice.domain_size(&c)
        );
    }
}
