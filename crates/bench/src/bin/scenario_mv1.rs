//! Regenerates **Table 6 / Figure 5(a)**: scenario MV1 (budget limit).
//!
//! Prints the measured with/without series, the improvement rates, and the
//! paper-vs-measured comparison.

use mv_bench::experiments::scenario_mv1;
use mv_bench::{paper, render_comparison, render_scenario_csv, render_scenario_table};
use mvcloud::SolverKind;

fn main() {
    println!("== Scenario MV1: minimize processing time under a budget ==");
    println!("   (paper Table 6 / Figure 5a; budgets grow with workload size)\n");
    let rows = scenario_mv1(SolverKind::PaperKnapsack);
    println!("{}\n", render_scenario_table(&rows, "IP rate"));

    let paper_rates: Vec<(usize, f64)> = paper::TABLE6.iter().map(|(q, _, r)| (*q, *r)).collect();
    println!("{}\n", render_comparison(&rows, &paper_rates, "IP rate"));

    println!("-- Figure 5(a) series (CSV) --");
    println!("{}", render_scenario_csv(&rows));
}
