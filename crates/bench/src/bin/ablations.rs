//! Cost-difference ablations (DESIGN.md A1, A2, A5).
//!
//! * **A1** — optimality gap of each solver vs exhaustive ground truth;
//! * **A2** — graduated vs flat-by-volume tier interpretation;
//! * **A5** — rounding billable hours once (total) vs per job.
//!
//! Timing ablations (A3 incremental maintenance, A4 parallel aggregation)
//! live in the Criterion benches.

use mv_pricing::{presets, BillingRounding, RoundingScope, TierMode};
use mv_select::{fixtures, Scenario, SolverKind};
use mv_units::{Gb, Hours, Money};
use mvcloud::report::{pct, render_table};

fn a1_solver_gap() {
    println!("== A1: solver optimality gap vs exhaustive (20 random instances) ==");
    let solvers = [
        SolverKind::PaperKnapsack,
        SolverKind::Greedy,
        SolverKind::BranchAndBound,
    ];
    let mut rows = Vec::new();
    for solver in solvers {
        let mut worst_gap: f64 = 0.0;
        let mut mean_gap = 0.0;
        let mut exact_hits = 0;
        let n = 20;
        for seed in 0..n {
            let problem = fixtures::random_problem(seed, 4, 8);
            let scenario = Scenario::budget(problem.baseline().cost() + Money::from_cents(60));
            let got = mv_select::solve(&problem, scenario, solver);
            let best = mv_select::solve(&problem, scenario, SolverKind::Exhaustive);
            let gap = if best.objective() > 0.0 {
                (got.objective() - best.objective()) / best.objective()
            } else {
                0.0
            };
            worst_gap = worst_gap.max(gap);
            mean_gap += gap / n as f64;
            if gap < 1e-9 {
                exact_hits += 1;
            }
        }
        rows.push(vec![
            solver.name().to_string(),
            format!("{exact_hits}/{n}"),
            pct(mean_gap),
            pct(worst_gap),
        ]);
    }
    println!(
        "{}\n",
        render_table(&["solver", "optimal", "mean gap", "worst gap"], &rows)
    );
}

fn a2_tier_modes() {
    println!("== A2: graduated vs flat-by-volume storage pricing ==");
    let aws = presets::aws_2012();
    let flat = &aws.storage.monthly; // flat-by-volume (paper Example 3)
    let graduated = flat.with_mode(TierMode::Graduated);
    let mut rows = Vec::new();
    for gb in [500.0, 2_560.0, 80_000.0, 600_000.0] {
        let vol = Gb::new(gb);
        let f = flat.cost_for(vol);
        let g = graduated.cost_for(vol);
        rows.push(vec![
            vol.to_string(),
            f.to_string(),
            g.to_string(),
            (g - f).to_string(),
        ]);
    }
    println!(
        "{}\n",
        render_table(
            &[
                "volume",
                "flat-by-volume (paper)",
                "graduated (real S3)",
                "difference"
            ],
            &rows
        )
    );
    println!("  The paper's Example 3 interpretation undercharges large tenants: once the");
    println!("  total crosses a tier edge, *all* gigabytes earn the lower rate.\n");
}

fn a5_rounding_scope() {
    println!("== A5: hour rounding at the total vs per job ==");
    let aws = presets::aws_2012();
    let small = aws.compute.instance("small").unwrap();
    // Ten 12-minute queries + three 15-minute view builds.
    let queries = vec![Hours::from_minutes(12.0); 10];
    let builds = vec![Hours::from_minutes(15.0); 3];
    let mut jobs = queries.clone();
    jobs.extend_from_slice(&builds);
    let mut rows = Vec::new();
    for (label, scope) in [
        ("total (paper)", RoundingScope::Total),
        ("per job", RoundingScope::PerItem),
    ] {
        let billable = scope.billable(BillingRounding::PerStartedHour, &jobs);
        let cost = small.hourly.scale(billable.value()) * 2i64;
        rows.push(vec![
            label.to_string(),
            billable.to_string(),
            cost.to_string(),
        ]);
    }
    println!(
        "{}\n",
        render_table(
            &["rounding scope", "billable time", "cost (2 small)"],
            &rows
        )
    );
    println!("  Per-job rounding punishes many short jobs — it would flip marginal");
    println!("  materialization decisions that are profitable under the paper's rule.");
}

fn main() {
    a1_solver_gap();
    a2_tier_modes();
    a5_rounding_scope();
}
