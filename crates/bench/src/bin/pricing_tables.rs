//! Regenerates **Tables 2, 3 and 4**: the provider pricing sheets.

use mvcloud::pricing::presets;
use mvcloud::report::render_table;

fn main() {
    let aws = presets::aws_2012();

    println!("== Table 2: EC2 computing prices ==");
    let rows: Vec<Vec<String>> = aws
        .compute
        .catalog
        .all()
        .iter()
        .map(|i| {
            vec![
                i.name.clone(),
                format!("{} per hour", i.hourly),
                format!("{:.1} GB RAM", i.ram.value()),
                format!("{} ECU", i.compute_units),
                format!("{:.0} GB local", i.local_storage.value()),
            ]
        })
        .collect();
    println!(
        "{}\n",
        render_table(
            &["instance", "price", "memory", "compute", "storage"],
            &rows
        )
    );

    println!("== Table 3: bandwidth prices (outbound; inbound free) ==");
    let rows: Vec<Vec<String>> = aws
        .transfer
        .outbound
        .tiers()
        .iter()
        .map(|t| {
            vec![
                match t.upto {
                    Some(upto) => format!("up to {upto}"),
                    None => "beyond".to_string(),
                },
                format!("{} per GB", t.rate),
            ]
        })
        .collect();
    println!("{}\n", render_table(&["volume", "price"], &rows));

    println!("== Table 4: storage prices (per month) ==");
    let rows: Vec<Vec<String>> = aws
        .storage
        .monthly
        .tiers()
        .iter()
        .map(|t| {
            vec![
                match t.upto {
                    Some(upto) => format!("up to {upto}"),
                    None => "beyond".to_string(),
                },
                format!("{} per GB", t.rate),
            ]
        })
        .collect();
    println!("{}\n", render_table(&["volume", "price"], &rows));

    println!("== Extension: all provider presets (future work #1) ==");
    for p in presets::all() {
        println!(
            "  {:<18} {} instance types, inbound free: {}",
            p.name,
            p.compute.catalog.all().len(),
            p.transfer.inbound_is_free(),
        );
    }
}
