//! Regenerates **Table 7 / Figure 5(b)**: scenario MV2 (response-time
//! limit).

use mv_bench::experiments::scenario_mv2;
use mv_bench::{paper, render_comparison, render_scenario_csv, render_scenario_table};
use mvcloud::SolverKind;

fn main() {
    println!("== Scenario MV2: minimize cost under a response-time limit ==");
    println!("   (paper Table 7 / Figure 5b; limit = half the no-view time)\n");
    let rows = scenario_mv2(SolverKind::PaperKnapsack);
    println!("{}\n", render_scenario_table(&rows, "IC rate"));

    let paper_rates: Vec<(usize, f64)> = paper::TABLE7.iter().map(|(q, _, r)| (*q, *r)).collect();
    println!("{}\n", render_comparison(&rows, &paper_rates, "IC rate"));

    println!("-- Figure 5(b) series (CSV) --");
    println!("{}", render_scenario_csv(&rows));
}
