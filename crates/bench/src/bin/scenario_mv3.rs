//! Regenerates **Table 8 / Figures 5(c,d)**: scenario MV3 (tradeoff).
//!
//! Runs α = 0.3 (Figure 5c), α = 0.65 (Figure 5d's caption) and α = 0.7
//! (Table 8's column) — the paper is inconsistent between the two, so both
//! are reported.

use mv_bench::experiments::scenario_mv3;
use mv_bench::{paper, render_comparison, render_scenario_csv, render_scenario_table};
use mvcloud::SolverKind;

fn main() {
    println!("== Scenario MV3: minimize alpha*T + (1-alpha)*C ==");
    println!("   (paper Table 8 / Figures 5c-d)\n");
    for alpha in [0.3, 0.65, 0.7] {
        println!("-- alpha = {alpha} --");
        let rows = scenario_mv3(alpha, SolverKind::PaperKnapsack);
        println!("{}\n", render_scenario_table(&rows, "tradeoff rate"));
        let paper_rates: Vec<(usize, f64)> = paper::TABLE8
            .iter()
            .map(|(q, low, high)| (*q, if alpha < 0.5 { *low } else { *high }))
            .collect();
        println!(
            "{}\n",
            render_comparison(&rows, &paper_rates, "tradeoff rate")
        );
        println!("-- CSV --");
        println!("{}\n", render_scenario_csv(&rows));
    }
}
