//! Experiment definitions: one runner per paper table/figure.
//!
//! Each runner returns structured rows so the experiment binaries can print
//! paper-style tables, tests can assert the qualitative shapes, and
//! `all_experiments` can write CSVs for EXPERIMENTS.md.
//!
//! ## Workload regimes
//!
//! The paper's evaluation (§6) ran each scenario over 3-, 5- and 10-query
//! workloads on a 10 GB dataset. Two regimes reproduce its two cost
//! structures (documented in EXPERIMENTS.md):
//!
//! * **MV1 (budget)** — ad-hoc regime: each query runs once, storage billed
//!   over a year; the budget headroom over the no-view baseline is what
//!   limits how many views fit, so the improvement rate *grows* with the
//!   headroom, like the paper's Table 6.
//! * **MV2/MV3 (time limit / tradeoff)** — recurring regime: the workload
//!   runs 50×/month (dashboards), so compute dominates and materializing
//!   views *reduces total cost* by ~70 %, like the paper's Table 7.

use mv_engine::ThroughputModel;
use mv_units::{Gb, Hours, Money, Months};
use mvcloud::{
    sales_domain, Advisor, AdvisorConfig, CandidateStrategy, Outcome, Scenario, SizingMode,
    SolverKind,
};

/// The paper's workload sizes (Figure 5's x-axis).
pub const WORKLOAD_SIZES: [usize; 3] = [3, 5, 10];

/// Engine rows standing in for the paper's 10 GB experimental dataset.
pub const ENGINE_ROWS: usize = 20_000;

/// Shared generator seed: all experiments see the same data.
pub const SEED: u64 = 42;

/// Builds the advisor for one workload size under a regime.
/// `maintenance` is the monthly insert fraction (0 = static dataset).
///
/// The sizing mode differs per regime and matters (see EXPERIMENTS.md):
/// the ad-hoc MV1 regime uses [`SizingMode::MeasuredScaled`], reproducing
/// the paper's running example where views are a substantial fraction of
/// the dataset (50 GB of views on 500 GB of data) so the budget genuinely
/// limits how many views fit; the recurring MV2/MV3 regime uses
/// [`SizingMode::Extrapolated`], where aggregate sizes saturate at the key
/// domain so recurring result transfer stays realistic.
pub fn build_advisor(
    n_queries: usize,
    frequency: f64,
    months: f64,
    maintenance: f64,
    sizing: SizingMode,
) -> Advisor {
    let domain = sales_domain(ENGINE_ROWS, n_queries, frequency, SEED);
    let config = AdvisorConfig {
        months: Months::new(months),
        simulated_dataset: Gb::new(10.0),
        throughput: ThroughputModel::default(),
        candidates: CandidateStrategy::FullLattice,
        maintenance_delta_fraction: maintenance,
        sizing,
        ..AdvisorConfig::default()
    };
    Advisor::build(domain, config).expect("experiment advisor builds")
}

/// One row of a scenario experiment: everything Tables 6–8 print, plus the
/// Figure 5 bar values (with/without).
#[derive(Debug, Clone)]
pub struct ScenarioRow {
    /// Number of workload queries.
    pub queries: usize,
    /// The constraint (budget in dollars / time limit in hours / α).
    pub constraint: String,
    /// Processing time without views.
    pub time_without: Hours,
    /// Processing time with the selected views.
    pub time_with: Hours,
    /// Total cost without views.
    pub cost_without: Money,
    /// Total cost with the selected views.
    pub cost_with: Money,
    /// The paper's improvement rate for this table (IP/IC/tradeoff).
    pub rate: f64,
    /// Names of the selected views.
    pub selected: Vec<String>,
    /// Whether the constraint was satisfied.
    pub feasible: bool,
}

fn row_from_outcome(
    queries: usize,
    constraint: String,
    o: &Outcome,
    rate: f64,
    names: &[String],
) -> ScenarioRow {
    ScenarioRow {
        queries,
        constraint,
        time_without: o.baseline.time,
        time_with: o.evaluation.time,
        cost_without: o.baseline.cost(),
        cost_with: o.evaluation.cost(),
        rate,
        selected: o
            .selected_names(names)
            .into_iter()
            .map(str::to_string)
            .collect(),
        feasible: o.feasible(),
    }
}

fn candidate_names(advisor: &Advisor) -> Vec<String> {
    advisor
        .candidates()
        .iter()
        .map(|m| m.label.clone())
        .collect()
}

/// **Table 6 / Figure 5(a)** — MV1: minimize time under a budget.
///
/// Budget headroom over the baseline grows with workload size (the paper's
/// budgets 0.8/1.2/2.4 likewise grow superlinearly): $0.30, $0.90, $4.00.
pub fn scenario_mv1(solver: SolverKind) -> Vec<ScenarioRow> {
    let headrooms = [
        Money::from_cents(30),
        Money::from_cents(90),
        Money::from_cents(400),
    ];
    WORKLOAD_SIZES
        .iter()
        .zip(headrooms)
        .map(|(&n, headroom)| {
            let advisor = build_advisor(n, 1.0, 12.0, 0.0, SizingMode::MeasuredScaled);
            let budget = advisor.problem().baseline().cost() + headroom;
            let o = advisor.solve(Scenario::budget(budget), solver);
            let rate = o.time_improvement();
            row_from_outcome(n, format!("{budget}"), &o, rate, &candidate_names(&advisor))
        })
        .collect()
}

/// **Table 7 / Figure 5(b)** — MV2: minimize cost under a time limit.
///
/// The limit is half the no-view workload time, mirroring the paper's
/// limits (0.57/0.99/2.24 h, each below its workload's base time).
pub fn scenario_mv2(solver: SolverKind) -> Vec<ScenarioRow> {
    WORKLOAD_SIZES
        .iter()
        .map(|&n| {
            let advisor = build_advisor(n, 50.0, 1.0, 0.02, SizingMode::Extrapolated);
            let limit = Hours::new(advisor.problem().baseline().time.value() * 0.5);
            let o = advisor.solve(Scenario::time_limit(limit), solver);
            let rate = o.cost_improvement();
            row_from_outcome(n, format!("{limit}"), &o, rate, &candidate_names(&advisor))
        })
        .collect()
}

/// **Table 8 / Figures 5(c,d)** — MV3: weighted tradeoff at a given α
/// (the paper runs α = 0.3 and α = 0.7; Figure 5(d)'s caption says 0.65,
/// so the harness accepts any α).
pub fn scenario_mv3(alpha: f64, solver: SolverKind) -> Vec<ScenarioRow> {
    WORKLOAD_SIZES
        .iter()
        .map(|&n| {
            let advisor = build_advisor(n, 50.0, 1.0, 0.02, SizingMode::Extrapolated);
            let o = advisor.solve(Scenario::tradeoff_normalized(alpha), solver);
            let rate = o.tradeoff_improvement();
            row_from_outcome(
                n,
                format!("alpha={alpha}"),
                &o,
                rate,
                &candidate_names(&advisor),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mv1_views_always_desirable_and_growing() {
        let rows = scenario_mv1(SolverKind::PaperKnapsack);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.feasible, "{}-query workload infeasible", r.queries);
            assert!(r.rate > 0.0, "{}-query workload rate {}", r.queries, r.rate);
            assert!(!r.selected.is_empty());
            assert!(r.time_with < r.time_without);
        }
        // The paper's Table 6 shape: improvement grows with workload size.
        assert!(
            rows[2].rate >= rows[0].rate,
            "10q rate {} < 3q rate {}",
            rows[2].rate,
            rows[0].rate
        );
    }

    #[test]
    fn mv2_views_cut_costs_under_time_limits() {
        let rows = scenario_mv2(SolverKind::PaperKnapsack);
        for r in &rows {
            assert!(r.feasible, "{}-query workload infeasible", r.queries);
            // The paper's Table 7 shape: large, roughly flat cost savings.
            assert!(
                r.rate > 0.4,
                "{}-query IC rate only {:.2}",
                r.queries,
                r.rate
            );
            assert!(r.cost_with < r.cost_without);
        }
    }

    #[test]
    fn mv3_positive_tradeoff_at_both_alphas() {
        for alpha in [0.3, 0.7] {
            let rows = scenario_mv3(alpha, SolverKind::PaperKnapsack);
            for r in &rows {
                assert!(
                    r.rate > 0.0,
                    "alpha={alpha}, {}-query rate {}",
                    r.queries,
                    r.rate
                );
            }
        }
    }
}
