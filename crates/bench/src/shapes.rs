//! Shared benchmark shapes and criterion configuration.
//!
//! Every micro-bench in `benches/` measures against one of two problem
//! shapes; both are defined HERE so a shape change (or a new ROADMAP
//! ledger baseline) edits one file, not five:
//!
//! * the **hot-path shape** — n = [`HOT_CANDIDATES`] candidates over
//!   m = [`HOT_QUERIES`] queries, the streaming/churn regime the
//!   evaluator/churn/horizon/market/fleet ratios are recorded at;
//! * the **scale shape** — n = 2 000 / m = 50 000 sparse coverage
//!   ([`mv_lattice::ScaleShape::benchmark`]), the regime
//!   `benches/scale.rs` certifies microsecond probes on.

use criterion::Criterion;
use mv_lattice::ScaleShape;
use mv_select::{fixtures, SelectionProblem};

/// Short measurement windows keep `cargo bench --workspace` minutes,
/// not hours; absolute numbers matter less than the relative shapes.
pub fn fast_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(20)
}

/// [`fast_config`] with an explicit sample size — the scale bench runs
/// n = 2 000 solves where even 20 samples would take minutes.
pub fn fast_config_samples(samples: usize) -> Criterion {
    fast_config().sample_size(samples.max(10))
}

/// The hot-path workload size (m): the paper's larger experiment
/// workloads run tens of queries, and m is the dimension a probe must
/// *not* rescan per candidate.
pub const HOT_QUERIES: usize = 30;

/// The hot-path pool size (n) the ROADMAP ratios are recorded at.
pub const HOT_CANDIDATES: usize = 20;

/// The hot-path problem at its canonical n = 20: seeds stay caller-
/// chosen so each bench keeps its historical fixture.
pub fn hot_problem(seed: u64) -> SelectionProblem {
    hot_problem_sized(seed, HOT_CANDIDATES)
}

/// The hot-path shape with an explicit pool size (the probe benches
/// sweep n = 12, 16, 20; churn builds n + 1 and splits off a newcomer).
pub fn hot_problem_sized(seed: u64, candidates: usize) -> SelectionProblem {
    fixtures::random_problem(seed, HOT_QUERIES, candidates)
}

/// The headline scale shape: n = 2 000 / m = 50 000, mean coverage 12.
pub fn scale_shape() -> ScaleShape {
    ScaleShape::benchmark()
}

/// A reduced scale shape for comparison points and smoke runs where the
/// full 10⁸-slot-equivalent shape would dominate bench runtime.
pub fn scale_shape_sized(queries: usize, candidates: usize) -> ScaleShape {
    ScaleShape {
        queries,
        candidates,
        ..ScaleShape::benchmark()
    }
}

/// Builds the charged problem for a scale shape (delegates to
/// [`mvcloud::scale_problem`] — one construction path with the CLI).
pub fn scale_problem(shape: &ScaleShape) -> SelectionProblem {
    mvcloud::scale_problem(shape)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_shape_matches_the_ledger_regime() {
        let p = hot_problem(17);
        assert_eq!(p.len(), 20);
        assert_eq!(p.model().context().workload.len(), 30);
    }

    #[test]
    fn scale_shape_is_the_headline() {
        let s = scale_shape();
        assert_eq!((s.queries, s.candidates), (50_000, 2_000));
        let small = scale_shape_sized(100, 10);
        assert_eq!((small.queries, small.candidates), (100, 10));
        assert_eq!(small.seed, s.seed);
    }
}
