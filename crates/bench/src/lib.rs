//! Experiment harness: regenerates every table and figure of the paper.
//!
//! | Paper artifact | Runner | Binary |
//! |---|---|---|
//! | Table 1 (dataset excerpt) | [`mv_engine::datagen::paper_excerpt`] | `dataset_excerpt` |
//! | Tables 2–4 (pricing) | [`mv_pricing::presets::aws_2012`] | `pricing_tables` |
//! | Examples 1–9 | `mv-cost` golden tests | `examples_walkthrough` |
//! | Figures 2–4 (solution spaces) | [`mv_select::pareto`] | `solution_space` |
//! | Table 6 / Fig 5(a) | [`experiments::scenario_mv1`] | `scenario_mv1` |
//! | Table 7 / Fig 5(b) | [`experiments::scenario_mv2`] | `scenario_mv2` |
//! | Table 8 / Fig 5(c,d) | [`experiments::scenario_mv3`] | `scenario_mv3` |
//! | everything | — | `all_experiments` |
//!
//! The [`paper`] module holds the published values each run is compared
//! against in EXPERIMENTS.md.

pub mod experiments;
pub mod paper;
pub mod shapes;

use experiments::ScenarioRow;
use mvcloud::report;

/// Renders scenario rows as the paper prints them: one row per workload
/// size with the with/without columns and the improvement rate.
pub fn render_scenario_table(rows: &[ScenarioRow], rate_name: &str) -> String {
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.queries.to_string(),
                r.constraint.clone(),
                r.time_without.to_string(),
                r.time_with.to_string(),
                r.cost_without.to_string(),
                r.cost_with.to_string(),
                report::pct(r.rate),
                if r.feasible { "yes" } else { "NO" }.to_string(),
                r.selected.join(" + "),
            ]
        })
        .collect();
    report::render_table(
        &[
            "queries",
            "constraint",
            "T without",
            "T with",
            "C without",
            "C with",
            rate_name,
            "feasible",
            "selected views",
        ],
        &data,
    )
}

/// Renders scenario rows as CSV (the Figure 5 series).
pub fn render_scenario_csv(rows: &[ScenarioRow]) -> String {
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.queries.to_string(),
                r.constraint.clone(),
                format!("{:.6}", r.time_without.value()),
                format!("{:.6}", r.time_with.value()),
                format!("{:.6}", r.cost_without.to_dollars_f64()),
                format!("{:.6}", r.cost_with.to_dollars_f64()),
                format!("{:.4}", r.rate),
                r.feasible.to_string(),
            ]
        })
        .collect();
    report::render_csv(
        &[
            "queries",
            "constraint",
            "time_without_h",
            "time_with_h",
            "cost_without_usd",
            "cost_with_usd",
            "rate",
            "feasible",
        ],
        &data,
    )
}

/// Side-by-side paper-vs-measured table for a scenario.
pub fn render_comparison(
    rows: &[ScenarioRow],
    paper_rates: &[(usize, f64)],
    rate_name: &str,
) -> String {
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let paper = paper_rates
                .iter()
                .find(|(q, _)| *q == r.queries)
                .map(|(_, rate)| report::pct(*rate))
                .unwrap_or_else(|| "—".to_string());
            vec![r.queries.to_string(), paper, report::pct(r.rate)]
        })
        .collect();
    report::render_table(
        &[
            "queries",
            &format!("{rate_name} (paper)"),
            &format!("{rate_name} (measured)"),
        ],
        &data,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_units::{Hours, Money};

    fn sample_row() -> ScenarioRow {
        ScenarioRow {
            queries: 3,
            constraint: "$0.80".to_string(),
            time_without: Hours::new(0.63),
            time_with: Hours::new(0.04),
            cost_without: Money::from_cents(59),
            cost_with: Money::from_cents(78),
            rate: 0.25,
            selected: vec!["year×country".to_string()],
            feasible: true,
        }
    }

    #[test]
    fn table_contains_rate_and_views() {
        let t = render_scenario_table(&[sample_row()], "IP rate");
        assert!(t.contains("IP rate"));
        assert!(t.contains("25%"));
        assert!(t.contains("year×country"));
    }

    #[test]
    fn csv_has_header_and_row() {
        let c = render_scenario_csv(&[sample_row()]);
        let lines: Vec<&str> = c.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("queries,"));
        assert!(lines[1].starts_with("3,"));
    }

    #[test]
    fn comparison_pairs_paper_values() {
        let t = render_comparison(&[sample_row()], &[(3, 0.25)], "IP");
        assert!(t.contains("IP (paper)"));
        // Both columns show 25%.
        assert_eq!(t.matches("25%").count(), 2);
    }
}
