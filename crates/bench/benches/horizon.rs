//! Multi-epoch horizon: warm-started epoch re-solve vs rebuilding the
//! problem per epoch.
//!
//! Two shapes, mirroring the candidate-churn bench's split between
//! machinery and end-to-end:
//!
//! 1. **epoch transition** — the per-boundary state handoff alone:
//!    `retarget` (O(m) model swap, answer caches survive) plus
//!    `update_charge` splices for the candidates whose carried state
//!    flipped, then one snapshot — vs building the re-priced charge
//!    vector, a fresh `SelectionProblem`, a fresh evaluator repositioned
//!    by O(n) flips, and one snapshot.
//! 2. **chain solve** — `EpochChain::solve` vs two rebuild policies
//!    over an 8-epoch mildly-drifting horizon: `solve_rebuilding` (the
//!    bit-identical reference that rebuilds the machinery but keeps the
//!    warm selection) and the pre-refactor "one problem, one solve"
//!    policy that also re-derives every epoch's selection from scratch
//!    (greedy fill + improve on a fresh problem).
//!
//! The acceptance bar for this PR: warm-start measurably faster than
//! rebuild in both groups (ratios recorded in ROADMAP.md).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mv_select::epoch::EpochChain;
use mv_select::{IncrementalEvaluator, Scenario, SelectionProblem, SelectionSet};
use mvcloud::CloudCostModel;

/// The streaming/churn hot-path shape (shared: `mv_bench::shapes`).
const CANDIDATES: usize = mv_bench::shapes::HOT_CANDIDATES;

/// Two epoch models over the same workload with drifted frequencies.
fn epoch_models(problem: &SelectionProblem) -> (CloudCostModel, CloudCostModel) {
    let a = problem.model().clone();
    let mut ctx = problem.model().context().clone();
    for (i, q) in ctx.workload.iter_mut().enumerate() {
        q.frequency *= 1.0 + 0.5 * ((i % 3) as f64 - 1.0);
    }
    (a, CloudCostModel::new(ctx))
}

fn bench_epoch_transition(c: &mut Criterion) {
    let problem = mv_bench::shapes::hot_problem(41);
    let (model_a, model_b) = epoch_models(&problem);
    // Half the pool selected → half the charges flip carried state at
    // every boundary.
    let mut selection = SelectionSet::empty(CANDIDATES);
    for k in (0..CANDIDATES).step_by(2) {
        selection.set(k, true);
    }
    let pool = problem.candidates().to_vec();
    let mut group = c.benchmark_group(format!("horizon/transition_n{CANDIDATES}"));

    group.bench_function(BenchmarkId::from_parameter("rebuild_reposition"), |b| {
        let mut flip = false;
        b.iter(|| {
            // One epoch boundary the pre-chain way: re-price the pool,
            // rebuild the problem, rebuild + reposition the evaluator.
            flip = !flip;
            let model = if flip { &model_b } else { &model_a };
            let mut charged = pool.clone();
            for k in selection.ones() {
                charged[k] = pool[k].carried();
            }
            let p = SelectionProblem::new(model.clone(), charged);
            let mut ev = IncrementalEvaluator::with_selection(&p, &selection);
            black_box(ev.snapshot().time.value())
        })
    });

    group.bench_function(BenchmarkId::from_parameter("warm_start"), |b| {
        let mut ev = IncrementalEvaluator::from_problem(SelectionProblem::new(
            model_a.clone(),
            pool.clone(),
        ));
        for k in selection.ones() {
            ev.flip(k);
        }
        // Alternate carried-state: selected views carry across odd
        // boundaries and revert on even ones, so every iteration
        // splices the same number of charges.
        let mut carried = false;
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            let model = if flip { &model_b } else { &model_a };
            ev.retarget(model.clone());
            carried = !carried;
            for k in selection.ones() {
                let charge = if carried {
                    pool[k].carried()
                } else {
                    pool[k].clone()
                };
                ev.update_charge(k, charge);
            }
            black_box(ev.snapshot().time.value())
        })
    });
    group.finish();
}

fn bench_chain_solve(c: &mut Criterion) {
    const EPOCHS: usize = 8;
    let problem = mv_bench::shapes::hot_problem(43);
    let models: Vec<CloudCostModel> = (0..EPOCHS)
        .map(|e| {
            let mut ctx = problem.model().context().clone();
            // Mild seasonal drift: frequencies sway ±20%, so the
            // standing selection usually survives an epoch boundary —
            // the regime warm-starting is built for.
            for (i, q) in ctx.workload.iter_mut().enumerate() {
                let phase = std::f64::consts::TAU * ((e % 4) as f64 / 4.0 + i as f64 / 30.0);
                q.frequency *= 1.0 + 0.2 * phase.sin();
            }
            CloudCostModel::new(ctx)
        })
        .collect();
    let chain = EpochChain::new(models, problem.candidates().to_vec());
    let scenario = Scenario::tradeoff_normalized(0.5);
    // Sanity: warm and rebuild must agree before we time them.
    {
        let warm = chain.solve(scenario);
        let rebuilt = chain.solve_rebuilding(scenario);
        for (w, r) in warm.iter().zip(&rebuilt) {
            assert_eq!(w.outcome.evaluation, r.outcome.evaluation);
        }
    }
    let mut group = c.benchmark_group(format!("horizon/chain_solve_e{EPOCHS}_n{CANDIDATES}"));
    group.bench_function(BenchmarkId::from_parameter("resolve_from_scratch"), |b| {
        // The pre-refactor policy: every epoch builds a fresh charged
        // problem and re-derives its selection from empty (the
        // transition accounting is honored, the *search state* is not).
        b.iter(|| {
            let pool = chain.pool();
            let mut prev = SelectionSet::empty(pool.len());
            let mut total = 0usize;
            for model in chain.epochs() {
                let mut charged = pool.to_vec();
                for k in prev.ones() {
                    charged[k] = pool[k].carried();
                }
                let p = SelectionProblem::new(model.clone(), charged);
                let o = mv_select::solve_local_search(&p, scenario);
                total += o.evaluation.num_selected();
                prev = o.evaluation.selection.clone();
            }
            black_box(total)
        })
    });
    group.bench_function(BenchmarkId::from_parameter("rebuild_per_epoch"), |b| {
        b.iter(|| black_box(chain.solve_rebuilding(scenario).len()))
    });
    group.bench_function(BenchmarkId::from_parameter("warm_start"), |b| {
        b.iter(|| black_box(chain.solve(scenario).len()))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = mv_bench::shapes::fast_config();
    targets = bench_epoch_transition, bench_chain_solve
}
criterion_main!(benches);
