//! Fleet sweep: placement-flip probes vs rebuilds, and the K-path
//! hedged joint solve vs the pinned pure-spot sweep.
//!
//! Two shapes, mirroring the market bench's machinery/end-to-end
//! split:
//!
//! 1. **placement-flip probe** — the joint local search's `Place`
//!    move: re-derive the view's effective charge for the other pool
//!    and splice it with `update_charge` (O(1): the answer profile is
//!    untouched) plus one snapshot — vs rebuilding the charged
//!    problem and a fresh evaluator repositioned by O(n) flips.
//! 2. **K-path hedged sweep** — the `solve_fleet` hot loop at the
//!    `mv-select` layer: K sampled spot paths with a correlated
//!    crunch regime, each solved over an 8-epoch horizon by
//!    `EpochChain::solve_fleet` with free placement (the joint
//!    neighborhood probes ~2n more moves per round) vs the same chain
//!    pinned all-spot (the single-fleet neighborhood). The delta is
//!    the price of the placement dimension itself.
//!
//! The acceptance bar: the placement-flip probe measurably faster
//! than rebuild (ratios recorded in ROADMAP.md).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mv_select::epoch::{EpochChain, EpochTree, EpochTreeNode};
use mv_select::{IncrementalEvaluator, Placement, Scenario, SelectionProblem, SelectionSet};
use mvcloud::cost::{InterruptionRisk, PoolCharge};
use mvcloud::market::{CorrelatedHazard, MarketScenario, PriceProcess, SpotMarket};
use mvcloud::ViewCharge;

/// The hot-path shape shared with the other benches (`mv_bench::shapes`).
const CANDIDATES: usize = mv_bench::shapes::HOT_CANDIDATES;
const EPOCHS: usize = 8;
const PATHS: usize = 8;

/// The scenario-tree sweep width (the tentpole's acceptance shape).
const TREE_PATHS: usize = 32;

/// A volatile discounted spot market with a bursty crunch regime.
fn crunchy_market(seed: u64) -> MarketScenario {
    MarketScenario::constant(EPOCHS, seed)
        .with(PriceProcess::Spot(SpotMarket::discounted(0.5, 0.4)))
        .with(PriceProcess::Correlated(
            CorrelatedHazard::bursty(0.3, 0.8, 0.6).with_crunch_compute(1.5),
        ))
}

/// The effective charge of `charge` on `pool` under a fixed epoch's
/// terms (spot at 60% rate with a 25% interruption premium).
fn placed(charge: &ViewCharge, pool: Placement) -> ViewCharge {
    let mut c = match pool {
        Placement::Reserved => charge.clone(),
        Placement::Spot => PoolCharge::new(0.6, 1.0, InterruptionRisk::new(0.25)).adjust(charge),
    };
    c.placement = pool;
    c
}

fn bench_placement_flip_probe(c: &mut Criterion) {
    let problem = mv_bench::shapes::hot_problem(47);
    let mut selection = SelectionSet::empty(CANDIDATES);
    for k in (0..CANDIDATES).step_by(2) {
        selection.set(k, true);
    }
    let pool = problem.candidates().to_vec();
    let mut group = c.benchmark_group(format!("fleet/placement_flip_probe_n{CANDIDATES}"));

    // Rebuild: re-derive the whole charged vector with candidate 4 on
    // the other pool, build a fresh problem + evaluator, snapshot.
    group.bench_function(BenchmarkId::from_parameter("rebuild_reposition"), |b| {
        let mut on_spot = false;
        b.iter(|| {
            on_spot = !on_spot;
            let target = if on_spot {
                Placement::Spot
            } else {
                Placement::Reserved
            };
            let charged: Vec<ViewCharge> = pool
                .iter()
                .enumerate()
                .map(|(k, v)| if k == 4 { placed(v, target) } else { v.clone() })
                .collect();
            let p = SelectionProblem::new(problem.model().clone(), charged);
            let mut ev = IncrementalEvaluator::with_selection(&p, &selection);
            black_box(ev.snapshot().time.value())
        })
    });

    // Warm: the joint search's Place move — one update_charge splice
    // (same answer profile ⇒ O(1)) + snapshot on the live evaluator.
    group.bench_function(BenchmarkId::from_parameter("warm_splice"), |b| {
        let mut ev = IncrementalEvaluator::with_selection(&problem, &selection);
        let mut on_spot = false;
        b.iter(|| {
            on_spot = !on_spot;
            let target = if on_spot {
                Placement::Spot
            } else {
                Placement::Reserved
            };
            ev.update_charge(4, placed(&pool[4], target));
            black_box(ev.snapshot().time.value())
        })
    });
    group.finish();
}

fn bench_k_path_hedged_sweep(c: &mut Criterion) {
    let problem = mv_bench::shapes::hot_problem(53);
    let market = crunchy_market(99);
    let base = problem.model().context();
    let paths: Vec<(EpochChain, Vec<(f64, InterruptionRisk)>)> = (0..PATHS)
        .map(|j| {
            let path = market.path(j);
            let models = path
                .quotes
                .iter()
                .map(|q| {
                    let mut ctx = base.clone();
                    ctx.pricing = q.reprice(&base.pricing);
                    ctx.instance = ctx
                        .pricing
                        .compute
                        .instance(&base.instance.name)
                        .expect("bench instance is in the catalog")
                        .clone();
                    mvcloud::CloudCostModel::new(ctx)
                })
                .collect();
            let pools = path
                .quotes
                .iter()
                .map(|q| {
                    (
                        // Reserved rate over the spot-primary sheet.
                        1.0 / q.factors.compute,
                        InterruptionRisk::new(q.interruption),
                    )
                })
                .collect();
            (
                EpochChain::new(models, problem.candidates().to_vec()),
                pools,
            )
        })
        .collect();
    let scenario = Scenario::tradeoff_normalized(0.5);
    let budget = 2 * CANDIDATES + 8;
    let initial = vec![Placement::Spot; CANDIDATES];
    fn reprice_for(
        pools: &[(f64, InterruptionRisk)],
    ) -> impl Fn(usize, usize, Placement, &ViewCharge) -> ViewCharge + '_ {
        move |e: usize, _k: usize, p: Placement, c: &ViewCharge| -> ViewCharge {
            let (reserved_rate, risk) = pools[e];
            match p {
                Placement::Spot => risk.adjust(c),
                Placement::Reserved => {
                    PoolCharge::new(reserved_rate, 1.0, InterruptionRisk::NONE).adjust(c)
                }
            }
        }
    }

    let mut group = c.benchmark_group(format!(
        "fleet/k_path_sweep_k{PATHS}_e{EPOCHS}_n{CANDIDATES}"
    ));
    group.bench_function(BenchmarkId::from_parameter("pure_spot_pinned"), |b| {
        b.iter(|| {
            let mut total = 0usize;
            for (chain, pools) in &paths {
                let reprice = reprice_for(pools);
                total += chain
                    .solve_fleet_bounded(scenario, budget, &initial, false, &reprice)
                    .len();
            }
            black_box(total)
        })
    });
    group.bench_function(BenchmarkId::from_parameter("hedged_joint"), |b| {
        b.iter(|| {
            let mut total = 0usize;
            for (chain, pools) in &paths {
                let reprice = reprice_for(pools);
                total += chain
                    .solve_fleet_bounded(scenario, budget, &initial, true, &reprice)
                    .len();
            }
            black_box(total)
        })
    });
    group.finish();
}

/// Tree vs flat at K = 32 for the hedged *joint* solve: the flat sweep
/// pays one evaluator build (greedy fill) plus 7 warm transitions per
/// path; the scenario tree pays one build per root, one transition per
/// tree edge and a cheap fork per extra sibling — the correlated crunch
/// regime is discrete, so sampled paths share long quote prefixes and
/// the tree is much smaller than K × epochs. Identical outcomes are
/// asserted before timing.
fn bench_scenario_tree_vs_flat(c: &mut Criterion) {
    let problem = mv_bench::shapes::hot_problem(59);
    let market = crunchy_market(101);
    let sampled: Vec<mvcloud::market::MarketPath> =
        (0..TREE_PATHS).map(|j| market.path(j)).collect();
    let base = problem.model().context();
    let compile = |q: &mvcloud::market::EpochQuote| -> mvcloud::CloudCostModel {
        let mut ctx = base.clone();
        ctx.pricing = q.reprice(&base.pricing);
        ctx.instance = ctx
            .pricing
            .compute
            .instance(&base.instance.name)
            .expect("bench instance is in the catalog")
            .clone();
        mvcloud::CloudCostModel::new(ctx)
    };
    let pool_of = |q: &mvcloud::market::EpochQuote| -> (f64, InterruptionRisk) {
        (
            1.0 / q.factors.compute,
            InterruptionRisk::new(q.interruption),
        )
    };

    // Flat reference: one chain + per-epoch pool terms per path.
    let flat: Vec<(EpochChain, Vec<(f64, InterruptionRisk)>)> = sampled
        .iter()
        .map(|p| {
            (
                EpochChain::new(
                    p.quotes.iter().map(&compile).collect(),
                    problem.candidates().to_vec(),
                ),
                p.quotes.iter().map(&pool_of).collect(),
            )
        })
        .collect();

    // Tree route: one model + pool terms per *node*.
    let stree = mvcloud::market::ScenarioTree::from_paths(&sampled);
    assert!(
        stree.len() < TREE_PATHS * EPOCHS,
        "fixture must actually share prefixes"
    );
    let nodes: Vec<EpochTreeNode> = stree
        .nodes()
        .iter()
        .map(|n| EpochTreeNode {
            parent: n.parent,
            epoch: n.epoch,
            model: compile(&n.quote),
        })
        .collect();
    let node_pools: Vec<(f64, InterruptionRisk)> =
        stree.nodes().iter().map(|n| pool_of(&n.quote)).collect();
    let leaves: Vec<usize> = (0..TREE_PATHS).map(|j| stree.leaf_of(j)).collect();
    let tree = EpochTree::new(nodes, leaves);
    let chain = EpochChain::new(
        vec![problem.model().clone(); EPOCHS],
        problem.candidates().to_vec(),
    );
    let scenario = Scenario::tradeoff_normalized(0.5);
    let budget = 2 * CANDIDATES + 8;
    let initial = vec![Placement::Spot; CANDIDATES];
    fn pool_reprice(
        pools: &[(f64, InterruptionRisk)],
    ) -> impl Fn(usize, usize, Placement, &ViewCharge) -> ViewCharge + '_ {
        move |i: usize, _k: usize, p: Placement, c: &ViewCharge| -> ViewCharge {
            let (reserved_rate, risk) = pools[i];
            match p {
                Placement::Spot => risk.adjust(c),
                Placement::Reserved => {
                    PoolCharge::new(reserved_rate, 1.0, InterruptionRisk::NONE).adjust(c)
                }
            }
        }
    }

    // Sanity: tree and flat must agree before we time them.
    let tree_reprice = pool_reprice(&node_pools);
    let tree_steps =
        chain.solve_tree_fleet_bounded(scenario, budget, &tree, &initial, true, &tree_reprice);
    for (j, (fchain, pools)) in flat.iter().enumerate() {
        let reprice = pool_reprice(pools);
        let warm = fchain.solve_fleet_bounded(scenario, budget, &initial, true, &reprice);
        for (t, w) in tree_steps[j].iter().zip(&warm) {
            assert_eq!(t.outcome.evaluation, w.outcome.evaluation);
        }
    }

    let mut group = c.benchmark_group(format!(
        "fleet/scenario_tree_k{TREE_PATHS}_e{EPOCHS}_n{CANDIDATES}"
    ));
    group.bench_function(BenchmarkId::from_parameter("flat_per_path"), |b| {
        b.iter(|| {
            let mut total = 0usize;
            for (fchain, pools) in &flat {
                let reprice = pool_reprice(pools);
                total += fchain
                    .solve_fleet_bounded(scenario, budget, &initial, true, &reprice)
                    .len();
            }
            black_box(total)
        })
    });
    group.bench_function(BenchmarkId::from_parameter("shared_prefix_tree"), |b| {
        b.iter(|| {
            black_box(
                chain
                    .solve_tree_fleet_bounded(
                        scenario,
                        budget,
                        &tree,
                        &initial,
                        true,
                        &tree_reprice,
                    )
                    .len(),
            )
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = mv_bench::shapes::fast_config();
    targets = bench_placement_flip_probe, bench_k_path_hedged_sweep, bench_scenario_tree_vs_flat
}
criterion_main!(benches);
