//! Ablation A4 (DESIGN.md): serial vs multi-threaded aggregation.
//!
//! The paper's compute formulas scale cost with `nbIC` identical
//! instances. This bench shows where partitioned aggregation actually
//! pays: scan-bound coarse keys (few groups, cheap merge) parallelize
//! well; merge-bound fine keys (thousands of groups per partial) do not —
//! which is why the throughput model charges scans, not merges.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mv_engine::{datagen, AggQuery, AggSpec, SalesConfig};

/// Short measurement windows keep `cargo bench --workspace` minutes,
/// not hours; absolute numbers matter less than the relative shapes.
fn fast_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(20)
}

fn bench_threads(c: &mut Criterion) {
    let table = datagen::generate_sales(&SalesConfig::with_rows(200_000));
    let cases = [
        (
            "coarse_key",
            AggQuery::new("q", &["country"], vec![AggSpec::sum("profit")]),
        ),
        (
            "fine_key",
            AggQuery::new(
                "q",
                &["year", "month", "country", "region"],
                vec![AggSpec::sum("profit"), AggSpec::avg("profit")],
            ),
        ),
    ];
    for (label, query) in cases {
        let mut group = c.benchmark_group(format!("ablation_parallel/{label}"));
        for threads in [1usize, 2, 4] {
            group.bench_with_input(BenchmarkId::from_parameter(threads), &table, |b, table| {
                b.iter(|| {
                    let (out, _) = query
                        .execute_with_threads(black_box(table), threads)
                        .unwrap();
                    black_box(out.num_rows())
                })
            });
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench_threads
}
criterion_main!(benches);
