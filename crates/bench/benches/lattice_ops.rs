//! Lattice operations: enumeration, estimation and HRU candidate
//! generation over growing dimension counts.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mv_lattice::{candidates, Dimension, Lattice, SizeEstimator};

/// Short measurement windows keep `cargo bench --workspace` minutes,
/// not hours; absolute numbers matter less than the relative shapes.
fn fast_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(20)
}

fn lattice_with_dims(n: usize) -> Lattice {
    let dims = (0..n)
        .map(|_| Dimension::paper_time(11))
        .enumerate()
        .map(|(i, d)| {
            // Rename so duplicated dimensions stay distinct.
            Dimension::new(
                format!("d{i}"),
                d.levels()
                    .iter()
                    .map(|l| {
                        mv_lattice::Level::new(
                            format!("{}_{i}", l.name),
                            &l.columns
                                .iter()
                                .map(|c| format!("{c}_{i}"))
                                .collect::<Vec<_>>()
                                .iter()
                                .map(String::as_str)
                                .collect::<Vec<_>>(),
                            l.cardinality,
                        )
                    })
                    .collect(),
            )
            .expect("renamed dimension is valid")
        })
        .collect();
    Lattice::new(dims).expect("non-empty")
}

fn bench_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("lattice_enumeration");
    for dims in [2usize, 3, 4] {
        let lattice = lattice_with_dims(dims);
        group.bench_with_input(BenchmarkId::from_parameter(dims), &lattice, |b, lattice| {
            b.iter(|| black_box(lattice.all_cuboids().len()))
        });
    }
    group.finish();
}

fn bench_estimation(c: &mut Criterion) {
    let lattice = lattice_with_dims(3);
    let est = SizeEstimator::new(1_000_000);
    c.bench_function("lattice_estimate_all_64_cuboids", |b| {
        b.iter(|| {
            let total: f64 = lattice
                .all_cuboids()
                .iter()
                .map(|cu| est.expected_rows(black_box(&lattice), cu))
                .sum();
            black_box(total)
        })
    });
}

fn bench_hru(c: &mut Criterion) {
    let lattice = Lattice::paper_running_example();
    let est = SizeEstimator::new(1_000_000);
    let workload = mv_lattice::paper_workload(&lattice);
    c.bench_function("hru_greedy_k8_paper_lattice", |b| {
        b.iter(|| black_box(candidates::hru_greedy(&lattice, &est, &workload, 8).len()))
    });
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench_enumeration, bench_estimation, bench_hru
}
criterion_main!(benches);
