//! Market sweep: retarget-based price-drift handoff vs rebuilding per
//! epoch, across K sampled price paths.
//!
//! Two shapes, mirroring the horizon bench's machinery/end-to-end
//! split:
//!
//! 1. **price-drift handoff** — one epoch boundary under price dynamics
//!    alone: `retarget` to the re-priced model plus an `update_charge`
//!    splice per candidate whose risk-adjusted charge moved (all of
//!    them: the interruption premium re-risks the whole pool) and one
//!    snapshot — vs re-pricing the charge vector, building a fresh
//!    `SelectionProblem` and a fresh evaluator repositioned by O(n)
//!    flips, and one snapshot.
//! 2. **K-path sweep** — the `solve_market` hot loop at the `mv-select`
//!    layer: K sampled spot paths, each solved over an 8-epoch horizon
//!    by `EpochChain::solve_repriced` (one live evaluator per path) vs
//!    `solve_repriced_rebuilding_bounded` (fresh problem + evaluator
//!    every epoch). Identical outcomes (asserted before timing), only
//!    the state handoff differs.
//!
//! The acceptance bar for this PR: warm-start measurably faster than
//! rebuild in both groups (ratios recorded in ROADMAP.md).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mv_select::epoch::{EpochChain, EpochTree, EpochTreeNode};
use mv_select::{IncrementalEvaluator, Scenario, SelectionProblem, SelectionSet};
use mvcloud::cost::InterruptionRisk;
use mvcloud::market::{MarketPath, MarketScenario, PriceProcess, ScenarioTree, SpotMarket};
use mvcloud::{CloudCostModel, ViewCharge};

/// The streaming/churn hot-path shape (shared: `mv_bench::shapes`).
const CANDIDATES: usize = mv_bench::shapes::HOT_CANDIDATES;
const EPOCHS: usize = 8;
const PATHS: usize = 8;

/// The scenario-tree sweep width (the tentpole's acceptance shape).
const TREE_PATHS: usize = 32;

/// A volatile discounted spot market over the bench horizon.
fn spot_market(seed: u64) -> MarketScenario {
    MarketScenario::constant(EPOCHS, seed)
        .with(PriceProcess::Spot(SpotMarket::discounted(0.5, 0.4)))
}

/// Compiles one sampled path into per-epoch models + risks over the
/// bench problem (the same shape `Advisor::solve_market` builds).
fn compile_path(
    problem: &SelectionProblem,
    path: &MarketPath,
) -> (Vec<CloudCostModel>, Vec<InterruptionRisk>) {
    let base = problem.model().context();
    let models = path
        .quotes
        .iter()
        .map(|q| {
            let mut ctx = base.clone();
            ctx.pricing = q.reprice(&base.pricing);
            ctx.instance = ctx
                .pricing
                .compute
                .instance(&base.instance.name)
                .expect("bench instance is in the catalog")
                .clone();
            CloudCostModel::new(ctx)
        })
        .collect();
    let risks = path
        .quotes
        .iter()
        .map(|q| InterruptionRisk::new(q.interruption))
        .collect();
    (models, risks)
}

fn bench_price_drift_handoff(c: &mut Criterion) {
    let problem = mv_bench::shapes::hot_problem(41);
    let path = spot_market(7).path(1);
    let (models, _) = compile_path(&problem, &path);
    let (model_a, model_b) = (models[0].clone(), models[1].clone());
    // Alternating interruption regimes: every boundary re-risks the
    // whole pool (the market worst case — nothing short-circuits).
    let (risk_a, risk_b) = (InterruptionRisk::new(0.1), InterruptionRisk::new(0.4));
    let mut selection = SelectionSet::empty(CANDIDATES);
    for k in (0..CANDIDATES).step_by(2) {
        selection.set(k, true);
    }
    let pool = problem.candidates().to_vec();
    let mut group = c.benchmark_group(format!("market/price_drift_handoff_n{CANDIDATES}"));

    group.bench_function(BenchmarkId::from_parameter("rebuild_reposition"), |b| {
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            let (model, risk) = if flip {
                (&model_b, &risk_b)
            } else {
                (&model_a, &risk_a)
            };
            let charged: Vec<ViewCharge> = pool
                .iter()
                .enumerate()
                .map(|(k, v)| {
                    if selection.contains(k) {
                        risk.adjust(&v.carried())
                    } else {
                        risk.adjust(v)
                    }
                })
                .collect();
            let p = SelectionProblem::new(model.clone(), charged);
            let mut ev = IncrementalEvaluator::with_selection(&p, &selection);
            black_box(ev.snapshot().time.value())
        })
    });

    group.bench_function(BenchmarkId::from_parameter("warm_start"), |b| {
        let mut ev = IncrementalEvaluator::from_problem(SelectionProblem::new(
            model_a.clone(),
            pool.clone(),
        ));
        for k in selection.ones() {
            ev.flip(k);
        }
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            let (model, risk) = if flip {
                (&model_b, &risk_b)
            } else {
                (&model_a, &risk_a)
            };
            ev.retarget(model.clone());
            for (k, v) in pool.iter().enumerate() {
                let charge = if selection.contains(k) {
                    risk.adjust(&v.carried())
                } else {
                    risk.adjust(v)
                };
                ev.update_charge(k, charge);
            }
            black_box(ev.snapshot().time.value())
        })
    });
    group.finish();
}

fn bench_k_path_sweep(c: &mut Criterion) {
    let problem = mv_bench::shapes::hot_problem(43);
    let market = spot_market(99);
    let paths: Vec<(EpochChain, Vec<InterruptionRisk>)> = (0..PATHS)
        .map(|j| {
            let path = market.path(j);
            let (models, risks) = compile_path(&problem, &path);
            (
                EpochChain::new(models, problem.candidates().to_vec()),
                risks,
            )
        })
        .collect();
    let scenario = Scenario::tradeoff_normalized(0.5);
    let budget = 2 * CANDIDATES + 8;
    // Sanity: warm and rebuild must agree before we time them.
    for (chain, risks) in &paths {
        let reprice = |e: usize, _k: usize, v: &ViewCharge| risks[e].adjust(v);
        let warm = chain.solve_repriced_bounded(scenario, budget, &reprice);
        let rebuilt = chain.solve_repriced_rebuilding_bounded(scenario, budget, &reprice);
        for (w, r) in warm.iter().zip(&rebuilt) {
            assert_eq!(w.outcome.evaluation, r.outcome.evaluation);
        }
    }
    let mut group = c.benchmark_group(format!(
        "market/k_path_sweep_k{PATHS}_e{EPOCHS}_n{CANDIDATES}"
    ));
    group.bench_function(BenchmarkId::from_parameter("rebuild_per_epoch"), |b| {
        b.iter(|| {
            let mut total = 0usize;
            for (chain, risks) in &paths {
                let reprice = |e: usize, _k: usize, v: &ViewCharge| risks[e].adjust(v);
                total += chain
                    .solve_repriced_rebuilding_bounded(scenario, budget, &reprice)
                    .len();
            }
            black_box(total)
        })
    });
    group.bench_function(BenchmarkId::from_parameter("warm_start"), |b| {
        b.iter(|| {
            let mut total = 0usize;
            for (chain, risks) in &paths {
                let reprice = |e: usize, _k: usize, v: &ViewCharge| risks[e].adjust(v);
                total += chain
                    .solve_repriced_bounded(scenario, budget, &reprice)
                    .len();
            }
            black_box(total)
        })
    });
    group.finish();
}

/// Tree vs flat at K = 32: the tentpole's acceptance shape. The flat
/// sweep solves every path as its own chain — 32 evaluator builds (one
/// greedy fill each) plus 32 × 7 retargets. The scenario tree factors
/// the sampled paths into a prefix forest (the spot process pins epoch
/// 0, so all 32 share one root) and solves each *node* once: 1 build,
/// one retarget per edge, a cheap fork per extra sibling. Identical
/// outcomes are asserted before timing.
fn bench_scenario_tree_vs_flat(c: &mut Criterion) {
    let problem = mv_bench::shapes::hot_problem(61);
    let market = spot_market(17);
    let sampled: Vec<MarketPath> = (0..TREE_PATHS).map(|j| market.path(j)).collect();

    // Flat reference: one chain + per-epoch risks per path.
    let flat: Vec<(EpochChain, Vec<InterruptionRisk>)> = sampled
        .iter()
        .map(|p| {
            let (models, risks) = compile_path(&problem, p);
            (
                EpochChain::new(models, problem.candidates().to_vec()),
                risks,
            )
        })
        .collect();

    // Tree route: one repriced model + risk per *node*.
    let stree = ScenarioTree::from_paths(&sampled);
    assert!(
        stree.len() < TREE_PATHS * EPOCHS,
        "fixture must actually share prefixes"
    );
    let base = problem.model().context();
    let nodes: Vec<EpochTreeNode> = stree
        .nodes()
        .iter()
        .map(|n| {
            let mut ctx = base.clone();
            ctx.pricing = n.quote.reprice(&base.pricing);
            ctx.instance = ctx
                .pricing
                .compute
                .instance(&base.instance.name)
                .expect("bench instance is in the catalog")
                .clone();
            EpochTreeNode {
                parent: n.parent,
                epoch: n.epoch,
                model: CloudCostModel::new(ctx),
            }
        })
        .collect();
    let node_risks: Vec<InterruptionRisk> = stree
        .nodes()
        .iter()
        .map(|n| InterruptionRisk::new(n.quote.interruption))
        .collect();
    let leaves: Vec<usize> = (0..TREE_PATHS).map(|j| stree.leaf_of(j)).collect();
    let tree = EpochTree::new(nodes, leaves);
    let chain = EpochChain::new(
        vec![problem.model().clone(); EPOCHS],
        problem.candidates().to_vec(),
    );
    let scenario = Scenario::tradeoff_normalized(0.5);
    let budget = 2 * CANDIDATES + 8;

    // Sanity: tree and flat must price identically before we time them.
    let tree_reprice = |node: usize, _k: usize, v: &ViewCharge| node_risks[node].adjust(v);
    let tree_steps = chain.solve_tree_bounded(scenario, budget, &tree, &tree_reprice);
    for (j, (fchain, risks)) in flat.iter().enumerate() {
        let reprice = |e: usize, _k: usize, v: &ViewCharge| risks[e].adjust(v);
        let warm = fchain.solve_repriced_bounded(scenario, budget, &reprice);
        for (t, w) in tree_steps[j].iter().zip(&warm) {
            assert_eq!(t.outcome.evaluation, w.outcome.evaluation);
        }
    }

    let mut group = c.benchmark_group(format!(
        "market/scenario_tree_k{TREE_PATHS}_e{EPOCHS}_n{CANDIDATES}"
    ));
    group.bench_function(BenchmarkId::from_parameter("flat_per_path"), |b| {
        b.iter(|| {
            let mut total = 0usize;
            for (fchain, risks) in &flat {
                let reprice = |e: usize, _k: usize, v: &ViewCharge| risks[e].adjust(v);
                total += fchain
                    .solve_repriced_bounded(scenario, budget, &reprice)
                    .len();
            }
            black_box(total)
        })
    });
    group.bench_function(BenchmarkId::from_parameter("shared_prefix_tree"), |b| {
        b.iter(|| {
            black_box(
                chain
                    .solve_tree_bounded(scenario, budget, &tree, &tree_reprice)
                    .len(),
            )
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = mv_bench::shapes::fast_config();
    targets = bench_price_drift_handoff, bench_k_path_sweep, bench_scenario_tree_vs_flat
}
criterion_main!(benches);
