//! End-to-end advisor pipeline: measurement build + scenario solve.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mv_units::Money;
use mvcloud::{sales_domain, Advisor, AdvisorConfig, Scenario, SolverKind};

/// Short measurement windows keep `cargo bench --workspace` minutes,
/// not hours; absolute numbers matter less than the relative shapes.
fn fast_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(20)
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("advisor_build");
    group.sample_size(10);
    for rows in [2_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, &rows| {
            b.iter(|| {
                let domain = sales_domain(rows, 5, 1.0, 42);
                let advisor = Advisor::build(domain, AdvisorConfig::default()).unwrap();
                black_box(advisor.problem().len())
            })
        });
    }
    group.finish();
}

fn bench_solve(c: &mut Criterion) {
    let domain = sales_domain(5_000, 10, 1.0, 42);
    let advisor = Advisor::build(domain, AdvisorConfig::default()).unwrap();
    let budget = advisor.problem().baseline().cost() + Money::from_dollars(1);
    let mut group = c.benchmark_group("advisor_solve");
    for solver in [
        SolverKind::PaperKnapsack,
        SolverKind::Greedy,
        SolverKind::BranchAndBound,
        SolverKind::Exhaustive,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(solver.name()),
            &advisor,
            |b, advisor| {
                b.iter(|| black_box(advisor.solve(Scenario::budget(budget), solver).objective()))
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench_build, bench_solve
}
criterion_main!(benches);
