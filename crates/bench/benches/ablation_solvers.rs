//! Ablation A1 (DESIGN.md): the paper's linearized knapsack vs the
//! interaction-aware solvers, across all three scenarios on the same
//! problem. Runtime is measured here; the optimality gap is asserted in
//! `mv-select`'s tests and printed by the `ablations` binary.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mv_select::{fixtures, Scenario, SolverKind};
use mv_units::{Hours, Money};

/// Short measurement windows keep `cargo bench --workspace` minutes,
/// not hours; absolute numbers matter less than the relative shapes.
fn fast_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(20)
}

fn bench_by_scenario(c: &mut Criterion) {
    let problem = fixtures::random_problem(3, 5, 12);
    let scenarios = [
        (
            "mv1",
            Scenario::budget(problem.baseline().cost() + Money::from_cents(60)),
        ),
        (
            "mv2",
            Scenario::time_limit(Hours::new(problem.baseline().time.value() * 0.5)),
        ),
        ("mv3", Scenario::tradeoff_normalized(0.5)),
    ];
    for (label, scenario) in scenarios {
        let mut group = c.benchmark_group(format!("ablation_solvers/{label}"));
        for solver in [
            SolverKind::PaperKnapsack,
            SolverKind::Greedy,
            SolverKind::BranchAndBound,
        ] {
            group.bench_with_input(
                BenchmarkId::from_parameter(solver.name()),
                &problem,
                |b, problem| {
                    b.iter(|| black_box(mv_select::solve(problem, scenario, solver).objective()))
                },
            );
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench_by_scenario
}
criterion_main!(benches);
