//! The incremental selection evaluator vs full re-evaluation.
//!
//! Three questions, matching the hot paths the solvers actually hit:
//!
//! 1. **single-flip probes** — flipping one candidate and reading the
//!    full evaluation, via `IncrementalEvaluator` (flip + snapshot +
//!    unflip, O(n + m)) vs `SelectionProblem::evaluate` over a cloned
//!    selection (O(n·m)); the acceptance bar is ≥ 5× at n = 20;
//! 2. **exhaustive sweep, serial** — the 2ⁿ-subset ascending-mask walk
//!    with incremental flips vs per-mask full evaluation;
//! 3. **exhaustive sweep, threads** — the same sweep fanned out across
//!    thread counts.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mv_select::{fixtures, IncrementalEvaluator, Scenario, SelectionProblem, SelectionSet};
use mv_units::Money;

/// A probe cycle over every candidate: flip k on, read the evaluation,
/// flip k back — the inner loop of greedy and the knapsack repair. The
/// evaluator is built once (as every solver does) and probed repeatedly.
fn bench_single_flip_probes(c: &mut Criterion) {
    for n in [12usize, 16, 20] {
        let problem = mv_bench::shapes::hot_problem_sized(17, n);
        let mut group = c.benchmark_group(format!("evaluator/probe_all_n{n}"));

        group.bench_function(BenchmarkId::from_parameter("full_evaluate"), |b| {
            let empty = SelectionSet::empty(n);
            b.iter(|| {
                let mut acc = 0.0;
                let mut sel = empty.clone();
                for k in 0..n {
                    sel.set(k, true);
                    acc += problem.evaluate(black_box(&sel)).time.value();
                    sel.set(k, false);
                }
                black_box(acc)
            })
        });

        group.bench_function(BenchmarkId::from_parameter("incremental"), |b| {
            let mut ev = IncrementalEvaluator::new(&problem);
            b.iter(|| {
                let mut acc = 0.0;
                for k in 0..n {
                    ev.flip(k);
                    acc += ev.snapshot().time.value();
                    ev.unflip(k);
                }
                black_box(acc)
            })
        });
        group.finish();
    }
}

/// Reference sweep: per-mask full evaluation (the pre-refactor
/// exhaustive inner loop).
fn full_evaluation_sweep(problem: &SelectionProblem, scenario: Scenario) -> f64 {
    let n = problem.len();
    let baseline = problem.baseline();
    let mut best = baseline.clone();
    for mask in 1u64..(1u64 << n) {
        let e = problem.evaluate(&SelectionSet::from_mask(mask, n));
        if scenario.better(&e, &best, &baseline) {
            best = e;
        }
    }
    best.time.value()
}

fn bench_exhaustive_sweep(c: &mut Criterion) {
    for n in [12usize, 16] {
        let problem = fixtures::random_problem(23, 6, n);
        let scenario = Scenario::budget(problem.baseline().cost() + Money::from_cents(80));
        let mut group = c.benchmark_group(format!("evaluator/exhaustive_n{n}"));

        group.bench_function(BenchmarkId::from_parameter("full_evaluate"), |b| {
            b.iter(|| black_box(full_evaluation_sweep(&problem, scenario)))
        });
        for threads in [1usize, 2, 4, 8] {
            group.bench_function(
                BenchmarkId::from_parameter(format!("incremental_t{threads}")),
                |b| {
                    b.iter(|| {
                        black_box(
                            mv_select::solve_exhaustive_with_threads(&problem, scenario, threads)
                                .objective(),
                        )
                    })
                },
            );
        }
        group.finish();
    }
}

/// n = 20 is the acceptance-criteria size: a full sweep evaluates
/// 1 048 576 subsets, so only the incremental + threaded path is timed
/// (the full-evaluation reference would dominate the bench's runtime).
fn bench_large_sweep(c: &mut Criterion) {
    let n = 20usize;
    let problem = fixtures::random_problem(29, 6, n);
    let scenario = Scenario::tradeoff_normalized(0.5);
    let mut group = c.benchmark_group("evaluator/exhaustive_n20");
    for threads in [1usize, 8] {
        group.bench_function(
            BenchmarkId::from_parameter(format!("incremental_t{threads}")),
            |b| {
                b.iter(|| {
                    black_box(
                        mv_select::solve_exhaustive_with_threads(&problem, scenario, threads)
                            .objective(),
                    )
                })
            },
        );
    }
    group.finish();
}

/// The telemetry-off overhead guard: the same probe cycle as
/// `evaluator/probe_all_*`, timed with the `mv_obs` registry verifiably
/// disabled and then enabled. The off reading is the one the <5%
/// regression acceptance compares against pre-instrumentation
/// baselines; the on reading prices what `--metrics` costs.
fn bench_probe_telemetry_overhead(c: &mut Criterion) {
    let n = 16usize;
    let problem = mv_bench::shapes::hot_problem_sized(17, n);
    let probe_cycle = |ev: &mut IncrementalEvaluator| {
        let mut acc = 0.0;
        for k in 0..n {
            ev.flip(k);
            acc += ev.snapshot().time.value();
            ev.unflip(k);
        }
        acc
    };
    let mut group = c.benchmark_group("evaluator/probe_telemetry_n16");
    assert!(
        !mv_obs::enabled(),
        "the off reading must run with the registry disabled"
    );
    group.bench_function(BenchmarkId::from_parameter("off"), |b| {
        let mut ev = IncrementalEvaluator::new(&problem);
        b.iter(|| black_box(probe_cycle(&mut ev)))
    });
    group.bench_function(BenchmarkId::from_parameter("on"), |b| {
        let _on = mv_obs::EnableGuard::new();
        let mut ev = IncrementalEvaluator::new(&problem);
        b.iter(|| black_box(probe_cycle(&mut ev)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = mv_bench::shapes::fast_config();
    targets = bench_single_flip_probes, bench_exhaustive_sweep, bench_large_sweep,
        bench_probe_telemetry_overhead
}
criterion_main!(benches);
