//! The telemetry registry's own cost, off and on.
//!
//! The `mv_obs` contract is *zero-cost-when-off*: every instrumentation
//! site must collapse to one relaxed atomic load while the registry is
//! disabled. The `obs/disabled/*` groups time exactly that path (1000
//! sites per iteration, so per-site cost is the reading ÷ 1000); the
//! `obs/enabled/*` groups time the recording path for scale — nobody
//! promises *that* is free, only that you opted into it.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use mv_obs::{Counter, Hist};

const SITES: usize = 1000;

fn instrumentation_sites() {
    for i in 0..SITES {
        mv_obs::inc(black_box(Counter::SearchProbes));
        mv_obs::record(black_box(Hist::LnsDestroySize), i as u64);
        mv_obs::span!("bench/site");
        if mv_obs::enabled() {
            mv_obs::event("bench_site", &[("i", i as f64)]);
        }
    }
}

fn bench_disabled(c: &mut Criterion) {
    assert!(
        !mv_obs::enabled(),
        "the disabled group must run with the registry off"
    );
    let mut group = c.benchmark_group("obs/disabled");
    group.bench_function("counter_inc_x1000", |b| {
        b.iter(|| {
            for _ in 0..SITES {
                mv_obs::inc(black_box(Counter::SearchProbes));
            }
        })
    });
    group.bench_function("hist_record_x1000", |b| {
        b.iter(|| {
            for i in 0..SITES {
                mv_obs::record(black_box(Hist::LnsDestroySize), i as u64);
            }
        })
    });
    group.bench_function("span_x1000", |b| {
        b.iter(|| {
            for _ in 0..SITES {
                mv_obs::span!("bench/span");
            }
        })
    });
    group.bench_function("mixed_site_x1000", |b| b.iter(instrumentation_sites));
    group.finish();
}

fn bench_enabled(c: &mut Criterion) {
    let _on = mv_obs::EnableGuard::new();
    let mut group = c.benchmark_group("obs/enabled");
    group.bench_function("counter_inc_x1000", |b| {
        b.iter(|| {
            for _ in 0..SITES {
                mv_obs::inc(black_box(Counter::SearchProbes));
            }
        })
    });
    group.bench_function("hist_record_x1000", |b| {
        b.iter(|| {
            for i in 0..SITES {
                mv_obs::record(black_box(Hist::LnsDestroySize), i as u64);
            }
        })
    });
    group.bench_function("span_x1000", |b| {
        b.iter(|| {
            for _ in 0..SITES {
                mv_obs::span!("bench/span");
            }
        })
    });
    group.bench_function("event_x1000", |b| {
        b.iter(|| {
            for i in 0..SITES {
                mv_obs::event("bench_event", &[("i", i as f64)]);
            }
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = mv_bench::shapes::fast_config();
    targets = bench_disabled, bench_enabled
}
criterion_main!(benches);
