//! The calibration loop end-to-end: solve the horizon plan, replay it
//! through the engine, fit the throughput law, reconcile the bills.
//!
//! Two shapes:
//!
//! 1. **loop** — `Advisor::calibrate` over the sales domain at two
//!    epoch counts: the replay (engine scans, builds, refreshes) is the
//!    dominant term and should scale roughly linearly in epochs.
//! 2. **fit** — `CalibratedParams::fit` alone over a synthetic metered
//!    sample set, isolating the least-squares core from the engine.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvcloud::cost::{CalibratedParams, MeterSample, WorkKind};
use mvcloud::lattice::WorkloadEvolution;
use mvcloud::units::{Gb, Hours};
use mvcloud::{sales_domain, Advisor, AdvisorConfig, CalibrationConfig, Scenario};

fn bench_calibration_loop(c: &mut Criterion) {
    let advisor = Advisor::build(
        sales_domain(1_000, 3, 2.0, 42),
        AdvisorConfig {
            simulated_dataset: Gb::new(500.0),
            ..AdvisorConfig::default()
        },
    )
    .expect("advisor builds");
    let scenario = Scenario::tradeoff_normalized(0.5);
    let mut group = c.benchmark_group("calibrate/loop_sales_r1000_q3");
    for epochs in [2usize, 6] {
        let config = CalibrationConfig {
            epochs,
            evolution: WorkloadEvolution::fixed(),
            ..CalibrationConfig::default()
        };
        group.bench_function(BenchmarkId::from_parameter(format!("e{epochs}")), |b| {
            b.iter(|| {
                let report = advisor.calibrate(scenario, &config).expect("calibrates");
                black_box(report.holdout_fitted_rel_error)
            })
        });
    }
    group.finish();
}

fn bench_fit(c: &mut Criterion) {
    // A deterministic metered sample cloud around the default law
    // (25 GB/h/unit, 0.01 h overhead, 2 units).
    let samples: Vec<MeterSample> = (0..512)
        .map(|i| {
            let gb = 1.0 + (i % 97) as f64 * 5.0;
            let kind = match i % 3 {
                0 => WorkKind::Scan,
                1 => WorkKind::Materialize,
                _ => WorkKind::Refresh,
            };
            MeterSample::new(kind, Gb::new(gb), Hours::new(0.01 + gb / 50.0))
        })
        .collect();
    let mut group = c.benchmark_group("calibrate/fit");
    group.bench_function(BenchmarkId::from_parameter("n512"), |b| {
        b.iter(|| black_box(CalibratedParams::fit(black_box(&samples), 2.0)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = mv_bench::shapes::fast_config();
    targets = bench_calibration_loop, bench_fit
}
criterion_main!(benches);
