//! Dynamic candidate churn: splicing a view into (or out of) the
//! incremental evaluator vs rebuilding the problem and re-evaluating.
//!
//! The streaming advisor's inner loop is "admit one more measured
//! candidate, probe it, maybe retire another" — so the numbers that
//! matter are:
//!
//! 1. **add + probe** — an `add_candidate` (O(m) splice), flip,
//!    snapshot, `remove_candidate` cycle, vs cloning the candidate
//!    vector, building a fresh `SelectionProblem` and running a full
//!    `evaluate` (the pre-dynamic alternative). The acceptance bar is
//!    ≥ 5× at n = 20 / m = 30.
//! 2. **remove + re-add (middle)** — the swap-remove renumbering path,
//!    with half the pool selected so cache eviction and runner-up
//!    rescans are exercised.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mv_select::{IncrementalEvaluator, SelectionProblem, SelectionSet};

fn bench_add_probe(c: &mut Criterion) {
    for n in [12usize, 20] {
        // n resident candidates plus one newcomer to churn.
        let seeded = mv_bench::shapes::hot_problem_sized(31, n + 1);
        let resident = seeded.candidates()[..n].to_vec();
        let newcomer = seeded.candidates()[n].clone();
        let model = seeded.model().clone();
        let mut group = c.benchmark_group(format!("churn/add_probe_n{n}"));

        group.bench_function(BenchmarkId::from_parameter("rebuild_evaluate"), |b| {
            b.iter(|| {
                let mut grown = resident.clone();
                grown.push(newcomer.clone());
                let p = SelectionProblem::new(model.clone(), grown);
                let mut sel = SelectionSet::empty(n + 1);
                sel.set(n, true);
                black_box(p.evaluate(black_box(&sel)).time.value())
            })
        });

        group.bench_function(BenchmarkId::from_parameter("incremental"), |b| {
            let mut ev = IncrementalEvaluator::from_problem(SelectionProblem::new(
                model.clone(),
                resident.clone(),
            ));
            b.iter(|| {
                let k = ev.add_candidate(newcomer.clone());
                ev.flip(k);
                let t = ev.snapshot().time.value();
                ev.remove_candidate(k);
                black_box(t)
            })
        });
        group.finish();
    }
}

fn bench_remove_readd_middle(c: &mut Criterion) {
    let n = 20usize;
    let problem = mv_bench::shapes::hot_problem_sized(37, n);
    let model = problem.model().clone();
    let mut group = c.benchmark_group("churn/remove_readd_middle_n20");

    group.bench_function(BenchmarkId::from_parameter("rebuild_evaluate"), |b| {
        // Reference: rebuild the permuted problem and evaluate the same
        // half-selected mask from scratch.
        let mut sel = SelectionSet::empty(n);
        for k in (0..n).step_by(2) {
            sel.set(k, true);
        }
        b.iter(|| {
            let p = SelectionProblem::new(model.clone(), problem.candidates().to_vec());
            black_box(p.evaluate(black_box(&sel)).time.value())
        })
    });

    group.bench_function(BenchmarkId::from_parameter("incremental"), |b| {
        let mut ev = IncrementalEvaluator::from_problem(SelectionProblem::new(
            model.clone(),
            problem.candidates().to_vec(),
        ));
        for k in (0..n).step_by(2) {
            ev.flip(k);
        }
        b.iter(|| {
            // Retire a mid-pool candidate — swap-remove renumbering plus
            // cache eviction when it was selected — then splice it back,
            // restoring its selection state so the selected count stays
            // at n/2 across iterations (matching the rebuild reference).
            let was_selected = ev.is_selected(n / 2);
            let charge = ev.remove_candidate(n / 2);
            let k = ev.add_candidate(charge);
            if was_selected {
                ev.flip(k);
            }
            black_box(ev.snapshot().time.value())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = mv_bench::shapes::fast_config();
    targets = bench_add_probe, bench_remove_readd_middle
}
criterion_main!(benches);
