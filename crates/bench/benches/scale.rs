//! The sparse evaluator at benchmark scale: n = 2 000 candidates over
//! an m = 50 000-query workload (ISSUE 6's headline shape — 100× the
//! paper's pools, where a dense answer table would hold 10⁸ slots).
//!
//! What must hold for the sparse struct-of-arrays refactor to count:
//!
//! 1. **probe** — flip + snapshot + unflip stays in *microseconds*:
//!    the flip itself is O(deg) against the top-k tables and the
//!    snapshot is O(n + m) over the cached per-query bests, never
//!    O(n·m). The `full_evaluate` reference is the dense-era cost of
//!    the same read (one from-scratch evaluation).
//! 2. **churn** — an add + probe + retire cycle (the streaming
//!    advisor's inner loop) stays O(deg + m), not a rebuild.
//! 3. **solve** — a bounded LNS pass completes on the full shape;
//!    flip/swap local search's O(n²) swap neighborhood is hopeless
//!    here (n² = 4·10⁶ probes *per round*).
//!
//! Measured numbers live in ROADMAP.md's perf ledger. CI runs this
//! bench in `-- --test` smoke mode (one iteration per bench) to keep
//! the shape compiling and completing.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mv_bench::shapes;
use mv_select::lns::{solve_lns_with, LnsConfig};
use mv_select::{IncrementalEvaluator, Scenario, SelectionSet};

fn bench_probe(c: &mut Criterion) {
    let problem = shapes::scale_problem(&shapes::scale_shape());
    let (n, m) = (problem.len(), problem.model().context().workload.len());
    let mut group = c.benchmark_group(format!("scale/probe_n{n}_m{m}"));

    // The dense-era reference: one from-scratch evaluation per probe.
    // O(n·m) — expected in the hundreds of milliseconds, so it gets the
    // minimum sample count.
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("full_evaluate"), |b| {
        let mut sel = SelectionSet::empty(n);
        for k in (0..n).step_by(7) {
            sel.set(k, true);
        }
        b.iter(|| black_box(problem.evaluate(black_box(&sel)).time.value()))
    });

    // flip + snapshot + unflip — the solver probe. One probe per
    // iteration, rotating the flipped candidate over the unselected
    // pool so the top-k hit pattern varies.
    let probes: Vec<usize> = (0..n).filter(|k| k % 7 != 0).collect();
    group.bench_function(BenchmarkId::from_parameter("incremental"), |b| {
        let mut ev = IncrementalEvaluator::new(&problem);
        for k in (0..n).step_by(7) {
            ev.flip(k);
        }
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % probes.len();
            let k = probes[i];
            ev.flip(k);
            let t = ev.snapshot().time.value();
            ev.unflip(k);
            black_box(t)
        })
    });

    // flip + unflip alone — the O(deg) core without the O(n + m)
    // snapshot fold; this is the per-move cost inside greedy fills.
    group.bench_function(BenchmarkId::from_parameter("flip_unflip"), |b| {
        let mut ev = IncrementalEvaluator::new(&problem);
        for k in (0..n).step_by(7) {
            ev.flip(k);
        }
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % probes.len();
            let k = probes[i];
            ev.flip(k);
            ev.unflip(k);
            black_box(k)
        })
    });
    group.finish();
}

/// The dirty-delta snapshot against the full fold it replaced: after
/// one flip, `snapshot()` folds only the O(deg) dirty blocks while
/// `snapshot_cold()` re-marks everything and pays the full O(n + m)
/// pass. At n = 2 000 / m = 50 000 the delta case must be measurably
/// faster — that gap is the dirty-tracking payoff every tree-node
/// probe compounds on.
fn bench_snapshot_delta(c: &mut Criterion) {
    let problem = shapes::scale_problem(&shapes::scale_shape());
    let (n, m) = (problem.len(), problem.model().context().workload.len());
    let probes: Vec<usize> = (0..n).filter(|k| k % 7 != 0).collect();
    let mut group = c.benchmark_group(format!("scale/snapshot_delta_n{n}_m{m}"));

    group.bench_function(BenchmarkId::from_parameter("dirty_delta"), |b| {
        let mut ev = IncrementalEvaluator::new(&problem);
        for k in (0..n).step_by(7) {
            ev.flip(k);
        }
        ev.snapshot();
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % probes.len();
            let k = probes[i];
            ev.flip(k);
            let t = ev.snapshot().time.value();
            ev.unflip(k);
            black_box(t)
        })
    });

    group.bench_function(BenchmarkId::from_parameter("cold_full_fold"), |b| {
        let mut ev = IncrementalEvaluator::new(&problem);
        for k in (0..n).step_by(7) {
            ev.flip(k);
        }
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % probes.len();
            let k = probes[i];
            ev.flip(k);
            let t = ev.snapshot_cold().time.value();
            ev.unflip(k);
            black_box(t)
        })
    });
    group.finish();
}

fn bench_churn(c: &mut Criterion) {
    let problem = shapes::scale_problem(&shapes::scale_shape());
    let n = problem.len();
    let newcomer = problem.candidates()[n - 1].clone();
    let mut group = c.benchmark_group("scale/add_probe_n2000_m50000");

    group.bench_function(BenchmarkId::from_parameter("incremental"), |b| {
        let mut ev = IncrementalEvaluator::new(&problem);
        for k in (0..n).step_by(7) {
            ev.flip(k);
        }
        b.iter(|| {
            let k = ev.add_candidate(newcomer.clone());
            ev.flip(k);
            let t = ev.snapshot().time.value();
            ev.remove_candidate(k);
            black_box(t)
        })
    });
    group.finish();
}

fn bench_solve(c: &mut Criterion) {
    let problem = shapes::scale_problem(&shapes::scale_shape());
    let scenario = Scenario::tradeoff_normalized(0.5);
    let mut group = c.benchmark_group("scale/solve_n2000_m50000");
    group.sample_size(10);

    // Bounded LNS: shortlist repair, no O(n²) polish. Rounds are kept
    // low — the bench certifies the *shape* completes, the ledger
    // records the wall-clock.
    group.bench_function(BenchmarkId::from_parameter("lns_bounded"), |b| {
        let cfg = LnsConfig {
            rounds: 4,
            polish_moves: 0,
            ..LnsConfig::for_problem(problem.len())
        };
        b.iter(|| {
            black_box(
                solve_lns_with(&problem, scenario, &cfg)
                    .evaluation
                    .time
                    .value(),
            )
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = mv_bench::shapes::fast_config_samples(10);
    targets = bench_probe, bench_snapshot_delta, bench_churn, bench_solve
}
criterion_main!(benches);
