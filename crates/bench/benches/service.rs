//! The resident advisor's restart and re-plan economics.
//!
//! The service exists to avoid two cold costs, and the groups measure
//! exactly those offsets:
//!
//! 1. **startup** — `catalog_reload` (parse the spilled JSON, rebuild
//!    the problem, canonical solve) vs `cold_build` (measure every
//!    candidate through the engine first). The gap is the measurement
//!    pipeline the persistent catalog amortizes away.
//! 2. **replan** — `drift_resolve` (warm: retarget the standing
//!    evaluator, greedy fill + polish over live answer tables) vs
//!    `cold_solve` (build a fresh evaluator for the re-costed problem
//!    first). The gap is the evaluator rebuild a drift re-solve never
//!    pays.
//! 3. **ingest** — the per-event cost of the high-water-mark fold and
//!    drift check, the service's steady-state hot path.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use mvcloud::select::{local_search, IncrementalEvaluator, SelectionProblem};
use mvcloud::{
    sales_domain, Advisor, AdvisorConfig, AdvisorService, CandidateCatalog, QueryEvent, Scenario,
    ServiceConfig,
};

const ROWS: usize = 1_000;
const QUERIES: usize = 3;

fn advisor() -> Advisor {
    Advisor::build(
        sales_domain(ROWS, QUERIES, 1.0, 42),
        AdvisorConfig::default(),
    )
    .expect("advisor builds")
}

fn service_config() -> ServiceConfig {
    ServiceConfig::new(Scenario::tradeoff_normalized(0.5))
}

fn skew(timestamp: u64, n: u64) -> Vec<QueryEvent> {
    (0..n)
        .map(|i| QueryEvent {
            timestamp,
            query_id: i + 1,
            query: "Q1".to_string(),
        })
        .collect()
}

fn bench_startup(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("mv-bench-service-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench dir");
    let path = dir.join("catalog.json");
    let svc = AdvisorService::from_advisor(&advisor(), service_config()).expect("service");
    svc.spill(&path).expect("spill");

    let mut group = c.benchmark_group("service/startup_sales_r1000_q3");
    group.bench_function("catalog_reload", |b| {
        b.iter(|| {
            let svc = AdvisorService::open(&path, AdvisorConfig::default(), service_config())
                .expect("open");
            black_box(svc.plan().time)
        })
    });
    group.bench_function("cold_build", |b| {
        b.iter(|| {
            let svc = AdvisorService::from_advisor(&advisor(), service_config()).expect("service");
            black_box(svc.plan().time)
        })
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

fn bench_replan(c: &mut Criterion) {
    let mut svc = AdvisorService::from_advisor(&advisor(), service_config()).expect("service");
    // Stand at a drifted stream position so every re-solve re-costs.
    svc.ingest(&skew(1, 40)).expect("ingest");
    let config = service_config();
    let baseline_problem: SelectionProblem = {
        let fork = svc.what_if(|ev| ev.fork());
        fork.into_problem()
    };

    let mut group = c.benchmark_group("service/replan_sales_r1000_q3");
    group.bench_function("drift_resolve", |b| {
        b.iter(|| {
            let plan = svc.resolve().expect("resolve");
            black_box(plan.time)
        })
    });
    group.bench_function("cold_solve", |b| {
        b.iter(|| {
            // What the warm path avoids: a fresh evaluator build for
            // the same re-costed problem, then the same canonical solve.
            let mut ev = IncrementalEvaluator::from_problem(baseline_problem.clone());
            let baseline = ev.problem().baseline();
            local_search::greedy_fill(&mut ev, config.scenario, &baseline);
            let plan =
                local_search::improve(&mut ev, config.scenario, &baseline, config.resolve_moves);
            black_box(plan.time)
        })
    });
    group.finish();
}

fn bench_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("service/ingest_sales_r1000_q3");
    group.bench_function("fold_1000_events", |b| {
        // High drift threshold: time the pure fold + drift check, not
        // re-solves.
        let mut config = service_config();
        config.drift_threshold = 2.0;
        let mut svc = AdvisorService::from_advisor(&advisor(), config).expect("service");
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            let out = svc.ingest(&skew(t, 1_000)).expect("ingest");
            black_box(out.accepted)
        })
    });
    group.finish();
}

fn bench_catalog_json(c: &mut Criterion) {
    let svc = AdvisorService::from_advisor(&advisor(), service_config()).expect("service");
    let text = svc.catalog().to_json().render_pretty();
    let mut group = c.benchmark_group("service/catalog_json");
    group.bench_function("render", |b| {
        b.iter(|| black_box(svc.catalog().to_json().render_pretty().len()))
    });
    group.bench_function("parse", |b| {
        b.iter(|| {
            let parsed = mvcloud::json::Json::parse(black_box(&text)).expect("parse");
            black_box(CandidateCatalog::from_json(&parsed).expect("decode").hwm)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = mv_bench::shapes::fast_config();
    targets = bench_startup, bench_replan, bench_ingest, bench_catalog_json
}
criterion_main!(benches);
