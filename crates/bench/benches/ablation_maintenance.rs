//! Ablation A3 (DESIGN.md): incremental vs full view maintenance.
//!
//! The incremental path's work is proportional to the delta, the full
//! path's to the whole base — this bench quantifies the gap that makes the
//! maintenance-cost term in the paper's Formula 12 small.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mv_engine::{datagen, AggSpec, MaterializedView, SalesConfig, ViewDefinition};

/// Short measurement windows keep `cargo bench --workspace` minutes,
/// not hours; absolute numbers matter less than the relative shapes.
fn fast_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(20)
}

fn bench_maintenance(c: &mut Criterion) {
    let cfg = SalesConfig::with_rows(20_000);
    let mut base = datagen::generate_sales(&cfg);
    let delta = datagen::generate_delta(&cfg, 400, 2011, 1); // 2% of base
    let def = ViewDefinition::canonical(
        "v",
        &["year", "month", "country"],
        &[
            AggSpec::sum("profit"),
            AggSpec::min("profit"),
            AggSpec::max("profit"),
        ],
    );
    let view = MaterializedView::materialize(def, &base).unwrap();
    base.append(&delta).unwrap();

    let mut group = c.benchmark_group("ablation_maintenance");
    group.bench_with_input(
        BenchmarkId::new("incremental", "2pct_delta"),
        &(&view, &delta),
        |b, (view, delta)| {
            b.iter(|| {
                let mut v = (*view).clone();
                let stats = v.refresh_incremental(delta).unwrap();
                black_box(stats.rows_scanned)
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("full", "rebuild"),
        &(&view, &base),
        |b, (view, base)| {
            b.iter(|| {
                let mut v = (*view).clone();
                let stats = v.refresh_full(base).unwrap();
                black_box(stats.rows_scanned)
            })
        },
    );
    group.finish();
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench_maintenance
}
criterion_main!(benches);
