//! Solver runtime scaling with the candidate count.
//!
//! The paper's knapsack DP is polynomial; exhaustive search is exponential.
//! This bench quantifies the gap that justifies the paper's solver choice.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mv_select::{fixtures, Scenario, SolverKind};
use mv_units::Money;

/// Short measurement windows keep `cargo bench --workspace` minutes,
/// not hours; absolute numbers matter less than the relative shapes.
fn fast_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(20)
}

fn bench_solvers_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("knapsack_scaling");
    for n in [6usize, 10, 14] {
        let problem = fixtures::random_problem(7, 5, n);
        let budget = problem.baseline().cost() + Money::from_cents(80);
        let scenario = Scenario::budget(budget);
        for solver in [
            SolverKind::PaperKnapsack,
            SolverKind::Greedy,
            SolverKind::BranchAndBound,
        ] {
            group.bench_with_input(
                BenchmarkId::new(solver.name(), n),
                &problem,
                |b, problem| {
                    b.iter(|| black_box(mv_select::solve(problem, scenario, solver).objective()))
                },
            );
        }
        // Exhaustive only at sizes where 2^n stays tractable in a bench.
        if n <= 10 {
            group.bench_with_input(BenchmarkId::new("exhaustive", n), &problem, |b, problem| {
                b.iter(|| {
                    black_box(
                        mv_select::solve(problem, scenario, SolverKind::Exhaustive).objective(),
                    )
                })
            });
        }
    }
    group.finish();
}

fn bench_budget_resolution(c: &mut Criterion) {
    // DP table size grows with the budget (capacity in cents).
    let problem = fixtures::random_problem(11, 5, 12);
    let mut group = c.benchmark_group("knapsack_budget_resolution");
    for extra_cents in [50i64, 500, 5_000] {
        let scenario = Scenario::budget(problem.baseline().cost() + Money::from_cents(extra_cents));
        group.bench_with_input(
            BenchmarkId::from_parameter(extra_cents),
            &problem,
            |b, problem| {
                b.iter(|| black_box(mv_select::solve_knapsack(problem, scenario).objective()))
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench_solvers_scaling, bench_budget_resolution
}
criterion_main!(benches);
