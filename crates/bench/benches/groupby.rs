//! Engine hash-aggregation throughput: rows × group-count sweep.
//!
//! The substrate's core operator; its scan-boundedness is the property the
//! simulated-time model relies on, so this bench doubles as a sanity check
//! that time grows linearly with rows and sub-linearly with groups.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mv_engine::{datagen, AggQuery, AggSpec, SalesConfig};

/// Short measurement windows keep `cargo bench --workspace` minutes,
/// not hours; absolute numbers matter less than the relative shapes.
fn fast_config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(20)
}

fn bench_groupby(c: &mut Criterion) {
    let mut group = c.benchmark_group("groupby");
    for rows in [10_000usize, 40_000] {
        let table = datagen::generate_sales(&SalesConfig::with_rows(rows));
        // Coarse (few groups) vs fine (many groups) keys.
        for (label, cols) in [
            ("year_country", &["year", "country"][..]),
            (
                "day_department",
                &["year", "month", "day", "country", "region", "department"][..],
            ),
        ] {
            let query = AggQuery::new("q", cols, vec![AggSpec::sum("profit")]);
            group.bench_with_input(BenchmarkId::new(label, rows), &table, |b, table| {
                b.iter(|| {
                    let (out, _) = query.execute(black_box(table)).unwrap();
                    black_box(out.num_rows())
                })
            });
        }
    }
    group.finish();
}

fn bench_aggregate_mix(c: &mut Criterion) {
    let table = datagen::generate_sales(&SalesConfig::with_rows(20_000));
    let all_aggs = AggQuery::new(
        "q",
        &["year", "country"],
        vec![
            AggSpec::sum("profit"),
            AggSpec::count(),
            AggSpec::min("profit"),
            AggSpec::max("profit"),
            AggSpec::avg("profit"),
        ],
    );
    c.bench_function("groupby/five_aggregates_20k", |b| {
        b.iter(|| {
            let (out, _) = all_aggs.execute(black_box(&table)).unwrap();
            black_box(out.num_rows())
        })
    });
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench_groupby, bench_aggregate_mix
}
criterion_main!(benches);
