//! Property-based invariants of the pricing substrate.

use mv_pricing::{presets, BillingRounding, StorageTimeline, Tier, TierMode, TierSchedule};
use mv_units::{Gb, Hours, Money, Months};
use proptest::prelude::*;

/// Strategy producing a valid random tier schedule: 1–5 brackets with
/// strictly increasing thresholds and non-negative rates.
fn arb_schedule() -> impl Strategy<Value = TierSchedule> {
    (
        proptest::collection::vec((1.0f64..1e6, 0i64..50_000), 0..4),
        0i64..50_000,
        prop::bool::ANY,
    )
        .prop_map(|(bounded, last_rate_cents, graduated)| {
            let mut tiers = Vec::new();
            let mut threshold = 0.0;
            for (width, rate_cents) in bounded {
                threshold += width;
                tiers.push(Tier::upto_gb(threshold, Money::from_cents(rate_cents)));
            }
            tiers.push(Tier::rest(Money::from_cents(last_rate_cents)));
            let mode = if graduated {
                TierMode::Graduated
            } else {
                TierMode::FlatByVolume
            };
            TierSchedule::new(tiers, mode).expect("constructed schedule is valid")
        })
}

proptest! {
    /// Total cost is non-negative for any volume.
    #[test]
    fn tier_cost_non_negative(schedule in arb_schedule(), vol in 0.0f64..1e7) {
        prop_assert!(schedule.cost_for(Gb::new(vol)) >= Money::ZERO);
    }

    /// Graduated cost is monotone non-decreasing in volume. (Flat-by-volume
    /// can legitimately *decrease* at a bracket edge when the next rate is
    /// lower — that is the paper's "earned rate" — so monotonicity is only
    /// asserted for graduated mode.)
    #[test]
    fn graduated_cost_monotone(schedule in arb_schedule(), a in 0.0f64..1e6, b in 0.0f64..1e6) {
        let schedule = schedule.with_mode(TierMode::Graduated);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(schedule.cost_for(Gb::new(lo)) <= schedule.cost_for(Gb::new(hi)));
    }

    /// Graduated total never exceeds (max rate × volume) and never falls
    /// below (min rate × volume).
    #[test]
    fn graduated_cost_bounded_by_extreme_rates(
        schedule in arb_schedule(),
        vol in 0.0f64..1e6,
    ) {
        let schedule = schedule.with_mode(TierMode::Graduated);
        let rates: Vec<Money> = schedule.tiers().iter().map(|t| t.rate).collect();
        let max = rates.iter().copied().fold(Money::ZERO, Money::max);
        let min = rates.iter().copied().fold(max, Money::min);
        let cost = schedule.cost_for(Gb::new(vol));
        // Allow one micro-dollar of rounding slack per bracket.
        let slack = Money::from_micros(rates.len() as i128);
        prop_assert!(cost <= max.scale(vol) + slack);
        prop_assert!(cost + slack >= min.scale(vol));
    }

    /// Flat-by-volume equals (bracket rate × volume) exactly.
    #[test]
    fn flat_by_volume_is_rate_times_volume(schedule in arb_schedule(), vol in 0.001f64..1e6) {
        let schedule = schedule.with_mode(TierMode::FlatByVolume);
        let rate = schedule.marginal_rate(Gb::new(vol));
        prop_assert_eq!(schedule.cost_for(Gb::new(vol)), rate.scale(vol));
    }

    /// volume_for_budget is consistent: the returned volume is affordable
    /// under graduated pricing.
    #[test]
    fn volume_for_budget_affordable(
        schedule in arb_schedule(),
        budget_cents in 0i64..10_000_000,
    ) {
        let schedule = schedule.with_mode(TierMode::Graduated);
        let budget = Money::from_cents(budget_cents);
        let vol = schedule.volume_for_budget(budget, 0.001);
        prop_assert!(schedule.cost_for(vol) <= budget + Money::from_cents(1));
    }

    /// Rounding rules never reduce billable time, and per-started-hour is
    /// within one hour of exact.
    #[test]
    fn rounding_never_shrinks(t in 0.0f64..10_000.0) {
        let t = Hours::new(t);
        for rule in [
            BillingRounding::PerStartedHour,
            BillingRounding::PerStartedMinute,
            BillingRounding::PerSecondMin60,
            BillingRounding::Exact,
        ] {
            prop_assert!(rule.apply(t).value() >= t.value());
        }
        prop_assert!(BillingRounding::PerStartedHour.apply(t).value() <= t.value() + 1.0);
    }

    /// A storage timeline's intervals exactly tile [0, horizon].
    #[test]
    fn storage_intervals_tile_horizon(
        initial in 0.0f64..1e5,
        events in proptest::collection::vec((0.0f64..24.0, 0.0f64..1e4), 0..6),
        horizon in 1.0f64..24.0,
    ) {
        let mut tl = StorageTimeline::new(Gb::new(initial), Months::new(horizon));
        let mut sorted = events;
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        for (at, add) in sorted {
            tl.insert(Months::new(at), Gb::new(add)).unwrap();
        }
        let ivs = tl.intervals();
        prop_assert!(!ivs.is_empty());
        prop_assert_eq!(ivs[0].start.value(), 0.0);
        prop_assert_eq!(ivs.last().unwrap().end.value(), horizon);
        for w in ivs.windows(2) {
            prop_assert_eq!(w[0].end.value(), w[1].start.value());
        }
    }

    /// Under any preset, invoicing is additive in compute time: billing
    /// t1 + t2 as one entry costs no more than two separate entries
    /// (rounding the total once never exceeds rounding twice).
    #[test]
    fn total_rounding_never_worse(t1 in 0.0f64..100.0, t2 in 0.0f64..100.0) {
        let aws = presets::aws_2012();
        let small = aws.compute.instance("small").unwrap();
        let joint = aws.compute.cost(Hours::new(t1 + t2), small, 1);
        let split = aws.compute.cost(Hours::new(t1), small, 1)
            + aws.compute.cost(Hours::new(t2), small, 1);
        prop_assert!(joint <= split);
    }
}
