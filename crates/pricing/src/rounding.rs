//! Billing-time rounding rules.
//!
//! The paper's Example 2 rounds total processing time *up* to whole hours
//! ("every started hour is charged"). Real invoices differ in two ways that
//! matter to an optimizer: the granularity (hour / minute / second) and the
//! scope (is each job rounded separately, or the instance's total on-time?).
//! Both knobs are modelled so the ablation bench `A5` can quantify their
//! effect on selection decisions.

use mv_units::Hours;
use serde::{Deserialize, Serialize};

/// Granularity to which billable time is rounded up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BillingRounding {
    /// Every started hour is charged (the paper's rule).
    PerStartedHour,
    /// Every started minute is charged.
    PerStartedMinute,
    /// Per-second billing with a minimum charge of one minute
    /// (the common post-2017 cloud rule, included for the ablation).
    PerSecondMin60,
    /// No rounding: bill exact fractional hours.
    Exact,
}

impl BillingRounding {
    /// Applies the rule to a duration.
    pub fn apply(self, t: Hours) -> Hours {
        match self {
            BillingRounding::PerStartedHour => t.round_up_whole(),
            BillingRounding::PerStartedMinute => Hours::from_minutes((t.value() * 60.0).ceil()),
            BillingRounding::PerSecondMin60 => {
                if t == Hours::ZERO {
                    Hours::ZERO
                } else {
                    Hours::from_secs(t.as_secs().ceil().max(60.0))
                }
            }
            BillingRounding::Exact => t,
        }
    }
}

/// Whether rounding applies to each charged item or once to the total.
///
/// The paper rounds the *total* workload time (Example 2 rounds 50 h once,
/// not each of the ten queries). Per-item rounding penalises many short
/// jobs, which changes the materialization-cost trade-off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoundingScope {
    /// Round the sum of all durations once (the paper's convention).
    Total,
    /// Round each duration separately before summing.
    PerItem,
}

impl RoundingScope {
    /// Total billable duration of `items` under `rounding` and this scope.
    pub fn billable(self, rounding: BillingRounding, items: &[Hours]) -> Hours {
        match self {
            RoundingScope::Total => rounding.apply(items.iter().copied().sum()),
            RoundingScope::PerItem => items.iter().map(|t| rounding.apply(*t)).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_started_hour_is_paper_rule() {
        assert_eq!(
            BillingRounding::PerStartedHour
                .apply(Hours::new(50.0))
                .value(),
            50.0
        );
        assert_eq!(
            BillingRounding::PerStartedHour
                .apply(Hours::new(40.2))
                .value(),
            41.0
        );
    }

    #[test]
    fn per_minute_and_per_second() {
        assert_eq!(
            BillingRounding::PerStartedMinute
                .apply(Hours::from_minutes(12.4))
                .value(),
            Hours::from_minutes(13.0).value()
        );
        // 45 s rounds up to the 60 s minimum.
        assert_eq!(
            BillingRounding::PerSecondMin60.apply(Hours::from_secs(45.0)),
            Hours::from_secs(60.0)
        );
        // 61.2 s rounds to 62 s.
        assert_eq!(
            BillingRounding::PerSecondMin60.apply(Hours::from_secs(61.2)),
            Hours::from_secs(62.0)
        );
        // Zero stays zero (no minimum charge for no usage).
        assert_eq!(
            BillingRounding::PerSecondMin60.apply(Hours::ZERO),
            Hours::ZERO
        );
    }

    #[test]
    fn exact_is_identity() {
        let t = Hours::new(1.2345);
        assert_eq!(BillingRounding::Exact.apply(t), t);
    }

    #[test]
    fn scope_total_vs_per_item() {
        let items = [Hours::new(0.2); 10]; // ten 12-minute queries
                                           // Total: 2.0 h exactly, no rounding needed.
        assert_eq!(
            RoundingScope::Total
                .billable(BillingRounding::PerStartedHour, &items)
                .value(),
            2.0
        );
        // Per item: each 0.2 h query bills a full hour.
        assert_eq!(
            RoundingScope::PerItem
                .billable(BillingRounding::PerStartedHour, &items)
                .value(),
            10.0
        );
    }

    #[test]
    fn scope_on_empty_is_zero() {
        assert_eq!(
            RoundingScope::Total.billable(BillingRounding::PerStartedHour, &[]),
            Hours::ZERO
        );
        assert_eq!(
            RoundingScope::PerItem.billable(BillingRounding::PerStartedHour, &[]),
            Hours::ZERO
        );
    }
}
