//! Provider pricing presets.
//!
//! [`aws_2012`] encodes the paper's Tables 2–4 exactly. [`intro_fictitious`]
//! encodes the simpler pricing used by the paper's introduction ($0.10 per
//! GB-month, $0.24 per hour). The remaining presets are fictional providers
//! with deliberately different shapes — cheaper storage / dearer compute and
//! vice versa — used by the multi-CSP comparison (the paper's first
//! future-work item).

use mv_units::{Money, GB_PER_TB};

use crate::{
    ComputePricing, InstanceCatalog, InstanceType, PricingPolicy, StoragePricing, Tier, TierMode,
    TierSchedule, TransferPricing,
};

fn dollars(s: &str) -> Money {
    Money::from_dollars_str(s).expect("preset literal")
}

/// The paper's AWS pricing (Tables 2–4, early 2012).
///
/// * Table 2 — EC2: micro $0.03/h, small $0.12/h, large $0.48/h,
///   extra-large $0.96/h; per-started-hour billing on the total.
/// * Table 3 — bandwidth: inbound free; outbound first 1 GB free, up to
///   10 TB $0.12/GB, next 40 TB $0.09/GB, next 100 TB $0.07/GB, beyond
///   $0.05/GB; graduated (the paper's Example 1 computes `(10−1)×0.12`).
/// * Table 4 — S3: first 1 TB $0.14/GB-month, next 49 TB $0.125, next
///   450 TB $0.11, beyond $0.095; flat-by-volume (the paper's Example 3
///   charges all 2 560 GB at $0.125).
pub fn aws_2012() -> PricingPolicy {
    let catalog = InstanceCatalog::new(vec![
        InstanceType::new("micro", 0.613, 0.25, 0.0, dollars("0.03")),
        InstanceType::new("small", 1.7, 1.0, 160.0, dollars("0.12")),
        InstanceType::new("large", 7.5, 4.0, 850.0, dollars("0.48")),
        InstanceType::new("xlarge", 15.0, 8.0, 1690.0, dollars("0.96")),
    ])
    .expect("aws catalog is valid");

    let outbound = TierSchedule::new(
        vec![
            Tier::upto_gb(1.0, Money::ZERO),
            Tier::upto_gb(10.0 * GB_PER_TB, dollars("0.12")),
            Tier::upto_gb(50.0 * GB_PER_TB, dollars("0.09")),
            Tier::upto_gb(150.0 * GB_PER_TB, dollars("0.07")),
            Tier::rest(dollars("0.05")),
        ],
        TierMode::Graduated,
    )
    .expect("aws outbound schedule is valid");

    let storage = TierSchedule::new(
        vec![
            Tier::upto_gb(GB_PER_TB, dollars("0.14")),
            Tier::upto_gb(50.0 * GB_PER_TB, dollars("0.125")),
            Tier::upto_gb(500.0 * GB_PER_TB, dollars("0.11")),
            Tier::rest(dollars("0.095")),
        ],
        TierMode::FlatByVolume,
    )
    .expect("aws storage schedule is valid");

    PricingPolicy::new(
        "aws-2012",
        ComputePricing::paper_rules(catalog),
        TransferPricing::free_inbound(outbound),
        StoragePricing::new(storage),
    )
}

/// The simplified pricing of the paper's introduction: one instance type at
/// $0.24/h and flat $0.10/GB-month storage, free transfer. Reproduces the
/// "$62 without views vs $64.60 with views" opening example.
pub fn intro_fictitious() -> PricingPolicy {
    let catalog = InstanceCatalog::new(vec![InstanceType::new(
        "std",
        4.0,
        2.0,
        100.0,
        dollars("0.24"),
    )])
    .expect("intro catalog is valid");

    PricingPolicy::new(
        "intro-fictitious",
        ComputePricing::paper_rules(catalog),
        TransferPricing::free_inbound(TierSchedule::free()),
        StoragePricing::new(TierSchedule::flat(dollars("0.10"))),
    )
}

/// Fictional provider "Cumulus": compute ~35 % cheaper than AWS-2012 but
/// storage ~50 % dearer, graduated everywhere, per-minute billing. Makes
/// view materialization *more* attractive on the compute side and less on
/// the storage side — a useful stress direction for the selector.
pub fn cumulus() -> PricingPolicy {
    let catalog = InstanceCatalog::new(vec![
        InstanceType::new("c.nano", 0.5, 0.25, 0.0, dollars("0.02")),
        InstanceType::new("c.std", 2.0, 1.0, 120.0, dollars("0.078")),
        InstanceType::new("c.big", 8.0, 4.0, 700.0, dollars("0.312")),
    ])
    .expect("cumulus catalog is valid");

    let mut compute = ComputePricing::paper_rules(catalog);
    compute.rounding = crate::BillingRounding::PerStartedMinute;

    let outbound = TierSchedule::new(
        vec![
            Tier::upto_gb(5.0, Money::ZERO),
            Tier::upto_gb(20.0 * GB_PER_TB, dollars("0.10")),
            Tier::rest(dollars("0.06")),
        ],
        TierMode::Graduated,
    )
    .expect("cumulus outbound schedule is valid");

    let storage = TierSchedule::new(
        vec![
            Tier::upto_gb(GB_PER_TB, dollars("0.21")),
            Tier::upto_gb(100.0 * GB_PER_TB, dollars("0.19")),
            Tier::rest(dollars("0.16")),
        ],
        TierMode::Graduated,
    )
    .expect("cumulus storage schedule is valid");

    PricingPolicy::new(
        "cumulus",
        compute,
        TransferPricing::free_inbound(outbound),
        StoragePricing::new(storage),
    )
}

/// Fictional provider "Stratus": very cheap storage, expensive compute and
/// egress. Tilts the optimum toward materializing aggressively (storage is
/// nearly free) while punishing large result transfers.
pub fn stratus() -> PricingPolicy {
    let catalog = InstanceCatalog::new(vec![
        InstanceType::new("s1", 1.0, 0.5, 40.0, dollars("0.11")),
        InstanceType::new("s2", 4.0, 2.0, 160.0, dollars("0.44")),
        InstanceType::new("s4", 16.0, 8.0, 640.0, dollars("1.76")),
    ])
    .expect("stratus catalog is valid");

    let outbound = TierSchedule::new(
        vec![Tier::upto_gb(1.0, Money::ZERO), Tier::rest(dollars("0.19"))],
        TierMode::Graduated,
    )
    .expect("stratus outbound schedule is valid");

    let storage = TierSchedule::new(
        vec![
            Tier::upto_gb(10.0 * GB_PER_TB, dollars("0.04")),
            Tier::rest(dollars("0.03")),
        ],
        TierMode::FlatByVolume,
    )
    .expect("stratus storage schedule is valid");

    PricingPolicy::new(
        "stratus",
        ComputePricing::paper_rules(catalog),
        TransferPricing::free_inbound(outbound),
        StoragePricing::new(storage),
    )
}

/// A deliberately boring single-rate provider: $0.10/h compute, $0.10/GB
/// egress, $0.10/GB-month storage, exact (unrounded) billing. Useful as a
/// neutral baseline in tests because every cost is linear.
pub fn flat_rate() -> PricingPolicy {
    let catalog = InstanceCatalog::new(vec![InstanceType::new(
        "node",
        4.0,
        1.0,
        100.0,
        dollars("0.10"),
    )])
    .expect("flat catalog is valid");

    let mut compute = ComputePricing::paper_rules(catalog);
    compute.rounding = crate::BillingRounding::Exact;

    PricingPolicy::new(
        "flat-rate",
        compute,
        TransferPricing::free_inbound(TierSchedule::flat(dollars("0.10"))),
        StoragePricing::new(TierSchedule::flat(dollars("0.10"))),
    )
}

/// All presets, for iteration in comparison examples and tests.
pub fn all() -> Vec<PricingPolicy> {
    vec![
        aws_2012(),
        intro_fictitious(),
        cumulus(),
        stratus(),
        flat_rate(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_units::{Gb, Hours, Months};

    #[test]
    fn table2_ec2_prices() {
        let aws = aws_2012();
        let prices: Vec<(String, Money)> = aws
            .compute
            .catalog
            .all()
            .iter()
            .map(|i| (i.name.clone(), i.hourly))
            .collect();
        assert_eq!(
            prices,
            vec![
                ("micro".to_string(), dollars("0.03")),
                ("small".to_string(), dollars("0.12")),
                ("large".to_string(), dollars("0.48")),
                ("xlarge".to_string(), dollars("0.96")),
            ]
        );
    }

    #[test]
    fn table3_bandwidth_examples() {
        let aws = aws_2012();
        assert_eq!(aws.transfer.outbound_cost(Gb::new(1.0)), Money::ZERO);
        assert_eq!(aws.transfer.outbound_cost(Gb::new(10.0)), dollars("1.08"));
        assert!(aws.transfer.inbound_is_free());
    }

    #[test]
    fn table4_storage_examples() {
        let aws = aws_2012();
        // 500 GB in the first bracket at $0.14 = $70/month (Section 2.2).
        assert_eq!(
            aws.storage.monthly_cost(Gb::new(500.0)),
            Money::from_dollars(70)
        );
        // 550 GB (with views) = $77/month.
        assert_eq!(
            aws.storage.monthly_cost(Gb::new(550.0)),
            Money::from_dollars(77)
        );
    }

    #[test]
    fn intro_example_costs() {
        let intro = intro_fictitious();
        let std = intro.compute.instance("std").unwrap();
        // $50 storage + $12 compute = $62 without views.
        let storage = intro.storage.cost(Gb::new(500.0), Months::new(1.0));
        let compute = intro.compute.cost(Hours::new(50.0), std, 1);
        assert_eq!(storage + compute, Money::from_dollars(62));
        // $55 + $9.6 = $64.60 with views.
        let storage_v = intro.storage.cost(Gb::new(550.0), Months::new(1.0));
        let compute_v = intro.compute.cost(Hours::new(40.0), std, 1);
        assert_eq!(
            storage_v + compute_v,
            Money::from_dollars_str("64.6").unwrap()
        );
    }

    #[test]
    fn all_presets_are_wellformed() {
        for p in all() {
            assert!(!p.compute.catalog.all().is_empty(), "{}", p.name);
            // Pricing must be monotone: bigger transfers never cost less.
            let c1 = p.transfer.outbound_cost(Gb::new(10.0));
            let c2 = p.transfer.outbound_cost(Gb::new(100.0));
            assert!(c2 >= c1, "{}: outbound pricing not monotone", p.name);
            let s1 = p.storage.monthly_cost(Gb::new(10.0));
            let s2 = p.storage.monthly_cost(Gb::new(100.0));
            assert!(s2 >= s1, "{}: storage pricing not monotone", p.name);
        }
    }

    #[test]
    fn presets_have_distinct_names() {
        let names: Vec<String> = all().into_iter().map(|p| p.name).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
    }
}
