//! Cloud pricing substrate.
//!
//! The paper charges three things (its Section 2.2, Tables 2–4): compute
//! instance-hours, data stored per month, and data transferred out. This
//! crate models each as a first-class pricing component and groups them into
//! a [`PricingPolicy`] — the object every cost formula takes as input.
//!
//! The concrete numbers from the paper's AWS tables live in
//! [`presets::aws_2012`]; three further fictional providers exercise the
//! paper's "include pricing models from several CSPs" future-work item.
//!
//! # Module map
//!
//! * [`tier`](TierSchedule) — volume-tiered rate schedules (Tables 3–4's
//!   shape), graduated or flat-by-volume, with [`TierSchedule::scale_rates`]
//!   as the price-drift hook;
//! * [`instance`](ComputePricing) — the instance catalog, billing rounding
//!   rules and Formula 4 compute charges;
//! * [`storage`](StoragePricing) — interval-based storage timelines and
//!   Formula 5;
//! * [`transfer`](TransferPricing) — inbound/outbound bandwidth (Formulas
//!   2–3);
//! * [`rounding`](BillingRounding) — per-started-hour/minute/second
//!   billable-time rules and their scope;
//! * [`billing`](UsageLedger) — the provider-side usage ledger and invoice
//!   reconciliation;
//! * [`commitment`](CommitmentPlan) — reserved-capacity plans and the
//!   on-demand comparison;
//! * [`fleet`](FleetPlan) — mixed reserved+spot fleets: per-pool rate
//!   terms, the per-view [`Placement`] dimension, and the pinned
//!   pure-fleet degenerate plans the conformance tests lean on;
//! * [`presets`] — concrete providers (the paper's AWS-2012 plus fictional
//!   CSPs).
//!
//! Every priced component also exposes a `scale_rates(factor)` hook
//! ([`PricingPolicy::scale_rates`] composes them) so `mv-market` can compile
//! per-epoch pricing models — spot swings, announced cuts, storage decay —
//! without rebuilding policies by hand; a factor of exactly `1.0` is a
//! bit-identical clone by construction.
//!
//! ```
//! use mv_pricing::presets;
//! use mv_units::{Gb, Hours};
//!
//! let aws = presets::aws_2012();
//!
//! // Example 1 of the paper: a 10 GB query result, first GB free,
//! // remainder at $0.12/GB => $1.08.
//! let ct = aws.transfer.outbound_cost(Gb::new(10.0));
//! assert_eq!(ct.to_string(), "$1.08");
//!
//! // Example 2: 50 h on two "small" instances at $0.12/h => $12.00.
//! let small = aws.compute.instance("small").unwrap();
//! let cc = aws.compute.cost(Hours::new(50.0), small, 2);
//! assert_eq!(cc.to_string(), "$12.00");
//! ```

mod billing;
mod commitment;
mod error;
mod fleet;
mod instance;
pub mod presets;
mod rounding;
mod storage;
mod tier;
mod transfer;

pub use billing::{
    running_example_intro_ledger, Invoice, InvoiceLine, LineItem, UsageKind, UsageLedger,
};
pub use commitment::{CommitmentComparison, CommitmentPlan};
pub use error::PricingError;
pub use fleet::{FleetPlan, Placement, PoolTerms};
pub use instance::{ComputePricing, InstanceCatalog, InstanceType};
pub use rounding::{BillingRounding, RoundingScope};
pub use storage::{StorageInterval, StoragePricing, StorageTimeline};
pub use tier::{Tier, TierMode, TierSchedule};
pub use transfer::TransferPricing;

use serde::{Deserialize, Serialize};

/// A complete provider pricing policy: the three billed components plus a
/// display name.
///
/// This is the "CSP pricing model" parameter of every formula in the paper's
/// Sections 3–4.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PricingPolicy {
    /// Human-readable provider name (e.g. `"aws-2012"`).
    pub name: String,
    /// Instance-hour pricing (paper Table 2).
    pub compute: ComputePricing,
    /// Bandwidth pricing (paper Table 3).
    pub transfer: TransferPricing,
    /// Storage pricing (paper Table 4).
    pub storage: StoragePricing,
}

impl PricingPolicy {
    /// Convenience constructor.
    pub fn new(
        name: impl Into<String>,
        compute: ComputePricing,
        transfer: TransferPricing,
        storage: StoragePricing,
    ) -> Self {
        PricingPolicy {
            name: name.into(),
            compute,
            transfer,
            storage,
        }
    }

    /// Returns a copy of this policy with each billed component's rates
    /// multiplied by its own factor — the per-epoch re-pricing hook
    /// `mv-market` compiles price trajectories through. Factors of
    /// exactly `1.0` leave the component bit-identical (each component's
    /// `scale_rates` clones on the identity), so a constant-price market
    /// epoch reproduces the base policy exactly.
    pub fn scale_rates(&self, compute: f64, storage: f64, transfer: f64) -> PricingPolicy {
        PricingPolicy {
            name: self.name.clone(),
            compute: self.compute.scale_rates(compute),
            transfer: self.transfer.scale_rates(transfer),
            storage: self.storage.scale_rates(storage),
        }
    }
}
