//! Compute-instance configurations and hourly pricing (paper Table 2).

use mv_units::{Gb, Hours, Money};
use serde::{Deserialize, Serialize};

use crate::{BillingRounding, PricingError, RoundingScope};

/// One rentable instance configuration ("micro", "small", …).
///
/// The resource columns mirror the paper's description of an EC2 small
/// instance ("1.7 GB RAM, 1 EC2 Compute Unit, 160 GB of local storage");
/// the selection algorithms only consume [`InstanceType::hourly`] and
/// `compute_units`, but the full shape is kept so the engine's throughput
/// model can scale with the rented hardware.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceType {
    /// Configuration name, unique within a catalog.
    pub name: String,
    /// Main memory.
    pub ram: Gb,
    /// Relative CPU capacity (1.0 = one EC2 Compute Unit).
    pub compute_units: f64,
    /// Ephemeral local disk.
    pub local_storage: Gb,
    /// Rental price per (rounded) hour: the paper's `c(IC)`.
    pub hourly: Money,
}

impl InstanceType {
    /// Convenience constructor.
    pub fn new(
        name: impl Into<String>,
        ram_gb: f64,
        compute_units: f64,
        local_storage_gb: f64,
        hourly: Money,
    ) -> Self {
        InstanceType {
            name: name.into(),
            ram: Gb::new(ram_gb),
            compute_units,
            local_storage: Gb::new(local_storage_gb),
            hourly,
        }
    }
}

/// An ordered collection of instance types, looked up by name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceCatalog {
    instances: Vec<InstanceType>,
}

impl InstanceCatalog {
    /// Builds a catalog, rejecting duplicate names.
    pub fn new(instances: Vec<InstanceType>) -> Result<Self, PricingError> {
        for (i, a) in instances.iter().enumerate() {
            for b in &instances[i + 1..] {
                if a.name == b.name {
                    return Err(PricingError::DuplicateInstance {
                        name: a.name.clone(),
                    });
                }
            }
        }
        Ok(InstanceCatalog { instances })
    }

    /// Looks up a configuration by name.
    pub fn get(&self, name: &str) -> Result<&InstanceType, PricingError> {
        self.instances
            .iter()
            .find(|i| i.name == name)
            .ok_or_else(|| PricingError::UnknownInstance {
                name: name.to_string(),
            })
    }

    /// All configurations, in catalog order (cheapest-first by convention).
    pub fn all(&self) -> &[InstanceType] {
        &self.instances
    }

    /// The cheapest configuration whose compute capacity is at least
    /// `min_units` — a simple right-sizing helper for the elasticity
    /// example.
    pub fn cheapest_with_units(&self, min_units: f64) -> Option<&InstanceType> {
        self.instances
            .iter()
            .filter(|i| i.compute_units >= min_units)
            .min_by(|a, b| a.hourly.cmp(&b.hourly))
    }
}

/// Compute pricing: a catalog plus the billing rounding rules.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComputePricing {
    /// Available instance configurations (paper Table 2).
    pub catalog: InstanceCatalog,
    /// Granularity of billable-time rounding.
    pub rounding: BillingRounding,
    /// Whether rounding applies per job or to the total.
    pub scope: RoundingScope,
}

impl ComputePricing {
    /// Compute pricing with the paper's rules: round the total up to whole
    /// hours.
    pub fn paper_rules(catalog: InstanceCatalog) -> Self {
        ComputePricing {
            catalog,
            rounding: BillingRounding::PerStartedHour,
            scope: RoundingScope::Total,
        }
    }

    /// Looks up an instance configuration.
    pub fn instance(&self, name: &str) -> Result<&InstanceType, PricingError> {
        self.catalog.get(name)
    }

    /// Cost of running `count` instances of type `instance` for `time`
    /// (already-aggregated total time; the paper's Formula 4 with identical
    /// instances): `RoundUp(t) × c(IC) × nbIC`.
    pub fn cost(&self, time: Hours, instance: &InstanceType, count: u32) -> Money {
        let billable = self.rounding.apply(time);
        instance.hourly.scale(billable.value()) * count
    }

    /// Cost of a set of individually-timed jobs, honouring the configured
    /// [`RoundingScope`].
    pub fn cost_of_jobs(&self, jobs: &[Hours], instance: &InstanceType, count: u32) -> Money {
        let billable = self.scope.billable(self.rounding, jobs);
        instance.hourly.scale(billable.value()) * count
    }

    /// Returns a copy with every instance's hourly rate multiplied by
    /// `factor` (names, capacities, rounding rules unchanged) — the
    /// price-drift hook used by `mv-market` to model spot swings and
    /// announced price cuts. A factor of exactly `1.0` returns a
    /// bit-identical clone.
    pub fn scale_rates(&self, factor: f64) -> ComputePricing {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "rate factor must be finite and non-negative, got {factor}"
        );
        if factor == 1.0 {
            return self.clone();
        }
        ComputePricing {
            catalog: InstanceCatalog {
                instances: self
                    .catalog
                    .instances
                    .iter()
                    .map(|i| InstanceType {
                        hourly: i.hourly.scale(factor),
                        ..i.clone()
                    })
                    .collect(),
            },
            rounding: self.rounding,
            scope: self.scope,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> InstanceCatalog {
        InstanceCatalog::new(vec![
            InstanceType::new(
                "micro",
                0.6,
                0.25,
                0.0,
                Money::from_dollars_str("0.03").unwrap(),
            ),
            InstanceType::new(
                "small",
                1.7,
                1.0,
                160.0,
                Money::from_dollars_str("0.12").unwrap(),
            ),
            InstanceType::new(
                "large",
                7.5,
                4.0,
                850.0,
                Money::from_dollars_str("0.48").unwrap(),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn example2_two_small_instances() {
        let pricing = ComputePricing::paper_rules(catalog());
        let small = pricing.instance("small").unwrap();
        assert_eq!(
            pricing.cost(Hours::new(50.0), small, 2),
            Money::from_dollars(12)
        );
        // 40 h with views: $9.60.
        assert_eq!(
            pricing.cost(Hours::new(40.0), small, 2),
            Money::from_dollars_str("9.6").unwrap()
        );
    }

    #[test]
    fn fractional_hours_round_up() {
        let pricing = ComputePricing::paper_rules(catalog());
        let small = pricing.instance("small").unwrap();
        // 40.2 h bills as 41 h.
        assert_eq!(
            pricing.cost(Hours::new(40.2), small, 1),
            Money::from_dollars_str("4.92").unwrap()
        );
    }

    #[test]
    fn unknown_instance_is_an_error() {
        let pricing = ComputePricing::paper_rules(catalog());
        assert!(matches!(
            pricing.instance("xxl"),
            Err(PricingError::UnknownInstance { .. })
        ));
    }

    #[test]
    fn duplicate_names_rejected() {
        let dup = InstanceCatalog::new(vec![
            InstanceType::new("small", 1.7, 1.0, 160.0, Money::ZERO),
            InstanceType::new("small", 3.4, 2.0, 320.0, Money::ZERO),
        ]);
        assert!(matches!(dup, Err(PricingError::DuplicateInstance { .. })));
    }

    #[test]
    fn cheapest_with_units_right_sizes() {
        let c = catalog();
        assert_eq!(c.cheapest_with_units(0.5).unwrap().name, "small");
        assert_eq!(c.cheapest_with_units(2.0).unwrap().name, "large");
        assert!(c.cheapest_with_units(100.0).is_none());
    }

    #[test]
    fn job_scope_changes_bill() {
        let mut pricing = ComputePricing::paper_rules(catalog());
        let jobs = [Hours::new(0.2); 10];
        let small = pricing.instance("small").unwrap().clone();
        assert_eq!(
            pricing.cost_of_jobs(&jobs, &small, 1),
            Money::from_dollars_str("0.24").unwrap() // ceil(2.0 h) = 2 h
        );
        pricing.scope = RoundingScope::PerItem;
        assert_eq!(
            pricing.cost_of_jobs(&jobs, &small, 1),
            Money::from_dollars_str("1.2").unwrap() // 10 × 1 h
        );
    }
}
