//! Volume-tiered rate schedules.
//!
//! Both the bandwidth table (Table 3) and the storage table (Table 4) of the
//! paper are *tier schedules*: a sequence of volume brackets, each with a
//! $/GB rate, "with an earned rate when volume increases". The paper's own
//! arithmetic applies them in two different ways, so the mode is explicit:
//!
//! * [`TierMode::Graduated`] — each bracket's rate applies only to the bytes
//!   that fall inside it (marginal pricing). The paper's Example 1 computes
//!   `(10 − 1) × 0.12`: the first free gigabyte is carved out, the remainder
//!   is billed at tier 2's rate.
//! * [`TierMode::FlatByVolume`] — the bracket the *total* volume lands in
//!   prices every gigabyte. The paper's Example 3 charges all
//!   `512 + 2048 = 2560` GB at tier 2's `$0.125` once the total crosses
//!   1 TB.

use mv_units::{Gb, Money};
use serde::{Deserialize, Serialize};

use crate::PricingError;

/// How a schedule's brackets combine into a total price.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TierMode {
    /// Marginal pricing: each bracket bills only its own bytes.
    Graduated,
    /// The bracket containing the total volume prices all bytes.
    FlatByVolume,
}

/// One bracket of a schedule: volumes up to `upto` (exclusive upper bound,
/// `None` = unbounded) cost `rate` dollars per GB.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tier {
    /// Exclusive upper volume bound of this bracket; `None` for the last tier.
    pub upto: Option<Gb>,
    /// Price per gigabyte inside this bracket.
    pub rate: Money,
}

impl Tier {
    /// Bracket covering volumes up to `upto_gb` gigabytes.
    pub fn upto_gb(upto_gb: f64, rate: Money) -> Self {
        Tier {
            upto: Some(Gb::new(upto_gb)),
            rate,
        }
    }

    /// Final, unbounded bracket.
    pub fn rest(rate: Money) -> Self {
        Tier { upto: None, rate }
    }
}

/// A validated sequence of brackets plus the combination mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TierSchedule {
    tiers: Vec<Tier>,
    mode: TierMode,
}

impl TierSchedule {
    /// Builds a schedule, validating that thresholds strictly increase, that
    /// only the final tier is unbounded, and that no rate is negative.
    pub fn new(tiers: Vec<Tier>, mode: TierMode) -> Result<Self, PricingError> {
        if tiers.is_empty() {
            return Err(PricingError::EmptySchedule);
        }
        let mut prev = Gb::ZERO;
        let last = tiers.len() - 1;
        for (i, tier) in tiers.iter().enumerate() {
            if tier.rate.is_negative() {
                return Err(PricingError::NegativeRate { index: i });
            }
            match tier.upto {
                Some(upto) => {
                    if i == last {
                        return Err(PricingError::BoundedFinalTier);
                    }
                    if upto.value() <= prev.value() {
                        return Err(PricingError::NonMonotonicTiers { index: i });
                    }
                    prev = upto;
                }
                None => {
                    if i != last {
                        return Err(PricingError::UnboundedInnerTier { index: i });
                    }
                }
            }
        }
        Ok(TierSchedule { tiers, mode })
    }

    /// A single-rate schedule: every gigabyte costs `rate`.
    pub fn flat(rate: Money) -> Self {
        TierSchedule {
            tiers: vec![Tier::rest(rate)],
            mode: TierMode::Graduated,
        }
    }

    /// A schedule that charges nothing (the paper's inbound transfer).
    pub fn free() -> Self {
        TierSchedule::flat(Money::ZERO)
    }

    /// The combination mode.
    pub fn mode(&self) -> TierMode {
        self.mode
    }

    /// Returns a copy of this schedule with a different [`TierMode`]
    /// (used by the tier-mode ablation bench).
    pub fn with_mode(&self, mode: TierMode) -> Self {
        TierSchedule {
            tiers: self.tiers.clone(),
            mode,
        }
    }

    /// The brackets.
    pub fn tiers(&self) -> &[Tier] {
        &self.tiers
    }

    /// Returns a copy of this schedule with every bracket's rate
    /// multiplied by `factor` (volume thresholds unchanged) — the
    /// price-drift hook used by `mv-market` to compile per-epoch pricing
    /// models. A factor of exactly `1.0` returns a bit-identical clone,
    /// so a zero-volatility market reproduces the base schedule exactly.
    pub fn scale_rates(&self, factor: f64) -> TierSchedule {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "rate factor must be finite and non-negative, got {factor}"
        );
        if factor == 1.0 {
            return self.clone();
        }
        TierSchedule {
            tiers: self
                .tiers
                .iter()
                .map(|t| Tier {
                    upto: t.upto,
                    rate: t.rate.scale(factor),
                })
                .collect(),
            mode: self.mode,
        }
    }

    /// Total price of `volume` gigabytes under this schedule.
    pub fn cost_for(&self, volume: Gb) -> Money {
        if volume == Gb::ZERO {
            return Money::ZERO;
        }
        match self.mode {
            TierMode::Graduated => {
                let mut remaining = volume;
                let mut bracket_start = Gb::ZERO;
                let mut total = Money::ZERO;
                for tier in &self.tiers {
                    let width = match tier.upto {
                        Some(upto) => (upto - bracket_start).min(remaining),
                        None => remaining,
                    };
                    total += tier.rate.scale(width.value());
                    remaining = remaining.saturating_sub(width);
                    if remaining == Gb::ZERO {
                        break;
                    }
                    if let Some(upto) = tier.upto {
                        bracket_start = upto;
                    }
                }
                total
            }
            TierMode::FlatByVolume => self.marginal_rate(volume).scale(volume.value()),
        }
    }

    /// The $/GB rate of the bracket that `volume` falls in. A volume exactly
    /// on a threshold belongs to the *next* bracket (thresholds are exclusive
    /// upper bounds), matching the paper's Example 3 where 2560 GB > 1 TB is
    /// priced at the second tier.
    pub fn marginal_rate(&self, volume: Gb) -> Money {
        for tier in &self.tiers {
            match tier.upto {
                Some(upto) if volume.value() <= upto.value() && volume.value() > 0.0 => {
                    // Strictly inside the bracket or exactly at the boundary?
                    // Exactly at the boundary -> next bracket, except when
                    // volume < upto.
                    if volume.value() < upto.value() {
                        return tier.rate;
                    }
                }
                Some(_) => {}
                None => return tier.rate,
            }
        }
        // Unreachable: the last tier is always unbounded.
        self.tiers.last().expect("validated non-empty").rate
    }

    /// Largest volume purchasable with `budget` under this schedule, within
    /// `epsilon_gb` (bisection; the schedule's cost is monotone in volume).
    /// Used by "how much data can I afford" what-if reports.
    pub fn volume_for_budget(&self, budget: Money, epsilon_gb: f64) -> Gb {
        if budget <= Money::ZERO {
            return Gb::ZERO;
        }
        // Find an upper bracket by doubling.
        let mut hi = 1.0f64;
        while self.cost_for(Gb::new(hi)) <= budget {
            hi *= 2.0;
            if hi > 1e15 {
                // Effectively free schedule: "infinite" volume.
                return Gb::new(hi);
            }
        }
        let mut lo = 0.0f64;
        while hi - lo > epsilon_gb {
            let mid = (lo + hi) / 2.0;
            if self.cost_for(Gb::new(mid)) <= budget {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Gb::new(lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_units::GB_PER_TB;

    fn dollars(s: &str) -> Money {
        Money::from_dollars_str(s).unwrap()
    }

    /// The paper's bandwidth schedule (Table 3, outbound).
    fn bandwidth() -> TierSchedule {
        TierSchedule::new(
            vec![
                Tier::upto_gb(1.0, Money::ZERO),
                Tier::upto_gb(10.0 * GB_PER_TB, dollars("0.12")),
                Tier::upto_gb(50.0 * GB_PER_TB, dollars("0.09")),
                Tier::upto_gb(150.0 * GB_PER_TB, dollars("0.07")),
                Tier::rest(dollars("0.05")),
            ],
            TierMode::Graduated,
        )
        .unwrap()
    }

    /// The paper's storage schedule (Table 4).
    fn storage() -> TierSchedule {
        TierSchedule::new(
            vec![
                Tier::upto_gb(GB_PER_TB, dollars("0.14")),
                Tier::upto_gb(50.0 * GB_PER_TB, dollars("0.125")),
                Tier::upto_gb(500.0 * GB_PER_TB, dollars("0.11")),
                Tier::rest(dollars("0.095")),
            ],
            TierMode::FlatByVolume,
        )
        .unwrap()
    }

    #[test]
    fn example1_graduated_bandwidth() {
        // (10 - 1) GB at $0.12 = $1.08.
        assert_eq!(bandwidth().cost_for(Gb::new(10.0)), dollars("1.08"));
        // Entirely inside the free tier.
        assert_eq!(bandwidth().cost_for(Gb::new(0.5)), Money::ZERO);
        assert_eq!(bandwidth().cost_for(Gb::new(1.0)), Money::ZERO);
    }

    #[test]
    fn graduated_spans_brackets() {
        // 11 TB: 1 GB free + (10 TB - 1 GB) at 0.12 + 1 TB at 0.09.
        let vol = Gb::from_tb(11.0);
        let expected =
            dollars("0.12").scale(10.0 * GB_PER_TB - 1.0) + dollars("0.09").scale(GB_PER_TB);
        assert_eq!(bandwidth().cost_for(vol), expected);
    }

    #[test]
    fn example3_flat_by_volume_storage() {
        // 512 GB total: first bracket, $0.14 each.
        assert_eq!(
            storage().cost_for(Gb::new(512.0)),
            dollars("0.14").scale(512.0)
        );
        // 2560 GB total: second bracket prices everything at $0.125.
        assert_eq!(
            storage().cost_for(Gb::new(2560.0)),
            dollars("0.125").scale(2560.0)
        );
    }

    #[test]
    fn marginal_rate_boundaries() {
        let s = storage();
        assert_eq!(s.marginal_rate(Gb::new(100.0)), dollars("0.14"));
        // Exactly 1 TB belongs to the next bracket (exclusive upper bound).
        assert_eq!(s.marginal_rate(Gb::from_tb(1.0)), dollars("0.125"));
        assert_eq!(s.marginal_rate(Gb::from_tb(600.0)), dollars("0.095"));
    }

    #[test]
    fn zero_volume_is_free() {
        assert_eq!(bandwidth().cost_for(Gb::ZERO), Money::ZERO);
        assert_eq!(storage().cost_for(Gb::ZERO), Money::ZERO);
    }

    #[test]
    fn validation_rejects_bad_schedules() {
        assert_eq!(
            TierSchedule::new(vec![], TierMode::Graduated),
            Err(PricingError::EmptySchedule)
        );
        assert_eq!(
            TierSchedule::new(
                vec![
                    Tier::upto_gb(10.0, Money::ZERO),
                    Tier::upto_gb(5.0, Money::ZERO),
                    Tier::rest(Money::ZERO),
                ],
                TierMode::Graduated
            ),
            Err(PricingError::NonMonotonicTiers { index: 1 })
        );
        assert_eq!(
            TierSchedule::new(
                vec![Tier::rest(Money::ZERO), Tier::rest(Money::ZERO)],
                TierMode::Graduated
            ),
            Err(PricingError::UnboundedInnerTier { index: 0 })
        );
        assert_eq!(
            TierSchedule::new(vec![Tier::upto_gb(5.0, Money::ZERO)], TierMode::Graduated),
            Err(PricingError::BoundedFinalTier)
        );
        assert_eq!(
            TierSchedule::new(
                vec![Tier::rest(Money::from_dollars(-1))],
                TierMode::Graduated
            ),
            Err(PricingError::NegativeRate { index: 0 })
        );
    }

    #[test]
    fn volume_for_budget_inverts_cost() {
        let s = bandwidth();
        let budget = dollars("1.08");
        let vol = s.volume_for_budget(budget, 1e-6);
        assert!((vol.value() - 10.0).abs() < 1e-3, "got {vol:?}");
        assert_eq!(s.volume_for_budget(Money::ZERO, 1e-6), Gb::ZERO);
    }

    #[test]
    fn flat_and_free_helpers() {
        let f = TierSchedule::flat(dollars("0.10"));
        assert_eq!(f.cost_for(Gb::new(500.0)), dollars("50"));
        assert_eq!(
            TierSchedule::free().cost_for(Gb::from_tb(100.0)),
            Money::ZERO
        );
    }

    #[test]
    fn with_mode_switches_interpretation() {
        let s = storage().with_mode(TierMode::Graduated);
        // Graduated: first 1024 GB at 0.14, remaining 1536 GB at 0.125.
        let expected = dollars("0.14").scale(1024.0) + dollars("0.125").scale(1536.0);
        assert_eq!(s.cost_for(Gb::new(2560.0)), expected);
    }
}
