//! Mixed-fleet capacity plans (extension).
//!
//! The paper rents one homogeneous fleet from one price sheet. Real
//! deployments hedge: latency-critical work runs on reserved (or
//! on-demand) capacity that the provider cannot reclaim, while cheap,
//! rebuildable work rides the spot market's discount and eats its
//! interruption risk. A [`FleetPlan`] describes that split as two
//! capacity pools — reserved and spot — each with its own rate terms
//! relative to the base on-demand sheet, plus the *primary* pool the
//! shared charges (workload processing, dataset storage, transfer)
//! bill against.
//!
//! Which pool a given materialized view's build/refresh work lands on
//! is a **per-view decision** ([`Placement`], carried on
//! `mv_cost::ViewCharge`); the selection machinery in `mv-select`
//! searches placements jointly with the selection itself. This module
//! only holds the vocabulary and the pure-fleet degenerate plans the
//! conformance tests pin against `Advisor::solve_market`.

use mv_units::Money;
use serde::{Deserialize, Serialize};

use crate::CommitmentPlan;

/// Which capacity pool a view's materialization/maintenance work runs
/// on (and whose storage terms its bytes bill against).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Placement {
    /// Reserved / on-demand capacity: contract rates, never reclaimed.
    Reserved,
    /// Spot capacity: rides the sampled market rate and pays the
    /// interruption premium when the market spikes.
    Spot,
}

impl Placement {
    /// The other pool.
    pub fn flipped(self) -> Placement {
        match self {
            Placement::Reserved => Placement::Spot,
            Placement::Spot => Placement::Reserved,
        }
    }

    /// Short label for reports.
    pub fn name(self) -> &'static str {
        match self {
            Placement::Reserved => "reserved",
            Placement::Spot => "spot",
        }
    }
}

impl Default for Placement {
    /// The paper's single-fleet deployments are stable capacity.
    fn default() -> Self {
        Placement::Reserved
    }
}

/// One pool's pricing terms, expressed relative to the provider's base
/// on-demand sheet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoolTerms {
    /// Hourly compute-rate multiplier vs the base sheet (`1.0` =
    /// on-demand parity; a reservation's discounted rate divided by
    /// on-demand). The spot pool's effective rate is additionally
    /// multiplied by the sampled market factor each epoch.
    pub rate_factor: f64,
    /// Storage-rate multiplier vs the base sheet (`1.0` = shared
    /// object storage at list price).
    pub storage_factor: f64,
    /// Optional reservation backing the pool; its upfronts and
    /// discounted hourly feed the fleet's commitment comparison.
    pub commitment: Option<CommitmentPlan>,
}

impl PoolTerms {
    /// On-demand parity terms: every factor exactly `1.0` — charging
    /// through them is bit-identical to the base sheet, which the
    /// degenerate-fleet conformance tests lean on.
    pub fn on_demand() -> PoolTerms {
        PoolTerms {
            rate_factor: 1.0,
            storage_factor: 1.0,
            commitment: None,
        }
    }

    /// Terms derived from a reservation: the pool's compute rate is
    /// the plan's discounted hourly over the on-demand rate.
    pub fn reserved(plan: CommitmentPlan, on_demand_hourly: Money) -> PoolTerms {
        let od = on_demand_hourly.to_dollars_f64();
        PoolTerms {
            rate_factor: if od > 0.0 {
                plan.hourly.to_dollars_f64() / od
            } else {
                1.0
            },
            storage_factor: 1.0,
            commitment: Some(plan),
        }
    }

    /// `true` when charging through these terms is the exact identity.
    pub fn is_parity(&self) -> bool {
        self.rate_factor == 1.0 && self.storage_factor == 1.0
    }
}

impl Default for PoolTerms {
    fn default() -> Self {
        PoolTerms::on_demand()
    }
}

/// A mixed fleet: a reserved pool and a spot pool, the primary pool
/// the shared sheet bills against, and whether per-view placement is a
/// free search dimension or pinned.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetPlan {
    /// Plan name for reports.
    pub name: String,
    /// Pool whose pricing the shared charges (workload processing,
    /// dataset storage, transfer) follow. A spot primary rides the
    /// sampled market sheet; a reserved primary keeps the base sheet.
    pub primary: Placement,
    /// Reserved-pool terms.
    pub reserved: PoolTerms,
    /// Spot-pool terms (multipliers on top of the sampled market).
    pub spot: PoolTerms,
    /// When `true`, the solver may move views between pools
    /// (placement-flip local-search moves); when `false`, every view
    /// keeps its starting placement — the pure-fleet degenerate cases.
    pub rebalance: bool,
    /// Force every view's starting placement; `None` keeps each
    /// charge's own [`Placement`].
    pub initial: Option<Placement>,
}

impl FleetPlan {
    /// The all-spot degenerate fleet at market parity: primary spot,
    /// every view pinned spot, unit terms. Solving it reproduces the
    /// single-fleet spot-market solve (`Advisor::solve_market`)
    /// bit-for-bit (pinned in `tests/fleet.rs`).
    pub fn pure_spot() -> FleetPlan {
        FleetPlan {
            name: "pure-spot".to_string(),
            primary: Placement::Spot,
            reserved: PoolTerms::on_demand(),
            spot: PoolTerms::on_demand(),
            rebalance: false,
            initial: Some(Placement::Spot),
        }
    }

    /// The all-reserved degenerate fleet at on-demand parity: primary
    /// reserved, every view pinned reserved, unit terms. Market
    /// dynamics never reach it, so solving it reproduces the risk-free
    /// horizon solve (`Advisor::solve_horizon`) bit-for-bit.
    pub fn pure_reserved() -> FleetPlan {
        FleetPlan {
            name: "pure-reserved".to_string(),
            primary: Placement::Reserved,
            reserved: PoolTerms::on_demand(),
            spot: PoolTerms::on_demand(),
            rebalance: false,
            initial: Some(Placement::Reserved),
        }
    }

    /// A hedged fleet: shared charges on reserved capacity at
    /// on-demand parity, spot pool riding the market at parity, and
    /// placement free per view (starting reserved).
    pub fn hedged(name: impl Into<String>) -> FleetPlan {
        FleetPlan {
            name: name.into(),
            primary: Placement::Reserved,
            reserved: PoolTerms::on_demand(),
            spot: PoolTerms::on_demand(),
            rebalance: true,
            initial: Some(Placement::Reserved),
        }
    }

    /// The terms of one pool.
    pub fn terms(&self, placement: Placement) -> &PoolTerms {
        match placement {
            Placement::Reserved => &self.reserved,
            Placement::Spot => &self.spot,
        }
    }

    /// `Some(p)` when the plan is a pinned single-pool fleet (no
    /// rebalancing, every view forced to `p`).
    pub fn pinned_pool(&self) -> Option<Placement> {
        match (self.rebalance, self.initial) {
            (false, Some(p)) => Some(p),
            _ => None,
        }
    }

    /// This plan with every view pinned to `pool` and rebalancing off
    /// — the pure comparator the fleet report prices alongside the
    /// hedged solve. Pool terms and the primary sheet follow the pool.
    pub fn as_pure(&self, pool: Placement) -> FleetPlan {
        FleetPlan {
            name: format!("{}/pure-{}", self.name, pool.name()),
            primary: pool,
            rebalance: false,
            initial: Some(pool),
            ..self.clone()
        }
    }

    /// Validates the plan's factors (positive and finite).
    pub fn validate(&self) -> Result<(), crate::PricingError> {
        for (pool, terms) in [("reserved", &self.reserved), ("spot", &self.spot)] {
            for (what, f) in [
                ("rate_factor", terms.rate_factor),
                ("storage_factor", terms.storage_factor),
            ] {
                if !f.is_finite() || f <= 0.0 {
                    return Err(crate::PricingError::InvalidRate {
                        what: format!("fleet {}: {pool} pool {what} {f}", self.name),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_flips_and_defaults() {
        assert_eq!(Placement::Reserved.flipped(), Placement::Spot);
        assert_eq!(Placement::Spot.flipped(), Placement::Reserved);
        assert_eq!(Placement::default(), Placement::Reserved);
        assert_eq!(Placement::Spot.name(), "spot");
    }

    #[test]
    fn pure_fleets_are_pinned_at_parity() {
        let spot = FleetPlan::pure_spot();
        assert_eq!(spot.pinned_pool(), Some(Placement::Spot));
        assert!(spot.terms(Placement::Spot).is_parity());
        assert!(spot.validate().is_ok());
        let reserved = FleetPlan::pure_reserved();
        assert_eq!(reserved.pinned_pool(), Some(Placement::Reserved));
        assert!(reserved.terms(Placement::Reserved).is_parity());
        let hedged = FleetPlan::hedged("h");
        assert_eq!(hedged.pinned_pool(), None);
    }

    #[test]
    fn as_pure_pins_and_renames() {
        let hedged = FleetPlan::hedged("h");
        let pure = hedged.as_pure(Placement::Spot);
        assert_eq!(pure.pinned_pool(), Some(Placement::Spot));
        assert_eq!(pure.primary, Placement::Spot);
        assert_eq!(pure.name, "h/pure-spot");
        assert_eq!(pure.reserved, hedged.reserved);
    }

    #[test]
    fn reserved_terms_derive_the_discount() {
        let plan = CommitmentPlan::aws_small_1yr();
        let od = Money::from_dollars_str("0.12").unwrap();
        let terms = PoolTerms::reserved(plan.clone(), od);
        assert!((terms.rate_factor - 0.5).abs() < 1e-12);
        assert_eq!(terms.commitment, Some(plan));
    }

    #[test]
    fn bad_factors_rejected() {
        let mut plan = FleetPlan::hedged("bad");
        plan.spot.rate_factor = 0.0;
        assert!(plan.validate().is_err());
        plan.spot.rate_factor = f64::NAN;
        assert!(plan.validate().is_err());
    }
}
