//! Error type for pricing-model construction and lookups.

use std::fmt;

/// Errors raised while building or querying pricing components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PricingError {
    /// A tier schedule was built with no tiers.
    EmptySchedule,
    /// Tier thresholds must be strictly increasing.
    NonMonotonicTiers {
        /// Index of the offending tier.
        index: usize,
    },
    /// Only the last tier of a schedule may be unbounded.
    UnboundedInnerTier {
        /// Index of the offending tier.
        index: usize,
    },
    /// The final tier must be unbounded so every volume has a price.
    BoundedFinalTier,
    /// A negative rate was supplied.
    NegativeRate {
        /// Index of the offending tier.
        index: usize,
    },
    /// Lookup of an unknown instance configuration.
    UnknownInstance {
        /// The requested configuration name.
        name: String,
    },
    /// An instance catalog was built with duplicate names.
    DuplicateInstance {
        /// The duplicated configuration name.
        name: String,
    },
    /// A fleet plan carries a non-positive or non-finite rate factor.
    InvalidRate {
        /// Which factor was rejected.
        what: String,
    },
    /// A storage timeline event was recorded out of chronological order.
    OutOfOrderEvent,
    /// A storage timeline removal exceeded the currently stored size.
    StorageUnderflow,
}

impl fmt::Display for PricingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PricingError::EmptySchedule => {
                write!(f, "tier schedule must contain at least one tier")
            }
            PricingError::NonMonotonicTiers { index } => {
                write!(f, "tier {index} does not increase the volume threshold")
            }
            PricingError::UnboundedInnerTier { index } => {
                write!(f, "tier {index} is unbounded but is not the last tier")
            }
            PricingError::BoundedFinalTier => {
                write!(f, "the last tier must be unbounded (no upper threshold)")
            }
            PricingError::NegativeRate { index } => {
                write!(f, "tier {index} has a negative rate")
            }
            PricingError::UnknownInstance { name } => {
                write!(f, "unknown instance configuration {name:?}")
            }
            PricingError::DuplicateInstance { name } => {
                write!(f, "duplicate instance configuration {name:?}")
            }
            PricingError::InvalidRate { what } => {
                write!(f, "invalid rate factor: {what}")
            }
            PricingError::OutOfOrderEvent => {
                write!(
                    f,
                    "storage timeline events must be recorded in chronological order"
                )
            }
            PricingError::StorageUnderflow => {
                write!(f, "storage timeline removal exceeds stored size")
            }
        }
    }
}

impl std::error::Error for PricingError {}
