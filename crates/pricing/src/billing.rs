//! A usage ledger and invoice renderer.
//!
//! The cost models compute *predicted* costs; the billing simulator plays
//! the provider's side: record what was actually used, then produce an
//! itemized invoice. Integration tests reconcile the two — predicted total
//! equals invoiced total for the same usage — which is exactly the property
//! the paper's client-side selection relies on.

use std::fmt;

use mv_units::{Gb, Hours, Money, Months};
use serde::{Deserialize, Serialize};

use crate::{PricingError, PricingPolicy, StorageTimeline};

/// The kind of resource a ledger entry charges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum UsageKind {
    /// Instance-hours on a named configuration.
    Compute {
        /// Instance configuration name.
        instance: String,
        /// Number of identical instances (the paper's `nbIC`).
        count: u32,
        /// Total on-time across the period for this entry.
        time: Hours,
    },
    /// Outbound transfer volume.
    TransferOut {
        /// Volume transferred out of the cloud.
        volume: Gb,
    },
    /// Inbound transfer volume.
    TransferIn {
        /// Volume transferred into the cloud.
        volume: Gb,
    },
    /// A storage timeline over the billing horizon.
    Storage {
        /// Size-over-time record.
        timeline: StorageTimeline,
    },
}

/// A usage record with a human-readable label ("query workload",
/// "materialize V1", …).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LineItem {
    /// What the charge is for.
    pub label: String,
    /// The recorded usage.
    pub usage: UsageKind,
}

/// Accumulates usage during a simulated billing period.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct UsageLedger {
    items: Vec<LineItem>,
}

impl UsageLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        UsageLedger::default()
    }

    /// Records compute usage.
    pub fn record_compute(
        &mut self,
        label: impl Into<String>,
        instance: impl Into<String>,
        count: u32,
        time: Hours,
    ) {
        self.items.push(LineItem {
            label: label.into(),
            usage: UsageKind::Compute {
                instance: instance.into(),
                count,
                time,
            },
        });
    }

    /// Records outbound transfer. Outbound volumes are *aggregated* before
    /// pricing (tier schedules apply to the period total).
    pub fn record_transfer_out(&mut self, label: impl Into<String>, volume: Gb) {
        self.items.push(LineItem {
            label: label.into(),
            usage: UsageKind::TransferOut { volume },
        });
    }

    /// Records inbound transfer.
    pub fn record_transfer_in(&mut self, label: impl Into<String>, volume: Gb) {
        self.items.push(LineItem {
            label: label.into(),
            usage: UsageKind::TransferIn { volume },
        });
    }

    /// Records a storage timeline.
    pub fn record_storage(&mut self, label: impl Into<String>, timeline: StorageTimeline) {
        self.items.push(LineItem {
            label: label.into(),
            usage: UsageKind::Storage { timeline },
        });
    }

    /// The recorded items.
    pub fn items(&self) -> &[LineItem] {
        &self.items
    }

    /// Prices the ledger under `policy` and produces an invoice.
    ///
    /// Compute and storage items are priced independently; transfer volumes
    /// are summed per direction and priced once, with the total charge
    /// reported on a synthetic aggregate line.
    pub fn invoice(&self, policy: &PricingPolicy) -> Result<Invoice, PricingError> {
        let mut lines = Vec::with_capacity(self.items.len() + 2);
        let mut compute_total = Money::ZERO;
        let mut storage_total = Money::ZERO;
        let mut out_volume = Gb::ZERO;
        let mut in_volume = Gb::ZERO;

        for item in &self.items {
            match &item.usage {
                UsageKind::Compute {
                    instance,
                    count,
                    time,
                } => {
                    let inst = policy.compute.instance(instance)?;
                    let amount = policy.compute.cost(*time, inst, *count);
                    compute_total += amount;
                    lines.push(InvoiceLine {
                        label: item.label.clone(),
                        detail: format!("{count} × {instance} × {time}"),
                        amount,
                    });
                }
                UsageKind::Storage { timeline } => {
                    let amount = policy.storage.period_cost(timeline);
                    storage_total += amount;
                    lines.push(InvoiceLine {
                        label: item.label.clone(),
                        detail: format!(
                            "{:.1} GB-months over {}",
                            timeline.gb_months(),
                            timeline.horizon()
                        ),
                        amount,
                    });
                }
                UsageKind::TransferOut { volume } => {
                    out_volume += *volume;
                }
                UsageKind::TransferIn { volume } => {
                    in_volume += *volume;
                }
            }
        }

        let transfer_out = policy.transfer.outbound_cost(out_volume);
        let transfer_in = policy.transfer.inbound_cost(in_volume);
        if out_volume > Gb::ZERO {
            lines.push(InvoiceLine {
                label: "outbound transfer (aggregated)".to_string(),
                detail: format!("{out_volume}"),
                amount: transfer_out,
            });
        }
        if in_volume > Gb::ZERO {
            lines.push(InvoiceLine {
                label: "inbound transfer (aggregated)".to_string(),
                detail: format!("{in_volume}"),
                amount: transfer_in,
            });
        }

        Ok(Invoice {
            provider: policy.name.clone(),
            lines,
            compute: compute_total,
            storage: storage_total,
            transfer: transfer_out + transfer_in,
        })
    }
}

/// One priced line of an [`Invoice`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InvoiceLine {
    /// What the charge is for.
    pub label: String,
    /// Quantity description.
    pub detail: String,
    /// The charge.
    pub amount: Money,
}

/// An itemized bill: the provider's view of a billing period.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Invoice {
    /// Provider name from the pricing policy.
    pub provider: String,
    /// Priced line items.
    pub lines: Vec<InvoiceLine>,
    /// Total compute charges (the paper's `Cc`).
    pub compute: Money,
    /// Total storage charges (`Cs`).
    pub storage: Money,
    /// Total transfer charges (`Ct`).
    pub transfer: Money,
}

impl Invoice {
    /// Grand total: the paper's Formula 1, `C = Cc + Cs + Ct`.
    pub fn total(&self) -> Money {
        self.compute + self.storage + self.transfer
    }
}

impl fmt::Display for Invoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Invoice — {}", self.provider)?;
        for line in &self.lines {
            writeln!(
                f,
                "  {:<42} {:<28} {:>12}",
                line.label,
                line.detail,
                line.amount.to_string()
            )?;
        }
        writeln!(f, "  {:-<84}", "")?;
        writeln!(f, "  compute  {:>10}", self.compute.to_string())?;
        writeln!(f, "  storage  {:>10}", self.storage.to_string())?;
        writeln!(f, "  transfer {:>10}", self.transfer.to_string())?;
        write!(f, "  TOTAL    {:>10}", self.total().to_string())
    }
}

/// Convenience: bill the paper's running example (Section 1's $62 vs $64.60
/// introduction figures use a flat $0.10/GB-month and $0.24/h pricing; this
/// helper exists for the quickstart example and doctests).
pub fn running_example_intro_ledger(with_views: bool) -> (UsageLedger, StorageTimeline) {
    let mut ledger = UsageLedger::new();
    let size = if with_views {
        Gb::new(550.0)
    } else {
        Gb::new(500.0)
    };
    let timeline = StorageTimeline::new(size, Months::new(1.0));
    ledger.record_storage("dataset (1 month)", timeline.clone());
    ledger.record_compute(
        "monthly workload",
        "std",
        1,
        Hours::new(if with_views { 40.0 } else { 50.0 }),
    );
    (ledger, timeline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn invoice_reproduces_running_example_components() {
        let aws = presets::aws_2012();
        let mut ledger = UsageLedger::new();
        ledger.record_compute("workload", "small", 2, Hours::new(50.0));
        ledger.record_transfer_out("query results", Gb::new(10.0));
        ledger.record_storage(
            "dataset",
            StorageTimeline::new(Gb::new(550.0), Months::new(12.0)),
        );

        let invoice = ledger.invoice(&aws).unwrap();
        assert_eq!(invoice.compute, Money::from_dollars(12));
        assert_eq!(invoice.transfer, Money::from_dollars_str("1.08").unwrap());
        assert_eq!(invoice.storage, Money::from_dollars(924));
        assert_eq!(invoice.total(), Money::from_dollars_str("937.08").unwrap());
    }

    #[test]
    fn outbound_volumes_aggregate_before_tiering() {
        let aws = presets::aws_2012();
        // Two 0.6 GB results: separately each is under the free first GB,
        // aggregated they bill (1.2 - 1.0) GB.
        let mut ledger = UsageLedger::new();
        ledger.record_transfer_out("r1", Gb::new(0.6));
        ledger.record_transfer_out("r2", Gb::new(0.6));
        let invoice = ledger.invoice(&aws).unwrap();
        assert_eq!(
            invoice.transfer,
            Money::from_dollars_str("0.12").unwrap().scale(0.2)
        );
    }

    #[test]
    fn unknown_instance_fails_invoicing() {
        let aws = presets::aws_2012();
        let mut ledger = UsageLedger::new();
        ledger.record_compute("workload", "mainframe", 1, Hours::new(1.0));
        assert!(matches!(
            ledger.invoice(&aws),
            Err(PricingError::UnknownInstance { .. })
        ));
    }

    #[test]
    fn invoice_renders() {
        let aws = presets::aws_2012();
        let mut ledger = UsageLedger::new();
        ledger.record_compute("workload", "small", 2, Hours::new(50.0));
        ledger.record_transfer_out("results", Gb::new(10.0));
        let text = ledger.invoice(&aws).unwrap().to_string();
        assert!(text.contains("workload"));
        assert!(text.contains("$12.00"));
        assert!(text.contains("TOTAL"));
    }

    #[test]
    fn empty_ledger_bills_zero() {
        let aws = presets::aws_2012();
        let invoice = UsageLedger::new().invoice(&aws).unwrap();
        assert_eq!(invoice.total(), Money::ZERO);
        assert!(invoice.lines.is_empty());
    }
}
