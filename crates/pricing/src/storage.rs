//! Storage pricing over time (paper Table 4 and Formula 5).
//!
//! The paper assumes "the storage period in the cloud is divided into
//! intervals; in each interval, the size of the stored data is fixed". A
//! [`StorageTimeline`] records the size-changing events (initial upload,
//! inserted batches, materialized views, deletions) and yields exactly those
//! constant-size intervals; [`StoragePricing::period_cost`] then evaluates
//! `Σ cs(DS) × (t_end − t_start) × s(DS)` over them.

use mv_units::{Gb, Money, Months};
use serde::{Deserialize, Serialize};

use crate::{PricingError, TierSchedule};

/// Monthly storage pricing: a $/GB-month tier schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoragePricing {
    /// The `cs(DS)` schedule (paper Table 4).
    pub monthly: TierSchedule,
}

impl StoragePricing {
    /// Wraps a schedule.
    pub fn new(monthly: TierSchedule) -> Self {
        StoragePricing { monthly }
    }

    /// Cost of holding `size` for one month.
    pub fn monthly_cost(&self, size: Gb) -> Money {
        self.monthly.cost_for(size)
    }

    /// Cost of holding `size` for `duration` (fractional months allowed).
    pub fn cost(&self, size: Gb, duration: Months) -> Money {
        self.monthly_cost(size).scale(duration.value())
    }

    /// Formula 5: total cost of a timeline's intervals.
    pub fn period_cost(&self, timeline: &StorageTimeline) -> Money {
        timeline
            .intervals()
            .iter()
            .map(|iv| self.cost(iv.size, iv.duration()))
            .sum()
    }

    /// Returns a copy with every bracket's $/GB-month rate multiplied by
    /// `factor` — the price-drift hook used by `mv-market` to model
    /// storage-cost decay. A factor of exactly `1.0` returns a
    /// bit-identical clone.
    pub fn scale_rates(&self, factor: f64) -> StoragePricing {
        StoragePricing {
            monthly: self.monthly.scale_rates(factor),
        }
    }
}

/// One interval of constant stored size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StorageInterval {
    /// Interval start, in months from the beginning of the period.
    pub start: Months,
    /// Interval end.
    pub end: Months,
    /// Constant stored size during the interval.
    pub size: Gb,
}

impl StorageInterval {
    /// `t_end − t_start`.
    pub fn duration(&self) -> Months {
        self.end - self.start
    }
}

/// A chronology of stored-size changes over a billing horizon.
///
/// Events must be recorded in chronological order; the timeline is closed by
/// the horizon given at construction. The paper's Example 3 is the timeline
/// `512 GB at month 0, +2048 GB at month 7, horizon 12 months`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StorageTimeline {
    horizon: Months,
    /// `(time, size-after-event)` pairs; first entry is at time 0.
    points: Vec<(Months, Gb)>,
}

impl StorageTimeline {
    /// Starts a timeline holding `initial` from month 0 through `horizon`.
    pub fn new(initial: Gb, horizon: Months) -> Self {
        StorageTimeline {
            horizon,
            points: vec![(Months::ZERO, initial)],
        }
    }

    /// Records `added` gigabytes uploaded at month `at`.
    pub fn insert(&mut self, at: Months, added: Gb) -> Result<(), PricingError> {
        let current = self.size_at_end();
        self.push_point(at, current + added)
    }

    /// Records `removed` gigabytes deleted at month `at`.
    pub fn remove(&mut self, at: Months, removed: Gb) -> Result<(), PricingError> {
        let current = self.size_at_end();
        if removed.value() > current.value() + 1e-9 {
            return Err(PricingError::StorageUnderflow);
        }
        self.push_point(at, current.saturating_sub(removed))
    }

    fn push_point(&mut self, at: Months, size: Gb) -> Result<(), PricingError> {
        let last = self.points.last().expect("timeline never empty").0;
        if at.value() < last.value() {
            return Err(PricingError::OutOfOrderEvent);
        }
        if at.value() == last.value() {
            // Coalesce same-instant events.
            self.points.last_mut().expect("timeline never empty").1 = size;
        } else {
            self.points.push((at, size));
        }
        Ok(())
    }

    /// The billing horizon.
    pub fn horizon(&self) -> Months {
        self.horizon
    }

    /// Stored size after the last recorded event.
    pub fn size_at_end(&self) -> Gb {
        self.points.last().expect("timeline never empty").1
    }

    /// Stored size at month `at`.
    pub fn size_at(&self, at: Months) -> Gb {
        self.points
            .iter()
            .rev()
            .find(|(t, _)| t.value() <= at.value())
            .map(|(_, s)| *s)
            .unwrap_or(Gb::ZERO)
    }

    /// The constant-size intervals covering `[0, horizon]`. Events at or
    /// after the horizon are ignored; zero-length intervals are skipped.
    pub fn intervals(&self) -> Vec<StorageInterval> {
        let mut out = Vec::with_capacity(self.points.len());
        for (i, (start, size)) in self.points.iter().enumerate() {
            if start.value() >= self.horizon.value() {
                break;
            }
            let end = self
                .points
                .get(i + 1)
                .map(|(t, _)| t.min(self.horizon))
                .unwrap_or(self.horizon);
            if end.value() > start.value() {
                out.push(StorageInterval {
                    start: *start,
                    end,
                    size: *size,
                });
            }
        }
        out
    }

    /// GB-months integral of the whole timeline (used by reports).
    pub fn gb_months(&self) -> f64 {
        self.intervals()
            .iter()
            .map(|iv| iv.size.value() * iv.duration().value())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Tier, TierMode};
    use mv_units::GB_PER_TB;

    fn paper_storage() -> StoragePricing {
        StoragePricing::new(
            TierSchedule::new(
                vec![
                    Tier::upto_gb(GB_PER_TB, Money::from_dollars_str("0.14").unwrap()),
                    Tier::upto_gb(50.0 * GB_PER_TB, Money::from_dollars_str("0.125").unwrap()),
                    Tier::rest(Money::from_dollars_str("0.11").unwrap()),
                ],
                TierMode::FlatByVolume,
            )
            .unwrap(),
        )
    }

    #[test]
    fn example3_two_intervals() {
        // 512 GB for 12 months, +2048 GB inserted at the start of month 8
        // (i.e. after 7 elapsed months).
        let mut tl = StorageTimeline::new(Gb::new(512.0), Months::new(12.0));
        tl.insert(Months::new(7.0), Gb::from_tb(2.0)).unwrap();

        let ivs = tl.intervals();
        assert_eq!(ivs.len(), 2);
        assert_eq!(ivs[0].size.value(), 512.0);
        assert_eq!(ivs[0].duration().value(), 7.0);
        assert_eq!(ivs[1].size.value(), 2560.0);
        assert_eq!(ivs[1].duration().value(), 5.0);

        // 512×0.14×7 + 2560×0.125×5 = 501.76 + 1600 = 2101.76.
        // (The paper prints $2131.76 — a typo; its own formula gives this.)
        let cost = paper_storage().period_cost(&tl);
        assert_eq!(cost, Money::from_dollars_str("2101.76").unwrap());
    }

    #[test]
    fn example9_single_interval() {
        // 550 GB for 12 months at $0.14 = $924.
        let tl = StorageTimeline::new(Gb::new(550.0), Months::new(12.0));
        assert_eq!(paper_storage().period_cost(&tl), Money::from_dollars(924));
    }

    #[test]
    fn events_past_horizon_ignored() {
        let mut tl = StorageTimeline::new(Gb::new(100.0), Months::new(6.0));
        tl.insert(Months::new(9.0), Gb::new(100.0)).unwrap();
        assert_eq!(tl.intervals().len(), 1);
        assert_eq!(tl.gb_months(), 600.0);
    }

    #[test]
    fn same_instant_events_coalesce() {
        let mut tl = StorageTimeline::new(Gb::new(100.0), Months::new(12.0));
        tl.insert(Months::new(3.0), Gb::new(10.0)).unwrap();
        tl.insert(Months::new(3.0), Gb::new(10.0)).unwrap();
        let ivs = tl.intervals();
        assert_eq!(ivs.len(), 2);
        assert_eq!(ivs[1].size.value(), 120.0);
    }

    #[test]
    fn removal_and_underflow() {
        let mut tl = StorageTimeline::new(Gb::new(100.0), Months::new(12.0));
        tl.remove(Months::new(6.0), Gb::new(40.0)).unwrap();
        assert_eq!(tl.size_at(Months::new(7.0)).value(), 60.0);
        assert_eq!(
            tl.remove(Months::new(8.0), Gb::new(100.0)),
            Err(PricingError::StorageUnderflow)
        );
    }

    #[test]
    fn out_of_order_rejected() {
        let mut tl = StorageTimeline::new(Gb::new(100.0), Months::new(12.0));
        tl.insert(Months::new(6.0), Gb::new(1.0)).unwrap();
        assert_eq!(
            tl.insert(Months::new(3.0), Gb::new(1.0)),
            Err(PricingError::OutOfOrderEvent)
        );
    }

    #[test]
    fn size_queries() {
        let mut tl = StorageTimeline::new(Gb::new(100.0), Months::new(12.0));
        tl.insert(Months::new(4.0), Gb::new(50.0)).unwrap();
        assert_eq!(tl.size_at(Months::ZERO).value(), 100.0);
        assert_eq!(tl.size_at(Months::new(3.9)).value(), 100.0);
        assert_eq!(tl.size_at(Months::new(4.0)).value(), 150.0);
        assert_eq!(tl.size_at_end().value(), 150.0);
    }

    #[test]
    fn fractional_month_cost() {
        let pricing = paper_storage();
        // Half a month of 100 GB at $0.14/GB-month.
        assert_eq!(
            pricing.cost(Gb::new(100.0), Months::new(0.5)),
            Money::from_dollars_str("7").unwrap()
        );
    }
}
