//! Reserved-capacity pricing (extension).
//!
//! The paper prices compute purely on-demand. Real 2012 AWS also sold
//! *reserved instances*: pay an upfront fee for a term, then a lower hourly
//! rate. For steady workloads (the recurring dashboard regime of the
//! evaluation) reservations change the view-materialization calculus: the
//! cheaper the marginal hour, the less a view's compute saving is worth.
//! This module models the plan, its effective cost, and the breakeven
//! utilisation against on-demand — used by the elasticity example and the
//! what-if analyses.

use mv_units::{Hours, Money, Months};
use serde::{Deserialize, Serialize};

use crate::InstanceType;

/// A reserved-capacity plan for one instance type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommitmentPlan {
    /// Plan name (e.g. `"small-1yr-medium"`).
    pub name: String,
    /// The instance configuration the reservation applies to.
    pub instance: String,
    /// One-time upfront fee for the whole term.
    pub upfront: Money,
    /// Discounted hourly rate while reserved.
    pub hourly: Money,
    /// Reservation term.
    pub term: Months,
}

impl CommitmentPlan {
    /// AWS 2012-style "medium utilization" 1-year reservation for the
    /// small instance: $160 upfront, $0.06/h (vs $0.12 on demand).
    pub fn aws_small_1yr() -> Self {
        CommitmentPlan {
            name: "small-1yr-medium".to_string(),
            instance: "small".to_string(),
            upfront: Money::from_dollars(160),
            hourly: Money::from_dollars_str("0.06").expect("literal"),
            term: Months::new(12.0),
        }
    }

    /// Total cost of running `used` instance-hours over the term (per
    /// instance): upfront is sunk, hours are billed at the reserved rate.
    pub fn total_cost(&self, used: Hours) -> Money {
        self.upfront + self.hourly.scale(used.value())
    }

    /// The *effective* hourly rate at a given utilisation (used hours over
    /// the term), amortising the upfront. Returns `Money::MAX` at zero use.
    pub fn effective_hourly(&self, used: Hours) -> Money {
        if used == Hours::ZERO {
            return Money::MAX;
        }
        Money::from_micros((self.total_cost(used).micros() as f64 / used.value()).round() as i128)
    }

    /// Hours of use per term above which this plan beats paying
    /// `on_demand_hourly`. `None` when the reserved rate is not actually
    /// cheaper (the plan can never pay off).
    pub fn breakeven_hours(&self, on_demand_hourly: Money) -> Option<Hours> {
        if self.hourly >= on_demand_hourly {
            return None;
        }
        let saving_per_hour = (on_demand_hourly - self.hourly).micros() as f64;
        Some(Hours::new(self.upfront.micros() as f64 / saving_per_hour))
    }

    /// Whether reserving beats on-demand for a workload using `used` hours
    /// per term on `on_demand` pricing of the same instance type.
    pub fn worthwhile(&self, used: Hours, on_demand: &InstanceType) -> bool {
        self.total_cost(used) < on_demand.hourly.scale(used.value())
    }

    /// Consecutive reservation terms needed to cover a billing horizon
    /// (partially-used final terms still pay their full upfront).
    pub fn terms_for(&self, horizon: Months) -> u32 {
        (horizon.value() / self.term.value()).ceil().max(1.0) as u32
    }

    /// Total cost of covering a multi-epoch horizon with this plan on a
    /// fleet of `count` identical instances: one upfront per instance
    /// per term, plus the discounted rate on every billed
    /// instance-hour. `billed_instance_hours` is the horizon's total
    /// *billable* compute (already rounded per the provider's rule and
    /// multiplied by the fleet size), so the on-demand and reserved
    /// sides of a comparison price exactly the same hours.
    pub fn fleet_horizon_cost(
        &self,
        horizon: Months,
        billed_instance_hours: Hours,
        count: u32,
    ) -> Money {
        self.upfront * count * self.terms_for(horizon)
            + self.hourly.scale(billed_instance_hours.value())
    }

    /// Prices a solved horizon's compute both ways — pay-as-you-go at
    /// `on_demand_hourly` vs this reservation — over the same billed
    /// instance-hours. The single-period paper never gives the upfront
    /// fee enough hours to amortize; a multi-epoch horizon does.
    pub fn compare_horizon(
        &self,
        on_demand_hourly: Money,
        horizon: Months,
        billed_instance_hours: Hours,
        count: u32,
    ) -> CommitmentComparison {
        let on_demand = on_demand_hourly.scale(billed_instance_hours.value());
        let reserved = self.fleet_horizon_cost(horizon, billed_instance_hours, count);
        CommitmentComparison {
            plan: self.name.clone(),
            billed_instance_hours,
            on_demand,
            reserved,
        }
    }
}

/// On-demand vs reserved compute pricing for one solved horizon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommitmentComparison {
    /// The reservation plan compared.
    pub plan: String,
    /// Billed instance-hours the horizon consumed.
    pub billed_instance_hours: Hours,
    /// Compute bill at the on-demand hourly rate.
    pub on_demand: Money,
    /// Compute bill under the plan (upfronts + discounted hours).
    pub reserved: Money,
}

impl CommitmentComparison {
    /// What reserving saves (negative when the plan never pays off).
    pub fn saving(&self) -> Money {
        self.on_demand - self.reserved
    }

    /// Whether the reservation is the cheaper way to buy these hours.
    pub fn reserved_wins(&self) -> bool {
        self.reserved < self.on_demand
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn on_demand_small() -> InstanceType {
        presets::aws_2012()
            .compute
            .instance("small")
            .unwrap()
            .clone()
    }

    #[test]
    fn breakeven_matches_closed_form() {
        let plan = CommitmentPlan::aws_small_1yr();
        // $160 / ($0.12 − $0.06) = 2666.67 h.
        let be = plan
            .breakeven_hours(on_demand_small().hourly)
            .expect("plan is cheaper per hour");
        assert!((be.value() - 2666.6667).abs() < 0.01, "{be:?}");
        // Just below breakeven: on-demand wins; just above: reservation.
        assert!(!plan.worthwhile(Hours::new(2_600.0), &on_demand_small()));
        assert!(plan.worthwhile(Hours::new(2_700.0), &on_demand_small()));
    }

    #[test]
    fn effective_rate_amortises_upfront() {
        let plan = CommitmentPlan::aws_small_1yr();
        // Fully utilised year: 8760 h -> 160/8760 + 0.06 ≈ $0.0783/h.
        let eff = plan.effective_hourly(Hours::new(8_760.0));
        assert!((eff.to_dollars_f64() - 0.078264).abs() < 1e-4, "{eff}");
        // Light use: effective rate exceeds on-demand.
        let light = plan.effective_hourly(Hours::new(100.0));
        assert!(light > on_demand_small().hourly);
        assert_eq!(plan.effective_hourly(Hours::ZERO), Money::MAX);
    }

    #[test]
    fn never_pays_off_when_not_cheaper() {
        let bad = CommitmentPlan {
            hourly: Money::from_dollars_str("0.12").unwrap(),
            ..CommitmentPlan::aws_small_1yr()
        };
        assert_eq!(bad.breakeven_hours(on_demand_small().hourly), None);
    }

    #[test]
    fn total_cost_is_affine() {
        let plan = CommitmentPlan::aws_small_1yr();
        assert_eq!(plan.total_cost(Hours::ZERO), Money::from_dollars(160));
        assert_eq!(plan.total_cost(Hours::new(100.0)), Money::from_dollars(166));
    }

    #[test]
    fn horizon_terms_round_up() {
        let plan = CommitmentPlan::aws_small_1yr();
        assert_eq!(plan.terms_for(Months::new(1.0)), 1);
        assert_eq!(plan.terms_for(Months::new(12.0)), 1);
        assert_eq!(plan.terms_for(Months::new(12.5)), 2);
        assert_eq!(plan.terms_for(Months::new(36.0)), 3);
    }

    #[test]
    fn horizon_comparison_amortizes_across_epochs() {
        let plan = CommitmentPlan::aws_small_1yr();
        let od = on_demand_small().hourly;
        // One month of light dashboard use: upfront swamps the discount.
        let light = plan.compare_horizon(od, Months::new(12.0), Hours::new(200.0), 2);
        assert!(!light.reserved_wins());
        assert!(light.saving() < Money::ZERO);
        // A year of heavy epochs on 2 instances: 6000 billed
        // instance-hours — on-demand $720 vs $320 upfront + $360.
        let heavy = plan.compare_horizon(od, Months::new(12.0), Hours::new(6_000.0), 2);
        assert_eq!(heavy.on_demand, Money::from_dollars(720));
        assert_eq!(heavy.reserved, Money::from_dollars(680));
        assert!(heavy.reserved_wins());
        assert_eq!(heavy.saving(), Money::from_dollars(40));
        // A 13-month horizon needs a second term's upfronts.
        let spill = plan.fleet_horizon_cost(Months::new(13.0), Hours::new(6_000.0), 2);
        assert_eq!(spill, Money::from_dollars(1_000));
    }
}
