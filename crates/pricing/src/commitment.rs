//! Reserved-capacity pricing (extension).
//!
//! The paper prices compute purely on-demand. Real 2012 AWS also sold
//! *reserved instances*: pay an upfront fee for a term, then a lower hourly
//! rate. For steady workloads (the recurring dashboard regime of the
//! evaluation) reservations change the view-materialization calculus: the
//! cheaper the marginal hour, the less a view's compute saving is worth.
//! This module models the plan, its effective cost, and the breakeven
//! utilisation against on-demand — used by the elasticity example and the
//! what-if analyses.

use mv_units::{Hours, Money, Months};
use serde::{Deserialize, Serialize};

use crate::InstanceType;

/// A reserved-capacity plan for one instance type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommitmentPlan {
    /// Plan name (e.g. `"small-1yr-medium"`).
    pub name: String,
    /// The instance configuration the reservation applies to.
    pub instance: String,
    /// One-time upfront fee for the whole term.
    pub upfront: Money,
    /// Discounted hourly rate while reserved.
    pub hourly: Money,
    /// Reservation term.
    pub term: Months,
}

impl CommitmentPlan {
    /// AWS 2012-style "medium utilization" 1-year reservation for the
    /// small instance: $160 upfront, $0.06/h (vs $0.12 on demand).
    pub fn aws_small_1yr() -> Self {
        CommitmentPlan {
            name: "small-1yr-medium".to_string(),
            instance: "small".to_string(),
            upfront: Money::from_dollars(160),
            hourly: Money::from_dollars_str("0.06").expect("literal"),
            term: Months::new(12.0),
        }
    }

    /// Total cost of running `used` instance-hours over the term (per
    /// instance): upfront is sunk, hours are billed at the reserved rate.
    pub fn total_cost(&self, used: Hours) -> Money {
        self.upfront + self.hourly.scale(used.value())
    }

    /// The *effective* hourly rate at a given utilisation (used hours over
    /// the term), amortising the upfront. Returns `Money::MAX` at zero use.
    pub fn effective_hourly(&self, used: Hours) -> Money {
        if used == Hours::ZERO {
            return Money::MAX;
        }
        Money::from_micros((self.total_cost(used).micros() as f64 / used.value()).round() as i128)
    }

    /// Hours of use per term above which this plan beats paying
    /// `on_demand_hourly`. `None` when the reserved rate is not actually
    /// cheaper (the plan can never pay off).
    pub fn breakeven_hours(&self, on_demand_hourly: Money) -> Option<Hours> {
        if self.hourly >= on_demand_hourly {
            return None;
        }
        let saving_per_hour = (on_demand_hourly - self.hourly).micros() as f64;
        Some(Hours::new(self.upfront.micros() as f64 / saving_per_hour))
    }

    /// Whether reserving beats on-demand for a workload using `used` hours
    /// per term on `on_demand` pricing of the same instance type.
    pub fn worthwhile(&self, used: Hours, on_demand: &InstanceType) -> bool {
        self.total_cost(used) < on_demand.hourly.scale(used.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn on_demand_small() -> InstanceType {
        presets::aws_2012()
            .compute
            .instance("small")
            .unwrap()
            .clone()
    }

    #[test]
    fn breakeven_matches_closed_form() {
        let plan = CommitmentPlan::aws_small_1yr();
        // $160 / ($0.12 − $0.06) = 2666.67 h.
        let be = plan
            .breakeven_hours(on_demand_small().hourly)
            .expect("plan is cheaper per hour");
        assert!((be.value() - 2666.6667).abs() < 0.01, "{be:?}");
        // Just below breakeven: on-demand wins; just above: reservation.
        assert!(!plan.worthwhile(Hours::new(2_600.0), &on_demand_small()));
        assert!(plan.worthwhile(Hours::new(2_700.0), &on_demand_small()));
    }

    #[test]
    fn effective_rate_amortises_upfront() {
        let plan = CommitmentPlan::aws_small_1yr();
        // Fully utilised year: 8760 h -> 160/8760 + 0.06 ≈ $0.0783/h.
        let eff = plan.effective_hourly(Hours::new(8_760.0));
        assert!((eff.to_dollars_f64() - 0.078264).abs() < 1e-4, "{eff}");
        // Light use: effective rate exceeds on-demand.
        let light = plan.effective_hourly(Hours::new(100.0));
        assert!(light > on_demand_small().hourly);
        assert_eq!(plan.effective_hourly(Hours::ZERO), Money::MAX);
    }

    #[test]
    fn never_pays_off_when_not_cheaper() {
        let bad = CommitmentPlan {
            hourly: Money::from_dollars_str("0.12").unwrap(),
            ..CommitmentPlan::aws_small_1yr()
        };
        assert_eq!(bad.breakeven_hours(on_demand_small().hourly), None);
    }

    #[test]
    fn total_cost_is_affine() {
        let plan = CommitmentPlan::aws_small_1yr();
        assert_eq!(plan.total_cost(Hours::ZERO), Money::from_dollars(160));
        assert_eq!(plan.total_cost(Hours::new(100.0)), Money::from_dollars(166));
    }
}
