//! Bandwidth pricing (paper Table 3).

use mv_units::{Gb, Money};
use serde::{Deserialize, Serialize};

use crate::TierSchedule;

/// Transfer pricing: separate schedules for inbound and outbound traffic.
///
/// The paper's model (Amazon 2012): "input data transfers are free, whereas
/// output data transfer cost varies with respect to data volume". Outbound
/// volumes are aggregated per billing period before the schedule applies —
/// that is how the paper's Example 1 treats the workload's 10 GB of query
/// results as one volume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferPricing {
    /// Inbound ($0 under every 2012 preset, but modellable).
    pub inbound: TierSchedule,
    /// Outbound, applied to the period's aggregated volume.
    pub outbound: TierSchedule,
}

impl TransferPricing {
    /// Free inbound + the given outbound schedule (the AWS shape).
    pub fn free_inbound(outbound: TierSchedule) -> Self {
        TransferPricing {
            inbound: TierSchedule::free(),
            outbound,
        }
    }

    /// Cost of transferring `volume` out of the cloud in one billing period.
    pub fn outbound_cost(&self, volume: Gb) -> Money {
        self.outbound.cost_for(volume)
    }

    /// Cost of transferring `volume` into the cloud.
    pub fn inbound_cost(&self, volume: Gb) -> Money {
        self.inbound.cost_for(volume)
    }

    /// `true` when inbound transfers cost nothing — lets the cost models use
    /// the paper's simplified Formula 3 instead of the general Formula 2.
    pub fn inbound_is_free(&self) -> bool {
        self.inbound.tiers().iter().all(|t| t.rate == Money::ZERO)
    }

    /// Returns a copy with every inbound and outbound rate multiplied by
    /// `factor` — the price-drift hook used by `mv-market`. A factor of
    /// exactly `1.0` returns a bit-identical clone; free tiers stay free
    /// under any factor.
    pub fn scale_rates(&self, factor: f64) -> TransferPricing {
        TransferPricing {
            inbound: self.inbound.scale_rates(factor),
            outbound: self.outbound.scale_rates(factor),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Tier, TierMode};

    fn aws_outbound() -> TierSchedule {
        TierSchedule::new(
            vec![
                Tier::upto_gb(1.0, Money::ZERO),
                Tier::upto_gb(10.0 * 1024.0, Money::from_dollars_str("0.12").unwrap()),
                Tier::rest(Money::from_dollars_str("0.09").unwrap()),
            ],
            TierMode::Graduated,
        )
        .unwrap()
    }

    #[test]
    fn example1_outbound() {
        let t = TransferPricing::free_inbound(aws_outbound());
        assert_eq!(
            t.outbound_cost(Gb::new(10.0)),
            Money::from_dollars_str("1.08").unwrap()
        );
        assert_eq!(t.inbound_cost(Gb::new(500.0)), Money::ZERO);
        assert!(t.inbound_is_free());
    }

    #[test]
    fn paid_inbound_detected() {
        let t = TransferPricing {
            inbound: TierSchedule::flat(Money::from_cents(1)),
            outbound: aws_outbound(),
        };
        assert!(!t.inbound_is_free());
        assert_eq!(t.inbound_cost(Gb::new(100.0)), Money::from_dollars(1));
    }
}
