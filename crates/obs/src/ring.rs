//! Bounded, lock-striped event ring for structured solver traces.
//!
//! Events carry a static kind plus small numeric fields (epoch
//! transitions, LNS rounds, placement moves, tree-node solves,
//! calibration samples). A global atomic sequence orders them; each
//! event lands in `seq % STRIPES`'s deque, so concurrent writers only
//! contend 1-in-`STRIPES` of the time. Each stripe holds at most
//! `CAPACITY / STRIPES` events and evicts its own oldest — the ring
//! keeps a bounded *tail*, and [`crate::Snapshot`] carries
//! `events_seen` so readers can tell how much history scrolled away.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Total events retained across all stripes.
pub const CAPACITY: usize = 1024;
const STRIPES: usize = 8;
const STRIPE_CAP: usize = CAPACITY / STRIPES;

/// One structured trace record.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Global emission order (gaps mean another stripe has the rest).
    pub seq: u64,
    /// Static kind tag, e.g. `"lns_round"`.
    pub kind: &'static str,
    /// Small numeric payload, `(name, value)` pairs.
    pub fields: Vec<(&'static str, f64)>,
}

static SEQ: AtomicU64 = AtomicU64::new(0);

fn stripes() -> &'static [Mutex<VecDeque<Event>>; STRIPES] {
    static CELL: OnceLock<[Mutex<VecDeque<Event>>; STRIPES]> = OnceLock::new();
    CELL.get_or_init(|| std::array::from_fn(|_| Mutex::new(VecDeque::with_capacity(STRIPE_CAP))))
}

/// Appends an event — no-op while telemetry is disabled.
#[inline(always)]
pub fn push(kind: &'static str, fields: &[(&'static str, f64)]) {
    if !crate::enabled() {
        return;
    }
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let event = Event {
        seq,
        kind,
        fields: fields.to_vec(),
    };
    let mut stripe = stripes()[(seq as usize) % STRIPES]
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    if stripe.len() >= STRIPE_CAP {
        stripe.pop_front();
    }
    stripe.push_back(event);
}

/// Total events ever emitted (monotonic, survives eviction).
pub fn seen() -> u64 {
    SEQ.load(Ordering::Relaxed)
}

/// The retained tail, sorted by sequence number.
pub fn tail() -> Vec<Event> {
    let mut out: Vec<Event> = Vec::new();
    for stripe in stripes() {
        let stripe = stripe.lock().unwrap_or_else(|e| e.into_inner());
        out.extend(stripe.iter().cloned());
    }
    out.sort_by_key(|e| e.seq);
    out
}
