//! Monotonic counters: a fixed enum-indexed array of `AtomicU64`s.
//!
//! Increment is branch (one relaxed load) + `fetch_add` — no hashing,
//! no locking, no allocation — so counters are safe on the evaluator's
//! O(deg) flip path. The set of counters is closed ([`Counter`]); a
//! new instrumentation site adds a variant, not a registry entry.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Every counter the stack records, grouped by subsystem. `name()`
/// yields the stable `subsystem/metric` key used in JSON snapshots.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum Counter {
    // mv-select: IncrementalEvaluator
    EvaluatorBuild,
    EvaluatorRetarget,
    EvaluatorFork,
    EvaluatorFlip,
    EvaluatorUnflip,
    EvaluatorSnapshot,
    EvaluatorUpdateCharge,
    EvaluatorUpdateChargeFast,
    // mv-select: local search
    SearchProbes,
    SearchFlipMoves,
    SearchSwapMoves,
    SearchPlaceMoves,
    // mv-select: LNS
    LnsRounds,
    LnsAccepted,
    LnsRejected,
    // mv-select: EpochChain / EpochTree
    TreeNodeSolves,
    TreeRootSolves,
    ChainEpochSteps,
    // mv-core: market / fleet drivers
    MarketPathSolves,
    MarketDedupHits,
    FleetPathSolves,
    FleetDedupHits,
    // mv-engine: ReplayDriver
    EngineQueries,
    EngineQueriesViaViews,
    EngineScanBytes,
    EngineBuildBytes,
    EngineRefreshBytes,
    EngineViewBuilds,
    EngineViewRefreshes,
    // mv-core: calibration
    CalibrateSamples,
    // mv-core: AdvisorService stream loop
    ServiceIngestEvents,
    ServiceIngestDuplicates,
    ServiceDriftResolves,
    ServiceWhatIfs,
    // mv-core: persistent candidate catalog
    CatalogSpills,
    CatalogReloads,
}

/// Number of [`Counter`] variants (length of the backing array).
pub const COUNT: usize = 36;

impl Counter {
    /// All variants, in declaration order (index == discriminant).
    pub const ALL: [Counter; COUNT] = [
        Counter::EvaluatorBuild,
        Counter::EvaluatorRetarget,
        Counter::EvaluatorFork,
        Counter::EvaluatorFlip,
        Counter::EvaluatorUnflip,
        Counter::EvaluatorSnapshot,
        Counter::EvaluatorUpdateCharge,
        Counter::EvaluatorUpdateChargeFast,
        Counter::SearchProbes,
        Counter::SearchFlipMoves,
        Counter::SearchSwapMoves,
        Counter::SearchPlaceMoves,
        Counter::LnsRounds,
        Counter::LnsAccepted,
        Counter::LnsRejected,
        Counter::TreeNodeSolves,
        Counter::TreeRootSolves,
        Counter::ChainEpochSteps,
        Counter::MarketPathSolves,
        Counter::MarketDedupHits,
        Counter::FleetPathSolves,
        Counter::FleetDedupHits,
        Counter::EngineQueries,
        Counter::EngineQueriesViaViews,
        Counter::EngineScanBytes,
        Counter::EngineBuildBytes,
        Counter::EngineRefreshBytes,
        Counter::EngineViewBuilds,
        Counter::EngineViewRefreshes,
        Counter::CalibrateSamples,
        Counter::ServiceIngestEvents,
        Counter::ServiceIngestDuplicates,
        Counter::ServiceDriftResolves,
        Counter::ServiceWhatIfs,
        Counter::CatalogSpills,
        Counter::CatalogReloads,
    ];

    /// Stable snapshot key, `subsystem/metric`.
    pub fn name(self) -> &'static str {
        match self {
            Counter::EvaluatorBuild => "evaluator/build",
            Counter::EvaluatorRetarget => "evaluator/retarget",
            Counter::EvaluatorFork => "evaluator/fork",
            Counter::EvaluatorFlip => "evaluator/flip",
            Counter::EvaluatorUnflip => "evaluator/unflip",
            Counter::EvaluatorSnapshot => "evaluator/snapshot",
            Counter::EvaluatorUpdateCharge => "evaluator/update_charge",
            Counter::EvaluatorUpdateChargeFast => "evaluator/update_charge_fast",
            Counter::SearchProbes => "search/probes",
            Counter::SearchFlipMoves => "search/flip_moves",
            Counter::SearchSwapMoves => "search/swap_moves",
            Counter::SearchPlaceMoves => "search/place_moves",
            Counter::LnsRounds => "lns/rounds",
            Counter::LnsAccepted => "lns/accepted",
            Counter::LnsRejected => "lns/rejected",
            Counter::TreeNodeSolves => "tree/node_solves",
            Counter::TreeRootSolves => "tree/root_solves",
            Counter::ChainEpochSteps => "chain/epoch_steps",
            Counter::MarketPathSolves => "market/path_solves",
            Counter::MarketDedupHits => "market/dedup_hits",
            Counter::FleetPathSolves => "fleet/path_solves",
            Counter::FleetDedupHits => "fleet/dedup_hits",
            Counter::EngineQueries => "engine/queries",
            Counter::EngineQueriesViaViews => "engine/queries_via_views",
            Counter::EngineScanBytes => "engine/scan_bytes",
            Counter::EngineBuildBytes => "engine/build_bytes",
            Counter::EngineRefreshBytes => "engine/refresh_bytes",
            Counter::EngineViewBuilds => "engine/view_builds",
            Counter::EngineViewRefreshes => "engine/view_refreshes",
            Counter::CalibrateSamples => "calibrate/samples",
            Counter::ServiceIngestEvents => "service/ingest_events",
            Counter::ServiceIngestDuplicates => "service/ingest_duplicates",
            Counter::ServiceDriftResolves => "service/drift_resolves",
            Counter::ServiceWhatIfs => "service/what_ifs",
            Counter::CatalogSpills => "catalog/spills",
            Counter::CatalogReloads => "catalog/reloads",
        }
    }
}

static CELLS: [AtomicU64; COUNT] = [const { AtomicU64::new(0) }; COUNT];

/// Adds `n` to counter `c` — no-op while telemetry is disabled.
#[inline(always)]
pub fn add(c: Counter, n: u64) {
    if crate::enabled() {
        CELLS[c as usize].fetch_add(n, Ordering::Relaxed);
    }
}

/// Reads counter `c`'s process-lifetime total (readable even while
/// disabled — it just stops moving).
#[inline]
pub fn get(c: Counter) -> u64 {
    CELLS[c as usize].load(Ordering::Relaxed)
}

/// Reads every counter in [`Counter::ALL`] order.
pub fn all() -> [u64; COUNT] {
    let mut out = [0u64; COUNT];
    for (slot, c) in out.iter_mut().zip(Counter::ALL) {
        *slot = get(c);
    }
    out
}

/// Serializes delta-scoped counter sections across the process.
static SERIAL: Mutex<()> = Mutex::new(());

/// Test-scoped counter window: holds a process-wide lock (so two
/// delta-asserting sections never interleave), enables telemetry for
/// its lifetime, and reads counters as deltas from its baseline.
///
/// This replaces the old `IncrementalEvaluator` process-global statics
/// whose unconditional increments made cross-test interleaving a
/// latent hazard under threaded `cargo test`: counters now only move
/// inside an enabled window, and `CounterGuard` windows are mutually
/// exclusive by construction. (A non-guard test doing solver work
/// *during* someone else's window still counts — keep guarded
/// sections short.)
pub struct CounterGuard {
    _serial: MutexGuard<'static, ()>,
    base: [u64; COUNT],
}

impl CounterGuard {
    /// Locks the serialization mutex, enables telemetry, and baselines
    /// every counter.
    pub fn scoped() -> CounterGuard {
        let serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        crate::enable();
        CounterGuard {
            _serial: serial,
            base: all(),
        }
    }

    /// Counter movement since this guard (or the last [`rebase`]) —
    /// saturating, in case an unrelated enabler raced the baseline.
    ///
    /// [`rebase`]: CounterGuard::rebase
    pub fn delta(&self, c: Counter) -> u64 {
        get(c).saturating_sub(self.base[c as usize])
    }

    /// Moves the baseline up to "now" for a fresh delta window.
    pub fn rebase(&mut self) {
        self.base = all();
    }
}

impl Drop for CounterGuard {
    fn drop(&mut self) {
        crate::disable();
    }
}
