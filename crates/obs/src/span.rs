//! RAII span timers aggregated into a call-path tree.
//!
//! [`SpanGuard::begin`] pushes its name onto a thread-local path stack
//! and stamps a start time; dropping it records the elapsed time under
//! the *full* path (`"market/solve + solve_tree/node"`), so nesting
//! builds a call-path tree without any global registration. Aggregates
//! (count / total / max, in nanoseconds) live in lock-striped maps
//! keyed by path; a span only touches its stripe once, at drop.
//!
//! Disabled cost: one relaxed load in `begin`, one `Option` check in
//! `drop`. No clock read, no thread-local write.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Separator between nested span names in an aggregated path.
pub const PATH_SEP: &str = " + ";

/// One aggregated cell: how often a path ran and for how long.
#[derive(Clone, Copy, Default)]
pub struct Cell {
    pub count: u64,
    pub total_ns: u64,
    pub max_ns: u64,
}

const STRIPES: usize = 8;

fn stripes() -> &'static [Mutex<HashMap<String, Cell>>; STRIPES] {
    static STRIPES_CELL: OnceLock<[Mutex<HashMap<String, Cell>>; STRIPES]> = OnceLock::new();
    STRIPES_CELL.get_or_init(|| std::array::from_fn(|_| Mutex::new(HashMap::new())))
}

/// FNV-1a — stable stripe choice without `RandomState`.
fn stripe_of(path: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in path.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h as usize) % STRIPES
}

thread_local! {
    /// The current thread's span path, e.g. `"a + b + c"`.
    static PATH: RefCell<String> = const { RefCell::new(String::new()) };
}

/// RAII timer: created by [`mv_obs::span!`](crate::span!), records at
/// end of scope. Inert (and nearly free) while telemetry is disabled.
pub struct SpanGuard {
    start: Option<Instant>,
    /// Length to truncate the thread-local path back to on drop.
    prev_len: usize,
}

impl SpanGuard {
    #[inline(always)]
    pub fn begin(name: &'static str) -> SpanGuard {
        if !crate::enabled() {
            return SpanGuard {
                start: None,
                prev_len: 0,
            };
        }
        let prev_len = PATH.with(|p| {
            let mut p = p.borrow_mut();
            let prev = p.len();
            if !p.is_empty() {
                p.push_str(PATH_SEP);
            }
            p.push_str(name);
            prev
        });
        SpanGuard {
            start: Some(Instant::now()),
            prev_len,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed_ns = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let prev_len = self.prev_len;
        PATH.with(|p| {
            let mut p = p.borrow_mut();
            record(&p, elapsed_ns);
            p.truncate(prev_len);
        });
    }
}

fn record(path: &str, elapsed_ns: u64) {
    let mut map = stripes()[stripe_of(path)]
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    let cell = match map.get_mut(path) {
        Some(c) => c,
        None => map.entry(path.to_string()).or_default(),
    };
    cell.count += 1;
    cell.total_ns += elapsed_ns;
    cell.max_ns = cell.max_ns.max(elapsed_ns);
}

/// Reads every aggregated span path, sorted by path.
pub fn all() -> Vec<(String, Cell)> {
    let mut out: Vec<(String, Cell)> = Vec::new();
    for stripe in stripes() {
        let map = stripe.lock().unwrap_or_else(|e| e.into_inner());
        out.extend(map.iter().map(|(k, v)| (k.clone(), *v)));
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}
