//! # mv-obs — zero-cost-when-off telemetry for the mvcloud stack
//!
//! A process-global, **off-by-default** telemetry registry shared by
//! every crate between `mv-cost` and `mv-core`. While disabled, every
//! instrumentation site costs exactly one relaxed atomic load (the
//! [`enabled`] check) and touches nothing else — no allocation, no
//! locking, no clock reads — so the solver hot paths keep their bench
//! ratios. While enabled, four primitives record:
//!
//! | module       | primitive                | storage                                    |
//! |--------------|--------------------------|--------------------------------------------|
//! | [`counter`]  | monotonic counters       | enum-indexed `[AtomicU64; N]`, no hashing  |
//! | [`hist`]     | fixed-bucket histograms  | power-of-two buckets behind atomics        |
//! | [`span`]     | RAII span timers         | thread-local path stack → striped maps     |
//! | [`ring`]     | structured event ring    | bounded, lock-striped `VecDeque`s          |
//!
//! [`snapshot`] freezes all four into a [`Snapshot`] — a plain data
//! struct the CLI renders as versioned JSON (`--metrics <path|->`)
//! and advisor reports embed as their optional telemetry section.
//! [`Snapshot::since`] turns two captures into a delta, which is how
//! per-solve telemetry is scoped out of the process-global registry.
//!
//! ## Enabling
//!
//! [`enable`]/[`disable`] are *refcounted*: telemetry is on while at
//! least one enabler is live. Tests that assert on counter deltas use
//! [`CounterGuard`], which additionally holds a process-wide mutex so
//! delta-scoped sections never interleave with each other (the
//! cross-test hazard the old `IncrementalEvaluator` statics had).
//!
//! ## Identity guarantee
//!
//! Telemetry observes; it never steers. Enabled vs disabled must leave
//! every solver result bit-identical (property-tested in
//! `tests/obs_identity.rs` at the workspace root).

pub mod counter;
pub mod hist;
pub mod ring;
pub mod snapshot;
pub mod span;

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

pub use counter::{Counter, CounterGuard};
pub use hist::Hist;
pub use ring::Event;
pub use snapshot::{HistStat, Snapshot, SpanStat};
pub use span::SpanGuard;

/// Fast-path switch: one relaxed load per instrumentation site.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Refcount behind the switch so nested enablers compose.
static ENABLERS: AtomicUsize = AtomicUsize::new(0);

/// Whether telemetry is currently recording. This is the *only* cost
/// a disabled instrumentation site pays.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns telemetry on (refcounted — pair every call with [`disable`]).
pub fn enable() {
    ENABLERS.fetch_add(1, Ordering::SeqCst);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Releases one [`enable`]; recording stops when the last is released.
pub fn disable() {
    let prev = ENABLERS.fetch_sub(1, Ordering::SeqCst);
    debug_assert!(prev > 0, "disable() without matching enable()");
    if prev <= 1 {
        ENABLED.store(false, Ordering::SeqCst);
    }
}

/// RAII enabler: telemetry is on while the guard lives.
pub struct EnableGuard(());

impl EnableGuard {
    pub fn new() -> EnableGuard {
        enable();
        EnableGuard(())
    }
}

impl Default for EnableGuard {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for EnableGuard {
    fn drop(&mut self) {
        disable();
    }
}

/// Increments a [`Counter`] by one (no-op while disabled).
#[inline(always)]
pub fn inc(c: Counter) {
    counter::add(c, 1);
}

/// Adds `n` to a [`Counter`] (no-op while disabled).
#[inline(always)]
pub fn add(c: Counter, n: u64) {
    counter::add(c, n);
}

/// Records one observation into a [`Hist`] (no-op while disabled).
#[inline(always)]
pub fn record(h: Hist, value: u64) {
    hist::record(h, value);
}

/// Pushes a structured event into the bounded ring (no-op while
/// disabled). `fields` are small `(name, value)` pairs; the ring keeps
/// a bounded tail, so events are traces, not accounting — use
/// [`Counter`]s for totals.
#[inline(always)]
pub fn event(kind: &'static str, fields: &[(&'static str, f64)]) {
    ring::push(kind, fields);
}

/// Opens an RAII span timer under the current thread's span path.
///
/// ```
/// fn solve_node() {
///     mv_obs::span!("solve_tree/node");
///     // ... timed until end of scope, aggregated under the full
///     // call path (e.g. "market/solve + solve_tree/node").
/// }
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        let _mv_obs_span = $crate::span::SpanGuard::begin($name);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_refcounted() {
        let _serial = counter::CounterGuard::scoped();
        // The guard itself holds one enable.
        assert!(enabled());
        enable();
        enable();
        disable();
        assert!(enabled(), "still one extra enabler live");
        disable();
        assert!(enabled(), "guard's own enable keeps it on");
    }

    #[test]
    fn counters_only_move_while_enabled() {
        let guard = counter::CounterGuard::scoped();
        inc(Counter::EvaluatorBuild);
        assert_eq!(guard.delta(Counter::EvaluatorBuild), 1);
        drop(guard);
        let before = counter::get(Counter::EvaluatorBuild);
        inc(Counter::EvaluatorBuild);
        assert_eq!(counter::get(Counter::EvaluatorBuild), before);
    }

    #[test]
    fn span_paths_nest() {
        let _guard = counter::CounterGuard::scoped();
        let base = Snapshot::capture();
        {
            span!("outer");
            {
                span!("inner");
            }
        }
        let delta = Snapshot::capture().since(&base);
        assert_eq!(delta.span("outer").map(|s| s.count), Some(1));
        assert_eq!(delta.span("outer + inner").map(|s| s.count), Some(1));
    }

    #[test]
    fn event_ring_is_bounded_and_ordered() {
        let _guard = counter::CounterGuard::scoped();
        let base = Snapshot::capture();
        for i in 0..(ring::CAPACITY as u64 + 64) {
            event("tick", &[("i", i as f64)]);
        }
        let snap = Snapshot::capture().since(&base);
        assert!(snap.events.len() <= ring::CAPACITY);
        assert!(!snap.events.is_empty());
        for w in snap.events.windows(2) {
            assert!(w[0].seq < w[1].seq, "events sorted by sequence");
        }
        assert_eq!(snap.events_seen, ring::CAPACITY as u64 + 64);
    }
}
