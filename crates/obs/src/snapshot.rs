//! Point-in-time freezes of the registry, with delta arithmetic.
//!
//! [`Snapshot::capture`] reads every counter, histogram, span path and
//! the event tail into a plain data struct; [`Snapshot::since`] turns
//! two captures into a delta. Reports attach deltas (one solve's worth
//! of telemetry); the CLI's `--metrics` renders whichever snapshot the
//! caller hands it as versioned JSON.

use crate::ring::Event;
use crate::{counter, hist, ring, span};

/// Snapshot schema version, surfaced as `"version"` in JSON renders.
pub const SCHEMA_VERSION: u64 = 1;

/// One aggregated span path.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanStat {
    /// Full call path, e.g. `"market/solve + solve_tree/node"`.
    pub path: String,
    pub count: u64,
    pub total_ns: u64,
    /// Worst single occurrence. In a [`Snapshot::since`] delta this is
    /// the *lifetime* max (maxima don't subtract), which still upper-
    /// bounds the window's worst case.
    pub max_ns: u64,
}

/// One histogram: non-empty power-of-two buckets plus count and sum.
#[derive(Clone, Debug, PartialEq)]
pub struct HistStat {
    pub name: &'static str,
    /// Total observations (sum of bucket counts).
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// `(inclusive upper bound, count)` for non-empty buckets;
    /// `None` upper bound marks the overflow bucket.
    pub buckets: Vec<(Option<u64>, u64)>,
}

/// A frozen view of the whole registry. Plain data: safe to clone,
/// diff, embed in reports, or render long after capture.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Snapshot {
    /// Non-zero counters, `(name, value)`, in [`counter::Counter::ALL`] order.
    pub counters: Vec<(&'static str, u64)>,
    /// Histograms with at least one observation.
    pub histograms: Vec<HistStat>,
    /// Aggregated span paths, sorted by path.
    pub spans: Vec<SpanStat>,
    /// The retained event tail, ascending by `seq`.
    pub events: Vec<Event>,
    /// Total events ever emitted (≥ `events.len()`; the ring is
    /// bounded, so early events may have scrolled away).
    pub events_seen: u64,
}

impl Snapshot {
    /// Freezes the current registry contents.
    pub fn capture() -> Snapshot {
        let counters = counter::Counter::ALL
            .iter()
            .map(|&c| (c.name(), counter::get(c)))
            .filter(|&(_, v)| v != 0)
            .collect();
        let histograms = hist::Hist::ALL
            .iter()
            .filter_map(|&h| {
                let (buckets, sum) = hist::read(h);
                let count: u64 = buckets.iter().sum();
                (count != 0).then(|| HistStat {
                    name: h.name(),
                    count,
                    sum,
                    buckets: buckets
                        .iter()
                        .enumerate()
                        .filter(|&(_, &n)| n != 0)
                        .map(|(i, &n)| (hist::Hist::bucket_upper(i), n))
                        .collect(),
                })
            })
            .collect();
        let spans = span::all()
            .into_iter()
            .map(|(path, c)| SpanStat {
                path,
                count: c.count,
                total_ns: c.total_ns,
                max_ns: c.max_ns,
            })
            .collect();
        Snapshot {
            counters,
            histograms,
            spans,
            events: ring::tail(),
            events_seen: ring::seen(),
        }
    }

    /// Movement between `baseline` (earlier) and `self` (later):
    /// counters, histogram buckets and span counts/totals subtract;
    /// events are those emitted after the baseline (best-effort — the
    /// bounded ring may have evicted some); zero rows drop out.
    pub fn since(&self, baseline: &Snapshot) -> Snapshot {
        let base_counter = |name: &str| {
            baseline
                .counters
                .iter()
                .find(|(n, _)| *n == name)
                .map_or(0, |&(_, v)| v)
        };
        let counters = self
            .counters
            .iter()
            .map(|&(n, v)| (n, v.saturating_sub(base_counter(n))))
            .filter(|&(_, v)| v != 0)
            .collect();
        let histograms = self
            .histograms
            .iter()
            .filter_map(|h| {
                let base = baseline.histograms.iter().find(|b| b.name == h.name);
                let base_bucket = |upper: Option<u64>| {
                    base.map_or(0, |b| {
                        b.buckets
                            .iter()
                            .find(|(u, _)| *u == upper)
                            .map_or(0, |&(_, n)| n)
                    })
                };
                let buckets: Vec<(Option<u64>, u64)> = h
                    .buckets
                    .iter()
                    .map(|&(u, n)| (u, n.saturating_sub(base_bucket(u))))
                    .filter(|&(_, n)| n != 0)
                    .collect();
                let count = h.count.saturating_sub(base.map_or(0, |b| b.count));
                (count != 0).then(|| HistStat {
                    name: h.name,
                    count,
                    sum: h.sum.saturating_sub(base.map_or(0, |b| b.sum)),
                    buckets,
                })
            })
            .collect();
        let spans = self
            .spans
            .iter()
            .filter_map(|s| {
                let base = baseline.spans.iter().find(|b| b.path == s.path);
                let count = s.count.saturating_sub(base.map_or(0, |b| b.count));
                (count != 0).then(|| SpanStat {
                    path: s.path.clone(),
                    count,
                    total_ns: s.total_ns.saturating_sub(base.map_or(0, |b| b.total_ns)),
                    max_ns: s.max_ns,
                })
            })
            .collect();
        let events = self
            .events
            .iter()
            .filter(|e| e.seq >= baseline.events_seen)
            .cloned()
            .collect();
        Snapshot {
            counters,
            histograms,
            spans,
            events,
            events_seen: self.events_seen.saturating_sub(baseline.events_seen),
        }
    }

    /// Looks up a counter by its snapshot name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// Looks up a span by its full path.
    pub fn span(&self, path: &str) -> Option<&SpanStat> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// Sums span counts across every path whose *leaf* name is `name`
    /// (i.e. the path ends with `name`) — how many times that span ran
    /// regardless of what it nested under.
    pub fn span_count(&self, name: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.path == name || s.path.ends_with(&format!("{}{}", span::PATH_SEP, name)))
            .map(|s| s.count)
            .sum()
    }

    /// Whether nothing at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
            && self.events.is_empty()
    }
}
