//! Fixed-bucket histograms behind atomics.
//!
//! Buckets are powers of two: bucket `i` counts observations with
//! `value <= 2^i` (bucket 0 additionally takes 0), and the last bucket
//! is the overflow. Recording is a `leading_zeros` plus one relaxed
//! `fetch_add` — no allocation, no locking — cheap enough for the
//! evaluator's snapshot path.

use std::sync::atomic::{AtomicU64, Ordering};

/// Every histogram the stack records.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum Hist {
    /// Dirty time-blocks refreshed per `IncrementalEvaluator::snapshot`
    /// (the "delta size" of the dirty-delta snapshot protocol).
    SnapshotDirtyBlocks,
    /// Views destroyed per LNS destroy/repair round.
    LnsDestroySize,
    /// Children per scenario-tree node with 2+ children (fork width).
    TreeForkWidth,
}

/// Number of [`Hist`] variants.
pub const COUNT: usize = 3;

/// Buckets per histogram: upper bounds `2^0 .. 2^15`, then overflow.
pub const BUCKETS: usize = 17;

impl Hist {
    pub const ALL: [Hist; COUNT] = [
        Hist::SnapshotDirtyBlocks,
        Hist::LnsDestroySize,
        Hist::TreeForkWidth,
    ];

    /// Stable snapshot key, `subsystem/metric`.
    pub fn name(self) -> &'static str {
        match self {
            Hist::SnapshotDirtyBlocks => "evaluator/snapshot_dirty_blocks",
            Hist::LnsDestroySize => "lns/destroy_size",
            Hist::TreeForkWidth => "tree/fork_width",
        }
    }

    /// Inclusive upper bound of bucket `i` (`None` for the overflow).
    pub fn bucket_upper(i: usize) -> Option<u64> {
        (i + 1 < BUCKETS).then(|| 1u64 << i)
    }
}

static CELLS: [[AtomicU64; BUCKETS]; COUNT] =
    [const { [const { AtomicU64::new(0) }; BUCKETS] }; COUNT];
static SUMS: [AtomicU64; COUNT] = [const { AtomicU64::new(0) }; COUNT];

/// Bucket index for `value`: smallest `i` with `value <= 2^i`.
#[inline]
fn bucket_of(value: u64) -> usize {
    if value <= 1 {
        return 0;
    }
    // ceil(log2(value)) for value >= 2.
    let b = 64 - (value - 1).leading_zeros() as usize;
    b.min(BUCKETS - 1)
}

/// Records one observation — no-op while telemetry is disabled.
#[inline(always)]
pub fn record(h: Hist, value: u64) {
    if crate::enabled() {
        CELLS[h as usize][bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        SUMS[h as usize].fetch_add(value, Ordering::Relaxed);
    }
}

/// Reads histogram `h`: per-bucket counts plus the running sum.
pub fn read(h: Hist) -> ([u64; BUCKETS], u64) {
    let mut buckets = [0u64; BUCKETS];
    for (slot, cell) in buckets.iter_mut().zip(&CELLS[h as usize]) {
        *slot = cell.load(Ordering::Relaxed);
    }
    (buckets, SUMS[h as usize].load(Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(5), 3);
        assert_eq!(bucket_of(1 << 15), BUCKETS - 2);
        assert_eq!(bucket_of((1 << 15) + 1), BUCKETS - 1);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }
}
