//! Shared-prefix factoring of sampled price paths into a scenario tree.
//!
//! K sampled [`MarketPath`]s over an E-epoch horizon share long common
//! prefixes — mean-reverting spot paths diverge gradually, announced
//! cuts and traces not at all. A [`ScenarioTree`] factors the paths
//! into a prefix *forest*: one node per distinct quote-prefix, one edge
//! per epoch transition, each path ending at a leaf. A Monte-Carlo
//! solver can then solve every node **once** and branch its warm state
//! at the split points — one solve per edge instead of per path ×
//! epoch. A deterministic market degenerates to a single chain (one
//! root, E nodes, every path on the same leaf), generalizing the
//! all-or-nothing "solve path 0 once" dedup; coincidentally-identical
//! sampled paths collapse onto the same leaf for free.
//!
//! Two quotes are merged when every **solve-relevant** field matches
//! bit-for-bit: the three price factors and the interruption
//! *probability*. The Bernoulli interruption *event* flag is reporting
//! -only (expected-cost charging uses the probability) and is excluded
//! from the key — callers re-derive per-path events from
//! [`crate::MarketScenario::path`] when reporting replicas.

use serde::Serialize;

use crate::{EpochQuote, MarketPath};

/// The solve-relevant identity of a quote: factor and probability bits,
/// event flag excluded (see [`EpochQuote::solve_key`]).
fn quote_key(q: &EpochQuote) -> [u64; 4] {
    q.solve_key()
}

/// One node of a [`ScenarioTree`]: a distinct quote-prefix of some
/// sampled path, at a fixed epoch.
#[derive(Debug, Clone, Serialize)]
pub struct TreeNode {
    /// The previous epoch's node, `None` for a root (epoch-0 node).
    pub parent: Option<usize>,
    /// The epoch this node's quote applies to.
    pub epoch: usize,
    /// The node's quote, with the reporting-only `interrupted` flag
    /// normalized to `false` (it is not part of the node identity).
    pub quote: EpochQuote,
    /// Next-epoch nodes, in first-discovery (ascending path) order.
    pub children: Vec<usize>,
}

/// A prefix forest over K sampled paths. Nodes are stored
/// parent-before-child (roots first in path-discovery order), so a
/// single forward pass visits every parent before its children.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioTree {
    /// Horizon length every path spans.
    pub epochs: usize,
    nodes: Vec<TreeNode>,
    roots: Vec<usize>,
    leaf_of_path: Vec<usize>,
}

impl ScenarioTree {
    /// Factors `paths` (all spanning the same horizon) into a prefix
    /// forest. O(K·E·B) where B is the mean branching factor (children
    /// are matched by linear scan — K is small).
    ///
    /// # Panics
    /// Panics if `paths` is empty, any path is empty, or the paths span
    /// different horizons.
    pub fn from_paths(paths: &[MarketPath]) -> ScenarioTree {
        assert!(!paths.is_empty(), "scenario tree needs at least one path");
        let epochs = paths[0].quotes.len();
        assert!(epochs > 0, "scenario tree needs at least one epoch");
        let mut tree = ScenarioTree {
            epochs,
            nodes: Vec::new(),
            roots: Vec::new(),
            leaf_of_path: Vec::with_capacity(paths.len()),
        };
        for path in paths {
            assert_eq!(
                path.quotes.len(),
                epochs,
                "every path must span the same horizon"
            );
            let mut at: Option<usize> = None;
            for (epoch, quote) in path.quotes.iter().enumerate() {
                let key = quote_key(quote);
                let siblings = match at {
                    None => &tree.roots,
                    Some(p) => &tree.nodes[p].children,
                };
                let found = siblings
                    .iter()
                    .copied()
                    .find(|&c| quote_key(&tree.nodes[c].quote) == key);
                let node = match found {
                    Some(c) => c,
                    None => {
                        let idx = tree.nodes.len();
                        tree.nodes.push(TreeNode {
                            parent: at,
                            epoch,
                            quote: EpochQuote {
                                interrupted: false,
                                ..*quote
                            },
                            children: Vec::new(),
                        });
                        match at {
                            None => tree.roots.push(idx),
                            Some(p) => tree.nodes[p].children.push(idx),
                        }
                        idx
                    }
                };
                at = Some(node);
            }
            tree.leaf_of_path
                .push(at.expect("at least one epoch per path"));
        }
        tree
    }

    /// Every node, parent-before-child.
    pub fn nodes(&self) -> &[TreeNode] {
        &self.nodes
    }

    /// Total node count (= solves a tree-aware solver performs).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the tree has no nodes (never constructible via
    /// [`ScenarioTree::from_paths`]).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The epoch-0 nodes, in path-discovery order. Each costs a fresh
    /// evaluator build; everything below is a warm retarget.
    pub fn roots(&self) -> &[usize] {
        &self.roots
    }

    /// Edge count: nodes minus roots — the number of warm epoch
    /// transitions a tree-aware solver pays.
    pub fn edges(&self) -> usize {
        self.nodes.len() - self.roots.len()
    }

    /// The leaf node path `j` ends at. Identical sampled paths share a
    /// leaf.
    pub fn leaf_of(&self, path: usize) -> usize {
        self.leaf_of_path[path]
    }

    /// Number of distinct leaves (= distinct quote sequences among the
    /// input paths).
    pub fn distinct_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.epoch == self.epochs - 1)
            .count()
    }

    /// The root→leaf node chain for path `j`, in epoch order (length =
    /// `epochs`).
    pub fn path_nodes(&self, path: usize) -> Vec<usize> {
        let mut chain = Vec::with_capacity(self.epochs);
        let mut at = Some(self.leaf_of(path));
        while let Some(n) = at {
            chain.push(n);
            at = self.nodes[n].parent;
        }
        chain.reverse();
        chain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MarketScenario, PriceProcess, SpotMarket};

    fn sample(scenario: &MarketScenario, k: usize) -> Vec<MarketPath> {
        (0..k).map(|j| scenario.path(j)).collect()
    }

    #[test]
    fn deterministic_market_degenerates_to_a_chain() {
        let m = MarketScenario::constant(6, 42);
        let tree = ScenarioTree::from_paths(&sample(&m, 8));
        assert_eq!(tree.len(), 6);
        assert_eq!(tree.roots().len(), 1);
        assert_eq!(tree.edges(), 5);
        assert_eq!(tree.distinct_leaves(), 1);
        for j in 0..8 {
            assert_eq!(tree.leaf_of(j), 5);
            assert_eq!(tree.path_nodes(j), vec![0, 1, 2, 3, 4, 5]);
        }
    }

    #[test]
    fn volatile_market_still_shares_prefixes() {
        let m = MarketScenario::constant(6, 99)
            .with(PriceProcess::Spot(SpotMarket::with_volatility(0.5)));
        let paths = sample(&m, 16);
        let tree = ScenarioTree::from_paths(&paths);
        // The spot process pins epoch 0 to `start`, so all paths share
        // one root and the tree is strictly smaller than K·E.
        assert_eq!(tree.roots().len(), 1);
        assert!(tree.len() < 16 * 6, "tree {} nodes", tree.len());
        // Every path's chain reproduces its own quotes (solve-relevant
        // fields).
        for (j, p) in paths.iter().enumerate() {
            let chain = tree.path_nodes(j);
            assert_eq!(chain.len(), 6);
            for (e, &n) in chain.iter().enumerate() {
                let node = &tree.nodes()[n];
                assert_eq!(node.epoch, e);
                assert_eq!(node.quote.factors, p.quotes[e].factors);
                assert_eq!(node.quote.interruption, p.quotes[e].interruption);
            }
        }
    }

    #[test]
    fn nodes_are_parent_before_child() {
        let m = MarketScenario::constant(5, 7)
            .with(PriceProcess::Spot(SpotMarket::discounted(0.5, 0.4)));
        let tree = ScenarioTree::from_paths(&sample(&m, 12));
        for (idx, node) in tree.nodes().iter().enumerate() {
            if let Some(p) = node.parent {
                assert!(p < idx, "node {idx} precedes its parent {p}");
            } else {
                assert_eq!(node.epoch, 0);
            }
            for &c in &node.children {
                assert!(c > idx);
                assert_eq!(tree.nodes()[c].parent, Some(idx));
            }
        }
        // Edge accounting: every non-root has exactly one parent edge.
        let non_roots = tree.len() - tree.roots().len();
        assert_eq!(tree.edges(), non_roots);
    }

    #[test]
    fn identical_sampled_paths_share_a_leaf() {
        // Hand-build two identical paths plus one divergent path.
        let m = MarketScenario::constant(4, 1);
        let a = m.path(0);
        let b = m.path(1); // constant market: identical quotes
        let mut c = m.path(2);
        c.quotes[2].factors.compute = 0.5;
        let tree = ScenarioTree::from_paths(&[a, b, c]);
        assert_eq!(tree.leaf_of(0), tree.leaf_of(1));
        assert_ne!(tree.leaf_of(0), tree.leaf_of(2));
        assert_eq!(tree.distinct_leaves(), 2);
        // Shared prefix: epochs 0–1 are shared, 2–3 split.
        assert_eq!(tree.len(), 4 + 2);
    }

    #[test]
    #[should_panic(expected = "same horizon")]
    fn mismatched_horizons_panic() {
        let a = MarketScenario::constant(3, 1).path(0);
        let b = MarketScenario::constant(4, 1).path(0);
        ScenarioTree::from_paths(&[a, b]);
    }

    #[test]
    #[should_panic(expected = "at least one path")]
    fn empty_path_set_panics() {
        ScenarioTree::from_paths(&[]);
    }
}
