//! Composable price processes.
//!
//! Each process describes one force acting on a provider's price sheet
//! over a billing horizon — a replayed historical trace, an announced
//! price cut, the secular decline of storage rates, a fluctuating spot
//! market. A process samples a whole horizon at once
//! ([`PriceProcess::sample`]): per epoch it yields a [`PriceFactors`]
//! multiplier triple plus an interruption probability, and a
//! [`crate::MarketScenario`] multiplies the factors of its whole
//! process stack together (probabilities combine as independent
//! hazards).
//!
//! Everything is reproducible from an explicit seed: stochastic
//! processes draw from the seeded generator they are handed, in a fixed
//! order; deterministic processes ignore it (and consume no draws, so
//! adding a deterministic process never perturbs a stochastic one's
//! stream).

use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

use crate::MAX_INTERRUPTION;

/// Multiplicative factors applied to the three billed components of a
/// pricing policy for one epoch. `1.0` everywhere is the identity (and
/// re-pricing through it is bit-exact, see
/// `mv_pricing::PricingPolicy::scale_rates`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PriceFactors {
    /// Instance-hour rate multiplier.
    pub compute: f64,
    /// $/GB-month storage rate multiplier.
    pub storage: f64,
    /// Transfer rate multiplier.
    pub transfer: f64,
}

impl PriceFactors {
    /// The identity: base prices unchanged.
    pub const UNIT: PriceFactors = PriceFactors {
        compute: 1.0,
        storage: 1.0,
        transfer: 1.0,
    };

    /// Component-wise product (stacked processes compose
    /// multiplicatively).
    pub fn combine(self, other: PriceFactors) -> PriceFactors {
        PriceFactors {
            compute: self.compute * other.compute,
            storage: self.storage * other.storage,
            transfer: self.transfer * other.transfer,
        }
    }

    /// `true` when every factor is exactly `1.0`.
    pub fn is_unit(self) -> bool {
        self == PriceFactors::UNIT
    }
}

/// One epoch of one process's output: price factors plus the epoch's
/// interruption probability under that process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcessQuote {
    /// Multiplicative price factors for the epoch.
    pub factors: PriceFactors,
    /// Probability that the fleet is interrupted mid-epoch (0 for
    /// everything but spot capacity).
    pub interruption: f64,
}

impl ProcessQuote {
    /// The do-nothing quote.
    pub const UNIT: ProcessQuote = ProcessQuote {
        factors: PriceFactors::UNIT,
        interruption: 0.0,
    };
}

/// A deterministic per-epoch factor trace (replayed history, a what-if
/// schedule, a regulator-mandated price path). Traces shorter than the
/// horizon hold their last value; empty traces are the identity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PriceTrace {
    /// Per-epoch compute factors.
    pub compute: Vec<f64>,
    /// Per-epoch storage factors.
    pub storage: Vec<f64>,
    /// Per-epoch transfer factors.
    pub transfer: Vec<f64>,
    /// Per-epoch interruption probabilities.
    pub interruption: Vec<f64>,
}

impl PriceTrace {
    /// An empty (identity) trace.
    pub fn new() -> Self {
        PriceTrace {
            compute: Vec::new(),
            storage: Vec::new(),
            transfer: Vec::new(),
            interruption: Vec::new(),
        }
    }

    /// A trace replaying the given compute factors.
    pub fn compute(factors: Vec<f64>) -> Self {
        PriceTrace {
            compute: factors,
            ..PriceTrace::new()
        }
    }

    fn at(trace: &[f64], epoch: usize, default: f64) -> f64 {
        match trace.get(epoch) {
            Some(v) => *v,
            None => *trace.last().unwrap_or(&default),
        }
    }

    fn quote(&self, epoch: usize) -> ProcessQuote {
        ProcessQuote {
            factors: PriceFactors {
                compute: Self::at(&self.compute, epoch, 1.0),
                storage: Self::at(&self.storage, epoch, 1.0),
                transfer: Self::at(&self.transfer, epoch, 1.0),
            },
            interruption: Self::at(&self.interruption, epoch, 0.0).clamp(0.0, MAX_INTERRUPTION),
        }
    }
}

impl Default for PriceTrace {
    fn default() -> Self {
        PriceTrace::new()
    }
}

/// A provider-announced step change taking effect at a known epoch —
/// the "we are cutting instance prices by 15% next quarter" pattern
/// cloud vendors repeated throughout the 2010s. Factors apply from
/// `effective_epoch` onward; earlier epochs are untouched.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnnouncedCut {
    /// First epoch the new prices apply to.
    pub effective_epoch: usize,
    /// Factors in force from that epoch on.
    pub factors: PriceFactors,
}

impl AnnouncedCut {
    /// A compute-only cut: hourly rates multiply by `factor` from
    /// `effective_epoch` onward.
    pub fn compute(effective_epoch: usize, factor: f64) -> Self {
        AnnouncedCut {
            effective_epoch,
            factors: PriceFactors {
                compute: factor,
                ..PriceFactors::UNIT
            },
        }
    }

    fn quote(&self, epoch: usize) -> ProcessQuote {
        if epoch >= self.effective_epoch {
            ProcessQuote {
                factors: self.factors,
                interruption: 0.0,
            }
        } else {
            ProcessQuote::UNIT
        }
    }
}

/// Secular storage-price decline: the storage factor decays linearly by
/// `rate` per epoch down to `floor` (e.g. `rate = 0.02`, `floor = 0.5`
/// models the steady multi-year slide of object-storage rates).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StorageDecay {
    /// Linear per-epoch decline of the storage factor.
    pub rate: f64,
    /// Lowest factor the decline can reach.
    pub floor: f64,
}

impl StorageDecay {
    /// Builds a decay, clamping to sane ranges.
    pub fn new(rate: f64, floor: f64) -> Self {
        StorageDecay {
            rate: rate.max(0.0),
            floor: floor.clamp(0.0, 1.0),
        }
    }

    fn quote(&self, epoch: usize) -> ProcessQuote {
        ProcessQuote {
            factors: PriceFactors {
                storage: (1.0 - self.rate * epoch as f64).max(self.floor),
                ..PriceFactors::UNIT
            },
            interruption: 0.0,
        }
    }
}

/// A seeded mean-reverting spot market for compute, with interruption
/// risk once the clearing price climbs toward the renter's bid.
///
/// The compute factor follows a discrete Ornstein–Uhlenbeck-style
/// recurrence: `x ← x + reversion·(mean − x) + volatility·u` with `u`
/// uniform on [−1, 1] drawn from the scenario's seeded generator, then
/// floored at a small positive value. The interruption probability is 0
/// while `x ≤ bid` and ramps linearly to `max_interruption` as `x`
/// approaches `2·bid` — the classic spot contract: you keep capacity
/// while the market clears under your bid, and the further the market
/// moves past it the likelier a reclaim becomes.
///
/// With `volatility == 0` and `start == mean == 1 ≤ bid` the process is
/// the exact identity (factor 1, probability 0) — the zero-volatility
/// consistency guarantee leans on this.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpotMarket {
    /// Long-run mean of the compute factor (e.g. 0.35: spot clears at a
    /// third of the on-demand rate on average).
    pub mean: f64,
    /// Initial compute factor.
    pub start: f64,
    /// Per-epoch pull toward the mean, in [0, 1].
    pub reversion: f64,
    /// Half-width of the uniform per-epoch shock.
    pub volatility: f64,
    /// Compute factor above which interruption risk begins.
    pub bid: f64,
    /// Interruption probability as the price reaches twice the bid.
    pub max_interruption: f64,
}

impl SpotMarket {
    /// Smallest admissible price factor (prices never reach zero).
    pub const PRICE_FLOOR: f64 = 0.01;

    /// A calm spot market centered on the on-demand price: mean and
    /// start 1.0, mild reversion, the given volatility, interruptions
    /// ramping above a 1.2× bid.
    pub fn with_volatility(volatility: f64) -> Self {
        SpotMarket {
            mean: 1.0,
            start: 1.0,
            reversion: 0.35,
            volatility,
            bid: 1.2,
            max_interruption: 0.6,
        }
    }

    /// A discounted spot regime: clears well under on-demand on
    /// average, but swings hard and reclaims capacity in spikes.
    pub fn discounted(mean: f64, volatility: f64) -> Self {
        SpotMarket {
            mean,
            start: mean,
            reversion: 0.35,
            volatility,
            bid: 1.0,
            max_interruption: 0.6,
        }
    }

    /// Interruption probability at compute factor `x`.
    fn interruption_at(&self, x: f64) -> f64 {
        if x <= self.bid || self.bid <= 0.0 {
            return 0.0;
        }
        let ramp = ((x - self.bid) / self.bid).min(1.0);
        (self.max_interruption * ramp).clamp(0.0, MAX_INTERRUPTION)
    }

    fn sample(&self, epochs: usize, rng: &mut StdRng) -> Vec<ProcessQuote> {
        let mut quotes = Vec::with_capacity(epochs);
        let mut x = self.start.max(Self::PRICE_FLOOR);
        for _ in 0..epochs {
            quotes.push(ProcessQuote {
                factors: PriceFactors {
                    compute: x,
                    ..PriceFactors::UNIT
                },
                interruption: self.interruption_at(x),
            });
            let shock = if self.volatility > 0.0 {
                self.volatility * rng.random_range(-1.0f64..1.0)
            } else {
                // Draw nothing: a zero-volatility spot process must not
                // perturb the stream of any stochastic process after it.
                0.0
            };
            x = (x + self.reversion * (self.mean - x) + shock).max(Self::PRICE_FLOOR);
        }
        quotes
    }
}

/// Bursty, regime-switching interruption hazard: a two-state
/// calm/crunch Markov chain modulating the quoted interruption
/// probability (and optionally the compute factor) — capacity crunches
/// hit *consecutive* epochs, unlike the i.i.d. hazards of
/// [`PriceTrace`] and [`SpotMarket`].
///
/// The regime chain is parameterized by its stationary crunch share
/// `π` and its epoch-to-epoch persistence `ρ` (the regime's lag-1
/// autocorrelation): from any epoch, the next is a crunch with
/// probability `π(1−ρ) + ρ·[current is crunch]`. Two boundary
/// identities the conformance tests pin:
///
/// * **`ρ = 0` is the independent-hazard process exactly** — every
///   epoch is an i.i.d. Bernoulli(π) crunch, one uniform draw per
///   epoch, reproducible from the scenario's seeded generator
///   (`tests/fleet.rs` reconstructs the draws by hand and matches the
///   quotes bit-for-bit);
/// * **a degenerate regime quotes deterministically** — `π ∈ {0, 1}`,
///   or `calm == crunch` with a unit crunch factor, yields identical
///   quotes on every path ([`PriceProcess::is_stochastic`] reports
///   `false` and the Monte-Carlo dedup collapses to one solve).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorrelatedHazard {
    /// Stationary probability `π` of an epoch being in the crunch
    /// regime, in `[0, 1]`.
    pub crunch_share: f64,
    /// Epoch-to-epoch persistence `ρ` of the regime, in `[0, 1)`:
    /// `0` = i.i.d. crunches, `→ 1` = long contiguous crunches.
    pub persistence: f64,
    /// Interruption probability quoted in calm epochs.
    pub calm: f64,
    /// Interruption probability quoted in crunch epochs.
    pub crunch: f64,
    /// Compute-factor multiplier during a crunch (capacity crunches
    /// also spike clearing prices; `1.0` = hazard only).
    pub crunch_compute: f64,
}

impl CorrelatedHazard {
    /// A bursty spot-reclaim regime: calm epochs are risk-free, crunch
    /// epochs interrupt with probability `crunch`, crunches cover
    /// `share` of epochs on average and persist with autocorrelation
    /// `persistence`.
    pub fn bursty(share: f64, persistence: f64, crunch: f64) -> Self {
        CorrelatedHazard {
            crunch_share: share,
            persistence,
            calm: 0.0,
            crunch,
            crunch_compute: 1.0,
        }
    }

    /// Sets the crunch-epoch compute multiplier (builder style).
    pub fn with_crunch_compute(mut self, factor: f64) -> Self {
        self.crunch_compute = factor;
        self
    }

    /// The sanitized parameters the sampler actually uses.
    fn sanitized(&self) -> (f64, f64, f64, f64, f64) {
        let clamp01 = |x: f64| {
            if x.is_finite() {
                x.clamp(0.0, 1.0)
            } else {
                0.0
            }
        };
        (
            clamp01(self.crunch_share),
            if self.persistence.is_finite() {
                self.persistence.clamp(0.0, 0.999_999)
            } else {
                0.0
            },
            clamp01(self.calm).min(MAX_INTERRUPTION),
            clamp01(self.crunch).min(MAX_INTERRUPTION),
            if self.crunch_compute.is_finite() && self.crunch_compute > 0.0 {
                self.crunch_compute
            } else {
                1.0
            },
        )
    }

    fn sample(&self, epochs: usize, rng: &mut StdRng) -> Vec<ProcessQuote> {
        let (share, rho, calm, crunch, crunch_compute) = self.sanitized();
        let mut quotes = Vec::with_capacity(epochs);
        let mut in_crunch = false;
        for e in 0..epochs {
            // Epoch 0 draws the stationary distribution; later epochs
            // mix persistence in. One uniform per epoch, so ρ = 0 is
            // exactly the i.i.d. Bernoulli(π) draw sequence.
            let p = if e == 0 {
                share
            } else {
                share * (1.0 - rho) + rho * f64::from(in_crunch)
            };
            in_crunch = rng.random_range(0.0f64..1.0) < p;
            quotes.push(ProcessQuote {
                factors: PriceFactors {
                    compute: if in_crunch { crunch_compute } else { 1.0 },
                    ..PriceFactors::UNIT
                },
                interruption: if in_crunch { crunch } else { calm },
            });
        }
        quotes
    }

    /// Whether two paths can quote differently: the regime must be
    /// able to vary *and* the two regimes must quote differently.
    fn is_stochastic(&self) -> bool {
        let (share, _, calm, crunch, crunch_compute) = self.sanitized();
        share > 0.0 && share < 1.0 && (calm != crunch || crunch_compute != 1.0)
    }
}

/// One composable force on the price sheet. See the variants' types for
/// semantics; [`PriceProcess::sample`] yields the whole horizon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PriceProcess {
    /// Deterministic trace replay.
    Trace(PriceTrace),
    /// Announced step price change.
    Cut(AnnouncedCut),
    /// Linear storage-rate decline.
    StorageDecay(StorageDecay),
    /// Seeded mean-reverting spot market with interruption risk.
    Spot(SpotMarket),
    /// Two-state calm/crunch Markov modulation of the interruption
    /// hazard (correlated, bursty reclaims).
    Correlated(CorrelatedHazard),
}

impl PriceProcess {
    /// Samples the process over `epochs` epochs. Stochastic variants
    /// draw from `rng` in a fixed order; deterministic variants consume
    /// no draws.
    pub fn sample(&self, epochs: usize, rng: &mut StdRng) -> Vec<ProcessQuote> {
        match self {
            PriceProcess::Trace(t) => (0..epochs).map(|e| t.quote(e)).collect(),
            PriceProcess::Cut(c) => (0..epochs).map(|e| c.quote(e)).collect(),
            PriceProcess::StorageDecay(d) => (0..epochs).map(|e| d.quote(e)).collect(),
            PriceProcess::Spot(s) => s.sample(epochs, rng),
            PriceProcess::Correlated(h) => h.sample(epochs, rng),
        }
    }

    /// `true` when sampling can yield *different quotes on different
    /// paths* — only such processes spread the Monte-Carlo envelope
    /// (the per-epoch interruption *event* draw is always
    /// path-specific). A [`CorrelatedHazard`] always consumes draws,
    /// but a degenerate regime quotes identically on every path and so
    /// still reports `false`.
    pub fn is_stochastic(&self) -> bool {
        match self {
            PriceProcess::Spot(s) => s.volatility > 0.0,
            PriceProcess::Correlated(h) => h.is_stochastic(),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn traces_hold_their_last_value() {
        let t = PriceTrace::compute(vec![1.0, 0.9, 0.8]);
        assert_eq!(t.quote(0).factors.compute, 1.0);
        assert_eq!(t.quote(2).factors.compute, 0.8);
        assert_eq!(t.quote(7).factors.compute, 0.8);
        assert_eq!(t.quote(7).factors.storage, 1.0);
        assert!(PriceTrace::new().quote(3).factors.is_unit());
    }

    #[test]
    fn cuts_take_effect_on_schedule() {
        let c = AnnouncedCut::compute(3, 0.85);
        assert!(c.quote(2).factors.is_unit());
        assert_eq!(c.quote(3).factors.compute, 0.85);
        assert_eq!(c.quote(9).factors.compute, 0.85);
    }

    #[test]
    fn storage_decay_is_floored() {
        let d = StorageDecay::new(0.1, 0.5);
        assert_eq!(d.quote(0).factors.storage, 1.0);
        assert_eq!(d.quote(3).factors.storage, 0.7);
        assert_eq!(d.quote(40).factors.storage, 0.5);
        assert_eq!(d.quote(3).factors.compute, 1.0);
    }

    #[test]
    fn zero_volatility_spot_is_identity_and_draws_nothing() {
        let spot = SpotMarket::with_volatility(0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let quotes = spot.sample(6, &mut rng);
        for q in &quotes {
            assert!(q.factors.is_unit());
            assert_eq!(q.interruption, 0.0);
        }
        // The generator was never touched.
        let mut fresh = StdRng::seed_from_u64(7);
        use rand::RngExt;
        assert_eq!(rng.next_u64(), fresh.next_u64());
    }

    #[test]
    fn spot_reverts_to_the_mean_and_ramps_interruption() {
        let spot = SpotMarket {
            mean: 0.4,
            start: 2.0,
            reversion: 0.5,
            volatility: 0.0,
            bid: 1.0,
            max_interruption: 0.6,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let quotes = spot.sample(12, &mut rng);
        // Starts hot (interrupting), decays toward the mean and calms.
        assert_eq!(quotes[0].factors.compute, 2.0);
        assert!(quotes[0].interruption > 0.0);
        assert!(quotes[11].factors.compute < 0.45);
        assert_eq!(quotes[11].interruption, 0.0);
        for w in quotes.windows(2) {
            assert!(w[1].factors.compute <= w[0].factors.compute);
        }
    }

    #[test]
    fn zero_persistence_hazard_is_iid_bernoulli() {
        // ρ = 0: one uniform per epoch against the stationary share —
        // reconstruct the draw sequence by hand and match bit-for-bit.
        let hazard = CorrelatedHazard::bursty(0.3, 0.0, 0.5);
        let mut rng = StdRng::seed_from_u64(99);
        let quotes = hazard.sample(32, &mut rng);
        let mut mirror = StdRng::seed_from_u64(99);
        for (e, q) in quotes.iter().enumerate() {
            let crunch = mirror.random_range(0.0f64..1.0) < 0.3;
            assert_eq!(q.interruption, if crunch { 0.5 } else { 0.0 }, "epoch {e}");
            assert!(q.factors.is_unit());
        }
    }

    #[test]
    fn persistent_crunches_cluster() {
        // High persistence: crunch epochs arrive in runs. Compare the
        // number of regime switches against the i.i.d. variant at the
        // same stationary share over a long horizon.
        let switches = |quotes: &[ProcessQuote]| -> usize {
            quotes
                .windows(2)
                .filter(|w| (w[0].interruption > 0.0) != (w[1].interruption > 0.0))
                .count()
        };
        let sticky = CorrelatedHazard::bursty(0.4, 0.9, 0.6);
        let iid = CorrelatedHazard::bursty(0.4, 0.0, 0.6);
        let mut sticky_switches = 0;
        let mut iid_switches = 0;
        for seed in 0..20 {
            sticky_switches += switches(&sticky.sample(64, &mut StdRng::seed_from_u64(seed)));
            iid_switches += switches(&iid.sample(64, &mut StdRng::seed_from_u64(seed)));
        }
        assert!(
            sticky_switches * 2 < iid_switches,
            "persistent regimes should switch far less: {sticky_switches} vs {iid_switches}"
        );
    }

    #[test]
    fn crunch_factor_reaches_the_compute_quote() {
        let hazard = CorrelatedHazard::bursty(1.0, 0.5, 0.4).with_crunch_compute(1.5);
        let quotes = hazard.sample(4, &mut StdRng::seed_from_u64(1));
        for q in &quotes {
            assert_eq!(q.factors.compute, 1.5);
            assert_eq!(q.interruption, 0.4);
        }
    }

    #[test]
    fn degenerate_hazards_are_deterministic() {
        // π ∈ {0, 1} or indistinguishable regimes: not stochastic, and
        // the quotes really are path-independent.
        for h in [
            CorrelatedHazard::bursty(0.0, 0.5, 0.6),
            CorrelatedHazard::bursty(1.0, 0.5, 0.6),
            CorrelatedHazard {
                crunch_share: 0.4,
                persistence: 0.5,
                calm: 0.3,
                crunch: 0.3,
                crunch_compute: 1.0,
            },
        ] {
            assert!(!PriceProcess::Correlated(h).is_stochastic());
            let a = h.sample(12, &mut StdRng::seed_from_u64(7));
            let b = h.sample(12, &mut StdRng::seed_from_u64(1234));
            assert_eq!(a, b);
        }
        assert!(PriceProcess::Correlated(CorrelatedHazard::bursty(0.4, 0.5, 0.6)).is_stochastic());
    }

    #[test]
    fn hazard_parameters_are_sanitized() {
        let wild = CorrelatedHazard {
            crunch_share: f64::NAN,
            persistence: 2.0,
            calm: -1.0,
            crunch: 7.0,
            crunch_compute: -3.0,
        };
        let quotes = wild.sample(6, &mut StdRng::seed_from_u64(3));
        for q in &quotes {
            assert!(q.factors.compute > 0.0);
            assert!((0.0..=MAX_INTERRUPTION).contains(&q.interruption));
        }
    }

    #[test]
    fn spot_paths_are_seed_deterministic() {
        let spot = SpotMarket::with_volatility(0.3);
        let a = spot.sample(10, &mut StdRng::seed_from_u64(42));
        let b = spot.sample(10, &mut StdRng::seed_from_u64(42));
        let c = spot.sample(10, &mut StdRng::seed_from_u64(43));
        assert_eq!(a, b);
        assert_ne!(a, c);
        for q in &a {
            assert!(q.factors.compute >= SpotMarket::PRICE_FLOOR);
            assert!((0.0..=MAX_INTERRUPTION).contains(&q.interruption));
        }
    }
}
