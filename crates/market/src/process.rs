//! Composable price processes.
//!
//! Each process describes one force acting on a provider's price sheet
//! over a billing horizon — a replayed historical trace, an announced
//! price cut, the secular decline of storage rates, a fluctuating spot
//! market. A process samples a whole horizon at once
//! ([`PriceProcess::sample`]): per epoch it yields a [`PriceFactors`]
//! multiplier triple plus an interruption probability, and a
//! [`crate::MarketScenario`] multiplies the factors of its whole
//! process stack together (probabilities combine as independent
//! hazards).
//!
//! Everything is reproducible from an explicit seed: stochastic
//! processes draw from the seeded generator they are handed, in a fixed
//! order; deterministic processes ignore it (and consume no draws, so
//! adding a deterministic process never perturbs a stochastic one's
//! stream).

use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

use crate::MAX_INTERRUPTION;

/// Multiplicative factors applied to the three billed components of a
/// pricing policy for one epoch. `1.0` everywhere is the identity (and
/// re-pricing through it is bit-exact, see
/// `mv_pricing::PricingPolicy::scale_rates`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PriceFactors {
    /// Instance-hour rate multiplier.
    pub compute: f64,
    /// $/GB-month storage rate multiplier.
    pub storage: f64,
    /// Transfer rate multiplier.
    pub transfer: f64,
}

impl PriceFactors {
    /// The identity: base prices unchanged.
    pub const UNIT: PriceFactors = PriceFactors {
        compute: 1.0,
        storage: 1.0,
        transfer: 1.0,
    };

    /// Component-wise product (stacked processes compose
    /// multiplicatively).
    pub fn combine(self, other: PriceFactors) -> PriceFactors {
        PriceFactors {
            compute: self.compute * other.compute,
            storage: self.storage * other.storage,
            transfer: self.transfer * other.transfer,
        }
    }

    /// `true` when every factor is exactly `1.0`.
    pub fn is_unit(self) -> bool {
        self == PriceFactors::UNIT
    }
}

/// One epoch of one process's output: price factors plus the epoch's
/// interruption probability under that process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcessQuote {
    /// Multiplicative price factors for the epoch.
    pub factors: PriceFactors,
    /// Probability that the fleet is interrupted mid-epoch (0 for
    /// everything but spot capacity).
    pub interruption: f64,
}

impl ProcessQuote {
    /// The do-nothing quote.
    pub const UNIT: ProcessQuote = ProcessQuote {
        factors: PriceFactors::UNIT,
        interruption: 0.0,
    };
}

/// A deterministic per-epoch factor trace (replayed history, a what-if
/// schedule, a regulator-mandated price path). Traces shorter than the
/// horizon hold their last value; empty traces are the identity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PriceTrace {
    /// Per-epoch compute factors.
    pub compute: Vec<f64>,
    /// Per-epoch storage factors.
    pub storage: Vec<f64>,
    /// Per-epoch transfer factors.
    pub transfer: Vec<f64>,
    /// Per-epoch interruption probabilities.
    pub interruption: Vec<f64>,
}

impl PriceTrace {
    /// An empty (identity) trace.
    pub fn new() -> Self {
        PriceTrace {
            compute: Vec::new(),
            storage: Vec::new(),
            transfer: Vec::new(),
            interruption: Vec::new(),
        }
    }

    /// A trace replaying the given compute factors.
    pub fn compute(factors: Vec<f64>) -> Self {
        PriceTrace {
            compute: factors,
            ..PriceTrace::new()
        }
    }

    fn at(trace: &[f64], epoch: usize, default: f64) -> f64 {
        match trace.get(epoch) {
            Some(v) => *v,
            None => *trace.last().unwrap_or(&default),
        }
    }

    fn quote(&self, epoch: usize) -> ProcessQuote {
        ProcessQuote {
            factors: PriceFactors {
                compute: Self::at(&self.compute, epoch, 1.0),
                storage: Self::at(&self.storage, epoch, 1.0),
                transfer: Self::at(&self.transfer, epoch, 1.0),
            },
            interruption: Self::at(&self.interruption, epoch, 0.0).clamp(0.0, MAX_INTERRUPTION),
        }
    }
}

impl Default for PriceTrace {
    fn default() -> Self {
        PriceTrace::new()
    }
}

/// A provider-announced step change taking effect at a known epoch —
/// the "we are cutting instance prices by 15% next quarter" pattern
/// cloud vendors repeated throughout the 2010s. Factors apply from
/// `effective_epoch` onward; earlier epochs are untouched.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnnouncedCut {
    /// First epoch the new prices apply to.
    pub effective_epoch: usize,
    /// Factors in force from that epoch on.
    pub factors: PriceFactors,
}

impl AnnouncedCut {
    /// A compute-only cut: hourly rates multiply by `factor` from
    /// `effective_epoch` onward.
    pub fn compute(effective_epoch: usize, factor: f64) -> Self {
        AnnouncedCut {
            effective_epoch,
            factors: PriceFactors {
                compute: factor,
                ..PriceFactors::UNIT
            },
        }
    }

    fn quote(&self, epoch: usize) -> ProcessQuote {
        if epoch >= self.effective_epoch {
            ProcessQuote {
                factors: self.factors,
                interruption: 0.0,
            }
        } else {
            ProcessQuote::UNIT
        }
    }
}

/// Secular storage-price decline: the storage factor decays linearly by
/// `rate` per epoch down to `floor` (e.g. `rate = 0.02`, `floor = 0.5`
/// models the steady multi-year slide of object-storage rates).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StorageDecay {
    /// Linear per-epoch decline of the storage factor.
    pub rate: f64,
    /// Lowest factor the decline can reach.
    pub floor: f64,
}

impl StorageDecay {
    /// Builds a decay, clamping to sane ranges.
    pub fn new(rate: f64, floor: f64) -> Self {
        StorageDecay {
            rate: rate.max(0.0),
            floor: floor.clamp(0.0, 1.0),
        }
    }

    fn quote(&self, epoch: usize) -> ProcessQuote {
        ProcessQuote {
            factors: PriceFactors {
                storage: (1.0 - self.rate * epoch as f64).max(self.floor),
                ..PriceFactors::UNIT
            },
            interruption: 0.0,
        }
    }
}

/// A seeded mean-reverting spot market for compute, with interruption
/// risk once the clearing price climbs toward the renter's bid.
///
/// The compute factor follows a discrete Ornstein–Uhlenbeck-style
/// recurrence: `x ← x + reversion·(mean − x) + volatility·u` with `u`
/// uniform on [−1, 1] drawn from the scenario's seeded generator, then
/// floored at a small positive value. The interruption probability is 0
/// while `x ≤ bid` and ramps linearly to `max_interruption` as `x`
/// approaches `2·bid` — the classic spot contract: you keep capacity
/// while the market clears under your bid, and the further the market
/// moves past it the likelier a reclaim becomes.
///
/// With `volatility == 0` and `start == mean == 1 ≤ bid` the process is
/// the exact identity (factor 1, probability 0) — the zero-volatility
/// consistency guarantee leans on this.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpotMarket {
    /// Long-run mean of the compute factor (e.g. 0.35: spot clears at a
    /// third of the on-demand rate on average).
    pub mean: f64,
    /// Initial compute factor.
    pub start: f64,
    /// Per-epoch pull toward the mean, in [0, 1].
    pub reversion: f64,
    /// Half-width of the uniform per-epoch shock.
    pub volatility: f64,
    /// Compute factor above which interruption risk begins.
    pub bid: f64,
    /// Interruption probability as the price reaches twice the bid.
    pub max_interruption: f64,
}

impl SpotMarket {
    /// Smallest admissible price factor (prices never reach zero).
    pub const PRICE_FLOOR: f64 = 0.01;

    /// A calm spot market centered on the on-demand price: mean and
    /// start 1.0, mild reversion, the given volatility, interruptions
    /// ramping above a 1.2× bid.
    pub fn with_volatility(volatility: f64) -> Self {
        SpotMarket {
            mean: 1.0,
            start: 1.0,
            reversion: 0.35,
            volatility,
            bid: 1.2,
            max_interruption: 0.6,
        }
    }

    /// A discounted spot regime: clears well under on-demand on
    /// average, but swings hard and reclaims capacity in spikes.
    pub fn discounted(mean: f64, volatility: f64) -> Self {
        SpotMarket {
            mean,
            start: mean,
            reversion: 0.35,
            volatility,
            bid: 1.0,
            max_interruption: 0.6,
        }
    }

    /// Interruption probability at compute factor `x`.
    fn interruption_at(&self, x: f64) -> f64 {
        if x <= self.bid || self.bid <= 0.0 {
            return 0.0;
        }
        let ramp = ((x - self.bid) / self.bid).min(1.0);
        (self.max_interruption * ramp).clamp(0.0, MAX_INTERRUPTION)
    }

    fn sample(&self, epochs: usize, rng: &mut StdRng) -> Vec<ProcessQuote> {
        let mut quotes = Vec::with_capacity(epochs);
        let mut x = self.start.max(Self::PRICE_FLOOR);
        for _ in 0..epochs {
            quotes.push(ProcessQuote {
                factors: PriceFactors {
                    compute: x,
                    ..PriceFactors::UNIT
                },
                interruption: self.interruption_at(x),
            });
            let shock = if self.volatility > 0.0 {
                self.volatility * rng.random_range(-1.0f64..1.0)
            } else {
                // Draw nothing: a zero-volatility spot process must not
                // perturb the stream of any stochastic process after it.
                0.0
            };
            x = (x + self.reversion * (self.mean - x) + shock).max(Self::PRICE_FLOOR);
        }
        quotes
    }
}

/// One composable force on the price sheet. See the variants' types for
/// semantics; [`PriceProcess::sample`] yields the whole horizon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PriceProcess {
    /// Deterministic trace replay.
    Trace(PriceTrace),
    /// Announced step price change.
    Cut(AnnouncedCut),
    /// Linear storage-rate decline.
    StorageDecay(StorageDecay),
    /// Seeded mean-reverting spot market with interruption risk.
    Spot(SpotMarket),
}

impl PriceProcess {
    /// Samples the process over `epochs` epochs. Stochastic variants
    /// draw from `rng` in a fixed order; deterministic variants consume
    /// no draws.
    pub fn sample(&self, epochs: usize, rng: &mut StdRng) -> Vec<ProcessQuote> {
        match self {
            PriceProcess::Trace(t) => (0..epochs).map(|e| t.quote(e)).collect(),
            PriceProcess::Cut(c) => (0..epochs).map(|e| c.quote(e)).collect(),
            PriceProcess::StorageDecay(d) => (0..epochs).map(|e| d.quote(e)).collect(),
            PriceProcess::Spot(s) => s.sample(epochs, rng),
        }
    }

    /// `true` when sampling draws from the generator — two paths of a
    /// scenario can differ in *factors and probabilities* only through
    /// such processes (the per-epoch interruption *event* draw is
    /// always path-specific).
    pub fn is_stochastic(&self) -> bool {
        matches!(self, PriceProcess::Spot(s) if s.volatility > 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn traces_hold_their_last_value() {
        let t = PriceTrace::compute(vec![1.0, 0.9, 0.8]);
        assert_eq!(t.quote(0).factors.compute, 1.0);
        assert_eq!(t.quote(2).factors.compute, 0.8);
        assert_eq!(t.quote(7).factors.compute, 0.8);
        assert_eq!(t.quote(7).factors.storage, 1.0);
        assert!(PriceTrace::new().quote(3).factors.is_unit());
    }

    #[test]
    fn cuts_take_effect_on_schedule() {
        let c = AnnouncedCut::compute(3, 0.85);
        assert!(c.quote(2).factors.is_unit());
        assert_eq!(c.quote(3).factors.compute, 0.85);
        assert_eq!(c.quote(9).factors.compute, 0.85);
    }

    #[test]
    fn storage_decay_is_floored() {
        let d = StorageDecay::new(0.1, 0.5);
        assert_eq!(d.quote(0).factors.storage, 1.0);
        assert_eq!(d.quote(3).factors.storage, 0.7);
        assert_eq!(d.quote(40).factors.storage, 0.5);
        assert_eq!(d.quote(3).factors.compute, 1.0);
    }

    #[test]
    fn zero_volatility_spot_is_identity_and_draws_nothing() {
        let spot = SpotMarket::with_volatility(0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let quotes = spot.sample(6, &mut rng);
        for q in &quotes {
            assert!(q.factors.is_unit());
            assert_eq!(q.interruption, 0.0);
        }
        // The generator was never touched.
        let mut fresh = StdRng::seed_from_u64(7);
        use rand::RngExt;
        assert_eq!(rng.next_u64(), fresh.next_u64());
    }

    #[test]
    fn spot_reverts_to_the_mean_and_ramps_interruption() {
        let spot = SpotMarket {
            mean: 0.4,
            start: 2.0,
            reversion: 0.5,
            volatility: 0.0,
            bid: 1.0,
            max_interruption: 0.6,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let quotes = spot.sample(12, &mut rng);
        // Starts hot (interrupting), decays toward the mean and calms.
        assert_eq!(quotes[0].factors.compute, 2.0);
        assert!(quotes[0].interruption > 0.0);
        assert!(quotes[11].factors.compute < 0.45);
        assert_eq!(quotes[11].interruption, 0.0);
        for w in quotes.windows(2) {
            assert!(w[1].factors.compute <= w[0].factors.compute);
        }
    }

    #[test]
    fn spot_paths_are_seed_deterministic() {
        let spot = SpotMarket::with_volatility(0.3);
        let a = spot.sample(10, &mut StdRng::seed_from_u64(42));
        let b = spot.sample(10, &mut StdRng::seed_from_u64(42));
        let c = spot.sample(10, &mut StdRng::seed_from_u64(43));
        assert_eq!(a, b);
        assert_ne!(a, c);
        for q in &a {
            assert!(q.factors.compute >= SpotMarket::PRICE_FLOOR);
            assert!((0.0..=MAX_INTERRUPTION).contains(&q.interruption));
        }
    }
}
