//! # mv-market — cloud price dynamics for the view advisor
//!
//! The paper's cost models take the provider's price sheet as a
//! constant. The cloud it models never held still: spot markets clear
//! at fluctuating discounts and reclaim capacity when demand spikes,
//! providers announce step price cuts quarters in advance, and storage
//! rates decline secularly year over year. This crate models those
//! forces as data, so the multi-epoch advisor can optimize *against a
//! price trajectory* instead of a snapshot — and, because trajectories
//! are uncertain, sample many of them reproducibly for Monte-Carlo
//! envelopes.
//!
//! # Module map
//!
//! * [`process`](PriceProcess) — the composable forces on a price
//!   sheet: deterministic [`PriceTrace`] replay, [`AnnouncedCut`] step
//!   changes, linear [`StorageDecay`], the seeded mean-reverting
//!   [`SpotMarket`] with interruption risk, and the two-state
//!   calm/crunch [`CorrelatedHazard`] regime (bursty, *correlated*
//!   interruption epochs — zero persistence degenerates to the i.i.d.
//!   hazard exactly). Each samples a whole horizon of
//!   [`ProcessQuote`]s (price factors + interruption probability per
//!   epoch).
//! * [`scenario`](MarketScenario) — a process stack compiled over a
//!   horizon: [`MarketScenario::path`] samples one reproducible
//!   trajectory ([`MarketPath`] of [`EpochQuote`]s; factors multiply
//!   across the stack, interruption hazards combine independently),
//!   and [`EpochQuote::reprice`] turns a quote into a concrete
//!   `PricingPolicy` through the pricing crate's `scale_rates` hooks.
//! * [`tree`](ScenarioTree) — shared-prefix factoring of K sampled
//!   paths into a scenario forest (one node per distinct quote-prefix,
//!   keyed on solve-relevant quote bits, interruption *events*
//!   excluded). Tree-aware Monte-Carlo solvers pay one solve per node
//!   instead of per path × epoch; a deterministic market degenerates
//!   to a single chain.
//!
//! # Reproducibility contract
//!
//! Everything derives from an explicit seed: path `j` of a scenario is
//! a pure function of `(seed, j)` — no wall-clock, no global state, no
//! sequential coupling between paths — so a K-path Monte-Carlo sweep
//! can fan out across threads in any order and still reproduce
//! bit-for-bit. A scenario with no stochastic process (or a
//! [`SpotMarket`] at zero volatility) yields unit quotes on every path,
//! and a unit quote re-prices to a bit-identical policy; that chain of
//! identities is what pins `Advisor::solve_market` to `solve_horizon`
//! in the zero-volatility consistency proptest (`tests/market.rs` at
//! the workspace root).

mod process;
mod scenario;
mod tree;

pub use process::{
    AnnouncedCut, CorrelatedHazard, PriceFactors, PriceProcess, PriceTrace, ProcessQuote,
    SpotMarket, StorageDecay,
};
pub use scenario::{EpochQuote, MarketPath, MarketScenario};
pub use tree::{ScenarioTree, TreeNode};

/// Largest admissible interruption probability — the same constant
/// `mv_cost::InterruptionRisk` clamps by (hosted in `mv-units`, the
/// only dependency this crate shares with the charging side).
pub use mv_units::MAX_INTERRUPTION;
