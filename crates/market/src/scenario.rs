//! Market scenarios: a process stack compiled into epoch-aligned
//! pricing.
//!
//! A [`MarketScenario`] owns a horizon length, a seed, and a stack of
//! [`PriceProcess`]es. Sampling path `j` ([`MarketScenario::path`])
//! derives an independent generator from `(seed, j)`, samples every
//! process over the horizon, and combines them epoch-wise into
//! [`EpochQuote`]s: factors multiply, interruption probabilities
//! combine as independent hazards (`1 − Π(1 − pᵢ)`). The same `(seed,
//! path)` pair always reproduces the same quotes — Monte-Carlo sweeps
//! are replayable by construction, and a path can be re-derived in
//! isolation (no sequential draw coupling between paths).
//!
//! [`EpochQuote::reprice`] turns a quote into a concrete
//! [`PricingPolicy`] via the pricing crate's `scale_rates` hooks; a
//! unit quote reproduces the base policy bit-for-bit, which is what the
//! zero-volatility consistency guarantee rests on.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use mv_pricing::PricingPolicy;

use crate::{PriceFactors, PriceProcess, ProcessQuote, MAX_INTERRUPTION};

/// One epoch of a sampled price path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochQuote {
    /// Combined multiplicative price factors for the epoch.
    pub factors: PriceFactors,
    /// Combined probability of a mid-epoch capacity interruption.
    pub interruption: f64,
    /// Whether an interruption *event* was sampled for this epoch (a
    /// Bernoulli draw at `interruption`; reporting only — the expected
    /// -cost charging uses the probability, not the event).
    pub interrupted: bool,
}

impl EpochQuote {
    /// The identity quote: base prices, no interruption risk.
    pub const UNIT: EpochQuote = EpochQuote {
        factors: PriceFactors::UNIT,
        interruption: 0.0,
        interrupted: false,
    };

    /// The solve-relevant identity of the quote: the three price-factor
    /// bits plus the interruption-*probability* bits. The Bernoulli
    /// `interrupted` event flag is excluded — it is reporting-only
    /// (expected-cost charging uses the probability), so two quotes
    /// with equal keys re-price and risk-adjust bit-identically. This
    /// is the merge key of [`crate::ScenarioTree`] and of the flat
    /// Monte-Carlo loop's path dedup.
    pub fn solve_key(&self) -> [u64; 4] {
        [
            self.factors.compute.to_bits(),
            self.factors.storage.to_bits(),
            self.factors.transfer.to_bits(),
            self.interruption.to_bits(),
        ]
    }

    /// Applies the quote to a base policy. A unit quote returns a
    /// bit-identical policy (every `scale_rates` hook clones on factor
    /// `1.0`).
    pub fn reprice(&self, base: &PricingPolicy) -> PricingPolicy {
        base.scale_rates(
            self.factors.compute,
            self.factors.storage,
            self.factors.transfer,
        )
    }
}

/// One sampled trajectory of the market over the horizon.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MarketPath {
    /// Which sampled path this is (0-based).
    pub path: usize,
    /// One quote per epoch.
    pub quotes: Vec<EpochQuote>,
}

impl MarketPath {
    /// Number of sampled interruption events along the path.
    pub fn interruptions(&self) -> usize {
        self.quotes.iter().filter(|q| q.interrupted).count()
    }
}

/// A compiled market: horizon length, seed, and the process stack.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MarketScenario {
    /// Billing periods in the horizon.
    pub epochs: usize,
    /// Master seed; path `j` derives its own generator from `(seed, j)`.
    pub seed: u64,
    /// The composable process stack (empty = constant prices).
    pub processes: Vec<PriceProcess>,
}

impl MarketScenario {
    /// A constant-price market over `epochs` epochs (every path is all
    /// unit quotes until processes are pushed).
    pub fn constant(epochs: usize, seed: u64) -> Self {
        MarketScenario {
            epochs,
            seed,
            processes: Vec::new(),
        }
    }

    /// Pushes a process onto the stack (builder style).
    pub fn with(mut self, process: PriceProcess) -> Self {
        self.processes.push(process);
        self
    }

    /// `true` when any process draws randomness — otherwise every path
    /// quotes identical factors and probabilities, and one chain solve
    /// covers them all (interruption *events* are still Bernoulli
    /// -sampled per path).
    pub fn is_stochastic(&self) -> bool {
        self.processes.iter().any(PriceProcess::is_stochastic)
    }

    /// Samples path `path`: an independent, reproducible trajectory.
    /// Processes sample in stack order from a generator seeded by
    /// `(seed, path)`, then one Bernoulli event draw per epoch realizes
    /// the combined interruption probability.
    pub fn path(&self, path: usize) -> MarketPath {
        // splitmix-style mix of the path index into the master seed, so
        // consecutive paths land far apart in the generator's stream.
        let mixed = self
            .seed
            .wrapping_add((path as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut rng = StdRng::seed_from_u64(mixed);
        let sampled: Vec<Vec<ProcessQuote>> = self
            .processes
            .iter()
            .map(|p| p.sample(self.epochs, &mut rng))
            .collect();
        let mut quotes = Vec::with_capacity(self.epochs);
        for e in 0..self.epochs {
            let mut factors = PriceFactors::UNIT;
            let mut survive = 1.0f64;
            for s in &sampled {
                factors = factors.combine(s[e].factors);
                survive *= 1.0 - s[e].interruption;
            }
            let interruption = (1.0 - survive).clamp(0.0, MAX_INTERRUPTION);
            let interrupted = interruption > 0.0 && rng.random_range(0.0f64..1.0) < interruption;
            quotes.push(EpochQuote {
                factors,
                interruption,
                interrupted,
            });
        }
        MarketPath { path, quotes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AnnouncedCut, SpotMarket, StorageDecay};
    use mv_pricing::presets;
    use mv_units::{Gb, Hours};

    #[test]
    fn constant_market_is_all_unit_quotes() {
        let m = MarketScenario::constant(5, 99);
        for j in [0, 1, 7] {
            let p = m.path(j);
            assert_eq!(p.quotes.len(), 5);
            for q in &p.quotes {
                assert_eq!(*q, EpochQuote::UNIT);
            }
        }
    }

    #[test]
    fn unit_quote_repricing_is_bit_identical() {
        let base = presets::aws_2012();
        let repriced = EpochQuote::UNIT.reprice(&base);
        assert_eq!(repriced.compute, base.compute);
        assert_eq!(repriced.storage, base.storage);
        assert_eq!(repriced.transfer, base.transfer);
    }

    #[test]
    fn factors_stack_multiplicatively() {
        let m = MarketScenario::constant(6, 0)
            .with(PriceProcess::Cut(AnnouncedCut::compute(2, 0.8)))
            .with(PriceProcess::StorageDecay(StorageDecay::new(0.1, 0.5)))
            .with(PriceProcess::Cut(AnnouncedCut::compute(4, 0.5)));
        let p = m.path(0);
        assert_eq!(p.quotes[0].factors.compute, 1.0);
        assert_eq!(p.quotes[2].factors.compute, 0.8);
        assert_eq!(p.quotes[4].factors.compute, 0.8 * 0.5);
        assert_eq!(p.quotes[3].factors.storage, 0.7);
        assert_eq!(p.quotes[0].interruption, 0.0);
        assert!(!m.is_stochastic());
        // Deterministic stacks: every path identical.
        assert_eq!(m.path(3).quotes, p.quotes);
    }

    #[test]
    fn repricing_scales_real_costs() {
        let base = presets::aws_2012();
        let m =
            MarketScenario::constant(2, 0).with(PriceProcess::Cut(AnnouncedCut::compute(1, 0.5)));
        let p = m.path(0);
        let cut = p.quotes[1].reprice(&base);
        let small = base.compute.instance("small").unwrap();
        let small_cut = cut.compute.instance("small").unwrap();
        assert_eq!(small.hourly.scale(0.5).micros(), small_cut.hourly.micros());
        // Non-scaled components untouched.
        assert_eq!(
            cut.storage.monthly_cost(Gb::new(100.0)),
            base.storage.monthly_cost(Gb::new(100.0))
        );
        assert_eq!(
            base.compute
                .cost(Hours::new(10.0), small_cut, 2)
                .to_dollars_f64(),
            base.compute
                .cost(Hours::new(10.0), small, 2)
                .to_dollars_f64()
                * 0.5
        );
    }

    #[test]
    fn paths_are_reproducible_and_independent() {
        let m = MarketScenario::constant(8, 1234)
            .with(PriceProcess::Spot(SpotMarket::with_volatility(0.4)));
        assert!(m.is_stochastic());
        let a = m.path(3);
        let b = m.path(3);
        assert_eq!(a, b);
        // Different paths genuinely differ...
        assert_ne!(m.path(0).quotes, m.path(1).quotes);
        // ...and re-deriving path 5 without sampling 0..4 first gives
        // the same trajectory (no sequential coupling).
        let direct = m.path(5);
        for j in 0..5 {
            let _ = m.path(j);
        }
        assert_eq!(m.path(5), direct);
    }

    #[test]
    fn hazards_combine_as_independent_probabilities() {
        let m = MarketScenario::constant(1, 0)
            .with(PriceProcess::Trace(crate::PriceTrace {
                interruption: vec![0.5],
                ..crate::PriceTrace::new()
            }))
            .with(PriceProcess::Trace(crate::PriceTrace {
                interruption: vec![0.5],
                ..crate::PriceTrace::new()
            }));
        let p = m.path(0);
        assert!((p.quotes[0].interruption - 0.75).abs() < 1e-12);
    }
}
