//! Cost-model inputs (the paper's Table 5 parameters and Section 4 view
//! attributes).

use mv_pricing::{InstanceType, Placement, PricingPolicy};
use mv_units::{Gb, Hours, Months};
use serde::{Deserialize, Serialize};

use crate::AnswerProfile;

/// One workload query's chargeable characteristics: the paper's `Q_i`,
/// `s(R_i)` and `t_i`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryCharge {
    /// Query identifier.
    pub name: String,
    /// Result size `s(R_i)` transferred out per execution.
    pub result_size: Gb,
    /// Processing time on the base dataset (no views), `t_i`.
    pub base_time: Hours,
    /// Executions per billing period (1.0 = the paper's fixed workload).
    pub frequency: f64,
}

impl QueryCharge {
    /// A once-per-period query.
    pub fn new(name: impl Into<String>, result_size: Gb, base_time: Hours) -> Self {
        QueryCharge {
            name: name.into(),
            result_size,
            base_time,
            frequency: 1.0,
        }
    }
}

/// A candidate view's chargeable characteristics (Section 4): size,
/// one-time materialization time, per-period maintenance time, and the
/// improved per-query times `t_iV`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ViewCharge {
    /// View identifier.
    pub name: String,
    /// Stored size `s(V_k)` (extra storage for the whole period).
    pub size: Gb,
    /// One-time build time `t_materialization(V_k)`.
    pub materialization: Hours,
    /// Refresh time per billing period `t_maintenance(V_k)`.
    pub maintenance: Hours,
    /// Which workload queries this view can answer, and in what time
    /// `t_iV` — a sparse profile keyed by workload index (most views in
    /// a large lattice answer only a few queries). Its workload length
    /// must align with the costing context's workload.
    pub profile: AnswerProfile,
    /// Which fleet pool this view's build/refresh work runs on. The
    /// paper's single-fleet setting is all-[`Placement::Reserved`];
    /// mixed-fleet solves treat it as a per-view decision dimension
    /// (`mv_select`'s placement-flip moves) and charge the view through
    /// its pool's terms ([`crate::PoolCharge`]).
    pub placement: Placement,
}

impl ViewCharge {
    /// Convenience constructor; the profile defaults to "answers
    /// nothing" and is filled per query with [`ViewCharge::answers`].
    pub fn new(
        name: impl Into<String>,
        size: Gb,
        materialization: Hours,
        maintenance: Hours,
        workload_len: usize,
    ) -> Self {
        ViewCharge {
            name: name.into(),
            size,
            materialization,
            maintenance,
            profile: AnswerProfile::none(workload_len),
            placement: Placement::default(),
        }
    }

    /// Declares that this view answers workload query `index` in `time`.
    pub fn answers(mut self, index: usize, time: Hours) -> Self {
        self.profile.set(index, time);
        self
    }

    /// Sets the view's fleet placement (builder style).
    pub fn placed(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// The charge this view presents when *carried over* an epoch
    /// boundary in a multi-period horizon: its one-time materialization
    /// was paid in an earlier billing period and is sunk, so keeping the
    /// view costs maintenance and storage only. Everything else — size,
    /// refresh time, the per-query speedups — is unchanged.
    pub fn carried(&self) -> ViewCharge {
        ViewCharge {
            materialization: Hours::ZERO,
            ..self.clone()
        }
    }
}

/// The full costing context: everything the paper's formulas consume.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostContext {
    /// Provider pricing (Tables 2–4).
    pub pricing: PricingPolicy,
    /// The rented instance configuration `IC`.
    pub instance: InstanceType,
    /// Number of identical instances `nbIC`.
    pub nb_instances: u32,
    /// Billing horizon in months (storage period).
    pub months: Months,
    /// Initial dataset size `s(DS)`.
    pub dataset_size: Gb,
    /// Insert events: `(month, added size)` — Formula 5's interval edges.
    pub inserts: Vec<(Months, Gb)>,
    /// The query workload `Q` with per-query charges.
    pub workload: Vec<QueryCharge>,
}

impl CostContext {
    /// Total (frequency-weighted) base processing time — the paper's
    /// "processing time of Q without views" (50 h in the running example).
    pub fn base_processing_time(&self) -> Hours {
        self.workload
            .iter()
            .map(|q| q.base_time * q.frequency)
            .sum()
    }

    /// Total outbound result volume per period (transfer tiers apply to
    /// this aggregate).
    pub fn total_result_size(&self) -> Gb {
        self.workload
            .iter()
            .map(|q| q.result_size * q.frequency)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_pricing::presets;

    fn running_example() -> CostContext {
        let pricing = presets::aws_2012();
        let instance = pricing.compute.instance("small").unwrap().clone();
        CostContext {
            pricing,
            instance,
            nb_instances: 2,
            months: Months::new(12.0),
            dataset_size: Gb::new(500.0),
            inserts: vec![],
            workload: vec![QueryCharge::new("Q", Gb::new(10.0), Hours::new(50.0))],
        }
    }

    #[test]
    fn aggregates_respect_frequency() {
        let mut ctx = running_example();
        assert_eq!(ctx.base_processing_time().value(), 50.0);
        assert_eq!(ctx.total_result_size().value(), 10.0);
        ctx.workload[0].frequency = 2.0;
        assert_eq!(ctx.base_processing_time().value(), 100.0);
        assert_eq!(ctx.total_result_size().value(), 20.0);
    }

    #[test]
    fn view_charge_builder() {
        let v = ViewCharge::new("V1", Gb::new(50.0), Hours::new(1.0), Hours::new(5.0), 3)
            .answers(1, Hours::new(0.1));
        assert_eq!(
            v.profile.to_dense(),
            vec![None, Some(Hours::new(0.1)), None]
        );
        assert_eq!(v.profile.workload_len(), 3);
    }
}
