//! Risk-adjusted view charging under spot interruption.
//!
//! The paper's formulas assume the rented instances survive the whole
//! billing period. Spot markets break that assumption: the provider can
//! reclaim capacity mid-epoch, and work that was running — a view build,
//! a refresh — must be re-run when capacity returns. A view's *expected*
//! materialization charge under interruption is therefore higher than
//! its nominal one, and a money-optimal selection should see that
//! premium before committing to a build.
//!
//! [`InterruptionRisk`] models the classic retry process: an attempt
//! survives the epoch with probability `1 − p`, an interrupted attempt
//! is re-run from scratch, so the expected number of attempts is the
//! geometric mean `1 / (1 − p)`. [`InterruptionRisk::adjust`] inflates a
//! [`ViewCharge`]'s materialization and maintenance times by that
//! factor — the two charges that buy *re-runnable work* — while size and
//! the per-query answer times are untouched (stored bytes and query
//! speedups are not lost to an interruption).
//!
//! Two properties the multi-epoch market machinery leans on:
//!
//! * **zero risk is the exact identity** — `adjust` at `p == 0` returns
//!   a clone, bit for bit, so a zero-volatility market scenario
//!   reproduces the risk-free horizon solve exactly (property-tested in
//!   `tests/market.rs` at the workspace root);
//! * **the answer profile never changes** — only `materialization` and
//!   `maintenance` move, which is precisely the O(1) fast path of
//!   `mv-select`'s `IncrementalEvaluator::update_charge`: re-risking a
//!   whole pool at an epoch boundary costs one in-place splice per
//!   candidate, no answer-table rebuilds.

use serde::{Deserialize, Serialize};

use crate::ViewCharge;

/// Largest admissible per-epoch interruption probability, shared with
/// the quoting side in `mv-market` via `mv-units`. Probabilities are
/// clamped here so the geometric expected-attempt factor stays finite.
pub use mv_units::MAX_INTERRUPTION;

/// Per-epoch interruption risk: the probability that the fleet is
/// reclaimed mid-epoch and in-flight build/refresh work must re-run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterruptionRisk {
    probability: f64,
}

impl InterruptionRisk {
    /// No interruption: every adjustment is the exact identity.
    pub const NONE: InterruptionRisk = InterruptionRisk { probability: 0.0 };

    /// Builds a risk from a probability, clamping to
    /// `[0, MAX_INTERRUPTION]`. Non-finite input is treated as zero.
    pub fn new(probability: f64) -> Self {
        let p = if probability.is_finite() {
            probability.clamp(0.0, MAX_INTERRUPTION)
        } else {
            0.0
        };
        InterruptionRisk { probability: p }
    }

    /// The clamped interruption probability.
    pub fn probability(&self) -> f64 {
        self.probability
    }

    /// Expected number of attempts until a build/refresh survives the
    /// epoch: `1 / (1 − p)` (geometric). `1.0` exactly at zero risk.
    pub fn expected_attempts(&self) -> f64 {
        1.0 / (1.0 - self.probability)
    }

    /// The risk-adjusted charge: materialization and maintenance times
    /// inflated by [`InterruptionRisk::expected_attempts`]; size and
    /// answer times unchanged. At zero risk this returns a bit-identical
    /// clone (no float multiply touches the charge at all).
    pub fn adjust(&self, charge: &ViewCharge) -> ViewCharge {
        if self.probability == 0.0 {
            return charge.clone();
        }
        let attempts = self.expected_attempts();
        ViewCharge {
            materialization: charge.materialization * attempts,
            maintenance: charge.maintenance * attempts,
            ..charge.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_units::{Gb, Hours};

    fn charge() -> ViewCharge {
        ViewCharge::new("v", Gb::new(2.0), Hours::new(4.0), Hours::new(0.5), 2)
            .answers(1, Hours::new(0.25))
    }

    #[test]
    fn zero_risk_is_bit_identity() {
        let c = charge();
        assert_eq!(InterruptionRisk::NONE.adjust(&c), c);
        assert_eq!(InterruptionRisk::new(0.0).adjust(&c), c);
        assert_eq!(InterruptionRisk::new(-3.0).adjust(&c), c);
        assert_eq!(InterruptionRisk::new(f64::NAN).adjust(&c), c);
        assert_eq!(InterruptionRisk::NONE.expected_attempts(), 1.0);
    }

    #[test]
    fn geometric_inflation_hits_build_and_refresh_only() {
        let c = charge();
        let risk = InterruptionRisk::new(0.5);
        assert_eq!(risk.expected_attempts(), 2.0);
        let adjusted = risk.adjust(&c);
        assert_eq!(adjusted.materialization, Hours::new(8.0));
        assert_eq!(adjusted.maintenance, Hours::new(1.0));
        assert_eq!(adjusted.size, c.size);
        assert_eq!(adjusted.query_times, c.query_times);
        assert_eq!(adjusted.name, c.name);
    }

    #[test]
    fn probability_is_clamped() {
        assert_eq!(InterruptionRisk::new(2.0).probability(), MAX_INTERRUPTION);
        assert_eq!(InterruptionRisk::new(-1.0).probability(), 0.0);
        assert!(InterruptionRisk::new(1.0).expected_attempts().is_finite());
    }

    #[test]
    fn monotone_in_probability() {
        let c = charge();
        let mut prev = Hours::ZERO;
        for p in [0.0, 0.1, 0.3, 0.6, 0.9] {
            let adj = InterruptionRisk::new(p).adjust(&c);
            assert!(adj.materialization >= prev, "p={p}");
            prev = adj.materialization;
        }
    }
}
