//! Risk-adjusted view charging under spot interruption.
//!
//! The paper's formulas assume the rented instances survive the whole
//! billing period. Spot markets break that assumption: the provider can
//! reclaim capacity mid-epoch, and work that was running — a view build,
//! a refresh — must be re-run when capacity returns. A view's *expected*
//! materialization charge under interruption is therefore higher than
//! its nominal one, and a money-optimal selection should see that
//! premium before committing to a build.
//!
//! [`InterruptionRisk`] models the classic retry process: an attempt
//! survives the epoch with probability `1 − p`, an interrupted attempt
//! is re-run from scratch, so the expected number of attempts is the
//! geometric mean `1 / (1 − p)`. [`InterruptionRisk::adjust`] inflates a
//! [`ViewCharge`]'s materialization and maintenance times by that
//! factor — the two charges that buy *re-runnable work* — while size and
//! the per-query answer times are untouched (stored bytes and query
//! speedups are not lost to an interruption).
//!
//! Two properties the multi-epoch market machinery leans on:
//!
//! * **zero risk is the exact identity** — `adjust` at `p == 0` returns
//!   a clone, bit for bit, so a zero-volatility market scenario
//!   reproduces the risk-free horizon solve exactly (property-tested in
//!   `tests/market.rs` at the workspace root);
//! * **the answer profile never changes** — only `materialization` and
//!   `maintenance` move, which is precisely the O(1) fast path of
//!   `mv-select`'s `IncrementalEvaluator::update_charge`: re-risking a
//!   whole pool at an epoch boundary costs one in-place splice per
//!   candidate, no answer-table rebuilds.

use serde::{Deserialize, Serialize};

use crate::ViewCharge;

/// Largest admissible per-epoch interruption probability, shared with
/// the quoting side in `mv-market` via `mv-units`. Probabilities are
/// clamped here so the geometric expected-attempt factor stays finite.
pub use mv_units::MAX_INTERRUPTION;

/// Per-epoch interruption risk: the probability that the fleet is
/// reclaimed mid-epoch and in-flight build/refresh work must re-run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterruptionRisk {
    probability: f64,
}

impl InterruptionRisk {
    /// No interruption: every adjustment is the exact identity.
    pub const NONE: InterruptionRisk = InterruptionRisk { probability: 0.0 };

    /// Builds a risk from a probability, clamping to
    /// `[0, MAX_INTERRUPTION]`. Non-finite input is treated as zero.
    pub fn new(probability: f64) -> Self {
        let p = if probability.is_finite() {
            probability.clamp(0.0, MAX_INTERRUPTION)
        } else {
            0.0
        };
        InterruptionRisk { probability: p }
    }

    /// The clamped interruption probability.
    pub fn probability(&self) -> f64 {
        self.probability
    }

    /// Expected number of attempts until a build/refresh survives the
    /// epoch: `1 / (1 − p)` (geometric). `1.0` exactly at zero risk.
    pub fn expected_attempts(&self) -> f64 {
        1.0 / (1.0 - self.probability)
    }

    /// The risk-adjusted charge: materialization and maintenance times
    /// inflated by [`InterruptionRisk::expected_attempts`]; size and
    /// answer times unchanged. At zero risk this returns a bit-identical
    /// clone (no float multiply touches the charge at all).
    pub fn adjust(&self, charge: &ViewCharge) -> ViewCharge {
        if self.probability == 0.0 {
            return charge.clone();
        }
        let attempts = self.expected_attempts();
        ViewCharge {
            materialization: charge.materialization * attempts,
            maintenance: charge.maintenance * attempts,
            ..charge.clone()
        }
    }
}

/// One fleet pool's effective per-epoch charging of a view: the pool's
/// rate differential against the primary sheet folded into billable
/// hours, plus the pool's interruption risk.
///
/// The cost model prices every hour through the *primary* pool's sheet
/// (the epoch's `CostContext::pricing`). A view placed on the other
/// pool really runs at that pool's rate, so its materialization and
/// maintenance hours are scaled by `hour_factor` — the pool rate over
/// the primary rate — before pricing, and its stored bytes by
/// `size_factor` likewise. Rate differentials therefore reach the bill
/// through the rounding rule exactly like the interruption premium
/// does: per-minute providers see them exactly, whole-hour providers
/// through the round-up (the `tests/market.rs` caveat).
///
/// Two identities the fleet conformance tests lean on:
///
/// * **the primary pool is the exact identity** — `hour_factor` and
///   `size_factor` of `1.0` with zero risk return a bit-identical
///   clone (no float touches the charge);
/// * **the answer profile never changes** — only materialization,
///   maintenance and size move, so every fleet splice (including a
///   placement flip) stays on `update_charge`'s O(1) fast path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoolCharge {
    /// Pool compute rate over the primary sheet's rate this epoch.
    hour_factor: f64,
    /// Pool storage rate over the primary sheet's rate.
    size_factor: f64,
    /// The pool's interruption risk this epoch (zero on reserved
    /// capacity).
    risk: InterruptionRisk,
}

impl PoolCharge {
    /// The do-nothing pool: primary-rate hours, no risk.
    pub const IDENTITY: PoolCharge = PoolCharge {
        hour_factor: 1.0,
        size_factor: 1.0,
        risk: InterruptionRisk::NONE,
    };

    /// Builds a pool charge. Non-finite or non-positive factors fall
    /// back to `1.0` (a rate ratio is always positive).
    pub fn new(hour_factor: f64, size_factor: f64, risk: InterruptionRisk) -> PoolCharge {
        let sane = |f: f64| if f.is_finite() && f > 0.0 { f } else { 1.0 };
        PoolCharge {
            hour_factor: sane(hour_factor),
            size_factor: sane(size_factor),
            risk,
        }
    }

    /// The pool's interruption risk.
    pub fn risk(&self) -> InterruptionRisk {
        self.risk
    }

    /// The pool's hour (compute-rate) factor.
    pub fn hour_factor(&self) -> f64 {
        self.hour_factor
    }

    /// The effective charge a view presents when placed on this pool:
    /// risk premium first (build/refresh re-runs), then the rate
    /// differential on the risk-adjusted hours. Identity factors and
    /// zero risk return a bit-identical clone.
    pub fn adjust(&self, charge: &ViewCharge) -> ViewCharge {
        let risked = self.risk.adjust(charge);
        if self.hour_factor == 1.0 && self.size_factor == 1.0 {
            return risked;
        }
        ViewCharge {
            materialization: risked.materialization * self.hour_factor,
            maintenance: risked.maintenance * self.hour_factor,
            size: risked.size * self.size_factor,
            ..risked
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_units::{Gb, Hours};

    fn charge() -> ViewCharge {
        ViewCharge::new("v", Gb::new(2.0), Hours::new(4.0), Hours::new(0.5), 2)
            .answers(1, Hours::new(0.25))
    }

    #[test]
    fn zero_risk_is_bit_identity() {
        let c = charge();
        assert_eq!(InterruptionRisk::NONE.adjust(&c), c);
        assert_eq!(InterruptionRisk::new(0.0).adjust(&c), c);
        assert_eq!(InterruptionRisk::new(-3.0).adjust(&c), c);
        assert_eq!(InterruptionRisk::new(f64::NAN).adjust(&c), c);
        assert_eq!(InterruptionRisk::NONE.expected_attempts(), 1.0);
    }

    #[test]
    fn geometric_inflation_hits_build_and_refresh_only() {
        let c = charge();
        let risk = InterruptionRisk::new(0.5);
        assert_eq!(risk.expected_attempts(), 2.0);
        let adjusted = risk.adjust(&c);
        assert_eq!(adjusted.materialization, Hours::new(8.0));
        assert_eq!(adjusted.maintenance, Hours::new(1.0));
        assert_eq!(adjusted.size, c.size);
        assert_eq!(adjusted.profile, c.profile);
        assert_eq!(adjusted.name, c.name);
    }

    #[test]
    fn probability_is_clamped() {
        assert_eq!(InterruptionRisk::new(2.0).probability(), MAX_INTERRUPTION);
        assert_eq!(InterruptionRisk::new(-1.0).probability(), 0.0);
        assert!(InterruptionRisk::new(1.0).expected_attempts().is_finite());
    }

    #[test]
    fn identity_pool_is_bit_exact() {
        let c = charge();
        assert_eq!(PoolCharge::IDENTITY.adjust(&c), c);
        assert_eq!(
            PoolCharge::new(1.0, 1.0, InterruptionRisk::NONE).adjust(&c),
            c
        );
        // Insane factors fall back to the identity.
        assert_eq!(
            PoolCharge::new(f64::NAN, -2.0, InterruptionRisk::NONE).adjust(&c),
            c
        );
    }

    #[test]
    fn pool_factors_scale_hours_and_bytes_only() {
        let c = charge();
        let pool = PoolCharge::new(0.5, 2.0, InterruptionRisk::NONE);
        let adjusted = pool.adjust(&c);
        assert_eq!(adjusted.materialization, Hours::new(2.0));
        assert_eq!(adjusted.maintenance, Hours::new(0.25));
        assert_eq!(adjusted.size, Gb::new(4.0));
        assert_eq!(adjusted.profile, c.profile);
        assert_eq!(adjusted.placement, c.placement);
    }

    #[test]
    fn risk_applies_before_the_rate_differential() {
        let c = charge();
        let pool = PoolCharge::new(0.5, 1.0, InterruptionRisk::new(0.5));
        let adjusted = pool.adjust(&c);
        // 4 h × 2 attempts × 0.5 rate = 4 h.
        assert_eq!(adjusted.materialization, Hours::new(4.0));
        assert_eq!(adjusted.maintenance, Hours::new(0.5));
        assert_eq!(pool.risk().expected_attempts(), 2.0);
        assert_eq!(pool.hour_factor(), 0.5);
    }

    #[test]
    fn monotone_in_probability() {
        let c = charge();
        let mut prev = Hours::ZERO;
        for p in [0.0, 0.1, 0.3, 0.6, 0.9] {
            let adj = InterruptionRisk::new(p).adjust(&c);
            assert!(adj.materialization >= prev, "p={p}");
            prev = adj.materialization;
        }
    }
}
