//! Compact candidate-selection bitsets.
//!
//! The optimizer probes thousands-to-millions of candidate subsets per
//! solve; selections were previously `Vec<bool>`, cloned on every probe
//! and stored in every [`crate::CostBreakdown`]-carrying evaluation.
//! [`SelectionSet`] packs the mask into `u64` words behind an `Arc`:
//!
//! * **clone is O(1)** — an atomic refcount bump, no allocation;
//! * **mutation is copy-on-write** — `Arc::make_mut` only copies the
//!   word vector when the selection is actually shared;
//! * **n ≤ 64 never allocates more than one word**, the common case for
//!   the paper's ≤ 16-candidate problems.

use std::fmt;
use std::sync::Arc;

/// A set of selected candidate views, as a bitmask aligned with a
/// candidate slice. Cheap to clone (copy-on-write words).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct SelectionSet {
    len: usize,
    words: Arc<Vec<u64>>,
}

impl SelectionSet {
    /// The empty selection over `len` candidates.
    pub fn empty(len: usize) -> Self {
        SelectionSet {
            len,
            words: Arc::new(vec![0; len.div_ceil(64)]),
        }
    }

    /// The all-selected selection over `len` candidates.
    pub fn full(len: usize) -> Self {
        let mut words = vec![u64::MAX; len.div_ceil(64)];
        if let Some(last) = words.last_mut() {
            let tail = len % 64;
            if tail != 0 {
                *last = (1u64 << tail) - 1;
            }
        }
        SelectionSet {
            len,
            words: Arc::new(words),
        }
    }

    /// Builds a selection from a bool slice (index k selected iff
    /// `bools[k]`).
    pub fn from_bools(bools: &[bool]) -> Self {
        let mut s = SelectionSet::empty(bools.len());
        let words = Arc::make_mut(&mut s.words);
        for (k, &on) in bools.iter().enumerate() {
            if on {
                words[k / 64] |= 1u64 << (k % 64);
            }
        }
        s
    }

    /// Builds a selection over `len ≤ 64` candidates from a bitmask
    /// (bit k = candidate k).
    pub fn from_mask(mask: u64, len: usize) -> Self {
        assert!(len <= 64, "from_mask supports at most 64 candidates");
        assert!(
            len == 64 || mask < (1u64 << len),
            "mask {mask:#x} has bits beyond {len} candidates"
        );
        SelectionSet {
            len,
            // Word count must match `empty(len)` so Eq/Hash are
            // representation-independent.
            words: Arc::new(if len == 0 { Vec::new() } else { vec![mask] }),
        }
    }

    /// Number of candidates the selection ranges over (not the number
    /// selected).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when there are no candidates at all.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether candidate `k` is selected.
    #[inline]
    pub fn contains(&self, k: usize) -> bool {
        debug_assert!(k < self.len, "candidate {k} out of {}", self.len);
        self.words[k / 64] >> (k % 64) & 1 == 1
    }

    /// Selects (`on = true`) or deselects candidate `k`.
    #[inline]
    pub fn set(&mut self, k: usize, on: bool) {
        assert!(k < self.len, "candidate {k} out of {}", self.len);
        let words = Arc::make_mut(&mut self.words);
        let bit = 1u64 << (k % 64);
        if on {
            words[k / 64] |= bit;
        } else {
            words[k / 64] &= !bit;
        }
    }

    /// Toggles candidate `k`, returning its new state.
    #[inline]
    pub fn toggle(&mut self, k: usize) -> bool {
        assert!(k < self.len, "candidate {k} out of {}", self.len);
        let words = Arc::make_mut(&mut self.words);
        words[k / 64] ^= 1u64 << (k % 64);
        words[k / 64] >> (k % 64) & 1 == 1
    }

    /// Appends a new candidate slot at index `len`, selected iff `on`.
    /// Grows the word vector only when `len` crosses a 64-bit boundary,
    /// keeping the representation identical to `empty(new_len)` + `set`s
    /// (so `Eq`/`Hash` stay representation-independent).
    pub fn push(&mut self, on: bool) {
        let k = self.len;
        self.len += 1;
        let words = Arc::make_mut(&mut self.words);
        words.resize(self.len.div_ceil(64), 0);
        if on {
            words[k / 64] |= 1u64 << (k % 64);
        }
    }

    /// Removes slot `k` by moving the **last** slot into it (swap-remove,
    /// matching `Vec::swap_remove` on an aligned candidate vector) and
    /// shrinking the range by one. Returns whether `k` was selected.
    pub fn swap_remove(&mut self, k: usize) -> bool {
        assert!(k < self.len, "candidate {k} out of {}", self.len);
        let last = self.len - 1;
        let was = self.contains(k);
        let last_on = self.contains(last);
        let words = Arc::make_mut(&mut self.words);
        // Clear the retiring top slot, then rewrite slot k with its value.
        words[last / 64] &= !(1u64 << (last % 64));
        if k != last {
            let bit = 1u64 << (k % 64);
            if last_on {
                words[k / 64] |= bit;
            } else {
                words[k / 64] &= !bit;
            }
        }
        self.len = last;
        words.truncate(self.len.div_ceil(64));
        was
    }

    /// Number of selected candidates.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Per-candidate booleans in index order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |k| self.contains(k))
    }

    /// Indices of the selected candidates, ascending.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&k| self.contains(k))
    }

    /// The selection as a `u64` bitmask (requires ≤ 64 candidates).
    pub fn as_mask(&self) -> u64 {
        assert!(self.len <= 64, "as_mask supports at most 64 candidates");
        self.words.first().copied().unwrap_or(0)
    }
}

impl fmt::Debug for SelectionSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SelectionSet[")?;
        for k in 0..self.len {
            write!(f, "{}", if self.contains(k) { '1' } else { '0' })?;
        }
        write!(f, "]")
    }
}

impl From<&[bool]> for SelectionSet {
    fn from(bools: &[bool]) -> Self {
        SelectionSet::from_bools(bools)
    }
}

impl From<Vec<bool>> for SelectionSet {
    fn from(bools: Vec<bool>) -> Self {
        SelectionSet::from_bools(&bools)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_full_and_counts() {
        let e = SelectionSet::empty(70);
        assert_eq!(e.len(), 70);
        assert_eq!(e.count_ones(), 0);
        let f = SelectionSet::full(70);
        assert_eq!(f.count_ones(), 70);
        assert!(f.iter().all(|b| b));
        assert_eq!(SelectionSet::full(64).count_ones(), 64);
        assert!(SelectionSet::empty(0).is_empty());
    }

    #[test]
    fn set_toggle_contains() {
        let mut s = SelectionSet::empty(10);
        s.set(3, true);
        s.set(9, true);
        assert!(s.contains(3) && s.contains(9) && !s.contains(0));
        assert_eq!(s.ones().collect::<Vec<_>>(), vec![3, 9]);
        assert!(!s.toggle(3));
        assert!(s.toggle(4));
        assert_eq!(s.count_ones(), 2);
    }

    #[test]
    fn copy_on_write_isolation() {
        let mut a = SelectionSet::empty(8);
        a.set(1, true);
        let b = a.clone();
        a.set(2, true);
        assert!(a.contains(2));
        assert!(!b.contains(2));
        assert!(b.contains(1));
    }

    #[test]
    fn mask_and_bools_roundtrip() {
        let s = SelectionSet::from_mask(0b1011, 4);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![true, true, false, true]);
        assert_eq!(s.as_mask(), 0b1011);
        let t = SelectionSet::from_bools(&[true, false, true]);
        assert_eq!(t.as_mask(), 0b101);
        assert_eq!(SelectionSet::from(vec![false, true]).as_mask(), 0b10);
    }

    #[test]
    fn push_grows_and_matches_set_representation() {
        // Pushing past one word must equal building the same selection via
        // empty + set: Eq/Hash are representation-dependent on the word
        // vector, so push must size it exactly like `empty(new_len)`.
        let mut pushed = SelectionSet::empty(0);
        for k in 0..130 {
            pushed.push(k % 3 == 0);
        }
        assert_eq!(pushed.len(), 130);
        let mut built = SelectionSet::empty(130);
        for k in (0..130).step_by(3) {
            built.set(k, true);
        }
        assert_eq!(pushed, built);
        assert_eq!(pushed.count_ones(), built.count_ones());
        // Word-boundary counts: 63→64→65 slots.
        let mut s = SelectionSet::empty(63);
        s.push(true);
        assert_eq!(s.len(), 64);
        assert!(s.contains(63));
        s.push(true);
        assert_eq!(s.len(), 65);
        assert!(s.contains(64));
        assert_eq!(s.count_ones(), 2);
    }

    #[test]
    fn swap_remove_moves_last_and_shrinks() {
        let mut s = SelectionSet::from_bools(&[true, false, true, false, true]);
        // Remove middle: last slot (selected) moves into index 2.
        assert!(s.swap_remove(2));
        assert_eq!(s.len(), 4);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![true, false, true, false]);
        // Remove the last slot directly (no move).
        assert!(!s.swap_remove(3));
        assert_eq!(s.len(), 3);
        assert_eq!(s.count_ones(), 2);
        // Representation equals a freshly-built equivalent (Eq is
        // word-vector-sensitive).
        assert_eq!(s, SelectionSet::from_bools(&[true, false, true]));
    }

    #[test]
    fn swap_remove_across_word_boundary_truncates_words() {
        let mut s = SelectionSet::empty(65);
        s.set(64, true);
        s.set(3, true);
        // Removing slot 3 pulls bit 64 down into one-word range.
        assert!(s.swap_remove(3));
        assert_eq!(s.len(), 64);
        assert!(s.contains(3));
        assert_eq!(s.count_ones(), 1);
        let mut expect = SelectionSet::empty(64);
        expect.set(3, true);
        assert_eq!(s, expect);
        assert_eq!(s.as_mask(), 1u64 << 3);
    }

    #[test]
    fn push_and_swap_remove_preserve_cow_isolation() {
        // Mutating a clone through the grow/shrink paths must not alias the
        // original's shared words (Arc::make_mut copy-on-write).
        let mut a = SelectionSet::from_bools(&[true, false, true]);
        let b = a.clone();
        a.push(true);
        a.swap_remove(1);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![true, true, true]);
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![true, false, true]);
        // And the reverse direction: clone mutates, original unchanged.
        let mut c = b.clone();
        c.swap_remove(0);
        assert_eq!(b.count_ones(), 2);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn empty_set_storage_and_edges() {
        // A zero-candidate selection is a real value: pushes start from it,
        // and its word vector must stay empty so Eq against `empty(0)`
        // holds.
        let mut s = SelectionSet::empty(0);
        assert!(s.is_empty());
        assert_eq!(s.count_ones(), 0);
        assert_eq!(s.as_mask(), 0);
        assert_eq!(s, SelectionSet::from_mask(0, 0));
        s.push(true);
        assert!(!s.is_empty());
        assert!(s.swap_remove(0));
        assert!(s.is_empty());
        assert_eq!(s, SelectionSet::empty(0));
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn swap_remove_out_of_range_panics() {
        SelectionSet::empty(2).swap_remove(2);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_range_set_panics() {
        SelectionSet::empty(3).set(3, true);
    }

    #[test]
    #[should_panic(expected = "beyond")]
    fn oversized_mask_panics() {
        SelectionSet::from_mask(0b100, 2);
    }

    #[test]
    fn debug_renders_bits() {
        let s = SelectionSet::from_mask(0b01, 2);
        assert_eq!(format!("{s:?}"), "SelectionSet[10]");
    }
}
