//! Compact candidate-selection bitsets.
//!
//! The optimizer probes thousands-to-millions of candidate subsets per
//! solve; selections were previously `Vec<bool>`, cloned on every probe
//! and stored in every [`crate::CostBreakdown`]-carrying evaluation.
//! [`SelectionSet`] packs the mask into `u64` words behind an `Arc`:
//!
//! * **clone is O(1)** — an atomic refcount bump, no allocation;
//! * **mutation is copy-on-write** — `Arc::make_mut` only copies the
//!   word vector when the selection is actually shared;
//! * **n ≤ 64 never allocates more than one word**, the common case for
//!   the paper's ≤ 16-candidate problems.

use std::fmt;
use std::sync::Arc;

/// A set of selected candidate views, as a bitmask aligned with a
/// candidate slice. Cheap to clone (copy-on-write words).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct SelectionSet {
    len: usize,
    words: Arc<Vec<u64>>,
}

impl SelectionSet {
    /// The empty selection over `len` candidates.
    pub fn empty(len: usize) -> Self {
        SelectionSet {
            len,
            words: Arc::new(vec![0; len.div_ceil(64)]),
        }
    }

    /// The all-selected selection over `len` candidates.
    pub fn full(len: usize) -> Self {
        let mut words = vec![u64::MAX; len.div_ceil(64)];
        if let Some(last) = words.last_mut() {
            let tail = len % 64;
            if tail != 0 {
                *last = (1u64 << tail) - 1;
            }
        }
        SelectionSet {
            len,
            words: Arc::new(words),
        }
    }

    /// Builds a selection from a bool slice (index k selected iff
    /// `bools[k]`).
    pub fn from_bools(bools: &[bool]) -> Self {
        let mut s = SelectionSet::empty(bools.len());
        let words = Arc::make_mut(&mut s.words);
        for (k, &on) in bools.iter().enumerate() {
            if on {
                words[k / 64] |= 1u64 << (k % 64);
            }
        }
        s
    }

    /// Builds a selection over `len ≤ 64` candidates from a bitmask
    /// (bit k = candidate k).
    pub fn from_mask(mask: u64, len: usize) -> Self {
        assert!(len <= 64, "from_mask supports at most 64 candidates");
        assert!(
            len == 64 || mask < (1u64 << len),
            "mask {mask:#x} has bits beyond {len} candidates"
        );
        SelectionSet {
            len,
            // Word count must match `empty(len)` so Eq/Hash are
            // representation-independent.
            words: Arc::new(if len == 0 { Vec::new() } else { vec![mask] }),
        }
    }

    /// Number of candidates the selection ranges over (not the number
    /// selected).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when there are no candidates at all.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether candidate `k` is selected.
    #[inline]
    pub fn contains(&self, k: usize) -> bool {
        debug_assert!(k < self.len, "candidate {k} out of {}", self.len);
        self.words[k / 64] >> (k % 64) & 1 == 1
    }

    /// Selects (`on = true`) or deselects candidate `k`.
    #[inline]
    pub fn set(&mut self, k: usize, on: bool) {
        assert!(k < self.len, "candidate {k} out of {}", self.len);
        let words = Arc::make_mut(&mut self.words);
        let bit = 1u64 << (k % 64);
        if on {
            words[k / 64] |= bit;
        } else {
            words[k / 64] &= !bit;
        }
    }

    /// Toggles candidate `k`, returning its new state.
    #[inline]
    pub fn toggle(&mut self, k: usize) -> bool {
        assert!(k < self.len, "candidate {k} out of {}", self.len);
        let words = Arc::make_mut(&mut self.words);
        words[k / 64] ^= 1u64 << (k % 64);
        words[k / 64] >> (k % 64) & 1 == 1
    }

    /// Number of selected candidates.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Per-candidate booleans in index order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |k| self.contains(k))
    }

    /// Indices of the selected candidates, ascending.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&k| self.contains(k))
    }

    /// The selection as a `u64` bitmask (requires ≤ 64 candidates).
    pub fn as_mask(&self) -> u64 {
        assert!(self.len <= 64, "as_mask supports at most 64 candidates");
        self.words.first().copied().unwrap_or(0)
    }
}

impl fmt::Debug for SelectionSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SelectionSet[")?;
        for k in 0..self.len {
            write!(f, "{}", if self.contains(k) { '1' } else { '0' })?;
        }
        write!(f, "]")
    }
}

impl From<&[bool]> for SelectionSet {
    fn from(bools: &[bool]) -> Self {
        SelectionSet::from_bools(bools)
    }
}

impl From<Vec<bool>> for SelectionSet {
    fn from(bools: Vec<bool>) -> Self {
        SelectionSet::from_bools(&bools)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_full_and_counts() {
        let e = SelectionSet::empty(70);
        assert_eq!(e.len(), 70);
        assert_eq!(e.count_ones(), 0);
        let f = SelectionSet::full(70);
        assert_eq!(f.count_ones(), 70);
        assert!(f.iter().all(|b| b));
        assert_eq!(SelectionSet::full(64).count_ones(), 64);
        assert!(SelectionSet::empty(0).is_empty());
    }

    #[test]
    fn set_toggle_contains() {
        let mut s = SelectionSet::empty(10);
        s.set(3, true);
        s.set(9, true);
        assert!(s.contains(3) && s.contains(9) && !s.contains(0));
        assert_eq!(s.ones().collect::<Vec<_>>(), vec![3, 9]);
        assert!(!s.toggle(3));
        assert!(s.toggle(4));
        assert_eq!(s.count_ones(), 2);
    }

    #[test]
    fn copy_on_write_isolation() {
        let mut a = SelectionSet::empty(8);
        a.set(1, true);
        let b = a.clone();
        a.set(2, true);
        assert!(a.contains(2));
        assert!(!b.contains(2));
        assert!(b.contains(1));
    }

    #[test]
    fn mask_and_bools_roundtrip() {
        let s = SelectionSet::from_mask(0b1011, 4);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![true, true, false, true]);
        assert_eq!(s.as_mask(), 0b1011);
        let t = SelectionSet::from_bools(&[true, false, true]);
        assert_eq!(t.as_mask(), 0b101);
        assert_eq!(SelectionSet::from(vec![false, true]).as_mask(), 0b10);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_range_set_panics() {
        SelectionSet::empty(3).set(3, true);
    }

    #[test]
    #[should_panic(expected = "beyond")]
    fn oversized_mask_panics() {
        SelectionSet::from_mask(0b100, 2);
    }

    #[test]
    fn debug_renders_bits() {
        let s = SelectionSet::from_mask(0b01, 2);
        assert_eq!(format!("{s:?}"), "SelectionSet[10]");
    }
}
