//! Sparse per-view answer profiles.
//!
//! A candidate view in a production-scale lattice answers a handful of
//! the workload's queries, not most of them: at n = 2 000 candidates and
//! m = 50 000 queries the historical dense `Vec<Option<Hours>>` per view
//! would hold 100 million mostly-`None` slots (~1.6 GB), while the views
//! that actually matter carry a few dozen entries each. [`AnswerProfile`]
//! stores only the answered queries, as two parallel arrays — ascending
//! query ids and their answer times — so the evaluator's probe loops walk
//! contiguous memory and the profile's footprint scales with what the
//! view can do, not with the workload size.

use mv_units::Hours;
use serde::{Deserialize, Serialize};

/// Which workload queries a view can answer, and how fast: the sparse
/// `t_iV` map of the paper's Section 4, keyed by workload index.
///
/// Invariants: `queries` is strictly ascending (no duplicates), every id
/// is `< workload_len`, and `times` is index-parallel to `queries`.
/// Equality compares the workload length and the entry set — exactly the
/// distinctions the dense representation's `Vec` equality drew.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnswerProfile {
    workload_len: u32,
    queries: Vec<u32>,
    times: Vec<Hours>,
}

impl AnswerProfile {
    /// The "answers nothing" profile over a `workload_len`-query workload.
    pub fn none(workload_len: usize) -> Self {
        AnswerProfile {
            workload_len: u32::try_from(workload_len).expect("workload fits in u32"),
            queries: Vec::new(),
            times: Vec::new(),
        }
    }

    /// Builds a profile from the historical dense representation.
    pub fn from_dense(dense: &[Option<Hours>]) -> Self {
        let mut p = AnswerProfile::none(dense.len());
        for (i, t) in dense.iter().enumerate() {
            if let Some(t) = *t {
                p.set(i, t);
            }
        }
        p
    }

    /// The workload length this profile is aligned to (counting
    /// unanswered queries).
    pub fn workload_len(&self) -> usize {
        self.workload_len as usize
    }

    /// Number of queries this view answers (the profile's degree).
    pub fn answered(&self) -> usize {
        self.queries.len()
    }

    /// `true` when the view answers no query at all.
    pub fn answers_nothing(&self) -> bool {
        self.queries.is_empty()
    }

    /// The answer time for workload query `index`, or `None` when the
    /// view cannot answer it. O(log degree).
    pub fn get(&self, index: usize) -> Option<Hours> {
        assert!(
            index < self.workload_len as usize,
            "query {index} out of a {}-query workload",
            self.workload_len
        );
        self.queries
            .binary_search(&(index as u32))
            .ok()
            .map(|pos| self.times[pos])
    }

    /// Declares (or re-times) an answer for workload query `index`.
    /// Appending in ascending order is O(1); out-of-order inserts shift.
    pub fn set(&mut self, index: usize, time: Hours) {
        assert!(
            index < self.workload_len as usize,
            "query {index} out of a {}-query workload",
            self.workload_len
        );
        let id = index as u32;
        if self.queries.last().is_none_or(|&last| last < id) {
            self.queries.push(id);
            self.times.push(time);
            return;
        }
        match self.queries.binary_search(&id) {
            Ok(pos) => self.times[pos] = time,
            Err(pos) => {
                self.queries.insert(pos, id);
                self.times.insert(pos, time);
            }
        }
    }

    /// The answered queries as `(workload index, time)`, ascending.
    pub fn entries(&self) -> impl Iterator<Item = (usize, Hours)> + '_ {
        self.queries
            .iter()
            .zip(&self.times)
            .map(|(&i, &t)| (i as usize, t))
    }

    /// The answered query ids, ascending. Index-parallel to
    /// [`AnswerProfile::times`].
    pub fn query_ids(&self) -> &[u32] {
        &self.queries
    }

    /// The answer times, parallel to [`AnswerProfile::query_ids`].
    pub fn times(&self) -> &[Hours] {
        &self.times
    }

    /// The dense `Vec<Option<Hours>>` equivalent (tests, debugging).
    pub fn to_dense(&self) -> Vec<Option<Hours>> {
        let mut out = vec![None; self.workload_len as usize];
        for (i, t) in self.entries() {
            out[i] = Some(t);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_roundtrip_matches_dense() {
        let dense = vec![None, Some(Hours::new(0.5)), None, Some(Hours::new(0.1))];
        let p = AnswerProfile::from_dense(&dense);
        assert_eq!(p.workload_len(), 4);
        assert_eq!(p.answered(), 2);
        assert_eq!(p.to_dense(), dense);
        assert_eq!(p.get(0), None);
        assert_eq!(p.get(1), Some(Hours::new(0.5)));
        assert_eq!(p.get(3), Some(Hours::new(0.1)));
        assert_eq!(
            p.entries().collect::<Vec<_>>(),
            vec![(1, Hours::new(0.5)), (3, Hours::new(0.1))]
        );
    }

    #[test]
    fn out_of_order_set_keeps_ascending_order() {
        let mut p = AnswerProfile::none(5);
        p.set(4, Hours::new(0.4));
        p.set(1, Hours::new(0.1));
        p.set(2, Hours::new(0.2));
        assert_eq!(p.query_ids(), &[1, 2, 4]);
        // Re-timing an existing entry overwrites in place.
        p.set(2, Hours::new(0.9));
        assert_eq!(p.answered(), 3);
        assert_eq!(p.get(2), Some(Hours::new(0.9)));
    }

    #[test]
    fn equality_tracks_workload_length_and_entries() {
        let a = AnswerProfile::none(3);
        let b = AnswerProfile::none(4);
        assert_ne!(a, b);
        let mut c = AnswerProfile::none(3);
        c.set(1, Hours::new(0.2));
        assert_ne!(a, c);
        let mut d = AnswerProfile::none(3);
        d.set(1, Hours::new(0.2));
        assert_eq!(c, d);
    }

    #[test]
    fn empty_profile_reports_answering_nothing() {
        let p = AnswerProfile::none(2);
        assert!(p.answers_nothing());
        assert_eq!(p.times(), &[]);
    }

    #[test]
    #[should_panic(expected = "out of a")]
    fn get_past_workload_panics() {
        AnswerProfile::none(2).get(2);
    }

    #[test]
    #[should_panic(expected = "out of a")]
    fn set_past_workload_panics() {
        AnswerProfile::none(2).set(5, Hours::new(1.0));
    }
}
