//! Itemized cost results.

use std::fmt;

use mv_units::Money;
use serde::{Deserialize, Serialize};

/// The paper's Formula 1 decomposition, with compute further split into the
/// three Section-4 components (Formula 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// `Ct` — outbound transfer of query results.
    pub transfer: Money,
    /// `CprocessingQ` — running the workload.
    pub compute_processing: Money,
    /// `CmaintenanceV` — refreshing the selected views (0 without views).
    pub compute_maintenance: Money,
    /// `CmaterializationV` — building the selected views (0 without views).
    pub compute_materialization: Money,
    /// `Cs` — storing the dataset, inserted data and selected views.
    pub storage: Money,
}

impl CostBreakdown {
    /// `Cc` — total compute (Formula 6).
    pub fn compute(&self) -> Money {
        self.compute_processing + self.compute_maintenance + self.compute_materialization
    }

    /// `C = Cc + Cs + Ct` (Formula 1).
    pub fn total(&self) -> Money {
        self.compute() + self.storage + self.transfer
    }
}

impl fmt::Display for CostBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Ct (transfer)           {:>12}",
            self.transfer.to_string()
        )?;
        writeln!(
            f,
            "Cc (processing)         {:>12}",
            self.compute_processing.to_string()
        )?;
        writeln!(
            f,
            "Cc (maintenance)        {:>12}",
            self.compute_maintenance.to_string()
        )?;
        writeln!(
            f,
            "Cc (materialization)    {:>12}",
            self.compute_materialization.to_string()
        )?;
        writeln!(
            f,
            "Cs (storage)            {:>12}",
            self.storage.to_string()
        )?;
        write!(
            f,
            "C  (total)              {:>12}",
            self.total().to_string()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let b = CostBreakdown {
            transfer: Money::from_dollars_str("1.08").unwrap(),
            compute_processing: Money::from_dollars_str("9.6").unwrap(),
            compute_maintenance: Money::from_dollars_str("1.2").unwrap(),
            compute_materialization: Money::from_dollars_str("0.24").unwrap(),
            storage: Money::from_dollars(924),
        };
        assert_eq!(b.compute(), Money::from_dollars_str("11.04").unwrap());
        assert_eq!(b.total(), Money::from_dollars_str("936.12").unwrap());
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(CostBreakdown::default().total(), Money::ZERO);
    }

    #[test]
    fn renders_all_components() {
        let b = CostBreakdown::default();
        let s = b.to_string();
        for needle in [
            "Ct",
            "processing",
            "maintenance",
            "materialization",
            "Cs",
            "total",
        ] {
            assert!(s.contains(needle), "missing {needle}");
        }
    }
}
