//! Fitting cost-model parameters from metered engine work.
//!
//! The paper's Table 5 parameters (per-query processing times, view
//! materialization and maintenance times) are *inputs* to its formulas;
//! this module recovers them from measurements. The engine meters every
//! scan, build and refresh as cloud gigabytes of work ([`MeterSample`]);
//! a [`LinearFit`] per work kind regresses wall-clock hours on gigabytes
//! (ordinary least squares), recovering the affine throughput law
//! `hours = overhead + gb / (rate × units)` the simulated cluster obeys.
//! The resulting [`CalibratedParams`] mint [`QueryCharge`]s and
//! [`ViewCharge`]s in the same vocabulary the rest of the cost crate
//! consumes, so a calibrated advisor is a drop-in replacement for one
//! configured with synthetic defaults.

use mv_units::{Gb, Hours};
use serde::{Deserialize, Serialize};

use crate::{AnswerProfile, QueryCharge, ViewCharge};

/// The kind of engine work a metered sample records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkKind {
    /// Answering a query (base-table or view scan).
    Scan,
    /// Building a materialized view from the base table.
    Materialize,
    /// Incrementally refreshing a standing view with an insert batch.
    Refresh,
}

/// One metered observation: a job of `kind` touched `cloud_gb` of data
/// and took `hours` of cluster time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeterSample {
    /// What kind of work ran.
    pub kind: WorkKind,
    /// Cloud-scale gigabytes the job touched.
    pub cloud_gb: Gb,
    /// Observed cluster-hours.
    pub hours: Hours,
}

impl MeterSample {
    /// A sample of `kind` work.
    pub fn new(kind: WorkKind, cloud_gb: Gb, hours: Hours) -> Self {
        MeterSample {
            kind,
            cloud_gb,
            hours,
        }
    }
}

/// An affine throughput law `hours = intercept + slope × gb`, fitted by
/// ordinary least squares.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Fixed per-job overhead in hours (clamped to ≥ 0).
    pub intercept: f64,
    /// Marginal hours per cloud gigabyte (clamped to > 0).
    pub slope: f64,
}

/// Slope floor: even a degenerate fit must charge *something* per byte,
/// or downstream per-GB rates divide by zero.
const MIN_SLOPE: f64 = 1e-12;

impl LinearFit {
    /// Ordinary least squares over `(gb, hours)` points. Returns `None`
    /// when the regression is under-determined: fewer than two points,
    /// non-finite coordinates, or zero variance in `gb`.
    pub fn least_squares(points: &[(f64, f64)]) -> Option<LinearFit> {
        if points.len() < 2 || points.iter().any(|(x, y)| !x.is_finite() || !y.is_finite()) {
            return None;
        }
        let n = points.len() as f64;
        let mean_x = points.iter().map(|(x, _)| x).sum::<f64>() / n;
        let mean_y = points.iter().map(|(_, y)| y).sum::<f64>() / n;
        let sxx: f64 = points.iter().map(|(x, _)| (x - mean_x).powi(2)).sum();
        if sxx <= f64::EPSILON * n * mean_x.abs().max(1.0) {
            return None;
        }
        let sxy: f64 = points
            .iter()
            .map(|(x, y)| (x - mean_x) * (y - mean_y))
            .sum();
        let slope = (sxy / sxx).max(MIN_SLOPE);
        let intercept = (mean_y - slope * mean_x).max(0.0);
        Some(LinearFit { intercept, slope })
    }

    /// Predicted hours for a job touching `gb` gigabytes.
    pub fn hours(&self, gb: Gb) -> Hours {
        Hours::new(self.intercept + self.slope * gb.value())
    }
}

/// Fitted cost-model parameters: one throughput law per work kind, plus
/// the compute-unit pool the measurements ran on (needed to express the
/// scan law as the engine's per-unit rate).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibratedParams {
    /// Query/scan throughput law.
    pub scan: LinearFit,
    /// View-build throughput law.
    pub materialize: LinearFit,
    /// Incremental-refresh throughput law.
    pub refresh: LinearFit,
    /// Total compute units the metered jobs ran on.
    pub compute_units: f64,
}

impl CalibratedParams {
    /// Fits one law per work kind from `samples`. Kinds with too few
    /// samples (or degenerate spreads) inherit the scan law — scans
    /// dominate any real meter stream, so the scan fit is the anchor.
    /// Returns `None` when even the scan law is under-determined or
    /// `compute_units` is not positive.
    pub fn fit(samples: &[MeterSample], compute_units: f64) -> Option<CalibratedParams> {
        if compute_units.is_nan() || compute_units <= 0.0 {
            return None;
        }
        let points = |kind: WorkKind| -> Vec<(f64, f64)> {
            samples
                .iter()
                .filter(|s| s.kind == kind)
                .map(|s| (s.cloud_gb.value(), s.hours.value()))
                .collect()
        };
        let scan = LinearFit::least_squares(&points(WorkKind::Scan))?;
        let materialize = LinearFit::least_squares(&points(WorkKind::Materialize)).unwrap_or(scan);
        let refresh = LinearFit::least_squares(&points(WorkKind::Refresh)).unwrap_or(scan);
        Some(CalibratedParams {
            scan,
            materialize,
            refresh,
            compute_units,
        })
    }

    /// A synthetic prior in the same vocabulary: every work kind obeys
    /// `hours = overhead + gb / (rate × units)`. This is what an advisor
    /// assumes *before* calibration — the baseline a fit must beat.
    pub fn from_throughput(
        scan_gb_per_hour_per_unit: f64,
        job_overhead: Hours,
        compute_units: f64,
    ) -> CalibratedParams {
        let law = LinearFit {
            intercept: job_overhead.value().max(0.0),
            slope: (1.0 / (scan_gb_per_hour_per_unit * compute_units)).max(MIN_SLOPE),
        };
        CalibratedParams {
            scan: law,
            materialize: law,
            refresh: law,
            compute_units,
        }
    }

    /// The fitted scan law expressed as the engine's throughput vocabulary:
    /// gigabytes per hour per compute unit.
    pub fn scan_gb_per_hour_per_unit(&self) -> f64 {
        1.0 / (self.scan.slope * self.compute_units)
    }

    /// The fitted per-job overhead of the scan law.
    pub fn job_overhead(&self) -> Hours {
        Hours::new(self.scan.intercept)
    }

    /// Predicted hours for `gb` of work of `kind`.
    pub fn hours_for(&self, kind: WorkKind, gb: Gb) -> Hours {
        match kind {
            WorkKind::Scan => self.scan.hours(gb),
            WorkKind::Materialize => self.materialize.hours(gb),
            WorkKind::Refresh => self.refresh.hours(gb),
        }
    }

    /// Mints a workload query charge from metered sizes: the query scans
    /// `scanned` gigabytes on the base dataset and ships `result_size`
    /// out, `frequency` times per period.
    pub fn query_charge(
        &self,
        name: impl Into<String>,
        result_size: Gb,
        scanned: Gb,
        frequency: f64,
    ) -> QueryCharge {
        QueryCharge {
            name: name.into(),
            result_size,
            base_time: self.hours_for(WorkKind::Scan, scanned),
            frequency,
        }
    }

    /// Mints a view charge from metered sizes: the view stores `size`
    /// gigabytes, its build scans `build_scanned`, and each refresh
    /// touches `refresh_scanned`. The answer profile starts empty
    /// (`workload_len` queries); fill it with [`ViewCharge::answers`]
    /// using [`CalibratedParams::hours_for`] on each answered query's
    /// view-scan size.
    pub fn view_charge(
        &self,
        name: impl Into<String>,
        size: Gb,
        build_scanned: Gb,
        refresh_scanned: Gb,
        workload_len: usize,
    ) -> ViewCharge {
        ViewCharge {
            name: name.into(),
            size,
            materialization: self.hours_for(WorkKind::Materialize, build_scanned),
            maintenance: self.hours_for(WorkKind::Refresh, refresh_scanned),
            profile: AnswerProfile::none(workload_len),
            placement: Default::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn least_squares_recovers_exact_affine_law() {
        // hours = 0.01 + gb / 50  (25 GB/h/unit on 2 units).
        let pts: Vec<(f64, f64)> = [1.0, 4.0, 10.0, 40.0]
            .iter()
            .map(|&gb| (gb, 0.01 + gb / 50.0))
            .collect();
        let fit = LinearFit::least_squares(&pts).unwrap();
        assert!((fit.intercept - 0.01).abs() < 1e-12);
        assert!((fit.slope - 0.02).abs() < 1e-12);
        assert!((fit.hours(Gb::new(100.0)).value() - 2.01).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs_refuse_to_fit() {
        assert!(LinearFit::least_squares(&[]).is_none());
        assert!(LinearFit::least_squares(&[(1.0, 1.0)]).is_none());
        // Zero variance in gb.
        assert!(LinearFit::least_squares(&[(2.0, 1.0), (2.0, 3.0)]).is_none());
        // Non-finite coordinates.
        assert!(LinearFit::least_squares(&[(1.0, f64::NAN), (2.0, 1.0)]).is_none());
        assert!(CalibratedParams::fit(&[], 2.0).is_none());
        let s = MeterSample::new(WorkKind::Scan, Gb::new(1.0), Hours::new(1.0));
        assert!(CalibratedParams::fit(&[s, s], 0.0).is_none());
    }

    #[test]
    fn fit_partitions_by_kind_with_scan_fallback() {
        let mut samples = vec![];
        for &gb in &[1.0, 5.0, 20.0] {
            samples.push(MeterSample::new(
                WorkKind::Scan,
                Gb::new(gb),
                Hours::new(0.01 + gb / 50.0),
            ));
            // Builds run at half the scan throughput.
            samples.push(MeterSample::new(
                WorkKind::Materialize,
                Gb::new(gb),
                Hours::new(0.01 + gb / 25.0),
            ));
        }
        let params = CalibratedParams::fit(&samples, 2.0).unwrap();
        assert!((params.scan_gb_per_hour_per_unit() - 25.0).abs() < 1e-6);
        assert!((params.job_overhead().value() - 0.01).abs() < 1e-9);
        assert!((params.materialize.slope - 0.04).abs() < 1e-9);
        // No refresh samples: inherits the scan law.
        assert_eq!(params.refresh, params.scan);
        let q = params.query_charge("Q1", Gb::new(0.1), Gb::new(100.0), 2.0);
        assert!((q.base_time.value() - 2.01).abs() < 1e-9);
        assert_eq!(q.frequency, 2.0);
        let v = params.view_charge("V1", Gb::new(5.0), Gb::new(100.0), Gb::new(1.0), 3);
        assert!((v.materialization.value() - 4.01).abs() < 1e-9);
        assert_eq!(v.profile.workload_len(), 3);
    }

    #[test]
    fn synthetic_prior_matches_throughput_vocabulary() {
        let prior = CalibratedParams::from_throughput(25.0, Hours::new(0.01), 2.0);
        assert!((prior.scan_gb_per_hour_per_unit() - 25.0).abs() < 1e-9);
        // Q1 anchor: 10 GB on 2 small units ≈ 0.21 h.
        let h = prior.hours_for(WorkKind::Scan, Gb::new(10.0));
        assert!((h.value() - 0.21).abs() < 1e-9);
    }
}
