//! The paper's cost models (Sections 3 and 4).
//!
//! [`CloudCostModel::without_views`] implements Section 3 — data management
//! cost with no materialized views (Formulas 1–5). [`CloudCostModel::
//! with_views`] implements Section 4 — the same three components, with
//! compute split into processing/maintenance/materialization (Formulas
//! 6–12) and storage covering the views for the whole period.
//!
//! Rounding convention: billable hours are rounded **per cost component**
//! (processing, maintenance, materialization each round up independently),
//! which is exactly how the paper's worked Examples 2, 4, 6 and 8 compute
//! their dollar figures.

use mv_pricing::StorageTimeline;
use mv_units::{Hours, Money};

use crate::{CostBreakdown, CostContext, SelectionSet, ViewCharge};

/// Block width of the canonical two-level processing-time fold shared by
/// [`CloudCostModel::processing_time_with_views`] and the incremental
/// evaluators that must reproduce it bit-for-bit.
pub const TIME_FOLD_BLOCK: usize = 64;

/// Evaluates the paper's cost formulas over a [`CostContext`].
#[derive(Debug, Clone)]
pub struct CloudCostModel {
    ctx: CostContext,
}

impl CloudCostModel {
    /// Wraps a context.
    pub fn new(ctx: CostContext) -> Self {
        CloudCostModel { ctx }
    }

    /// The wrapped context.
    pub fn context(&self) -> &CostContext {
        &self.ctx
    }

    // ------------------------------------------------------------------
    // Section 3: no views.
    // ------------------------------------------------------------------

    /// Formula 3: `Ct = Σ s(R_i) × ct`, with the provider's tier schedule
    /// applied to the period's aggregated outbound volume. (Formula 2's
    /// input terms are zero under free-inbound providers; for providers
    /// that do charge inbound, the initial upload is added.)
    pub fn transfer_cost(&self) -> Money {
        let out = self
            .ctx
            .pricing
            .transfer
            .outbound_cost(self.ctx.total_result_size());
        if self.ctx.pricing.transfer.inbound_is_free() {
            out
        } else {
            // General Formula 2: the dataset and inserted data enter once.
            let inserted: mv_units::Gb = self.ctx.inserts.iter().map(|(_, g)| *g).sum();
            out + self
                .ctx
                .pricing
                .transfer
                .inbound_cost(self.ctx.dataset_size + inserted)
        }
    }

    /// Formula 4: `Cc = RoundUp(Σ t_i) × c(IC) × nbIC`.
    pub fn compute_cost_without_views(&self) -> Money {
        self.compute_component(self.ctx.base_processing_time())
    }

    /// Formula 5 over the dataset-only timeline.
    pub fn storage_cost_without_views(&self) -> Money {
        self.storage_cost_with_extra(mv_units::Gb::ZERO)
    }

    /// Section 3 total: `C = Cc + Cs + Ct`.
    pub fn without_views(&self) -> CostBreakdown {
        CostBreakdown {
            transfer: self.transfer_cost(),
            compute_processing: self.compute_cost_without_views(),
            compute_maintenance: Money::ZERO,
            compute_materialization: Money::ZERO,
            storage: self.storage_cost_without_views(),
        }
    }

    // ------------------------------------------------------------------
    // Section 4: with views.
    // ------------------------------------------------------------------

    /// Formula 9: per-query best time under a selection — each query uses
    /// the fastest selected view that can answer it, else its base time.
    pub fn query_time_with_views(
        &self,
        index: usize,
        views: &[ViewCharge],
        selected: &SelectionSet,
    ) -> Hours {
        let mut best = self.ctx.workload[index].base_time;
        for k in selected.ones() {
            if let Some(t) = views[k].profile.get(index) {
                best = best.min(t);
            }
        }
        best
    }

    /// Formula 9 summed: `TprocessingQ = Σ t_iV` (frequency-weighted).
    ///
    /// The fold is *blocked*: per-query terms accumulate into
    /// [`TIME_FOLD_BLOCK`]-wide partial sums (each folded from zero in
    /// workload order) and the total folds the block sums in order. For
    /// workloads of at most one block this is bitwise-identical to the
    /// flat left fold (adding to an exact zero is the identity on
    /// non-negative terms), so the paper's worked dollar figures are
    /// unchanged — and incremental evaluators can cache the block sums
    /// and refold only dirty blocks while staying bit-identical to this
    /// definition.
    pub fn processing_time_with_views(
        &self,
        views: &[ViewCharge],
        selected: &SelectionSet,
    ) -> Hours {
        let workload = &self.ctx.workload;
        let mut total = Hours::ZERO;
        let mut start = 0;
        while start < workload.len() {
            let end = (start + TIME_FOLD_BLOCK).min(workload.len());
            let mut block = Hours::ZERO;
            for (i, q) in workload[start..end].iter().enumerate() {
                block += self.query_time_with_views(start + i, views, selected) * q.frequency;
            }
            total += block;
            start = end;
        }
        total
    }

    /// Formula 7: total materialization time of the selected views.
    pub fn materialization_time(&self, views: &[ViewCharge], selected: &SelectionSet) -> Hours {
        selected.ones().map(|k| views[k].materialization).sum()
    }

    /// Formula 11: total maintenance time of the selected views per period.
    pub fn maintenance_time(&self, views: &[ViewCharge], selected: &SelectionSet) -> Hours {
        selected.ones().map(|k| views[k].maintenance).sum()
    }

    /// Extra storage of the selected views.
    pub fn views_size(&self, views: &[ViewCharge], selected: &SelectionSet) -> mv_units::Gb {
        selected.ones().map(|k| views[k].size).sum()
    }

    /// Section 4 total (Formulas 6–12 plus unchanged Formula 3 transfer).
    pub fn with_views(&self, views: &[ViewCharge], selected: &SelectionSet) -> CostBreakdown {
        assert_eq!(
            views.len(),
            selected.len(),
            "selection mask must align with candidates"
        );
        self.breakdown_from_totals(
            self.processing_time_with_views(views, selected),
            self.maintenance_time(views, selected),
            self.materialization_time(views, selected),
            self.views_size(views, selected),
        )
    }

    /// Assembles the Section 4 breakdown from already-aggregated totals.
    /// [`CloudCostModel::with_views`] is defined in terms of this, so an
    /// incremental evaluator that tracks the four totals itself (e.g.
    /// `mv-select`'s `IncrementalEvaluator`) produces breakdowns that are
    /// bit-identical to a full re-evaluation by construction.
    pub fn breakdown_from_totals(
        &self,
        processing: Hours,
        maintenance: Hours,
        materialization: Hours,
        views_size: mv_units::Gb,
    ) -> CostBreakdown {
        CostBreakdown {
            transfer: self.transfer_cost(),
            compute_processing: self.compute_component(processing),
            compute_maintenance: self.compute_component(maintenance),
            compute_materialization: self.compute_component(materialization),
            storage: self.storage_cost_with_extra(views_size),
        }
    }

    // ------------------------------------------------------------------
    // Shared pieces.
    // ------------------------------------------------------------------

    /// One compute component: `RoundUp(time) × c(IC) × nbIC` under the
    /// provider's rounding rule. Zero time bills zero (no idle charge).
    /// Public so incremental evaluators can price their cached totals
    /// through the exact same routine as [`CloudCostModel::with_views`].
    pub fn compute_cost(&self, time: Hours) -> Money {
        self.compute_component(time)
    }

    fn compute_component(&self, time: Hours) -> Money {
        if time == Hours::ZERO {
            return Money::ZERO;
        }
        self.ctx
            .pricing
            .compute
            .cost(time, &self.ctx.instance, self.ctx.nb_instances)
    }

    /// Formula 5: the interval-based storage cost of dataset + inserts,
    /// plus `extra` (the selected views) stored for the whole period.
    fn storage_cost_with_extra(&self, extra: mv_units::Gb) -> Money {
        let mut timeline = StorageTimeline::new(self.ctx.dataset_size + extra, self.ctx.months);
        for (at, added) in &self.ctx.inserts {
            timeline
                .insert(*at, *added)
                .expect("context inserts are chronological");
        }
        self.ctx.pricing.storage.period_cost(&timeline)
    }

    /// The storage timeline used by [`CloudCostModel::with_views`], exposed
    /// for invoice reconciliation in integration tests.
    pub fn storage_timeline(&self, extra_views: mv_units::Gb) -> StorageTimeline {
        let mut timeline =
            StorageTimeline::new(self.ctx.dataset_size + extra_views, self.ctx.months);
        for (at, added) in &self.ctx.inserts {
            timeline
                .insert(*at, *added)
                .expect("context inserts are chronological");
        }
        timeline
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QueryCharge;
    use mv_pricing::presets;
    use mv_units::{Gb, Months};

    /// The running example as a costing context.
    fn running_example() -> CloudCostModel {
        let pricing = presets::aws_2012();
        let instance = pricing.compute.instance("small").unwrap().clone();
        CloudCostModel::new(CostContext {
            pricing,
            instance,
            nb_instances: 2,
            months: Months::new(12.0),
            dataset_size: Gb::new(500.0),
            inserts: vec![],
            workload: vec![QueryCharge::new("Q", Gb::new(10.0), Hours::new(50.0))],
        })
    }

    fn v1(workload_len: usize) -> ViewCharge {
        ViewCharge::new(
            "V1",
            Gb::new(50.0),
            Hours::new(1.0),
            Hours::new(5.0),
            workload_len,
        )
        .answers(0, Hours::new(40.0))
    }

    #[test]
    fn section3_costs() {
        let m = running_example();
        let b = m.without_views();
        assert_eq!(b.transfer, Money::from_dollars_str("1.08").unwrap());
        assert_eq!(b.compute_processing, Money::from_dollars(12));
        // 500 GB × 12 × $0.14 = $840.
        assert_eq!(b.storage, Money::from_dollars(840));
        assert_eq!(b.total(), Money::from_dollars_str("853.08").unwrap());
    }

    #[test]
    fn section4_costs_with_v1() {
        let m = running_example();
        let views = vec![v1(1)];
        let selected = SelectionSet::full(1);
        assert_eq!(
            m.processing_time_with_views(&views, &selected).value(),
            40.0
        );
        let b = m.with_views(&views, &selected);
        assert_eq!(
            b.compute_processing,
            Money::from_dollars_str("9.6").unwrap()
        );
        assert_eq!(
            b.compute_maintenance,
            Money::from_dollars_str("1.2").unwrap()
        );
        assert_eq!(
            b.compute_materialization,
            Money::from_dollars_str("0.24").unwrap()
        );
        // (500+50) GB × 12 × $0.14 = $924 (the paper's Example 9).
        assert_eq!(b.storage, Money::from_dollars(924));
        // Transfer unchanged (Section 4.1).
        assert_eq!(b.transfer, Money::from_dollars_str("1.08").unwrap());
    }

    #[test]
    fn deselected_views_charge_nothing() {
        let m = running_example();
        let views = vec![v1(1)];
        let selected = SelectionSet::empty(1);
        let b = m.with_views(&views, &selected);
        assert_eq!(b, m.without_views());
    }

    #[test]
    fn best_view_wins_per_query() {
        let m = running_example();
        let views = vec![
            v1(1),
            ViewCharge::new("V2", Gb::new(5.0), Hours::new(0.5), Hours::new(1.0), 1)
                .answers(0, Hours::new(20.0)),
        ];
        // Both selected: the faster V2 answers Q.
        assert_eq!(
            m.processing_time_with_views(&views, &SelectionSet::from_mask(0b11, 2))
                .value(),
            20.0
        );
        // Only V1: 40 h.
        assert_eq!(
            m.processing_time_with_views(&views, &SelectionSet::from_mask(0b01, 2))
                .value(),
            40.0
        );
        // A view that cannot answer leaves the base time.
        assert_eq!(
            m.processing_time_with_views(&views, &SelectionSet::from_mask(0b00, 2))
                .value(),
            50.0
        );
    }

    #[test]
    fn inserts_change_storage_intervals() {
        let mut ctx = running_example().ctx;
        ctx.inserts = vec![(Months::new(6.0), Gb::new(100.0))];
        let m = CloudCostModel::new(ctx);
        // 500×6 + 600×6 GB-months at $0.14.
        let expected = Money::from_dollars_str("0.14")
            .unwrap()
            .scale(500.0 * 6.0 + 600.0 * 6.0);
        assert_eq!(m.storage_cost_without_views(), expected);
    }

    #[test]
    #[should_panic(expected = "selection mask must align")]
    fn misaligned_selection_panics() {
        let m = running_example();
        m.with_views(&[v1(1)], &SelectionSet::from_mask(0b01, 2));
    }
}
