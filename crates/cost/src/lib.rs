//! The paper's monetary cost models.
//!
//! Section 3 of the paper prices cloud data management without views:
//! transfer (Formulas 2–3), compute (Formula 4) and storage (Formula 5).
//! Section 4 extends compute with view materialization and maintenance
//! (Formulas 6–12). This crate implements both over the pricing substrate,
//! exactly reproducing every worked example of the paper (see
//! `tests/paper_examples.rs` for Examples 1–9 as golden tests).
//!
//! Two extensions charge views beyond the paper's single static fleet,
//! both as *charge transforms* that leave the answer profile untouched
//! (the O(1) splice contract of `mv-select`'s `update_charge`):
//! [`InterruptionRisk`] inflates build/refresh hours by the expected
//! re-run count under spot interruption, and [`PoolCharge`] folds a
//! mixed fleet's per-pool rate differentials into effective hours and
//! bytes for views [`Placement`]-assigned to the non-primary pool.
//!
//! ```
//! use mv_cost::{CloudCostModel, CostContext, QueryCharge};
//! use mv_pricing::presets;
//! use mv_units::{Gb, Hours, Months};
//!
//! let pricing = presets::aws_2012();
//! let instance = pricing.compute.instance("small").unwrap().clone();
//! let model = CloudCostModel::new(CostContext {
//!     pricing,
//!     instance,
//!     nb_instances: 2,
//!     months: Months::new(12.0),
//!     dataset_size: Gb::new(500.0),
//!     inserts: vec![],
//!     workload: vec![QueryCharge::new("Q", Gb::new(10.0), Hours::new(50.0))],
//! });
//! // Example 2: $12 of compute without views.
//! assert_eq!(model.without_views().compute().to_string(), "$12.00");
//! ```

mod answers;
mod breakdown;
mod fit;
mod model;
mod params;
mod risk;
mod selection;

pub use answers::AnswerProfile;
pub use breakdown::CostBreakdown;
pub use fit::{CalibratedParams, LinearFit, MeterSample, WorkKind};
pub use model::{CloudCostModel, TIME_FOLD_BLOCK};
pub use mv_pricing::Placement;
pub use params::{CostContext, QueryCharge, ViewCharge};
pub use risk::{InterruptionRisk, PoolCharge, MAX_INTERRUPTION};
pub use selection::SelectionSet;

/// Historical alias: selections were `Vec<bool>` before the bitset.
pub type Selection = SelectionSet;
