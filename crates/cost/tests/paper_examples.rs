//! Golden reproductions of the paper's worked Examples 1–9 (§3–§4) and the
//! Section 1 introduction figures.
//!
//! Every monetary figure printed in the paper is asserted here to the
//! micro-dollar. One deliberate deviation: the paper's Example 3 prints
//! **$2131.76**, but its own formula
//! `512×0.14×(7−0) + (512+2048)×0.125×(12−7) = 501.76 + 1600`
//! evaluates to **$2101.76** — we reproduce the formula, not the typo
//! (recorded in EXPERIMENTS.md).

use mv_cost::{CloudCostModel, CostContext, QueryCharge, ViewCharge};
use mv_pricing::{presets, StorageTimeline};
use mv_units::{Gb, Hours, Money, Months};

fn dollars(s: &str) -> Money {
    Money::from_dollars_str(s).unwrap()
}

/// The running example: 500 GB dataset, 10 GB of monthly query results,
/// 50 h workload, two small EC2 instances, one-year horizon.
fn running_example() -> CloudCostModel {
    let pricing = presets::aws_2012();
    let instance = pricing.compute.instance("small").unwrap().clone();
    CloudCostModel::new(CostContext {
        pricing,
        instance,
        nb_instances: 2,
        months: Months::new(12.0),
        dataset_size: Gb::new(500.0),
        inserts: vec![],
        workload: vec![QueryCharge::new("Q", Gb::new(10.0), Hours::new(50.0))],
    })
}

/// V1 = "sales per month and country": 50 GB, 1 h to build, 5 h/period to
/// maintain, drops the workload to 40 h.
fn v1() -> ViewCharge {
    ViewCharge::new("V1", Gb::new(50.0), Hours::new(1.0), Hours::new(5.0), 1)
        .answers(0, Hours::new(40.0))
}

#[test]
fn example_1_data_transfer_cost() {
    // Ct = s(R_Q) × ct = (10 − 1) × 0.12 = $1.08.
    assert_eq!(running_example().transfer_cost(), dollars("1.08"));
}

#[test]
fn example_2_computing_cost() {
    // Cc = RoundUp(50) × 0.12 × 2 = $12.
    assert_eq!(
        running_example().compute_cost_without_views(),
        dollars("12")
    );
}

#[test]
fn example_3_storage_cost_with_intervals() {
    // 512 GB stored 12 months; 2048 GB inserted at the start of month 8
    // (7 elapsed months). Two intervals:
    //   512 × 0.14 × 7 + 2560 × 0.125 × 5 = 501.76 + 1600 = $2101.76.
    let mut tl = StorageTimeline::new(Gb::from_tb(0.5), Months::new(12.0));
    tl.insert(Months::new(7.0), Gb::from_tb(2.0)).unwrap();
    let cost = presets::aws_2012().storage.period_cost(&tl);
    assert_eq!(cost, dollars("2101.76"));
    // The paper prints $2131.76; assert we deliberately differ by the $30
    // typo so a silent regression toward the typo would be caught too.
    assert_eq!(dollars("2131.76") - cost, dollars("30"));
}

#[test]
fn example_4_materialization_cost() {
    // CmaterializationV = 1 × 0.12 × 2 = $0.24.
    let m = running_example();
    let b = m.with_views(&[v1()], &mv_cost::SelectionSet::full(1));
    assert_eq!(b.compute_materialization, dollars("0.24"));
}

#[test]
fn example_5_processing_time_with_views() {
    // TprocessingQ = 40 hours.
    let m = running_example();
    assert_eq!(
        m.processing_time_with_views(&[v1()], &mv_cost::SelectionSet::full(1)),
        Hours::new(40.0)
    );
}

#[test]
fn example_6_processing_cost_with_views() {
    // CprocessingQ = 40 × 0.12 × 2 = $9.6.
    let m = running_example();
    let b = m.with_views(&[v1()], &mv_cost::SelectionSet::full(1));
    assert_eq!(b.compute_processing, dollars("9.6"));
}

#[test]
fn example_7_and_8_maintenance() {
    // TmaintenanceV = 5 h; CmaintenanceV = 5 × 0.12 × 2 = $1.2.
    let m = running_example();
    assert_eq!(
        m.maintenance_time(&[v1()], &mv_cost::SelectionSet::full(1)),
        Hours::new(5.0)
    );
    let b = m.with_views(&[v1()], &mv_cost::SelectionSet::full(1));
    assert_eq!(b.compute_maintenance, dollars("1.2"));
}

#[test]
fn example_9_storage_with_views() {
    // Cs = (500 + 50) × 12 × 0.14 = $924.
    let m = running_example();
    let b = m.with_views(&[v1()], &mv_cost::SelectionSet::full(1));
    assert_eq!(b.storage, dollars("924"));
}

#[test]
fn section1_intro_figures() {
    // The introduction's simpler pricing: $0.10/GB-month, $0.24/h.
    let pricing = presets::intro_fictitious();
    let instance = pricing.compute.instance("std").unwrap().clone();
    let model = CloudCostModel::new(CostContext {
        pricing,
        instance,
        nb_instances: 1,
        months: Months::new(1.0),
        dataset_size: Gb::new(500.0),
        inserts: vec![],
        workload: vec![QueryCharge::new("Q", Gb::ZERO, Hours::new(50.0))],
    });
    // Without views: $50 storage + $12 compute = $62.
    let without = model.without_views();
    assert_eq!(without.storage, dollars("50"));
    assert_eq!(without.compute(), dollars("12"));
    assert_eq!(without.total(), dollars("62"));

    // With views (50 GB extra, 40 h workload): $55 + $9.6 = $64.60. The
    // intro ignores materialization/maintenance, so the view charges zero
    // build and refresh time.
    let intro_view = ViewCharge::new("V", Gb::new(50.0), Hours::ZERO, Hours::ZERO, 1)
        .answers(0, Hours::new(40.0));
    let with = model.with_views(&[intro_view], &mv_cost::SelectionSet::full(1));
    assert_eq!(with.storage, dollars("55"));
    assert_eq!(with.compute(), dollars("9.6"));
    assert_eq!(with.total(), dollars("64.6"));

    // "Performance has improved by 20%, but cost has also increased by ~4%."
    let perf_gain: f64 = (50.0 - 40.0) / 50.0;
    assert!((perf_gain - 0.20).abs() < 1e-12);
    let cost_increase =
        (with.total() - without.total()).to_dollars_f64() / without.total().to_dollars_f64();
    assert!((cost_increase - 0.0419).abs() < 0.001, "{cost_increase}");
}

#[test]
fn section22_monthly_storage_prices() {
    // "monthly storage price when not using materialized views (500 GB
    // dataset) is 0.14 × 500 = $70, and 0.14 × (500 + 50) = $77 when using
    // materialized views".
    let aws = presets::aws_2012();
    assert_eq!(aws.storage.monthly_cost(Gb::new(500.0)), dollars("70"));
    assert_eq!(aws.storage.monthly_cost(Gb::new(550.0)), dollars("77"));
}

#[test]
fn full_breakdown_with_and_without_views() {
    // End-to-end Formula 1 totals for the running example, one year.
    let m = running_example();
    let without = m.without_views();
    // $1.08 + $12 + 500×12×0.14=$840.
    assert_eq!(without.total(), dollars("853.08"));
    let with = m.with_views(&[v1()], &mv_cost::SelectionSet::full(1));
    // $1.08 + ($9.6 + $1.2 + $0.24) + $924.
    assert_eq!(with.total(), dollars("936.12"));
    // Views trade compute for storage here: compute dropped...
    assert!(with.compute() < without.compute());
    // ...while total rose because a year of 50 GB S3 outweighs $1.
    assert!(with.total() > without.total());
}
