//! Hash aggregation.
//!
//! The single physical operator this engine needs: scan the input columns,
//! build a hash table keyed on the group columns' integer keys, fold each
//! row into per-group accumulators, then emit one output row per group.
//! A parallel variant partitions the input, aggregates each partition
//! locally and merges the partial states — the same partial-aggregate/
//! combine structure MapReduce gave the paper's Pig Latin queries.

use crate::agg::{AggExpr, AggState};
use crate::fx::FxHashMap;
use crate::{Column, DataType, EngineError, ExecStats, Field, Schema, Table};

/// A lowered aggregate with its output column name.
#[derive(Debug, Clone)]
pub(crate) struct LoweredAgg {
    pub expr: AggExpr,
    pub alias: String,
}

/// Partial aggregation state: group keys -> accumulator block, plus a
/// representative input row per group for decoding key values.
struct Partial {
    index: FxHashMap<Box<[i64]>, usize>,
    states: Vec<AggState>,
    rep_rows: Vec<usize>,
    n_aggs: usize,
}

impl Partial {
    fn new(n_aggs: usize) -> Self {
        Partial {
            index: FxHashMap::default(),
            states: Vec::new(),
            rep_rows: Vec::new(),
            n_aggs,
        }
    }

    #[inline]
    fn group_index(&mut self, key: &[i64], row: usize, exprs: &[LoweredAgg]) -> usize {
        if let Some(&g) = self.index.get(key) {
            return g;
        }
        let g = self.rep_rows.len();
        self.index.insert(key.into(), g);
        self.rep_rows.push(row);
        for a in exprs {
            self.states.push(a.expr.init());
        }
        debug_assert_eq!(self.states.len(), (g + 1) * self.n_aggs);
        g
    }
}

/// Runs hash aggregation over `table`.
///
/// * `group_cols` — input column indices forming the key (order defines the
///   output column order);
/// * `aggs` — lowered aggregate expressions with output names;
/// * `mask` — optional row filter (from a predicate evaluation).
pub(crate) fn hash_group_by(
    table: &Table,
    group_cols: &[usize],
    aggs: &[LoweredAgg],
    mask: Option<&[bool]>,
) -> Result<(Table, ExecStats), EngineError> {
    let partial = aggregate_range(table, group_cols, aggs, mask, 0, table.num_rows());
    build_output(table, group_cols, aggs, partial, mask)
}

/// Parallel hash aggregation: splits rows into `threads` ranges, aggregates
/// each on its own thread, then merges partials. Produces exactly the same
/// result as [`hash_group_by`] (asserted by tests), only faster.
pub(crate) fn parallel_group_by(
    table: &Table,
    group_cols: &[usize],
    aggs: &[LoweredAgg],
    mask: Option<&[bool]>,
    threads: usize,
) -> Result<(Table, ExecStats), EngineError> {
    let threads = threads.max(1);
    let rows = table.num_rows();
    if threads == 1 || rows < 2 * threads {
        return hash_group_by(table, group_cols, aggs, mask);
    }
    let chunk = rows.div_ceil(threads);
    let mut partials: Vec<Partial> = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let start = t * chunk;
            let end = ((t + 1) * chunk).min(rows);
            if start >= end {
                continue;
            }
            handles.push(
                scope.spawn(move |_| aggregate_range(table, group_cols, aggs, mask, start, end)),
            );
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("aggregation worker panicked"))
            .collect()
    })
    .expect("crossbeam scope failed");

    // Merge partials into the first one.
    let mut merged = partials.remove(0);
    for partial in partials {
        for (key, &g_src) in &partial.index {
            let rep = partial.rep_rows[g_src];
            let g_dst = merged.group_index(key, rep, aggs);
            for (a, agg) in aggs.iter().enumerate() {
                let src = partial.states[g_src * partial.n_aggs + a];
                merge_state(
                    agg.expr,
                    &mut merged.states[g_dst * merged.n_aggs + a],
                    &src,
                );
            }
        }
    }
    build_output(table, group_cols, aggs, merged, mask)
}

/// Folds `other` into `state` (partial-aggregate combine step).
fn merge_state(expr: AggExpr, state: &mut AggState, other: &AggState) {
    match (expr, state, other) {
        (
            AggExpr::Sum { .. }
            | AggExpr::Count
            | AggExpr::Avg { .. }
            | AggExpr::RatioOfSums { .. },
            AggState::SumCount { sum, count },
            AggState::SumCount { sum: s2, count: c2 },
        ) => {
            *sum += s2;
            *count += c2;
        }
        (
            AggExpr::Min { .. },
            AggState::MinMax { value, seen },
            AggState::MinMax {
                value: v2,
                seen: s2,
            },
        ) => {
            if *s2 && (!*seen || v2 < value) {
                *value = *v2;
                *seen = true;
            }
        }
        (
            AggExpr::Max { .. },
            AggState::MinMax { value, seen },
            AggState::MinMax {
                value: v2,
                seen: s2,
            },
        ) => {
            if *s2 && (!*seen || v2 > value) {
                *value = *v2;
                *seen = true;
            }
        }
        _ => unreachable!("accumulator state mismatch"),
    }
}

/// Aggregates rows `start..end` into a fresh partial.
fn aggregate_range(
    table: &Table,
    group_cols: &[usize],
    aggs: &[LoweredAgg],
    mask: Option<&[bool]>,
    start: usize,
    end: usize,
) -> Partial {
    let mut partial = Partial::new(aggs.len());
    let columns = table.columns();
    let get = |col: usize, row: usize| -> i64 {
        match &columns[col] {
            Column::Int(v) => v[row],
            Column::Str { codes, .. } => codes[row] as i64,
        }
    };
    let mut key: Vec<i64> = vec![0; group_cols.len()];
    for row in start..end {
        if let Some(m) = mask {
            if !m[row] {
                continue;
            }
        }
        for (i, &c) in group_cols.iter().enumerate() {
            key[i] = columns[c].key_at(row);
        }
        let g = partial.group_index(&key, row, aggs);
        let base = g * partial.n_aggs;
        for (a, agg) in aggs.iter().enumerate() {
            agg.expr.update(&mut partial.states[base + a], &get, row);
        }
    }
    partial
}

/// Emits the output table (group columns + one Int column per aggregate)
/// and the metering record.
fn build_output(
    table: &Table,
    group_cols: &[usize],
    aggs: &[LoweredAgg],
    partial: Partial,
    mask: Option<&[bool]>,
) -> Result<(Table, ExecStats), EngineError> {
    let in_schema = table.schema();
    let mut fields: Vec<Field> = Vec::with_capacity(group_cols.len() + aggs.len());
    for &c in group_cols {
        fields.push(in_schema.fields()[c].clone());
    }
    for a in aggs {
        fields.push(Field::new(a.alias.clone(), DataType::Int));
    }
    let out_schema = Schema::new(fields)?;

    let n_groups = partial.rep_rows.len();
    let mut out_cols: Vec<Column> = out_schema
        .fields()
        .iter()
        .map(|f| Column::empty(f.dtype))
        .collect();

    // Emit groups in insertion order: deterministic given input order.
    for g in 0..n_groups {
        let rep = partial.rep_rows[g];
        for (i, &c) in group_cols.iter().enumerate() {
            match table.column(c) {
                Column::Int(v) => out_cols[i].push_int(v[rep]),
                Column::Str { codes, dict } => out_cols[i].push_str(dict.decode(codes[rep])),
            }
        }
        for (a, agg) in aggs.iter().enumerate() {
            let v = agg.expr.finish(&partial.states[g * partial.n_aggs + a]);
            out_cols[group_cols.len() + a].push_int(v);
        }
    }

    let out = Table::new(out_schema, out_cols)?;

    // Metering: a columnar scan reads every referenced input column over all
    // rows (mask evaluation cost is metered by the caller that built the
    // mask). Aggregate inputs are counted per reference.
    let rows = table.num_rows() as u64;
    let mut scanned_width: u64 = group_cols
        .iter()
        .map(|&c| in_schema.fields()[c].dtype.byte_width())
        .sum();
    for a in aggs {
        scanned_width += match a.expr {
            AggExpr::Sum { .. }
            | AggExpr::Min { .. }
            | AggExpr::Max { .. }
            | AggExpr::Avg { .. } => 8,
            AggExpr::Count => 0,
            AggExpr::RatioOfSums { .. } => 16,
        };
    }
    let selected = match mask {
        Some(m) => m.iter().filter(|&&b| b).count() as u64,
        None => rows,
    };
    let stats = ExecStats {
        rows_scanned: rows,
        bytes_scanned: rows * scanned_width,
        rows_out: out.num_rows() as u64,
        bytes_out: out.num_rows() as u64 * out.schema().row_byte_width(),
        groups: n_groups as u64,
    };
    // Selected rows bound the group count.
    debug_assert!(n_groups as u64 <= selected.max(1));
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DataType, TableBuilder, Value};

    fn sales() -> Table {
        TableBuilder::new(&[
            ("year", DataType::Int),
            ("country", DataType::Str),
            ("profit", DataType::Int),
        ])
        .unwrap()
        .row(&[2000.into(), "France".into(), 35.into()])
        .unwrap()
        .row(&[2000.into(), "France".into(), 40.into()])
        .unwrap()
        .row(&[2000.into(), "Italy".into(), 23.into()])
        .unwrap()
        .row(&[1999.into(), "Italy".into(), 50.into()])
        .unwrap()
        .build()
    }

    fn sum_profit() -> Vec<LoweredAgg> {
        vec![LoweredAgg {
            expr: AggExpr::Sum { col: 2 },
            alias: "sum_profit".to_string(),
        }]
    }

    #[test]
    fn groups_and_sums() {
        let t = sales();
        let (out, stats) = hash_group_by(&t, &[0, 1], &sum_profit(), None).unwrap();
        let rows = out.to_sorted_rows();
        assert_eq!(
            rows,
            vec![
                vec![Value::Int(1999), "Italy".into(), Value::Int(50)],
                vec![Value::Int(2000), "France".into(), Value::Int(75)],
                vec![Value::Int(2000), "Italy".into(), Value::Int(23)],
            ]
        );
        assert_eq!(stats.rows_scanned, 4);
        assert_eq!(stats.groups, 3);
        assert_eq!(stats.rows_out, 3);
        // year(8) + country(4) + profit(8) per row.
        assert_eq!(stats.bytes_scanned, 4 * 20);
    }

    #[test]
    fn empty_group_key_is_grand_total() {
        let t = sales();
        let (out, _) = hash_group_by(&t, &[], &sum_profit(), None).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.row(0), vec![Value::Int(148)]);
    }

    #[test]
    fn mask_filters_rows() {
        let t = sales();
        let mask = vec![true, false, true, false];
        let (out, _) = hash_group_by(&t, &[1], &sum_profit(), Some(&mask)).unwrap();
        assert_eq!(
            out.to_sorted_rows(),
            vec![
                vec![Value::from("France"), Value::Int(35)],
                vec![Value::from("Italy"), Value::Int(23)],
            ]
        );
    }

    #[test]
    fn empty_input_produces_empty_output() {
        let t = TableBuilder::new(&[("a", DataType::Int), ("v", DataType::Int)])
            .unwrap()
            .build();
        let aggs = vec![LoweredAgg {
            expr: AggExpr::Sum { col: 1 },
            alias: "s".into(),
        }];
        let (out, stats) = hash_group_by(&t, &[0], &aggs, None).unwrap();
        assert_eq!(out.num_rows(), 0);
        assert_eq!(stats.groups, 0);
    }

    #[test]
    fn parallel_matches_serial() {
        // Large-ish synthetic input exercising the merge path.
        let mut b = TableBuilder::new(&[
            ("k", DataType::Int),
            ("s", DataType::Str),
            ("v", DataType::Int),
        ])
        .unwrap();
        for i in 0..1000i64 {
            b = b
                .row(&[
                    Value::Int(i % 7),
                    Value::from(if i % 3 == 0 { "x" } else { "y" }),
                    Value::Int(i),
                ])
                .unwrap();
        }
        let t = b.build();
        let aggs = vec![
            LoweredAgg {
                expr: AggExpr::Sum { col: 2 },
                alias: "sum_v".into(),
            },
            LoweredAgg {
                expr: AggExpr::Count,
                alias: "count_rows".into(),
            },
            LoweredAgg {
                expr: AggExpr::Min { col: 2 },
                alias: "min_v".into(),
            },
            LoweredAgg {
                expr: AggExpr::Max { col: 2 },
                alias: "max_v".into(),
            },
            LoweredAgg {
                expr: AggExpr::Avg { col: 2 },
                alias: "avg_v".into(),
            },
        ];
        let (serial, _) = hash_group_by(&t, &[0, 1], &aggs, None).unwrap();
        for threads in [2, 3, 8] {
            let (par, _) = parallel_group_by(&t, &[0, 1], &aggs, None, threads).unwrap();
            assert_eq!(
                serial.to_sorted_rows(),
                par.to_sorted_rows(),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn parallel_with_mask_matches_serial() {
        let mut b = TableBuilder::new(&[("k", DataType::Int), ("v", DataType::Int)]).unwrap();
        for i in 0..500i64 {
            b = b.row(&[Value::Int(i % 5), Value::Int(i)]).unwrap();
        }
        let t = b.build();
        let mask: Vec<bool> = (0..500).map(|i| i % 2 == 0).collect();
        let aggs = vec![LoweredAgg {
            expr: AggExpr::Sum { col: 1 },
            alias: "s".into(),
        }];
        let (serial, _) = hash_group_by(&t, &[0], &aggs, Some(&mask)).unwrap();
        let (par, _) = parallel_group_by(&t, &[0], &aggs, Some(&mask), 4).unwrap();
        assert_eq!(serial.to_sorted_rows(), par.to_sorted_rows());
    }

    #[test]
    fn small_input_falls_back_to_serial() {
        let t = sales();
        let (out, _) = parallel_group_by(&t, &[1], &sum_profit(), None, 8).unwrap();
        assert_eq!(out.num_rows(), 2);
    }
}
