//! Materialized views: definition, materialization, and query answering.
//!
//! A view is defined by a group-by key and a set of *stored measures*. The
//! definition is canonicalized so the stored measures are always
//! re-aggregable: `AVG` is split into `SUM` + `COUNT` (the classical
//! algebraic-function decomposition), and a `COUNT` partial is always kept
//! so any `AVG`/`COUNT` query can be derived later.
//!
//! A view can answer a query when (1) the query's group-by columns are a
//! subset of the view's — with the denormalized hierarchy encoding this is
//! exactly lattice derivability —, (2) every requested aggregate is
//! derivable from the stored measures, and (3) any predicate only touches
//! view key columns.

use crate::agg::AggExpr;
use crate::groupby::LoweredAgg;
use crate::{AggFunc, AggQuery, AggSpec, EngineError, ExecStats, Table};

/// Canonical view definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewDefinition {
    /// View name.
    pub name: String,
    /// Group-by key columns (base-table names).
    pub group_by: Vec<String>,
    /// Stored measures; canonical (no `Avg`, always includes `Count`).
    pub measures: Vec<AggSpec>,
}

impl ViewDefinition {
    /// Builds a canonical definition from requested aggregates:
    /// * `Avg(c)` is replaced by `Sum(c)`;
    /// * a `Count` partial is always stored;
    /// * duplicates are removed.
    pub fn canonical(name: impl Into<String>, group_by: &[&str], requested: &[AggSpec]) -> Self {
        let mut measures: Vec<AggSpec> = Vec::new();
        let mut push_unique = |spec: AggSpec| {
            if !measures
                .iter()
                .any(|m| m.func == spec.func && m.column == spec.column)
            {
                measures.push(spec);
            }
        };
        for spec in requested {
            match spec.func {
                AggFunc::Avg => {
                    let col = spec.column.clone().expect("avg requires a column");
                    push_unique(AggSpec::sum(col));
                }
                AggFunc::Count => push_unique(AggSpec::count()),
                AggFunc::Sum | AggFunc::Min | AggFunc::Max => {
                    let col = spec.column.clone().expect("agg requires a column");
                    let canonical = match spec.func {
                        AggFunc::Sum => AggSpec::sum(col),
                        AggFunc::Min => AggSpec::min(col),
                        AggFunc::Max => AggSpec::max(col),
                        _ => unreachable!(),
                    };
                    push_unique(canonical);
                }
            }
        }
        push_unique(AggSpec::count());
        ViewDefinition {
            name: name.into(),
            group_by: group_by.iter().map(|s| s.to_string()).collect(),
            measures,
        }
    }

    /// The query that computes this view from the base table.
    pub fn as_query(&self) -> AggQuery {
        AggQuery {
            name: format!("materialize:{}", self.name),
            group_by: self.group_by.clone(),
            aggregates: self.measures.clone(),
            predicate: None,
        }
    }

    /// Locates the stored measure for `(func, column)`.
    fn measure_alias(&self, func: AggFunc, column: Option<&str>) -> Option<&str> {
        self.measures
            .iter()
            .find(|m| m.func == func && m.column.as_deref() == column)
            .map(|m| m.alias.as_str())
    }
}

/// A materialized view: its definition plus the stored result table.
#[derive(Debug, Clone, PartialEq)]
pub struct MaterializedView {
    def: ViewDefinition,
    data: Table,
    build_stats: ExecStats,
}

impl MaterializedView {
    /// Computes the view from `base` and stores the result.
    pub fn materialize(def: ViewDefinition, base: &Table) -> Result<Self, EngineError> {
        Self::materialize_with_threads(def, base, 1)
    }

    /// [`MaterializedView::materialize`] with a thread budget.
    pub fn materialize_with_threads(
        def: ViewDefinition,
        base: &Table,
        threads: usize,
    ) -> Result<Self, EngineError> {
        let (data, build_stats) = def.as_query().execute_with_threads(base, threads)?;
        Ok(MaterializedView {
            def,
            data,
            build_stats,
        })
    }

    /// The canonical definition.
    pub fn def(&self) -> &ViewDefinition {
        &self.def
    }

    /// The stored table.
    pub fn data(&self) -> &Table {
        &self.data
    }

    /// Crate-internal mutable access for incremental maintenance.
    pub(crate) fn data_mut_internal(&mut self) -> &mut Table {
        &mut self.data
    }

    /// Work performed to build (or last fully refresh) the view.
    pub fn build_stats(&self) -> &ExecStats {
        &self.build_stats
    }

    /// Checks whether this view can answer `query`; `Ok(())` or the reason
    /// it cannot.
    pub fn can_answer(&self, query: &AggQuery) -> Result<(), EngineError> {
        for g in &query.group_by {
            if !self.def.group_by.contains(g) {
                return Err(EngineError::ViewCannotAnswer {
                    reason: format!("group column {g:?} is not in the view key"),
                });
            }
        }
        if let Some(p) = &query.predicate {
            for c in p.columns() {
                if !self.def.group_by.iter().any(|g| g == c) {
                    return Err(EngineError::ViewCannotAnswer {
                        reason: format!("predicate column {c:?} is not in the view key"),
                    });
                }
            }
        }
        for spec in &query.aggregates {
            let derivable = match spec.func {
                AggFunc::Sum => self
                    .def
                    .measure_alias(AggFunc::Sum, spec.column.as_deref())
                    .is_some(),
                AggFunc::Count => self.def.measure_alias(AggFunc::Count, None).is_some(),
                AggFunc::Min => self
                    .def
                    .measure_alias(AggFunc::Min, spec.column.as_deref())
                    .is_some(),
                AggFunc::Max => self
                    .def
                    .measure_alias(AggFunc::Max, spec.column.as_deref())
                    .is_some(),
                AggFunc::Avg => {
                    self.def
                        .measure_alias(AggFunc::Sum, spec.column.as_deref())
                        .is_some()
                        && self.def.measure_alias(AggFunc::Count, None).is_some()
                }
            };
            if !derivable {
                return Err(EngineError::ViewCannotAnswer {
                    reason: format!(
                        "aggregate {}({}) is not derivable from stored measures",
                        spec.func.name(),
                        spec.column.as_deref().unwrap_or("*"),
                    ),
                });
            }
        }
        Ok(())
    }

    /// Answers `query` from the stored table instead of the base table.
    ///
    /// The result is identical to running the query on the base table
    /// (property-tested), but the scan touches only `self.data`'s rows —
    /// which is where the paper's `t_iV < t_i` speedup comes from.
    pub fn answer(&self, query: &AggQuery) -> Result<(Table, ExecStats), EngineError> {
        self.can_answer(query)?;
        let schema = self.data.schema();
        let mut group_cols = Vec::with_capacity(query.group_by.len());
        for (i, name) in query.group_by.iter().enumerate() {
            if query.group_by[..i].contains(name) {
                return Err(EngineError::DuplicateGroupColumn { name: name.clone() });
            }
            group_cols.push(schema.index_of(name)?);
        }
        if query.aggregates.is_empty() {
            return Err(EngineError::NoAggregates);
        }
        let count_alias = self.def.measure_alias(AggFunc::Count, None);
        let mut lowered = Vec::with_capacity(query.aggregates.len());
        for spec in &query.aggregates {
            let expr = match spec.func {
                // SUM over a view re-aggregates the stored SUM partials.
                AggFunc::Sum => AggExpr::Sum {
                    col: schema.index_of(
                        self.def
                            .measure_alias(AggFunc::Sum, spec.column.as_deref())
                            .expect("checked by can_answer"),
                    )?,
                },
                // COUNT re-aggregates as a SUM of stored counts.
                AggFunc::Count => AggExpr::Sum {
                    col: schema.index_of(count_alias.expect("checked by can_answer"))?,
                },
                AggFunc::Min => AggExpr::Min {
                    col: schema.index_of(
                        self.def
                            .measure_alias(AggFunc::Min, spec.column.as_deref())
                            .expect("checked by can_answer"),
                    )?,
                },
                AggFunc::Max => AggExpr::Max {
                    col: schema.index_of(
                        self.def
                            .measure_alias(AggFunc::Max, spec.column.as_deref())
                            .expect("checked by can_answer"),
                    )?,
                },
                // AVG is the ratio of re-aggregated SUM and COUNT partials.
                AggFunc::Avg => AggExpr::RatioOfSums {
                    sum_col: schema.index_of(
                        self.def
                            .measure_alias(AggFunc::Sum, spec.column.as_deref())
                            .expect("checked by can_answer"),
                    )?,
                    count_col: schema.index_of(count_alias.expect("checked by can_answer"))?,
                },
            };
            lowered.push(LoweredAgg {
                expr,
                alias: spec.alias.clone(),
            });
        }
        let (mask, mut pred_stats) = match &query.predicate {
            Some(p) => {
                let mask = p.eval(&self.data)?;
                let width: u64 = p
                    .columns()
                    .iter()
                    .map(|c| schema.field(c).map(|f| f.dtype.byte_width()).unwrap_or(0))
                    .sum();
                (
                    Some(mask),
                    ExecStats {
                        rows_scanned: self.data.num_rows() as u64,
                        bytes_scanned: self.data.num_rows() as u64 * width,
                        ..ExecStats::default()
                    },
                )
            }
            None => (None, ExecStats::default()),
        };
        let (out, agg_stats) =
            crate::groupby::hash_group_by(&self.data, &group_cols, &lowered, mask.as_deref())?;
        pred_stats.merge(&agg_stats);
        pred_stats.rows_scanned = agg_stats.rows_scanned;
        Ok((out, pred_stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DataType, Predicate, TableBuilder, Value};

    fn sales() -> Table {
        TableBuilder::new(&[
            ("year", DataType::Int),
            ("month", DataType::Int),
            ("country", DataType::Str),
            ("profit", DataType::Int),
        ])
        .unwrap()
        .row(&[2000.into(), 12.into(), "France".into(), 35.into()])
        .unwrap()
        .row(&[2000.into(), 1.into(), "France".into(), 40.into()])
        .unwrap()
        .row(&[2000.into(), 12.into(), "Italy".into(), 23.into()])
        .unwrap()
        .row(&[1999.into(), 1.into(), "Italy".into(), 50.into()])
        .unwrap()
        .build()
    }

    fn month_country_view() -> MaterializedView {
        let def = ViewDefinition::canonical(
            "v1",
            &["year", "month", "country"],
            &[
                AggSpec::sum("profit"),
                AggSpec::min("profit"),
                AggSpec::max("profit"),
            ],
        );
        MaterializedView::materialize(def, &sales()).unwrap()
    }

    #[test]
    fn canonicalization_splits_avg_and_adds_count() {
        let def = ViewDefinition::canonical("v", &["year"], &[AggSpec::avg("profit")]);
        let funcs: Vec<AggFunc> = def.measures.iter().map(|m| m.func).collect();
        assert_eq!(funcs, vec![AggFunc::Sum, AggFunc::Count]);
        // Duplicates collapse.
        let def2 = ViewDefinition::canonical(
            "v",
            &["year"],
            &[
                AggSpec::sum("profit"),
                AggSpec::avg("profit"),
                AggSpec::count(),
            ],
        );
        assert_eq!(def2.measures.len(), 2);
    }

    #[test]
    fn view_answers_coarser_query_identically() {
        let view = month_country_view();
        let q = AggQuery::new("q1", &["year", "country"], vec![AggSpec::sum("profit")]);
        let (from_base, base_stats) = q.execute(&sales()).unwrap();
        let (from_view, view_stats) = view.answer(&q).unwrap();
        assert_eq!(from_base.to_sorted_rows(), from_view.to_sorted_rows());
        // The view has as many rows as the base here (tiny data), but the
        // metering still counts its scan separately.
        assert!(view_stats.rows_scanned <= base_stats.rows_scanned);
    }

    #[test]
    fn view_answers_count_and_avg() {
        let def = ViewDefinition::canonical("v", &["year", "country"], &[AggSpec::avg("profit")]);
        let view = MaterializedView::materialize(def, &sales()).unwrap();
        let q = AggQuery::new(
            "q",
            &["year"],
            vec![AggSpec::avg("profit"), AggSpec::count()],
        );
        let (from_base, _) = q.execute(&sales()).unwrap();
        let (from_view, _) = view.answer(&q).unwrap();
        assert_eq!(from_base.to_sorted_rows(), from_view.to_sorted_rows());
    }

    #[test]
    fn min_max_through_views() {
        let view = month_country_view();
        let q = AggQuery::new(
            "q",
            &["country"],
            vec![AggSpec::min("profit"), AggSpec::max("profit")],
        );
        let (from_base, _) = q.execute(&sales()).unwrap();
        let (from_view, _) = view.answer(&q).unwrap();
        assert_eq!(from_base.to_sorted_rows(), from_view.to_sorted_rows());
    }

    #[test]
    fn predicate_pushdown_on_view_keys() {
        let view = month_country_view();
        let q = AggQuery::new("q", &["country"], vec![AggSpec::sum("profit")])
            .with_predicate(Predicate::eq("year", 2000));
        let (from_base, _) = q.execute(&sales()).unwrap();
        let (from_view, _) = view.answer(&q).unwrap();
        assert_eq!(from_base.to_sorted_rows(), from_view.to_sorted_rows());
        assert_eq!(
            from_view.to_sorted_rows(),
            vec![
                vec![Value::from("France"), Value::Int(75)],
                vec![Value::from("Italy"), Value::Int(23)],
            ]
        );
    }

    #[test]
    fn cannot_answer_finer_or_foreign_queries() {
        // View at (year, country) cannot answer per-month queries.
        let def = ViewDefinition::canonical("v", &["year", "country"], &[AggSpec::sum("profit")]);
        let view = MaterializedView::materialize(def, &sales()).unwrap();
        let finer = AggQuery::new("q", &["month"], vec![AggSpec::sum("profit")]);
        assert!(view.can_answer(&finer).is_err());

        // Cannot answer aggregates over measures it does not store.
        let other_measure = AggQuery::new("q", &["year"], vec![AggSpec::min("profit")]);
        assert!(view.can_answer(&other_measure).is_err());

        // Cannot answer predicates on non-key columns.
        let bad_pred = AggQuery::new("q", &["year"], vec![AggSpec::sum("profit")])
            .with_predicate(Predicate::eq("month", 12));
        assert!(view.can_answer(&bad_pred).is_err());

        // answer() surfaces the same error.
        assert!(matches!(
            view.answer(&finer).unwrap_err(),
            EngineError::ViewCannotAnswer { .. }
        ));
    }

    #[test]
    fn view_data_shape() {
        let view = month_country_view();
        // Keys: year, month, country; measures: sum, min, max, count.
        assert_eq!(view.data().schema().len(), 3 + 4);
        assert_eq!(view.data().num_rows(), 4);
        assert!(view.build_stats().rows_scanned == 4);
    }

    #[test]
    fn grand_total_from_view() {
        let view = month_country_view();
        let q = AggQuery::new("total", &[], vec![AggSpec::sum("profit")]);
        let (out, _) = view.answer(&q).unwrap();
        assert_eq!(out.row(0), vec![Value::Int(148)]);
    }
}
