//! Engine error type.

use std::fmt;

/// Errors raised by table construction, query planning and execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A referenced column does not exist in the input schema.
    UnknownColumn {
        /// The missing column name.
        name: String,
    },
    /// A column was used with an incompatible type.
    TypeMismatch {
        /// The column name.
        column: String,
        /// What the operation expected.
        expected: &'static str,
        /// What the column actually is.
        actual: &'static str,
    },
    /// Column lengths disagree while building a table.
    LengthMismatch {
        /// Expected row count.
        expected: usize,
        /// Offending column's row count.
        actual: usize,
    },
    /// A table was built with duplicate column names.
    DuplicateColumn {
        /// The duplicated name.
        name: String,
    },
    /// A query listed the same column twice in its group-by key.
    DuplicateGroupColumn {
        /// The duplicated name.
        name: String,
    },
    /// The requested view cannot answer the query.
    ViewCannotAnswer {
        /// Human-readable reason.
        reason: String,
    },
    /// A named view already exists in the catalog.
    ViewExists {
        /// The duplicated view name.
        name: String,
    },
    /// A named view does not exist in the catalog.
    ViewNotFound {
        /// The missing view name.
        name: String,
    },
    /// A query must request at least one aggregate.
    NoAggregates,
    /// The maintenance delta's schema differs from the base table's.
    SchemaMismatch,
    /// A throughput conversion was asked to divide work across zero (or
    /// negative, or NaN) compute units — reachable from user-supplied
    /// instance counts, so it is an error, not an invariant.
    NonPositiveComputeUnits,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownColumn { name } => write!(f, "unknown column {name:?}"),
            EngineError::TypeMismatch {
                column,
                expected,
                actual,
            } => write!(
                f,
                "column {column:?} has type {actual} but {expected} was required"
            ),
            EngineError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "column length {actual} does not match table length {expected}"
                )
            }
            EngineError::DuplicateColumn { name } => {
                write!(f, "duplicate column name {name:?}")
            }
            EngineError::DuplicateGroupColumn { name } => {
                write!(f, "column {name:?} appears twice in the group-by key")
            }
            EngineError::ViewCannotAnswer { reason } => {
                write!(f, "view cannot answer the query: {reason}")
            }
            EngineError::ViewExists { name } => write!(f, "view {name:?} already exists"),
            EngineError::ViewNotFound { name } => write!(f, "view {name:?} not found"),
            EngineError::NoAggregates => write!(f, "query must request at least one aggregate"),
            EngineError::SchemaMismatch => {
                write!(f, "delta schema does not match the base table schema")
            }
            EngineError::NonPositiveComputeUnits => {
                write!(f, "compute units must be positive")
            }
        }
    }
}

impl std::error::Error for EngineError {}
