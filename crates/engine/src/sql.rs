//! A SQL front-end for the engine's query class.
//!
//! Parses the roll-up aggregation subset the paper's workload lives in —
//! which is also what its Pig Latin scripts expressed:
//!
//! ```sql
//! SELECT year, country, SUM(profit) AS total, COUNT(*)
//! FROM sales
//! WHERE year >= 2005 AND country = 'France'
//! GROUP BY year, country
//! ```
//!
//! Supported: `SUM/COUNT/MIN/MAX/AVG` aggregates with optional `AS`
//! aliases, `WHERE` with `AND`/`OR`, parentheses, the six comparison
//! operators, integer and single-quoted string literals, and `GROUP BY`.
//! Selected plain columns must appear in `GROUP BY` (the classic rule).

use std::fmt;

use crate::{AggFunc, AggQuery, AggSpec, CmpOp, Predicate, Value};

/// A parsed statement: the referenced table plus the executable query.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedQuery {
    /// Table name from the `FROM` clause (resolution is the caller's job).
    pub table: String,
    /// The executable query.
    pub query: AggQuery,
}

/// Parse errors with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where the problem was detected.
    pub position: usize,
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SQL error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for SqlError {}

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    Comma,
    LParen,
    RParen,
    Star,
    Op(CmpOp),
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: impl Into<String>) -> SqlError {
        SqlError {
            message: message.into(),
            position: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    /// Lexes the whole input into `(token, start_position)` pairs.
    fn tokenize(mut self) -> Result<Vec<(Tok, usize)>, SqlError> {
        let mut out = Vec::new();
        loop {
            self.skip_ws();
            if self.pos >= self.bytes.len() {
                return Ok(out);
            }
            let start = self.pos;
            let b = self.bytes[self.pos];
            let tok = match b {
                b',' => {
                    self.pos += 1;
                    Tok::Comma
                }
                b'(' => {
                    self.pos += 1;
                    Tok::LParen
                }
                b')' => {
                    self.pos += 1;
                    Tok::RParen
                }
                b'*' => {
                    self.pos += 1;
                    Tok::Star
                }
                b'=' => {
                    self.pos += 1;
                    Tok::Op(CmpOp::Eq)
                }
                b'<' => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'=') => {
                            self.pos += 1;
                            Tok::Op(CmpOp::Le)
                        }
                        Some(b'>') => {
                            self.pos += 1;
                            Tok::Op(CmpOp::Ne)
                        }
                        _ => Tok::Op(CmpOp::Lt),
                    }
                }
                b'>' => {
                    self.pos += 1;
                    if self.bytes.get(self.pos) == Some(&b'=') {
                        self.pos += 1;
                        Tok::Op(CmpOp::Ge)
                    } else {
                        Tok::Op(CmpOp::Gt)
                    }
                }
                b'!' => {
                    self.pos += 1;
                    if self.bytes.get(self.pos) == Some(&b'=') {
                        self.pos += 1;
                        Tok::Op(CmpOp::Ne)
                    } else {
                        return Err(self.error("expected '=' after '!'"));
                    }
                }
                b'\'' => {
                    self.pos += 1;
                    let lit_start = self.pos;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\'' {
                        self.pos += 1;
                    }
                    if self.pos >= self.bytes.len() {
                        return Err(self.error("unterminated string literal"));
                    }
                    let s = self.src[lit_start..self.pos].to_string();
                    self.pos += 1; // closing quote
                    Tok::Str(s)
                }
                b'-' | b'0'..=b'9' => {
                    let num_start = self.pos;
                    if b == b'-' {
                        self.pos += 1;
                    }
                    while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_digit() {
                        self.pos += 1;
                    }
                    let text = &self.src[num_start..self.pos];
                    let v: i64 = text
                        .parse()
                        .map_err(|_| self.error(format!("bad integer literal {text:?}")))?;
                    Tok::Int(v)
                }
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                    while self.pos < self.bytes.len()
                        && (self.bytes[self.pos].is_ascii_alphanumeric()
                            || self.bytes[self.pos] == b'_')
                    {
                        self.pos += 1;
                    }
                    Tok::Ident(self.src[start..self.pos].to_string())
                }
                other => {
                    return Err(self.error(format!("unexpected character {:?}", other as char)))
                }
            };
            out.push((tok, start));
        }
    }
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser {
    toks: Vec<(Tok, usize)>,
    i: usize,
    end: usize,
}

/// One item of the SELECT list before validation.
enum SelectItem {
    Column(String),
    Aggregate(AggSpec),
}

impl Parser {
    fn error_at(&self, message: impl Into<String>) -> SqlError {
        let position = self.toks.get(self.i).map(|(_, p)| *p).unwrap_or(self.end);
        SqlError {
            message: message.into(),
            position,
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.i).map(|(t, _)| t)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.i).map(|(t, _)| t.clone());
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    /// Consumes a keyword (case-insensitive identifier).
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.i += 1;
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.error_at(format!("expected keyword {kw}")))
        }
    }

    fn expect_ident(&mut self) -> Result<String, SqlError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            _ => {
                self.i = self.i.saturating_sub(1);
                Err(self.error_at("expected identifier"))
            }
        }
    }

    fn expect_tok(&mut self, tok: Tok, what: &str) -> Result<(), SqlError> {
        if self.peek() == Some(&tok) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.error_at(format!("expected {what}")))
        }
    }

    fn agg_func_of(name: &str) -> Option<AggFunc> {
        match name.to_ascii_lowercase().as_str() {
            "sum" => Some(AggFunc::Sum),
            "count" => Some(AggFunc::Count),
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            "avg" => Some(AggFunc::Avg),
            _ => None,
        }
    }

    fn parse_select_item(&mut self) -> Result<SelectItem, SqlError> {
        let name = self.expect_ident()?;
        if self.peek() == Some(&Tok::LParen) {
            let func = Self::agg_func_of(&name)
                .ok_or_else(|| self.error_at(format!("unknown aggregate function {name:?}")))?;
            self.i += 1; // consume '('
            let column = match (func, self.peek()) {
                (AggFunc::Count, Some(Tok::Star)) => {
                    self.i += 1;
                    None
                }
                (AggFunc::Count, Some(Tok::RParen)) => None,
                _ => Some(self.expect_ident()?),
            };
            self.expect_tok(Tok::RParen, "')'")?;
            let mut spec = match (func, column.clone()) {
                (AggFunc::Count, _) => AggSpec::count(),
                (AggFunc::Sum, Some(c)) => AggSpec::sum(c),
                (AggFunc::Min, Some(c)) => AggSpec::min(c),
                (AggFunc::Max, Some(c)) => AggSpec::max(c),
                (AggFunc::Avg, Some(c)) => AggSpec::avg(c),
                _ => return Err(self.error_at("aggregate requires a column")),
            };
            if self.eat_kw("as") {
                spec = spec.with_alias(self.expect_ident()?);
            }
            Ok(SelectItem::Aggregate(spec))
        } else {
            Ok(SelectItem::Column(name))
        }
    }

    /// `predicate := and_term (OR and_term)*`
    fn parse_predicate(&mut self) -> Result<Predicate, SqlError> {
        let mut terms = vec![self.parse_and_term()?];
        while self.eat_kw("or") {
            terms.push(self.parse_and_term()?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().expect("non-empty")
        } else {
            Predicate::Or(terms)
        })
    }

    /// `and_term := factor (AND factor)*`
    fn parse_and_term(&mut self) -> Result<Predicate, SqlError> {
        let mut factors = vec![self.parse_factor()?];
        while self.eat_kw("and") {
            factors.push(self.parse_factor()?);
        }
        Ok(if factors.len() == 1 {
            factors.pop().expect("non-empty")
        } else {
            Predicate::And(factors)
        })
    }

    /// `factor := '(' predicate ')' | column op literal`
    fn parse_factor(&mut self) -> Result<Predicate, SqlError> {
        if self.peek() == Some(&Tok::LParen) {
            self.i += 1;
            let p = self.parse_predicate()?;
            self.expect_tok(Tok::RParen, "')'")?;
            return Ok(p);
        }
        let column = self.expect_ident()?;
        let op = match self.next() {
            Some(Tok::Op(op)) => op,
            _ => {
                self.i = self.i.saturating_sub(1);
                return Err(self.error_at("expected comparison operator"));
            }
        };
        let literal = match self.next() {
            Some(Tok::Int(v)) => Value::Int(v),
            Some(Tok::Str(s)) => Value::Str(s),
            _ => {
                self.i = self.i.saturating_sub(1);
                return Err(self.error_at("expected integer or 'string' literal"));
            }
        };
        Ok(Predicate::Cmp {
            column,
            op,
            literal,
        })
    }
}

/// Parses one statement of the supported subset.
pub fn parse_query(sql: &str) -> Result<ParsedQuery, SqlError> {
    let toks = Lexer::new(sql).tokenize()?;
    let mut p = Parser {
        toks,
        i: 0,
        end: sql.len(),
    };

    p.expect_kw("select")?;
    let mut items = vec![p.parse_select_item()?];
    while p.peek() == Some(&Tok::Comma) {
        p.i += 1;
        items.push(p.parse_select_item()?);
    }

    p.expect_kw("from")?;
    let table = p.expect_ident()?;

    let predicate = if p.eat_kw("where") {
        Some(p.parse_predicate()?)
    } else {
        None
    };

    let mut group_by: Vec<String> = Vec::new();
    if p.eat_kw("group") {
        p.expect_kw("by")?;
        group_by.push(p.expect_ident()?);
        while p.peek() == Some(&Tok::Comma) {
            p.i += 1;
            group_by.push(p.expect_ident()?);
        }
    }
    if p.peek().is_some() {
        return Err(p.error_at("unexpected trailing input"));
    }

    // Validation: split items, enforce the grouping rule.
    let mut aggregates = Vec::new();
    let mut selected_cols = Vec::new();
    for item in items {
        match item {
            SelectItem::Aggregate(a) => aggregates.push(a),
            SelectItem::Column(c) => selected_cols.push(c),
        }
    }
    if aggregates.is_empty() {
        return Err(SqlError {
            message: "query must select at least one aggregate".to_string(),
            position: 0,
        });
    }
    for c in &selected_cols {
        if !group_by.contains(c) {
            return Err(SqlError {
                message: format!("column {c:?} selected but not in GROUP BY"),
                position: 0,
            });
        }
    }

    let mut query = AggQuery {
        name: format!("sql:{table}"),
        group_by,
        aggregates,
        predicate: None,
    };
    if let Some(pred) = predicate {
        query = query.with_predicate(pred);
    }
    Ok(ParsedQuery { table, query })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DataType, TableBuilder};

    fn sales() -> crate::Table {
        TableBuilder::new(&[
            ("year", DataType::Int),
            ("country", DataType::Str),
            ("profit", DataType::Int),
        ])
        .unwrap()
        .row(&[2000.into(), "France".into(), 35.into()])
        .unwrap()
        .row(&[2005.into(), "France".into(), 40.into()])
        .unwrap()
        .row(&[2005.into(), "Italy".into(), 23.into()])
        .unwrap()
        .build()
    }

    #[test]
    fn parses_the_paper_query() {
        let parsed = parse_query(
            "SELECT year, country, SUM(profit) AS total FROM sales GROUP BY year, country",
        )
        .unwrap();
        assert_eq!(parsed.table, "sales");
        assert_eq!(parsed.query.group_by, vec!["year", "country"]);
        assert_eq!(parsed.query.aggregates[0].alias, "total");
        let (out, _) = parsed.query.execute(&sales()).unwrap();
        assert_eq!(out.num_rows(), 3);
    }

    #[test]
    fn where_clause_with_and_or() {
        let parsed = parse_query(
            "select sum(profit) from sales where (year >= 2005 and country = 'France') or year < 2001",
        )
        .unwrap();
        let (out, _) = parsed.query.execute(&sales()).unwrap();
        // Rows 0 (year 2000) and 1 (2005/France) match: 35 + 40.
        assert_eq!(out.row(0), vec![Value::Int(75)]);
    }

    #[test]
    fn count_star_and_bare_count() {
        for sql in ["SELECT COUNT(*) FROM sales", "SELECT COUNT() FROM sales"] {
            let parsed = parse_query(sql).unwrap();
            let (out, _) = parsed.query.execute(&sales()).unwrap();
            assert_eq!(out.row(0), vec![Value::Int(3)]);
        }
    }

    #[test]
    fn all_aggregate_functions() {
        let parsed = parse_query(
            "SELECT SUM(profit), COUNT(*), MIN(profit), MAX(profit), AVG(profit) \
             FROM sales",
        )
        .unwrap();
        let (out, _) = parsed.query.execute(&sales()).unwrap();
        assert_eq!(
            out.row(0),
            vec![
                Value::Int(98),
                Value::Int(3),
                Value::Int(23),
                Value::Int(40),
                Value::Int(32)
            ]
        );
    }

    #[test]
    fn operators_parse() {
        for (sql, expected_rows) in [
            ("SELECT COUNT(*) FROM t WHERE year = 2005", 2),
            ("SELECT COUNT(*) FROM t WHERE year != 2005", 1),
            ("SELECT COUNT(*) FROM t WHERE year <> 2005", 1),
            ("SELECT COUNT(*) FROM t WHERE year <= 2004", 1),
            ("SELECT COUNT(*) FROM t WHERE year > 2000", 2),
            ("SELECT COUNT(*) FROM t WHERE country = 'Italy'", 1),
        ] {
            let parsed = parse_query(sql).unwrap();
            let (out, _) = parsed.query.execute(&sales()).unwrap();
            assert_eq!(out.row(0), vec![Value::Int(expected_rows)], "{sql}");
        }
    }

    #[test]
    fn selected_column_must_be_grouped() {
        let err = parse_query("SELECT country, SUM(profit) FROM sales").unwrap_err();
        assert!(err.message.contains("not in GROUP BY"), "{err}");
    }

    #[test]
    fn must_select_an_aggregate() {
        let err = parse_query("SELECT country FROM sales GROUP BY country").unwrap_err();
        assert!(err.message.contains("at least one aggregate"));
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse_query("SELECT SUM(profit) FRM sales").unwrap_err();
        assert!(err.position > 0);
        assert!(err.message.contains("expected keyword from"));

        let err = parse_query("SELECT SUM(profit) FROM sales WHERE year ==").unwrap_err();
        assert!(err.to_string().contains("SQL error at byte"));
    }

    #[test]
    fn lexer_errors() {
        assert!(parse_query("SELECT SUM(profit) FROM sales WHERE c = 'oops").is_err());
        assert!(parse_query("SELECT SUM(profit) FROM sales WHERE a ! b").is_err());
        assert!(parse_query("SELECT %").is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let err = parse_query("SELECT SUM(profit) FROM sales GROUP BY year year").unwrap_err();
        assert!(err.message.contains("trailing"));
    }

    #[test]
    fn case_insensitive_keywords() {
        let parsed =
            parse_query("select Year, sum(Profit) from Sales where Year >= 2000 group by Year");
        // Identifiers are case-sensitive (Year != year) but keywords are not;
        // parsing succeeds, execution would fail on unknown column.
        assert!(parsed.is_ok());
    }

    #[test]
    fn negative_literals() {
        let parsed = parse_query("SELECT COUNT(*) FROM t WHERE profit > -10").unwrap();
        let (out, _) = parsed.query.execute(&sales()).unwrap();
        assert_eq!(out.row(0), vec![Value::Int(3)]);
    }
}
