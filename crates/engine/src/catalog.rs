//! A concurrent catalog of materialized views.
//!
//! The paper's architecture materializes selected views "in the cloud" and
//! routes queries to them. The catalog is that routing table: named views
//! behind a read-write lock, with a best-view planner that picks the
//! cheapest (smallest) view able to answer a query — the `min` in the
//! selection evaluator's interaction model.

use std::sync::Arc;

use parking_lot::RwLock;

use crate::{AggQuery, EngineError, ExecStats, MaterializedView, Table};

/// Thread-safe named collection of materialized views.
#[derive(Debug, Default)]
pub struct ViewCatalog {
    views: RwLock<Vec<(String, Arc<MaterializedView>)>>,
}

impl ViewCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        ViewCatalog::default()
    }

    /// Registers a view under its definition name. Errors if the name is
    /// taken.
    pub fn register(&self, view: MaterializedView) -> Result<(), EngineError> {
        let name = view.def().name.clone();
        let mut views = self.views.write();
        if views.iter().any(|(n, _)| *n == name) {
            return Err(EngineError::ViewExists { name });
        }
        views.push((name, Arc::new(view)));
        Ok(())
    }

    /// Removes a view by name, returning it.
    pub fn deregister(&self, name: &str) -> Result<Arc<MaterializedView>, EngineError> {
        let mut views = self.views.write();
        match views.iter().position(|(n, _)| n == name) {
            Some(i) => Ok(views.remove(i).1),
            None => Err(EngineError::ViewNotFound {
                name: name.to_string(),
            }),
        }
    }

    /// Fetches a view by name.
    pub fn get(&self, name: &str) -> Result<Arc<MaterializedView>, EngineError> {
        self.views
            .read()
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| Arc::clone(v))
            .ok_or_else(|| EngineError::ViewNotFound {
                name: name.to_string(),
            })
    }

    /// Registered view names, in registration order.
    pub fn names(&self) -> Vec<String> {
        self.views.read().iter().map(|(n, _)| n.clone()).collect()
    }

    /// Number of registered views.
    pub fn len(&self) -> usize {
        self.views.read().len()
    }

    /// `true` when no view is registered.
    pub fn is_empty(&self) -> bool {
        self.views.read().is_empty()
    }

    /// Incrementally refreshes every registered view with one insert
    /// batch, in registration order, returning each view's metered
    /// refresh work. Views are copy-on-write (`Arc::make_mut`), so
    /// readers holding a pre-refresh `Arc` keep a consistent snapshot.
    pub fn refresh_incremental_all(
        &self,
        delta: &Table,
    ) -> Result<Vec<(String, ExecStats)>, EngineError> {
        let mut views = self.views.write();
        let mut metered = Vec::with_capacity(views.len());
        for (name, view) in views.iter_mut() {
            let stats = Arc::make_mut(view).refresh_incremental(delta)?;
            metered.push((name.clone(), stats));
        }
        Ok(metered)
    }

    /// The smallest registered view able to answer `query`, if any —
    /// smallest by stored row count, which minimises the scan and therefore
    /// the simulated processing time.
    pub fn best_view_for(&self, query: &AggQuery) -> Option<Arc<MaterializedView>> {
        self.views
            .read()
            .iter()
            .filter(|(_, v)| v.can_answer(query).is_ok())
            .min_by_key(|(_, v)| v.data().num_rows())
            .map(|(_, v)| Arc::clone(v))
    }

    /// Executes `query`, answering from the best view when one applies and
    /// falling back to `base` otherwise. Returns the result, the metering
    /// record, and the name of the view used (if any).
    pub fn execute(
        &self,
        query: &AggQuery,
        base: &Table,
    ) -> Result<(Table, ExecStats, Option<String>), EngineError> {
        match self.best_view_for(query) {
            Some(view) => {
                let (out, stats) = view.answer(query)?;
                Ok((out, stats, Some(view.def().name.clone())))
            }
            None => {
                let (out, stats) = query.execute(base)?;
                Ok((out, stats, None))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AggSpec, DataType, TableBuilder, ViewDefinition};

    fn base() -> Table {
        TableBuilder::new(&[
            ("year", DataType::Int),
            ("month", DataType::Int),
            ("country", DataType::Str),
            ("profit", DataType::Int),
        ])
        .unwrap()
        .row(&[2000.into(), 1.into(), "France".into(), 10.into()])
        .unwrap()
        .row(&[2000.into(), 2.into(), "France".into(), 20.into()])
        .unwrap()
        .row(&[2001.into(), 1.into(), "Italy".into(), 30.into()])
        .unwrap()
        .build()
    }

    fn make_view(name: &str, cols: &[&str]) -> MaterializedView {
        MaterializedView::materialize(
            ViewDefinition::canonical(name, cols, &[AggSpec::sum("profit")]),
            &base(),
        )
        .unwrap()
    }

    #[test]
    fn register_get_deregister() {
        let cat = ViewCatalog::new();
        assert!(cat.is_empty());
        cat.register(make_view("v1", &["year", "country"])).unwrap();
        assert_eq!(cat.len(), 1);
        assert!(cat.get("v1").is_ok());
        assert!(matches!(
            cat.register(make_view("v1", &["year"])),
            Err(EngineError::ViewExists { .. })
        ));
        cat.deregister("v1").unwrap();
        assert!(matches!(
            cat.get("v1"),
            Err(EngineError::ViewNotFound { .. })
        ));
        assert!(matches!(
            cat.deregister("v1"),
            Err(EngineError::ViewNotFound { .. })
        ));
    }

    #[test]
    fn best_view_prefers_smaller() {
        let cat = ViewCatalog::new();
        // Fine view: 3 groups; coarse view: 2 groups.
        cat.register(make_view("fine", &["year", "month", "country"]))
            .unwrap();
        cat.register(make_view("coarse", &["year", "country"]))
            .unwrap();
        let q = AggQuery::new("q", &["year"], vec![AggSpec::sum("profit")]);
        let best = cat.best_view_for(&q).unwrap();
        assert_eq!(best.def().name, "coarse");
    }

    #[test]
    fn execute_falls_back_to_base() {
        let cat = ViewCatalog::new();
        cat.register(make_view("v", &["year"])).unwrap();
        // Needs month, which "v" lacks.
        let q = AggQuery::new("q", &["month"], vec![AggSpec::sum("profit")]);
        let (out, _, used) = cat.execute(&q, &base()).unwrap();
        assert!(used.is_none());
        assert_eq!(out.num_rows(), 2);

        let q2 = AggQuery::new("q2", &["year"], vec![AggSpec::sum("profit")]);
        let (out2, _, used2) = cat.execute(&q2, &base()).unwrap();
        assert_eq!(used2.as_deref(), Some("v"));
        assert_eq!(out2.num_rows(), 2);
    }

    #[test]
    fn concurrent_reads_and_writes() {
        let cat = Arc::new(ViewCatalog::new());
        cat.register(make_view("v0", &["year"])).unwrap();
        let q = AggQuery::new("q", &["year"], vec![AggSpec::sum("profit")]);
        crossbeam::thread::scope(|s| {
            for t in 0..4 {
                let cat = Arc::clone(&cat);
                let q = q.clone();
                s.spawn(move |_| {
                    for i in 0..20 {
                        let _ = cat.best_view_for(&q);
                        if i % 5 == 0 {
                            let name = format!("v-{t}-{i}");
                            cat.register(make_view(&name, &["year", "month"])).unwrap();
                        }
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(cat.len(), 1 + 4 * 4);
    }
}
