//! Columnar storage.

use crate::{DataType, Dictionary, EngineError, Value};

/// One column of data.
///
/// String columns own their dictionary; tables produced by the engine are
/// self-contained (no shared interning across tables), which keeps
/// materialized views independent of their base table — exactly like a
/// physical table in the paper's cloud store.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// 64-bit integers.
    Int(Vec<i64>),
    /// Dictionary-encoded strings.
    Str {
        /// Per-row dictionary codes.
        codes: Vec<u32>,
        /// Code → string mapping.
        dict: Dictionary,
    },
}

impl Column {
    /// An empty column of the given type.
    pub fn empty(dtype: DataType) -> Self {
        match dtype {
            DataType::Int => Column::Int(Vec::new()),
            DataType::Str => Column::Str {
                codes: Vec::new(),
                dict: Dictionary::new(),
            },
        }
    }

    /// This column's logical type.
    pub fn dtype(&self) -> DataType {
        match self {
            Column::Int(_) => DataType::Int,
            Column::Str { .. } => DataType::Str,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Str { codes, .. } => codes.len(),
        }
    }

    /// `true` when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at `row` as a boundary [`Value`].
    pub fn value_at(&self, row: usize) -> Value {
        match self {
            Column::Int(v) => Value::Int(v[row]),
            Column::Str { codes, dict } => Value::Str(dict.decode(codes[row]).to_string()),
        }
    }

    /// A group-by key fragment for `row`: the raw integer for `Int`
    /// columns, the dictionary code for `Str` columns. Only comparable
    /// within one column, which is all hash aggregation needs.
    #[inline]
    pub fn key_at(&self, row: usize) -> i64 {
        match self {
            Column::Int(v) => v[row],
            Column::Str { codes, .. } => codes[row] as i64,
        }
    }

    /// Appends a boundary value, interning strings.
    pub fn push_value(&mut self, value: &Value) -> Result<(), EngineError> {
        match (self, value) {
            (Column::Int(v), Value::Int(i)) => {
                v.push(*i);
                Ok(())
            }
            (Column::Str { codes, dict }, Value::Str(s)) => {
                codes.push(dict.intern(s));
                Ok(())
            }
            (col, v) => Err(EngineError::TypeMismatch {
                column: String::new(),
                expected: col.dtype().name(),
                actual: v.type_name(),
            }),
        }
    }

    /// Appends an integer. Panics if this is not an `Int` column — used on
    /// hot paths where the type was already checked.
    #[inline]
    pub fn push_int(&mut self, v: i64) {
        match self {
            Column::Int(vals) => vals.push(v),
            Column::Str { .. } => panic!("push_int on a string column"),
        }
    }

    /// Appends a string, interning it. Panics on an `Int` column.
    #[inline]
    pub fn push_str(&mut self, s: &str) {
        match self {
            Column::Str { codes, dict } => codes.push(dict.intern(s)),
            Column::Int(_) => panic!("push_str on an int column"),
        }
    }

    /// Mutable integer data for in-place accumulator merges
    /// (crate-internal; see `Table::column_mut`).
    pub(crate) fn int_values_mut(&mut self) -> &mut Vec<i64> {
        match self {
            Column::Int(v) => v,
            Column::Str { .. } => panic!("int_values_mut on a string column"),
        }
    }

    /// Borrows the integer data. Errors on string columns.
    pub fn as_int(&self) -> Result<&[i64], EngineError> {
        match self {
            Column::Int(v) => Ok(v),
            Column::Str { .. } => Err(EngineError::TypeMismatch {
                column: String::new(),
                expected: "int",
                actual: "str",
            }),
        }
    }

    /// Borrows the codes and dictionary of a string column.
    pub fn as_str(&self) -> Result<(&[u32], &Dictionary), EngineError> {
        match self {
            Column::Str { codes, dict } => Ok((codes, dict)),
            Column::Int(_) => Err(EngineError::TypeMismatch {
                column: String::new(),
                expected: "str",
                actual: "int",
            }),
        }
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> u64 {
        match self {
            Column::Int(v) => 8 * v.len() as u64,
            Column::Str { codes, dict } => 4 * codes.len() as u64 + dict.heap_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_column_roundtrip() {
        let mut c = Column::empty(DataType::Int);
        c.push_int(2000);
        c.push_value(&Value::Int(1999)).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.value_at(0), Value::Int(2000));
        assert_eq!(c.key_at(1), 1999);
        assert_eq!(c.as_int().unwrap(), &[2000, 1999]);
    }

    #[test]
    fn str_column_roundtrip() {
        let mut c = Column::empty(DataType::Str);
        c.push_str("France");
        c.push_str("Italy");
        c.push_str("France");
        assert_eq!(c.len(), 3);
        assert_eq!(c.value_at(2), Value::from("France"));
        // Repeated strings share a code.
        assert_eq!(c.key_at(0), c.key_at(2));
        assert_ne!(c.key_at(0), c.key_at(1));
        let (codes, dict) = c.as_str().unwrap();
        assert_eq!(codes.len(), 3);
        assert_eq!(dict.len(), 2);
    }

    #[test]
    fn type_mismatch_errors() {
        let mut c = Column::empty(DataType::Int);
        assert!(c.push_value(&Value::from("x")).is_err());
        assert!(c.as_str().is_err());
        let s = Column::empty(DataType::Str);
        assert!(s.as_int().is_err());
    }

    #[test]
    #[should_panic(expected = "push_int on a string column")]
    fn push_int_on_str_panics() {
        Column::empty(DataType::Str).push_int(1);
    }

    #[test]
    fn heap_accounting() {
        let mut c = Column::empty(DataType::Int);
        for i in 0..10 {
            c.push_int(i);
        }
        assert_eq!(c.heap_bytes(), 80);
        assert!(Column::empty(DataType::Str).heap_bytes() == 0);
    }
}
