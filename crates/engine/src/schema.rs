//! Table schemas.

use serde::{Deserialize, Serialize};

use crate::EngineError;

/// Logical column type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer. Dates are integers in `yyyymmdd` form and
    /// monetary measures are integer cents; both conventions keep the
    /// arithmetic exact.
    Int,
    /// Dictionary-encoded UTF-8 string.
    Str,
}

impl DataType {
    /// Short name for error messages.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Int => "int",
            DataType::Str => "str",
        }
    }

    /// Bytes scanned per row for work metering (integers are 8 bytes,
    /// dictionary codes 4).
    pub fn byte_width(self) -> u64 {
        match self {
            DataType::Int => 8,
            DataType::Str => 4,
        }
    }
}

/// A named, typed column slot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    /// Column name, unique within a schema.
    pub name: String,
    /// Column type.
    pub dtype: DataType,
}

impl Field {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field {
            name: name.into(),
            dtype,
        }
    }
}

/// An ordered list of fields with unique names.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Builds a schema, rejecting duplicate column names.
    pub fn new(fields: Vec<Field>) -> Result<Self, EngineError> {
        for (i, a) in fields.iter().enumerate() {
            for b in &fields[i + 1..] {
                if a.name == b.name {
                    return Err(EngineError::DuplicateColumn {
                        name: a.name.clone(),
                    });
                }
            }
        }
        Ok(Schema { fields })
    }

    /// The fields in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// `true` for the empty schema.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the column called `name`.
    pub fn index_of(&self, name: &str) -> Result<usize, EngineError> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| EngineError::UnknownColumn {
                name: name.to_string(),
            })
    }

    /// The field called `name`.
    pub fn field(&self, name: &str) -> Result<&Field, EngineError> {
        self.index_of(name).map(|i| &self.fields[i])
    }

    /// Sum of per-row byte widths, for work metering.
    pub fn row_byte_width(&self) -> u64 {
        self.fields.iter().map(|f| f.dtype.byte_width()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sales_schema() -> Schema {
        Schema::new(vec![
            Field::new("year", DataType::Int),
            Field::new("country", DataType::Str),
            Field::new("profit", DataType::Int),
        ])
        .unwrap()
    }

    #[test]
    fn lookup_by_name() {
        let s = sales_schema();
        assert_eq!(s.index_of("country").unwrap(), 1);
        assert_eq!(s.field("profit").unwrap().dtype, DataType::Int);
        assert!(matches!(
            s.index_of("nope"),
            Err(EngineError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn duplicates_rejected() {
        let err = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("a", DataType::Str),
        ]);
        assert!(matches!(err, Err(EngineError::DuplicateColumn { .. })));
    }

    #[test]
    fn byte_widths() {
        assert_eq!(sales_schema().row_byte_width(), 8 + 4 + 8);
        assert_eq!(DataType::Int.byte_width(), 8);
        assert_eq!(DataType::Str.byte_width(), 4);
    }

    #[test]
    fn empty_schema() {
        let s = Schema::new(vec![]).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.row_byte_width(), 0);
    }
}
