//! A scaled-down, Star-Schema-Benchmark-flavoured dataset and workload.
//!
//! The paper's future work proposes validating on "a full-fledged database
//! or data warehouse benchmark, such as TPC-E or the Star Schema Benchmark".
//! This module provides an SSB-like denormalized `lineorder` fact table with
//! three dimension hierarchies (date, customer geography, part taxonomy) and
//! a 13-query roll-up workload mirroring SSB's four query flights — enough
//! to exercise the advisor on a second, differently-shaped schema.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::datagen::days_in_month;
use crate::{AggQuery, AggSpec, DataType, Field, Schema, Table, Value};

/// Generator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SsbConfig {
    /// Number of lineorder rows.
    pub rows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SsbConfig {
    fn default() -> Self {
        SsbConfig {
            rows: 20_000,
            seed: 7,
        }
    }
}

const REGIONS: [&str; 5] = ["AMERICA", "ASIA", "EUROPE", "AFRICA", "MIDDLE EAST"];
const NATIONS_PER_REGION: usize = 3;
const CITIES_PER_NATION: usize = 4;
const MFGRS: [&str; 3] = ["MFGR#1", "MFGR#2", "MFGR#3"];
const CATEGORIES_PER_MFGR: usize = 4;
const BRANDS_PER_CATEGORY: usize = 8;

/// The denormalized lineorder schema. Hierarchies, as column prefixes:
/// * date: `(d_year)`, `(d_year, d_month)`, `(d_year, d_month, d_day)`;
/// * customer: `(c_region)`, `(c_region, c_nation)`,
///   `(c_region, c_nation, c_city)`;
/// * part: `(p_mfgr)`, `(p_mfgr, p_category)`,
///   `(p_mfgr, p_category, p_brand)`.
pub fn lineorder_schema() -> Schema {
    Schema::new(vec![
        Field::new("d_year", DataType::Int),
        Field::new("d_month", DataType::Int),
        Field::new("d_day", DataType::Int),
        Field::new("c_region", DataType::Str),
        Field::new("c_nation", DataType::Str),
        Field::new("c_city", DataType::Str),
        Field::new("p_mfgr", DataType::Str),
        Field::new("p_category", DataType::Str),
        Field::new("p_brand", DataType::Str),
        Field::new("revenue", DataType::Int),
        Field::new("discount", DataType::Int),
    ])
    .expect("lineorder schema is valid")
}

/// Generates the lineorder fact table (SSB dates span 1992–1998).
pub fn generate_lineorder(cfg: &SsbConfig) -> Table {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut table = Table::empty(lineorder_schema());
    for _ in 0..cfg.rows {
        let year = rng.random_range(1992..=1998i64);
        let month = rng.random_range(1..=12i64);
        let day = rng.random_range(1..=days_in_month(year, month));

        let region_idx = rng.random_range(0..REGIONS.len());
        let region = REGIONS[region_idx];
        let nation_idx = rng.random_range(0..NATIONS_PER_REGION);
        let nation = format!("{}-N{}", region, nation_idx);
        let city = format!("{}-C{}", nation, rng.random_range(0..CITIES_PER_NATION));

        let mfgr_idx = rng.random_range(0..MFGRS.len());
        let mfgr = MFGRS[mfgr_idx];
        let cat_idx = rng.random_range(0..CATEGORIES_PER_MFGR);
        let category = format!("{}#{}", mfgr, cat_idx);
        let brand = format!("{}-B{}", category, rng.random_range(0..BRANDS_PER_CATEGORY));

        let revenue = rng.random_range(100..=1_000_000i64);
        let discount = rng.random_range(0..=10i64);

        table
            .push_row(&[
                Value::Int(year),
                Value::Int(month),
                Value::Int(day),
                Value::from(region),
                Value::from(nation),
                Value::from(city),
                Value::from(mfgr),
                Value::from(category),
                Value::from(brand),
                Value::Int(revenue),
                Value::Int(discount),
            ])
            .expect("generated row matches schema");
    }
    table
}

/// A 13-query roll-up workload approximating SSB's four flights:
/// revenue totals at varying date × customer × part granularities.
pub fn ssb_queries() -> Vec<AggQuery> {
    let rev = || vec![AggSpec::sum("revenue")];
    vec![
        // Flight 1: date-only roll-ups.
        AggQuery::new("ssb-1.1", &["d_year"], rev()),
        AggQuery::new("ssb-1.2", &["d_year", "d_month"], rev()),
        AggQuery::new("ssb-1.3", &["d_year", "d_month", "d_day"], rev()),
        // Flight 2: part × date.
        AggQuery::new("ssb-2.1", &["d_year", "p_mfgr"], rev()),
        AggQuery::new("ssb-2.2", &["d_year", "p_mfgr", "p_category"], rev()),
        AggQuery::new(
            "ssb-2.3",
            &["d_year", "p_mfgr", "p_category", "p_brand"],
            rev(),
        ),
        // Flight 3: customer × date.
        AggQuery::new("ssb-3.1", &["d_year", "c_region"], rev()),
        AggQuery::new("ssb-3.2", &["d_year", "c_region", "c_nation"], rev()),
        AggQuery::new(
            "ssb-3.3",
            &["d_year", "c_region", "c_nation", "c_city"],
            rev(),
        ),
        AggQuery::new(
            "ssb-3.4",
            &["d_year", "d_month", "c_region", "c_nation"],
            rev(),
        ),
        // Flight 4: customer × part × date ("profit drill-down").
        AggQuery::new("ssb-4.1", &["d_year", "c_region", "p_mfgr"], rev()),
        AggQuery::new(
            "ssb-4.2",
            &["d_year", "c_region", "p_mfgr", "p_category"],
            rev(),
        ),
        AggQuery::new("ssb-4.3", &["c_region", "p_mfgr"], rev()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sized() {
        let cfg = SsbConfig {
            rows: 1_000,
            seed: 7,
        };
        let a = generate_lineorder(&cfg);
        let b = generate_lineorder(&cfg);
        assert_eq!(a.num_rows(), 1_000);
        assert_eq!(a.to_rows(), b.to_rows());
    }

    #[test]
    fn hierarchies_nest() {
        let t = generate_lineorder(&SsbConfig { rows: 500, seed: 1 });
        for row in 0..t.num_rows() {
            let r = t.row(row);
            let region = r[3].as_str().unwrap();
            let nation = r[4].as_str().unwrap();
            let city = r[5].as_str().unwrap();
            assert!(nation.starts_with(region), "{nation} under {region}");
            assert!(city.starts_with(nation), "{city} under {nation}");
            let mfgr = r[6].as_str().unwrap();
            let category = r[7].as_str().unwrap();
            let brand = r[8].as_str().unwrap();
            assert!(category.starts_with(mfgr));
            assert!(brand.starts_with(category));
        }
    }

    #[test]
    fn all_queries_execute() {
        let t = generate_lineorder(&SsbConfig {
            rows: 2_000,
            seed: 3,
        });
        for q in ssb_queries() {
            let (out, stats) = q.execute(&t).unwrap();
            assert!(out.num_rows() > 0, "{} returned no rows", q.name);
            assert_eq!(stats.rows_scanned, 2_000);
        }
    }

    #[test]
    fn thirteen_queries_like_ssb() {
        assert_eq!(ssb_queries().len(), 13);
        let names: Vec<String> = ssb_queries().into_iter().map(|q| q.name).collect();
        let mut unique = names.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), names.len());
    }
}
