//! Work metering and the simulated-time model.
//!
//! The paper's processing times (0.2 h for Q1, 50 h for the workload, …)
//! were wall-clock measurements on a Hadoop cluster. This reproduction
//! executes queries on an in-memory engine instead, so times are *derived*:
//! every operator reports the work it performed ([`ExecStats`]) and a
//! [`ThroughputModel`] converts that work into simulated cluster-hours.
//! Two properties make the substitution sound for the cost models:
//!
//! 1. the paper's query class (full-scan roll-up aggregation) is scan-bound,
//!    so hours ∝ bytes scanned — which is exactly what the model computes;
//! 2. the conversion is deterministic, so experiments are reproducible on
//!    any machine, unlike wall-clock.
//!
//! [`SimScale`] maps in-memory engine bytes to "cloud" gigabytes: running
//! the 10-GB experiment on a 100-MB in-memory table uses `factor = 100`.

use mv_units::{Gb, Hours};
use serde::{Deserialize, Serialize};

use crate::EngineError;

/// Work performed by one operator or query execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecStats {
    /// Rows read from the input.
    pub rows_scanned: u64,
    /// Bytes read (per-column widths × rows, only referenced columns).
    pub bytes_scanned: u64,
    /// Rows produced.
    pub rows_out: u64,
    /// Bytes produced.
    pub bytes_out: u64,
    /// Distinct groups formed by aggregation.
    pub groups: u64,
}

impl ExecStats {
    /// Element-wise accumulation.
    pub fn merge(&mut self, other: &ExecStats) {
        self.rows_scanned += other.rows_scanned;
        self.bytes_scanned += other.bytes_scanned;
        self.rows_out += other.rows_out;
        self.bytes_out += other.bytes_out;
        self.groups += other.groups;
    }

    /// Sum of two stat records.
    pub fn plus(mut self, other: &ExecStats) -> ExecStats {
        self.merge(other);
        self
    }
}

/// Scale factor between engine bytes and simulated "cloud" bytes.
///
/// The paper's evaluation dataset is 10 GB; tests and experiments run the
/// engine on a few tens of megabytes and declare the factor that maps the
/// in-memory size to the simulated size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimScale {
    /// cloud bytes = engine bytes × `factor`.
    pub factor: f64,
}

impl SimScale {
    /// One-to-one scale (the engine size *is* the cloud size).
    pub fn identity() -> Self {
        SimScale { factor: 1.0 }
    }

    /// Scale such that `engine_size` represents `cloud_size`.
    pub fn mapping(engine_size: Gb, cloud_size: Gb) -> Self {
        assert!(
            engine_size.value() > 0.0,
            "engine size must be positive to derive a scale"
        );
        SimScale {
            factor: cloud_size.value() / engine_size.value(),
        }
    }

    /// Converts an engine-side size to the simulated cloud size.
    pub fn to_cloud(&self, engine: Gb) -> Gb {
        engine * self.factor
    }

    /// Converts raw engine bytes to the simulated cloud size.
    pub fn bytes_to_cloud(&self, bytes: u64) -> Gb {
        self.to_cloud(Gb::from_bytes(bytes))
    }
}

/// Converts metered work into simulated cluster-hours.
///
/// `hours = job_overhead + cloud_gb_scanned / (scan_gb_per_hour_per_unit ×
/// compute_units)`. The per-job overhead models MapReduce startup latency,
/// which dominates tiny jobs on the paper's Hadoop 0.20 cluster; the scan
/// rate models the cluster's aggregate scan bandwidth per EC2 compute unit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputModel {
    /// GB scanned per hour per compute unit.
    pub scan_gb_per_hour_per_unit: f64,
    /// Fixed per-job startup cost.
    pub job_overhead: Hours,
}

impl Default for ThroughputModel {
    /// Calibrated so the paper's running example is in range: a full scan of
    /// the 10 GB dataset on two small instances (2 compute units) takes
    /// `0.01 + 10/(25×2) = 0.21 h` — matching the paper's "Q1 processes in
    /// 0.2 hour".
    fn default() -> Self {
        ThroughputModel {
            scan_gb_per_hour_per_unit: 25.0,
            job_overhead: Hours::new(0.01),
        }
    }
}

impl ThroughputModel {
    /// A model with explicitly fitted parameters — the constructor the
    /// calibration loop uses once it has recovered the scan rate and job
    /// overhead from metered samples (`mvcloud::calibrate`).
    pub fn calibrated(scan_gb_per_hour_per_unit: f64, job_overhead: Hours) -> Self {
        ThroughputModel {
            scan_gb_per_hour_per_unit,
            job_overhead,
        }
    }

    /// Simulated duration of a job that performed `stats` worth of work on
    /// `compute_units` total capacity (instance units × instance count),
    /// with engine bytes scaled through `scale`. Non-positive (or NaN)
    /// capacity is user input, not an invariant — it is a typed error.
    pub fn hours_for(
        &self,
        stats: &ExecStats,
        compute_units: f64,
        scale: SimScale,
    ) -> Result<Hours, EngineError> {
        self.hours_for_scan(scale.bytes_to_cloud(stats.bytes_scanned), compute_units)
    }

    /// Simulated duration of scanning `cloud_gb` directly (no stats record).
    pub fn hours_for_scan(&self, cloud_gb: Gb, compute_units: f64) -> Result<Hours, EngineError> {
        if compute_units.is_nan() || compute_units <= 0.0 {
            return Err(EngineError::NonPositiveComputeUnits);
        }
        Ok(self.job_overhead
            + Hours::new(cloud_gb.value() / (self.scan_gb_per_hour_per_unit * compute_units)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = ExecStats {
            rows_scanned: 10,
            bytes_scanned: 100,
            rows_out: 2,
            bytes_out: 16,
            groups: 2,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.rows_scanned, 20);
        assert_eq!(a.bytes_out, 32);
        assert_eq!(b.plus(&b).groups, 4);
    }

    #[test]
    fn scale_mapping() {
        let s = SimScale::mapping(Gb::new(0.1), Gb::new(10.0));
        assert_eq!(s.factor, 100.0);
        assert_eq!(s.to_cloud(Gb::new(0.05)).value(), 5.0);
        assert_eq!(SimScale::identity().to_cloud(Gb::new(3.0)).value(), 3.0);
    }

    #[test]
    fn default_model_matches_paper_q1() {
        // Full scan of 10 GB on two small instances ≈ 0.2 h.
        let m = ThroughputModel::default();
        let t = m.hours_for_scan(Gb::new(10.0), 2.0).unwrap();
        assert!((t.value() - 0.21).abs() < 1e-9, "got {t:?}");
    }

    #[test]
    fn hours_scale_with_units_and_bytes() {
        let m = ThroughputModel::calibrated(10.0, Hours::ZERO);
        let stats = ExecStats {
            bytes_scanned: 10 << 30,
            ..ExecStats::default()
        };
        let hours =
            |units: f64, scale: SimScale| m.hours_for(&stats, units, scale).unwrap().value();
        assert_eq!(hours(1.0, SimScale::identity()), 1.0);
        assert_eq!(hours(2.0, SimScale::identity()), 0.5);
        assert_eq!(hours(1.0, SimScale { factor: 2.0 }), 2.0);
    }

    #[test]
    fn non_positive_units_are_a_typed_error() {
        // User-reachable input (instance counts, custom catalogs) must
        // surface as an error, never a panic.
        let m = ThroughputModel::default();
        for bad in [0.0, -1.0, f64::NAN] {
            assert_eq!(
                m.hours_for_scan(Gb::new(1.0), bad),
                Err(EngineError::NonPositiveComputeUnits),
                "units = {bad}"
            );
            assert_eq!(
                m.hours_for(&ExecStats::default(), bad, SimScale::identity()),
                Err(EngineError::NonPositiveComputeUnits),
                "units = {bad}"
            );
        }
    }
}
