//! Row filters.
//!
//! Filters are deliberately minimal: comparisons against literals combined
//! with AND/OR — enough to express the paper's workload class ("sales of
//! 2005", "sales in France since 2003") without growing a full expression
//! language.

use crate::{Column, EngineError, Table, Value};

/// Comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    fn eval_ord(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

/// A filter over table rows.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `column op literal`.
    Cmp {
        /// Column name.
        column: String,
        /// Operator.
        op: CmpOp,
        /// Literal to compare against.
        literal: Value,
    },
    /// Conjunction (empty = true).
    And(Vec<Predicate>),
    /// Disjunction (empty = false).
    Or(Vec<Predicate>),
}

impl Predicate {
    /// `column = literal`.
    pub fn eq(column: impl Into<String>, literal: impl Into<Value>) -> Self {
        Predicate::Cmp {
            column: column.into(),
            op: CmpOp::Eq,
            literal: literal.into(),
        }
    }

    /// `column op literal`.
    pub fn cmp(column: impl Into<String>, op: CmpOp, literal: impl Into<Value>) -> Self {
        Predicate::Cmp {
            column: column.into(),
            op,
            literal: literal.into(),
        }
    }

    /// All column names referenced by the predicate (with duplicates).
    pub fn columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Predicate::Cmp { column, .. } => out.push(column),
            Predicate::And(ps) | Predicate::Or(ps) => {
                for p in ps {
                    p.collect_columns(out);
                }
            }
        }
    }

    /// Evaluates to one boolean per row.
    pub fn eval(&self, table: &Table) -> Result<Vec<bool>, EngineError> {
        match self {
            Predicate::Cmp {
                column,
                op,
                literal,
            } => {
                let col = table.column_by_name(column)?;
                eval_cmp(col, *op, literal, column)
            }
            Predicate::And(ps) => {
                let mut mask = vec![true; table.num_rows()];
                for p in ps {
                    let m = p.eval(table)?;
                    for (a, b) in mask.iter_mut().zip(m) {
                        *a = *a && b;
                    }
                }
                Ok(mask)
            }
            Predicate::Or(ps) => {
                let mut mask = vec![false; table.num_rows()];
                for p in ps {
                    let m = p.eval(table)?;
                    for (a, b) in mask.iter_mut().zip(m) {
                        *a = *a || b;
                    }
                }
                Ok(mask)
            }
        }
    }
}

fn eval_cmp(
    col: &Column,
    op: CmpOp,
    literal: &Value,
    name: &str,
) -> Result<Vec<bool>, EngineError> {
    match (col, literal) {
        (Column::Int(values), Value::Int(lit)) => {
            Ok(values.iter().map(|v| op.eval_ord(v.cmp(lit))).collect())
        }
        (Column::Str { codes, dict }, Value::Str(lit)) => {
            match op {
                // Equality compares codes: one dictionary probe total.
                CmpOp::Eq | CmpOp::Ne => {
                    let target = dict.lookup(lit);
                    Ok(codes
                        .iter()
                        .map(|c| {
                            let eq = Some(*c) == target;
                            if op == CmpOp::Eq {
                                eq
                            } else {
                                !eq
                            }
                        })
                        .collect())
                }
                // Range comparisons decode; rare in the workload class.
                _ => Ok(codes
                    .iter()
                    .map(|c| op.eval_ord(dict.decode(*c).cmp(lit.as_str())))
                    .collect()),
            }
        }
        (c, v) => Err(EngineError::TypeMismatch {
            column: name.to_string(),
            expected: c.dtype().name(),
            actual: v.type_name(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DataType, TableBuilder};

    fn table() -> Table {
        TableBuilder::new(&[("year", DataType::Int), ("country", DataType::Str)])
            .unwrap()
            .row(&[2000.into(), "France".into()])
            .unwrap()
            .row(&[2005.into(), "Italy".into()])
            .unwrap()
            .row(&[2010.into(), "France".into()])
            .unwrap()
            .build()
    }

    #[test]
    fn int_comparisons() {
        let t = table();
        assert_eq!(
            Predicate::cmp("year", CmpOp::Ge, 2005).eval(&t).unwrap(),
            vec![false, true, true]
        );
        assert_eq!(
            Predicate::eq("year", 2005).eval(&t).unwrap(),
            vec![false, true, false]
        );
        assert_eq!(
            Predicate::cmp("year", CmpOp::Ne, 2005).eval(&t).unwrap(),
            vec![true, false, true]
        );
    }

    #[test]
    fn str_equality_uses_codes() {
        let t = table();
        assert_eq!(
            Predicate::eq("country", "France").eval(&t).unwrap(),
            vec![true, false, true]
        );
        // Unknown string matches nothing.
        assert_eq!(
            Predicate::eq("country", "Spain").eval(&t).unwrap(),
            vec![false, false, false]
        );
    }

    #[test]
    fn str_range_decodes() {
        let t = table();
        assert_eq!(
            Predicate::cmp("country", CmpOp::Lt, "G").eval(&t).unwrap(),
            vec![true, false, true]
        );
    }

    #[test]
    fn and_or_combinators() {
        let t = table();
        let p = Predicate::And(vec![
            Predicate::cmp("year", CmpOp::Ge, 2005),
            Predicate::eq("country", "France"),
        ]);
        assert_eq!(p.eval(&t).unwrap(), vec![false, false, true]);

        let q = Predicate::Or(vec![
            Predicate::eq("year", 2000),
            Predicate::eq("country", "Italy"),
        ]);
        assert_eq!(q.eval(&t).unwrap(), vec![true, true, false]);

        // Empty AND is true; empty OR is false.
        assert_eq!(
            Predicate::And(vec![]).eval(&t).unwrap(),
            vec![true, true, true]
        );
        assert_eq!(
            Predicate::Or(vec![]).eval(&t).unwrap(),
            vec![false, false, false]
        );
    }

    #[test]
    fn type_mismatch_reports_column() {
        let t = table();
        let err = Predicate::eq("year", "2005").eval(&t).unwrap_err();
        assert!(matches!(err, EngineError::TypeMismatch { ref column, .. } if column == "year"));
    }

    #[test]
    fn columns_lists_references() {
        let p = Predicate::And(vec![
            Predicate::eq("a", 1),
            Predicate::Or(vec![Predicate::eq("b", 2), Predicate::eq("c", 3)]),
        ]);
        assert_eq!(p.columns(), vec!["a", "b", "c"]);
    }
}
