//! Boundary value type for row-wise access and literals.

use std::fmt;

/// A single cell value, used at API boundaries (literals in predicates,
/// row extraction in tests and reports). Bulk execution never materializes
/// `Value`s — it stays columnar.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// 64-bit integer (also carries dates as `yyyymmdd` and money as cents).
    Int(i64),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    /// Short type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Str(_) => "str",
        }
    }

    /// The integer payload, if any.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Str(_) => None,
        }
    }

    /// The string payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Int(_) => None,
            Value::Str(s) => Some(s),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Int(5).as_str(), None);
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::from("x").as_int(), None);
    }

    #[test]
    fn display_and_names() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::from("France").to_string(), "France");
        assert_eq!(Value::Int(0).type_name(), "int");
        assert_eq!(Value::from("a").type_name(), "str");
    }

    #[test]
    fn ordering_is_total_within_variant() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::from("a") < Value::from("b"));
    }
}
