//! Aggregate functions and accumulators.

use serde::{Deserialize, Serialize};

/// Public aggregate functions.
///
/// `Avg` is supported end-to-end but is never *stored* in a materialized
/// view: the materializer canonicalizes it to `Sum` + `Count` so the view
/// stays re-aggregable (the classical distributive/algebraic split).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggFunc {
    /// Sum of an integer column.
    Sum,
    /// Row count (no input column).
    Count,
    /// Minimum of an integer column.
    Min,
    /// Maximum of an integer column.
    Max,
    /// Integer average (floor of sum/count); algebraic, derived from
    /// Sum+Count when answered from a view.
    Avg,
}

impl AggFunc {
    /// Short lowercase name, used for auto-generated output column names.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Sum => "sum",
            AggFunc::Count => "count",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        }
    }

    /// Whether re-aggregating partial results of this function with itself
    /// is lossless (distributive functions).
    pub fn is_distributive(self) -> bool {
        matches!(self, AggFunc::Sum | AggFunc::Min | AggFunc::Max)
    }
}

/// A requested aggregate: function + input column + output name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AggSpec {
    /// The function.
    pub func: AggFunc,
    /// Input column; `None` only for `Count`.
    pub column: Option<String>,
    /// Output column name.
    pub alias: String,
}

impl AggSpec {
    /// `SUM(column) AS sum_column`.
    pub fn sum(column: impl Into<String>) -> Self {
        let column = column.into();
        AggSpec {
            alias: format!("sum_{column}"),
            func: AggFunc::Sum,
            column: Some(column),
        }
    }

    /// `COUNT(*) AS count_rows`.
    pub fn count() -> Self {
        AggSpec {
            func: AggFunc::Count,
            column: None,
            alias: "count_rows".to_string(),
        }
    }

    /// `MIN(column) AS min_column`.
    pub fn min(column: impl Into<String>) -> Self {
        let column = column.into();
        AggSpec {
            alias: format!("min_{column}"),
            func: AggFunc::Min,
            column: Some(column),
        }
    }

    /// `MAX(column) AS max_column`.
    pub fn max(column: impl Into<String>) -> Self {
        let column = column.into();
        AggSpec {
            alias: format!("max_{column}"),
            func: AggFunc::Max,
            column: Some(column),
        }
    }

    /// `AVG(column) AS avg_column`.
    pub fn avg(column: impl Into<String>) -> Self {
        let column = column.into();
        AggSpec {
            alias: format!("avg_{column}"),
            func: AggFunc::Avg,
            column: Some(column),
        }
    }

    /// Renames the output column.
    pub fn with_alias(mut self, alias: impl Into<String>) -> Self {
        self.alias = alias.into();
        self
    }
}

/// Lowered aggregate expression used by the executor: input columns are
/// resolved to indices and `Avg` may be expressed as a ratio of two partial
/// columns when answering from a view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AggExpr {
    /// Sum of input column `col`.
    Sum { col: usize },
    /// Count of selected rows.
    Count,
    /// Min of input column `col`.
    Min { col: usize },
    /// Max of input column `col`.
    Max { col: usize },
    /// Floor(sum(col) / count) — native average over base rows.
    Avg { col: usize },
    /// Floor(sum(sum_col) / sum(count_col)) — average re-derived from a
    /// view's stored partials.
    RatioOfSums { sum_col: usize, count_col: usize },
}

/// Per-group accumulator state, one per lowered expression.
#[derive(Debug, Clone, Copy)]
pub(crate) enum AggState {
    SumCount { sum: i64, count: i64 },
    MinMax { value: i64, seen: bool },
}

impl AggExpr {
    pub(crate) fn init(self) -> AggState {
        match self {
            AggExpr::Sum { .. }
            | AggExpr::Count
            | AggExpr::Avg { .. }
            | AggExpr::RatioOfSums { .. } => AggState::SumCount { sum: 0, count: 0 },
            AggExpr::Min { .. } | AggExpr::Max { .. } => AggState::MinMax {
                value: 0,
                seen: false,
            },
        }
    }

    /// Folds row `row`'s contribution into `state`; `get` reads an input
    /// column's integer at that row.
    #[inline]
    pub(crate) fn update(
        self,
        state: &mut AggState,
        get: &impl Fn(usize, usize) -> i64,
        row: usize,
    ) {
        match (self, state) {
            (AggExpr::Sum { col }, AggState::SumCount { sum, count }) => {
                *sum += get(col, row);
                *count += 1;
            }
            (AggExpr::Count, AggState::SumCount { sum, count }) => {
                *sum += 1;
                *count += 1;
            }
            (AggExpr::Avg { col }, AggState::SumCount { sum, count }) => {
                *sum += get(col, row);
                *count += 1;
            }
            (AggExpr::RatioOfSums { sum_col, count_col }, AggState::SumCount { sum, count }) => {
                *sum += get(sum_col, row);
                *count += get(count_col, row);
            }
            (AggExpr::Min { col }, AggState::MinMax { value, seen }) => {
                let v = get(col, row);
                if !*seen || v < *value {
                    *value = v;
                    *seen = true;
                }
            }
            (AggExpr::Max { col }, AggState::MinMax { value, seen }) => {
                let v = get(col, row);
                if !*seen || v > *value {
                    *value = v;
                    *seen = true;
                }
            }
            _ => unreachable!("accumulator state mismatch"),
        }
    }

    /// Final output value of `state`.
    pub(crate) fn finish(self, state: &AggState) -> i64 {
        match (self, state) {
            (AggExpr::Sum { .. }, AggState::SumCount { sum, .. }) => *sum,
            (AggExpr::Count, AggState::SumCount { sum, .. }) => *sum,
            (
                AggExpr::Avg { .. } | AggExpr::RatioOfSums { .. },
                AggState::SumCount { sum, count },
            ) => {
                if *count == 0 {
                    0
                } else {
                    sum.div_euclid(*count)
                }
            }
            (AggExpr::Min { .. } | AggExpr::Max { .. }, AggState::MinMax { value, .. }) => *value,
            _ => unreachable!("accumulator state mismatch"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_constructors_name_outputs() {
        assert_eq!(AggSpec::sum("profit").alias, "sum_profit");
        assert_eq!(AggSpec::count().alias, "count_rows");
        assert_eq!(AggSpec::min("profit").alias, "min_profit");
        assert_eq!(AggSpec::max("profit").alias, "max_profit");
        assert_eq!(AggSpec::avg("profit").alias, "avg_profit");
        assert_eq!(AggSpec::sum("x").with_alias("total").alias, "total");
    }

    #[test]
    fn distributivity_classification() {
        assert!(AggFunc::Sum.is_distributive());
        assert!(AggFunc::Min.is_distributive());
        assert!(AggFunc::Max.is_distributive());
        assert!(!AggFunc::Avg.is_distributive());
        assert!(!AggFunc::Count.is_distributive()); // re-aggregates as SUM, not COUNT
    }

    fn run(expr: AggExpr, data: &[Vec<i64>]) -> i64 {
        let mut state = expr.init();
        let get = |col: usize, row: usize| data[col][row];
        for row in 0..data[0].len() {
            expr.update(&mut state, &get, row);
        }
        expr.finish(&state)
    }

    #[test]
    fn accumulators_compute() {
        let col = vec![vec![5, -3, 10]];
        assert_eq!(run(AggExpr::Sum { col: 0 }, &col), 12);
        assert_eq!(run(AggExpr::Count, &col), 3);
        assert_eq!(run(AggExpr::Min { col: 0 }, &col), -3);
        assert_eq!(run(AggExpr::Max { col: 0 }, &col), 10);
        assert_eq!(run(AggExpr::Avg { col: 0 }, &col), 4);
    }

    #[test]
    fn ratio_of_sums_weights_correctly() {
        // Two partial groups: (sum=10,count=2) and (sum=50,count=3).
        let data = vec![vec![10, 50], vec![2, 3]];
        assert_eq!(
            run(
                AggExpr::RatioOfSums {
                    sum_col: 0,
                    count_col: 1
                },
                &data
            ),
            12 // floor(60 / 5)
        );
    }

    #[test]
    fn avg_floors_toward_negative_infinity() {
        let col = vec![vec![-3, -4]];
        // floor(-7/2) = -4 (div_euclid), matching SQL's floor semantics
        // for our integer-cents convention.
        assert_eq!(run(AggExpr::Avg { col: 0 }, &col), -4);
    }

    #[test]
    fn empty_input_yields_zero() {
        let col: Vec<Vec<i64>> = vec![vec![]];
        assert_eq!(run(AggExpr::Sum { col: 0 }, &col), 0);
        assert_eq!(run(AggExpr::Avg { col: 0 }, &col), 0);
    }
}
