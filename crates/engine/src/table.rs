//! In-memory tables.

use mv_units::Gb;

use crate::{Column, DataType, EngineError, Schema, Value};

/// A schema plus equally-long columns.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
}

impl Table {
    /// An empty table with the given schema.
    pub fn empty(schema: Schema) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::empty(f.dtype))
            .collect();
        Table {
            schema,
            columns,
            rows: 0,
        }
    }

    /// Builds a table from pre-filled columns, validating lengths.
    pub fn new(schema: Schema, columns: Vec<Column>) -> Result<Self, EngineError> {
        let rows = columns.first().map(Column::len).unwrap_or(0);
        if columns.len() != schema.len() {
            return Err(EngineError::LengthMismatch {
                expected: schema.len(),
                actual: columns.len(),
            });
        }
        for (field, col) in schema.fields().iter().zip(&columns) {
            if field.dtype != col.dtype() {
                return Err(EngineError::TypeMismatch {
                    column: field.name.clone(),
                    expected: field.dtype.name(),
                    actual: col.dtype().name(),
                });
            }
            if col.len() != rows {
                return Err(EngineError::LengthMismatch {
                    expected: rows,
                    actual: col.len(),
                });
            }
        }
        Ok(Table {
            schema,
            columns,
            rows,
        })
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// `true` when the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Column by position.
    pub fn column(&self, index: usize) -> &Column {
        &self.columns[index]
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> Result<&Column, EngineError> {
        Ok(&self.columns[self.schema.index_of(name)?])
    }

    /// All columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Mutable column access for in-place merge during incremental view
    /// maintenance. Crate-internal: external mutation could break the
    /// equal-length invariant.
    pub(crate) fn column_mut(&mut self, index: usize) -> &mut Column {
        &mut self.columns[index]
    }

    /// Appends one row of boundary values (test/builder convenience; bulk
    /// loads go through [`crate::datagen`] or the executor's builders).
    pub fn push_row(&mut self, row: &[Value]) -> Result<(), EngineError> {
        if row.len() != self.columns.len() {
            return Err(EngineError::LengthMismatch {
                expected: self.columns.len(),
                actual: row.len(),
            });
        }
        for (col, value) in self.columns.iter_mut().zip(row) {
            col.push_value(value)?;
        }
        self.rows += 1;
        Ok(())
    }

    /// Appends all rows of `other`, which must have an identical schema.
    pub fn append(&mut self, other: &Table) -> Result<(), EngineError> {
        if self.schema != other.schema {
            return Err(EngineError::SchemaMismatch);
        }
        for row in 0..other.rows {
            let values: Vec<Value> = other.columns.iter().map(|c| c.value_at(row)).collect();
            self.push_row(&values)?;
        }
        Ok(())
    }

    /// Extracts row `row` as boundary values.
    pub fn row(&self, row: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value_at(row)).collect()
    }

    /// All rows as boundary values — test helper for order-insensitive
    /// result comparison.
    pub fn to_rows(&self) -> Vec<Vec<Value>> {
        (0..self.rows).map(|r| self.row(r)).collect()
    }

    /// All rows, sorted — canonical form for comparing query results that
    /// are only defined up to row order.
    pub fn to_sorted_rows(&self) -> Vec<Vec<Value>> {
        let mut rows = self.to_rows();
        rows.sort();
        rows
    }

    /// Approximate heap footprint.
    pub fn heap_bytes(&self) -> u64 {
        self.columns.iter().map(Column::heap_bytes).sum()
    }

    /// Heap footprint as [`Gb`] (the engine-side size; experiments scale it
    /// to "cloud GB" through [`crate::SimScale`]).
    pub fn size(&self) -> Gb {
        Gb::from_bytes(self.heap_bytes())
    }

    /// Renders the first `limit` rows as an aligned text table (used by the
    /// dataset-excerpt experiment and examples).
    pub fn render(&self, limit: usize) -> String {
        let headers: Vec<String> = self
            .schema
            .fields()
            .iter()
            .map(|f| f.name.clone())
            .collect();
        let mut rows: Vec<Vec<String>> = Vec::new();
        for r in 0..self.rows.min(limit) {
            rows.push(self.row(r).iter().map(Value::to_string).collect());
        }
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        for row in &rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {cell:<w$} |"));
            }
            line
        };
        out.push_str(&fmt_row(&headers, &widths));
        out.push('\n');
        out.push_str(&format!(
            "|{}|",
            widths
                .iter()
                .map(|w| "-".repeat(w + 2))
                .collect::<Vec<_>>()
                .join("|")
        ));
        for row in &rows {
            out.push('\n');
            out.push_str(&fmt_row(row, &widths));
        }
        if self.rows > limit {
            out.push_str(&format!("\n({} more rows)", self.rows - limit));
        }
        out
    }
}

/// Fluent builder for small tables in tests and examples.
#[derive(Debug)]
pub struct TableBuilder {
    table: Table,
}

impl TableBuilder {
    /// Starts a builder from `(name, type)` pairs.
    pub fn new(fields: &[(&str, DataType)]) -> Result<Self, EngineError> {
        let schema = Schema::new(
            fields
                .iter()
                .map(|(n, t)| crate::Field::new(*n, *t))
                .collect(),
        )?;
        Ok(TableBuilder {
            table: Table::empty(schema),
        })
    }

    /// Appends a row.
    pub fn row(mut self, values: &[Value]) -> Result<Self, EngineError> {
        self.table.push_row(values)?;
        Ok(self)
    }

    /// Finishes the table.
    pub fn build(self) -> Table {
        self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Field;

    fn small() -> Table {
        TableBuilder::new(&[
            ("year", DataType::Int),
            ("country", DataType::Str),
            ("profit", DataType::Int),
        ])
        .unwrap()
        .row(&[2000.into(), "France".into(), 35_000.into()])
        .unwrap()
        .row(&[2000.into(), "Italy".into(), 23_000.into()])
        .unwrap()
        .build()
    }

    #[test]
    fn build_and_access() {
        let t = small();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.row(1), vec![2000.into(), "Italy".into(), 23_000.into()]);
        assert_eq!(
            t.column_by_name("country").unwrap().value_at(0),
            Value::from("France")
        );
    }

    #[test]
    fn new_validates_shape() {
        let schema = Schema::new(vec![Field::new("a", DataType::Int)]).unwrap();
        let bad_type = Table::new(schema.clone(), vec![Column::empty(DataType::Str)]);
        assert!(matches!(bad_type, Err(EngineError::TypeMismatch { .. })));

        let schema2 = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Int),
        ])
        .unwrap();
        let mut c1 = Column::empty(DataType::Int);
        c1.push_int(1);
        let bad_len = Table::new(schema2, vec![c1, Column::empty(DataType::Int)]);
        assert!(matches!(bad_len, Err(EngineError::LengthMismatch { .. })));
    }

    #[test]
    fn append_requires_same_schema() {
        let mut a = small();
        let b = small();
        a.append(&b).unwrap();
        assert_eq!(a.num_rows(), 4);

        let other = TableBuilder::new(&[("x", DataType::Int)]).unwrap().build();
        assert_eq!(a.append(&other), Err(EngineError::SchemaMismatch));
    }

    #[test]
    fn sorted_rows_canonicalize() {
        let t = small();
        let mut reversed = Table::empty(t.schema().clone());
        reversed.push_row(&t.row(1)).unwrap();
        reversed.push_row(&t.row(0)).unwrap();
        assert_eq!(t.to_sorted_rows(), reversed.to_sorted_rows());
    }

    #[test]
    fn render_produces_aligned_table() {
        let text = small().render(10);
        assert!(text.contains("| year | country | profit |"));
        assert!(text.contains("France"));
    }

    #[test]
    fn render_truncates() {
        let text = small().render(1);
        assert!(text.contains("(1 more rows)"));
    }

    #[test]
    fn size_accounting() {
        let t = small();
        assert!(t.heap_bytes() > 0);
        assert!(t.size().value() > 0.0);
    }
}
