//! Replay/meter driver: execute a query stream against a live set of
//! materialized views and report every byte of work performed.
//!
//! The advisor predicts bills from cost-model parameters; this module is
//! the other side of the calibration loop — it *runs* the plan. A
//! [`ReplayDriver`] owns a base table and a [`ViewCatalog`]; per epoch it
//! applies the plan's transitions (materialize added views, drop removed
//! ones), routes each workload query through the catalog's best-view
//! planner, and incrementally refreshes the standing views with an insert
//! batch. Every step is metered ([`ExecStats`]), so a calibrator can
//! convert the recorded work into simulated cluster-hours with any
//! [`crate::ThroughputModel`] and reconcile the metered bill against the
//! predicted one (`mvcloud::calibrate`).
//!
//! The base table stays fixed across epochs, mirroring the paper's §6
//! evaluation (the dataset is static within the billing period; the delta
//! batch exists to meter view maintenance).

use crate::{AggQuery, EngineError, ExecStats, MaterializedView, Table, ViewCatalog};

/// One query execution of a replayed epoch: what ran, how much work it
/// cost, and which view (if any) answered it.
#[derive(Debug, Clone)]
pub struct QueryExecution {
    /// The query's name.
    pub name: String,
    /// Metered work of this execution.
    pub stats: ExecStats,
    /// Name of the view that answered, `None` for a base-table scan.
    pub via_view: Option<String>,
}

/// The metered record of one replayed epoch.
#[derive(Debug, Clone, Default)]
pub struct EpochReplay {
    /// Per-query executions, in workload order.
    pub queries: Vec<QueryExecution>,
    /// Build work of the views materialized this epoch, `(name, stats)`.
    pub builds: Vec<(String, ExecStats)>,
    /// Incremental-refresh work of every standing view, `(name, stats)`.
    pub refreshes: Vec<(String, ExecStats)>,
}

impl EpochReplay {
    /// How many queries were answered from a materialized view.
    pub fn queries_via_views(&self) -> usize {
        self.queries.iter().filter(|q| q.via_view.is_some()).count()
    }

    /// Total work across queries, builds and refreshes.
    pub fn total_stats(&self) -> ExecStats {
        let mut total = ExecStats::default();
        for q in &self.queries {
            total.merge(&q.stats);
        }
        for (_, s) in self.builds.iter().chain(&self.refreshes) {
            total.merge(s);
        }
        total
    }
}

/// Executes epochs of a view-selection plan against the engine, metering
/// all scan/build/refresh work.
#[derive(Debug)]
pub struct ReplayDriver<'a> {
    base: &'a Table,
    catalog: ViewCatalog,
    threads: usize,
}

impl<'a> ReplayDriver<'a> {
    /// A driver over `base` with an empty catalog.
    pub fn new(base: &'a Table) -> ReplayDriver<'a> {
        ReplayDriver {
            base,
            catalog: ViewCatalog::new(),
            threads: 1,
        }
    }

    /// Sets the engine thread count used for view materialization.
    pub fn with_threads(mut self, threads: usize) -> ReplayDriver<'a> {
        self.threads = threads.max(1);
        self
    }

    /// The live catalog (the standing selection).
    pub fn catalog(&self) -> &ViewCatalog {
        &self.catalog
    }

    /// Materializes `view` from the base table and registers it,
    /// returning the metered build work.
    pub fn install(&mut self, def: crate::ViewDefinition) -> Result<ExecStats, EngineError> {
        let view = MaterializedView::materialize_with_threads(def, self.base, self.threads)?;
        let build = *view.build_stats();
        self.catalog.register(view)?;
        mv_obs::inc(mv_obs::Counter::EngineViewBuilds);
        mv_obs::add(mv_obs::Counter::EngineBuildBytes, build.bytes_scanned);
        Ok(build)
    }

    /// Drops a standing view (its build cost is forfeited).
    pub fn drop_view(&mut self, name: &str) -> Result<(), EngineError> {
        self.catalog.deregister(name).map(|_| ())
    }

    /// Executes one query through the catalog (best-view routing, base
    /// fallback).
    pub fn run_query(&self, query: &AggQuery) -> Result<QueryExecution, EngineError> {
        let (_, stats, via_view) = self.catalog.execute(query, self.base)?;
        mv_obs::inc(mv_obs::Counter::EngineQueries);
        if via_view.is_some() {
            mv_obs::inc(mv_obs::Counter::EngineQueriesViaViews);
        }
        mv_obs::add(mv_obs::Counter::EngineScanBytes, stats.bytes_scanned);
        Ok(QueryExecution {
            name: query.name.clone(),
            stats,
            via_view,
        })
    }

    /// Replays one epoch: apply the plan's transitions (`added` view
    /// definitions are materialized, `dropped` names deregistered), run
    /// the query stream through the standing views, then incrementally
    /// refresh every standing view with `delta` (when one is supplied).
    pub fn replay_epoch(
        &mut self,
        added: Vec<crate::ViewDefinition>,
        dropped: &[String],
        queries: &[AggQuery],
        delta: Option<&Table>,
    ) -> Result<EpochReplay, EngineError> {
        mv_obs::span!("engine/replay_epoch");
        let mut epoch = EpochReplay::default();
        for name in dropped {
            self.drop_view(name)?;
        }
        for def in added {
            let name = def.name.clone();
            let build = self.install(def)?;
            epoch.builds.push((name, build));
        }
        for q in queries {
            epoch.queries.push(self.run_query(q)?);
        }
        if let Some(d) = delta {
            if d.num_rows() > 0 {
                epoch.refreshes = self.catalog.refresh_incremental_all(d)?;
                mv_obs::add(
                    mv_obs::Counter::EngineViewRefreshes,
                    epoch.refreshes.len() as u64,
                );
                if mv_obs::enabled() {
                    let bytes: u64 = epoch.refreshes.iter().map(|(_, s)| s.bytes_scanned).sum();
                    mv_obs::add(mv_obs::Counter::EngineRefreshBytes, bytes);
                }
            }
        }
        Ok(epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{datagen, AggSpec, SalesConfig, ViewDefinition};

    fn v1() -> ViewDefinition {
        ViewDefinition::canonical("V1", &["year", "country"], &[AggSpec::sum("profit")])
    }

    #[test]
    fn replay_routes_meters_and_refreshes() {
        let base = datagen::generate_sales(&SalesConfig::with_rows(500));
        let delta = datagen::generate_delta(&SalesConfig::default(), 25, 2011, 1);
        let q = AggQuery::new("Q1", &["year", "country"], vec![AggSpec::sum("profit")]);

        let mut driver = ReplayDriver::new(&base);
        // Epoch 0: no views — the query scans the base table.
        let e0 = driver
            .replay_epoch(vec![], &[], std::slice::from_ref(&q), None)
            .unwrap();
        assert_eq!(e0.queries.len(), 1);
        assert_eq!(e0.queries_via_views(), 0);
        let base_bytes = e0.queries[0].stats.bytes_scanned;
        assert!(base_bytes > 0);

        // Epoch 1: V1 arrives — the same query routes through it and
        // scans strictly fewer bytes; the refresh batch is metered.
        let e1 = driver
            .replay_epoch(vec![v1()], &[], std::slice::from_ref(&q), Some(&delta))
            .unwrap();
        assert_eq!(e1.builds.len(), 1);
        assert_eq!(e1.queries_via_views(), 1);
        assert_eq!(e1.queries[0].via_view.as_deref(), Some("V1"));
        assert!(e1.queries[0].stats.bytes_scanned < base_bytes);
        assert_eq!(e1.refreshes.len(), 1);
        assert!(e1.refreshes[0].1.rows_scanned > 0);
        assert!(e1.total_stats().bytes_scanned > 0);

        // Epoch 2: V1 is dropped — back to base scans, nothing refreshed.
        let e2 = driver
            .replay_epoch(vec![], &["V1".to_string()], &[q], Some(&delta))
            .unwrap();
        assert_eq!(e2.queries_via_views(), 0);
        assert_eq!(e2.queries[0].stats.bytes_scanned, base_bytes);
        assert!(e2.refreshes.is_empty());
        assert_eq!(driver.catalog().len(), 0);
    }

    #[test]
    fn dropping_a_missing_view_is_an_error() {
        let base = datagen::generate_sales(&SalesConfig::with_rows(50));
        let mut driver = ReplayDriver::new(&base);
        assert!(matches!(
            driver.drop_view("ghost"),
            Err(EngineError::ViewNotFound { .. })
        ));
    }
}
