//! Synthetic dataset generators.
//!
//! [`generate_sales`] reproduces the paper's running-example dataset
//! (Section 2.1, Table 1): an international supply chain's sales with a
//! time hierarchy (day < month < year) and an administrative-geography
//! hierarchy (department < region < country), 2000–2010. The paper's real
//! dataset is 500 GB (10 GB in its experiments); generation is seeded and
//! row-count-parameterised, and experiments declare a
//! [`crate::SimScale`] mapping the in-memory size to the simulated size.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{DataType, Field, Schema, Table, TableBuilder, Value};

/// One country with its regions and departments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Country {
    /// Country name.
    pub name: &'static str,
    /// `(region, departments)` pairs.
    pub regions: &'static [(&'static str, &'static [&'static str])],
}

/// The administrative-geography catalog used by the generator: six
/// countries, 2–3 regions each, 2–4 departments per region — the same
/// shape as the paper's France ⊃ Auvergne ⊃ Puy-de-Dôme example.
pub fn geography() -> Vec<Country> {
    vec![
        Country {
            name: "France",
            regions: &[
                (
                    "Auvergne",
                    &["Puy-de-Dome", "Allier", "Cantal", "Haute-Loire"],
                ),
                ("Ile-de-France", &["Paris", "Yvelines", "Essonne"]),
                ("Bretagne", &["Finistere", "Morbihan"]),
            ],
        },
        Country {
            name: "Italy",
            regions: &[
                ("Campania", &["Naples", "Salerno", "Caserta"]),
                ("Lombardia", &["Milan", "Bergamo"]),
            ],
        },
        Country {
            name: "Spain",
            regions: &[
                ("Andalucia", &["Sevilla", "Granada", "Cordoba"]),
                ("Catalunya", &["Barcelona", "Girona"]),
            ],
        },
        Country {
            name: "Germany",
            regions: &[
                ("Bayern", &["Munich", "Nurnberg"]),
                ("Hessen", &["Frankfurt", "Kassel"]),
                ("Sachsen", &["Dresden", "Leipzig"]),
            ],
        },
        Country {
            name: "Portugal",
            regions: &[
                ("Norte", &["Porto", "Braga"]),
                ("Alentejo", &["Evora", "Beja"]),
            ],
        },
        Country {
            name: "Belgium",
            regions: &[
                ("Wallonie", &["Liege", "Namur"]),
                ("Vlaanderen", &["Antwerpen", "Gent"]),
            ],
        },
    ]
}

/// Days in `month` of `year` (Gregorian).
pub fn days_in_month(year: i64, month: i64) -> i64 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if (year % 4 == 0 && year % 100 != 0) || year % 400 == 0 {
                29
            } else {
                28
            }
        }
        _ => panic!("invalid month {month}"),
    }
}

/// Generator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SalesConfig {
    /// Number of fact rows to generate.
    pub rows: usize,
    /// First sale year (inclusive). The paper's dataset starts in 2000.
    pub start_year: i64,
    /// Last sale year (inclusive). The paper's dataset ends in 2010.
    pub end_year: i64,
    /// RNG seed; equal configs generate identical tables.
    pub seed: u64,
    /// Geometric skew across countries: 0 = uniform; larger values
    /// concentrate sales in the first countries (realistic workloads are
    /// skewed, which matters for view sizes).
    pub skew: f64,
}

impl Default for SalesConfig {
    fn default() -> Self {
        SalesConfig {
            rows: 10_000,
            start_year: 2000,
            end_year: 2010,
            seed: 42,
            skew: 0.3,
        }
    }
}

impl SalesConfig {
    /// Convenience: `rows` rows with the default shape.
    pub fn with_rows(rows: usize) -> Self {
        SalesConfig {
            rows,
            ..SalesConfig::default()
        }
    }
}

/// The sales fact-table schema (Table 1 of the paper, denormalized):
/// `year, month, day, country, region, department, profit`.
///
/// `month` is the month-of-year (1–12) and `day` the day-of-month, exactly
/// as Table 1 prints them; hierarchy levels are expressed as column
/// *prefixes*: the month level is `(year, month)`, the day level
/// `(year, month, day)`, and likewise `(country, region, department)`.
pub fn sales_schema() -> Schema {
    Schema::new(vec![
        Field::new("year", DataType::Int),
        Field::new("month", DataType::Int),
        Field::new("day", DataType::Int),
        Field::new("country", DataType::Str),
        Field::new("region", DataType::Str),
        Field::new("department", DataType::Str),
        Field::new("profit", DataType::Int),
    ])
    .expect("sales schema is valid")
}

/// Generates the sales fact table.
pub fn generate_sales(cfg: &SalesConfig) -> Table {
    assert!(
        cfg.end_year >= cfg.start_year,
        "end_year must be >= start_year"
    );
    let geo = geography();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut table = Table::empty(sales_schema());

    // Pre-compute geometric country weights.
    let weights: Vec<f64> = (0..geo.len())
        .map(|i| (-(cfg.skew) * i as f64).exp())
        .collect();
    let total_weight: f64 = weights.iter().sum();

    for _ in 0..cfg.rows {
        let year = rng.random_range(cfg.start_year..=cfg.end_year);
        let month = rng.random_range(1..=12i64);
        let day = rng.random_range(1..=days_in_month(year, month));

        let mut pick = rng.random_range(0.0..total_weight);
        let mut ci = 0;
        for (i, w) in weights.iter().enumerate() {
            if pick < *w {
                ci = i;
                break;
            }
            pick -= w;
        }
        let country = &geo[ci];
        let (region, departments) = country.regions[rng.random_range(0..country.regions.len())];
        let department = departments[rng.random_range(0..departments.len())];
        let profit = rng.random_range(1_000..=60_000i64);

        table
            .push_row(&[
                Value::Int(year),
                Value::Int(month),
                Value::Int(day),
                Value::from(country.name),
                Value::from(region),
                Value::from(department),
                Value::Int(profit),
            ])
            .expect("generated row matches schema");
    }
    table
}

/// Generates an insert *delta* batch: `rows` new sales landing in
/// `(year, month)` — the paper's nightly-maintenance scenario where new
/// data arrives continuously.
pub fn generate_delta(cfg: &SalesConfig, rows: usize, year: i64, month: i64) -> Table {
    let geo = geography();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5eed_de17a);
    let mut table = Table::empty(sales_schema());
    for _ in 0..rows {
        let day = rng.random_range(1..=days_in_month(year, month));
        let country = &geo[rng.random_range(0..geo.len())];
        let (region, departments) = country.regions[rng.random_range(0..country.regions.len())];
        let department = departments[rng.random_range(0..departments.len())];
        let profit = rng.random_range(1_000..=60_000i64);
        table
            .push_row(&[
                Value::Int(year),
                Value::Int(month),
                Value::Int(day),
                Value::from(country.name),
                Value::from(region),
                Value::from(department),
                Value::Int(profit),
            ])
            .expect("generated row matches schema");
    }
    table
}

/// The exact four rows of the paper's Table 1 (profits are printed there in
/// European thousands notation: `$35.000` = 35 000).
pub fn paper_excerpt() -> Table {
    TableBuilder::new(&[
        ("year", DataType::Int),
        ("month", DataType::Int),
        ("day", DataType::Int),
        ("country", DataType::Str),
        ("region", DataType::Str),
        ("department", DataType::Str),
        ("profit", DataType::Int),
    ])
    .expect("excerpt schema is valid")
    .row(&[
        2000.into(),
        12.into(),
        31.into(),
        "France".into(),
        "Auvergne".into(),
        "Puy-de-Dome".into(),
        35_000.into(),
    ])
    .expect("row matches schema")
    .row(&[
        2000.into(),
        1.into(),
        1.into(),
        "France".into(),
        "Auvergne".into(),
        "Puy-de-Dome".into(),
        40_000.into(),
    ])
    .expect("row matches schema")
    .row(&[
        2000.into(),
        12.into(),
        31.into(),
        "Italy".into(),
        "Campania".into(),
        "Naples".into(),
        23_000.into(),
    ])
    .expect("row matches schema")
    .row(&[
        1999.into(),
        1.into(),
        1.into(),
        "Italy".into(),
        "Campania".into(),
        "Naples".into(),
        50_000.into(),
    ])
    .expect("row matches schema")
    .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let cfg = SalesConfig::with_rows(500);
        let a = generate_sales(&cfg);
        let b = generate_sales(&cfg);
        assert_eq!(a.to_rows(), b.to_rows());
        let c = generate_sales(&SalesConfig { seed: 43, ..cfg });
        assert_ne!(a.to_rows(), c.to_rows());
    }

    #[test]
    fn values_in_domain() {
        let cfg = SalesConfig::with_rows(2_000);
        let t = generate_sales(&cfg);
        assert_eq!(t.num_rows(), 2_000);
        let years = t.column_by_name("year").unwrap().as_int().unwrap();
        assert!(years.iter().all(|y| (2000..=2010).contains(y)));
        let months = t.column_by_name("month").unwrap().as_int().unwrap();
        assert!(months.iter().all(|m| (1..=12).contains(m)));
        let days = t.column_by_name("day").unwrap().as_int().unwrap();
        assert!(days.iter().all(|d| (1..=31).contains(d)));
        let profits = t.column_by_name("profit").unwrap().as_int().unwrap();
        assert!(profits.iter().all(|p| (1_000..=60_000).contains(p)));
    }

    #[test]
    fn geography_is_consistent() {
        let t = generate_sales(&SalesConfig::with_rows(3_000));
        let geo = geography();
        for row in 0..t.num_rows().min(300) {
            let r = t.row(row);
            let country = r[3].as_str().unwrap().to_string();
            let region = r[4].as_str().unwrap().to_string();
            let dept = r[5].as_str().unwrap().to_string();
            let c = geo
                .iter()
                .find(|c| c.name == country)
                .expect("known country");
            let (_, depts) = c
                .regions
                .iter()
                .find(|(r2, _)| *r2 == region)
                .expect("region belongs to country");
            assert!(depts.contains(&dept.as_str()), "{dept} in {region}");
        }
    }

    #[test]
    fn skew_concentrates_first_country() {
        let skewed = generate_sales(&SalesConfig {
            rows: 5_000,
            skew: 1.5,
            ..SalesConfig::default()
        });
        let (codes, dict) = skewed.column_by_name("country").unwrap().as_str().unwrap();
        let france = dict.lookup("France").unwrap();
        let france_share =
            codes.iter().filter(|&&c| c == france).count() as f64 / codes.len() as f64;
        assert!(france_share > 0.5, "share was {france_share}");
    }

    #[test]
    fn leap_years() {
        assert_eq!(days_in_month(2000, 2), 29); // divisible by 400
        assert_eq!(days_in_month(1900, 2), 28); // divisible by 100 only
        assert_eq!(days_in_month(2004, 2), 29);
        assert_eq!(days_in_month(2001, 2), 28);
        assert_eq!(days_in_month(2001, 12), 31);
        assert_eq!(days_in_month(2001, 4), 30);
    }

    #[test]
    fn excerpt_matches_table1() {
        let t = paper_excerpt();
        assert_eq!(t.num_rows(), 4);
        assert_eq!(
            t.row(0),
            vec![
                Value::Int(2000),
                Value::Int(12),
                Value::Int(31),
                "France".into(),
                "Auvergne".into(),
                "Puy-de-Dome".into(),
                Value::Int(35_000)
            ]
        );
        assert_eq!(t.row(3)[6], Value::Int(50_000));
    }

    #[test]
    fn delta_lands_in_requested_month() {
        let cfg = SalesConfig::default();
        let d = generate_delta(&cfg, 100, 2011, 1);
        assert_eq!(d.num_rows(), 100);
        let years = d.column_by_name("year").unwrap().as_int().unwrap();
        assert!(years.iter().all(|&y| y == 2011));
        let months = d.column_by_name("month").unwrap().as_int().unwrap();
        assert!(months.iter().all(|&m| m == 1));
    }
}
