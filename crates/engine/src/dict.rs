//! String dictionary encoding.
//!
//! String columns store a `u32` code per row plus one [`Dictionary`] mapping
//! codes to distinct strings. Group-by keys then compare as integers, which
//! is what makes the hash aggregation cheap.

use std::collections::HashMap;

/// An append-only mapping between distinct strings and dense `u32` codes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dictionary {
    values: Vec<String>,
    index: HashMap<String, u32>,
}

impl Dictionary {
    /// An empty dictionary.
    pub fn new() -> Self {
        Dictionary::default()
    }

    /// Interns `s`, returning its code (allocating one if unseen).
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&code) = self.index.get(s) {
            return code;
        }
        let code = u32::try_from(self.values.len()).expect("dictionary overflow");
        self.values.push(s.to_string());
        self.index.insert(s.to_string(), code);
        code
    }

    /// The code of `s`, if already interned.
    pub fn lookup(&self, s: &str) -> Option<u32> {
        self.index.get(s).copied()
    }

    /// The string for `code`.
    ///
    /// # Panics
    /// Panics if the code was not produced by this dictionary.
    pub fn decode(&self, code: u32) -> &str {
        &self.values[code as usize]
    }

    /// Number of distinct strings.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when no string has been interned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Approximate heap footprint in bytes (strings + index).
    pub fn heap_bytes(&self) -> u64 {
        self.values.iter().map(|s| s.len() as u64 + 24).sum::<u64>() * 2 // stored once in `values`, once in `index`
    }

    /// Iterates `(code, string)` pairs in code order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern("France");
        let b = d.intern("Italy");
        assert_ne!(a, b);
        assert_eq!(d.intern("France"), a);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn decode_roundtrip() {
        let mut d = Dictionary::new();
        let code = d.intern("Auvergne");
        assert_eq!(d.decode(code), "Auvergne");
        assert_eq!(d.lookup("Auvergne"), Some(code));
        assert_eq!(d.lookup("Campania"), None);
    }

    #[test]
    fn codes_are_dense_and_ordered() {
        let mut d = Dictionary::new();
        for (i, s) in ["a", "b", "c"].iter().enumerate() {
            assert_eq!(d.intern(s), i as u32);
        }
        let pairs: Vec<(u32, &str)> = d.iter().collect();
        assert_eq!(pairs, vec![(0, "a"), (1, "b"), (2, "c")]);
    }

    #[test]
    fn empty_dictionary() {
        let d = Dictionary::new();
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert_eq!(d.heap_bytes(), 0);
    }
}
