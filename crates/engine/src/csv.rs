//! CSV import/export for tables.
//!
//! Minimal but correct: RFC-4180-style quoting on export, quoted fields,
//! embedded commas/quotes/newlines on import. Exists so the CLI and
//! downstream users can load their own fact tables instead of the
//! generators'.

use crate::{DataType, EngineError, Schema, Table, Value};

/// Serializes a table as CSV with a header row.
pub fn table_to_csv(table: &Table) -> String {
    let escape = |s: &str| -> String {
        if s.contains(',') || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    };
    let mut out = table
        .schema()
        .fields()
        .iter()
        .map(|f| escape(&f.name))
        .collect::<Vec<_>>()
        .join(",");
    for r in 0..table.num_rows() {
        out.push('\n');
        out.push_str(
            &table
                .row(r)
                .iter()
                .map(|v| escape(&v.to_string()))
                .collect::<Vec<_>>()
                .join(","),
        );
    }
    out
}

/// Splits one CSV record honouring quotes; returns the fields and the
/// byte offset just past the record's trailing newline.
fn split_record(input: &str) -> Option<(Vec<String>, usize)> {
    if input.is_empty() {
        return None;
    }
    let bytes = input.as_bytes();
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut i = 0;
    let mut in_quotes = false;
    loop {
        if i >= bytes.len() {
            fields.push(std::mem::take(&mut field));
            return Some((fields, i));
        }
        let b = bytes[i];
        if in_quotes {
            match b {
                b'"' if bytes.get(i + 1) == Some(&b'"') => {
                    field.push('"');
                    i += 2;
                }
                b'"' => {
                    in_quotes = false;
                    i += 1;
                }
                _ => {
                    field.push(b as char);
                    i += 1;
                }
            }
        } else {
            match b {
                b'"' => {
                    in_quotes = true;
                    i += 1;
                }
                b',' => {
                    fields.push(std::mem::take(&mut field));
                    i += 1;
                }
                b'\r' if bytes.get(i + 1) == Some(&b'\n') => {
                    fields.push(std::mem::take(&mut field));
                    return Some((fields, i + 2));
                }
                b'\n' => {
                    fields.push(std::mem::take(&mut field));
                    return Some((fields, i + 1));
                }
                _ => {
                    field.push(b as char);
                    i += 1;
                }
            }
        }
    }
}

/// Parses CSV (with a header row) into a table under `schema`. Header
/// names must match the schema's column order; integer columns must parse.
pub fn table_from_csv(csv: &str, schema: &Schema) -> Result<Table, EngineError> {
    let mut rest = csv;
    let (header, consumed) = split_record(rest).ok_or(EngineError::SchemaMismatch)?;
    rest = &rest[consumed..];
    if header.len() != schema.len()
        || header
            .iter()
            .zip(schema.fields())
            .any(|(h, f)| h != &f.name)
    {
        return Err(EngineError::SchemaMismatch);
    }
    let mut table = Table::empty(schema.clone());
    while let Some((fields, consumed)) = split_record(rest) {
        rest = &rest[consumed..];
        if fields.len() == 1 && fields[0].is_empty() {
            continue; // blank line
        }
        if fields.len() != schema.len() {
            return Err(EngineError::LengthMismatch {
                expected: schema.len(),
                actual: fields.len(),
            });
        }
        let mut row = Vec::with_capacity(fields.len());
        for (field, f) in fields.into_iter().zip(schema.fields()) {
            let value = match f.dtype {
                DataType::Int => Value::Int(field.trim().parse::<i64>().map_err(|_| {
                    EngineError::TypeMismatch {
                        column: f.name.clone(),
                        expected: "int",
                        actual: "str",
                    }
                })?),
                DataType::Str => Value::Str(field),
            };
            row.push(value);
        }
        table.push_row(&row)?;
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{datagen, Field, SalesConfig, TableBuilder};

    #[test]
    fn roundtrip_generated_sales() {
        let t = datagen::generate_sales(&SalesConfig::with_rows(200));
        let csv = table_to_csv(&t);
        let back = table_from_csv(&csv, t.schema()).unwrap();
        assert_eq!(t.to_rows(), back.to_rows());
    }

    #[test]
    fn quoting_roundtrip() {
        let t = TableBuilder::new(&[("name", DataType::Str), ("v", DataType::Int)])
            .unwrap()
            .row(&["has,comma".into(), 1.into()])
            .unwrap()
            .row(&["has\"quote".into(), 2.into()])
            .unwrap()
            .row(&["has\nnewline".into(), 3.into()])
            .unwrap()
            .build();
        let csv = table_to_csv(&t);
        let back = table_from_csv(&csv, t.schema()).unwrap();
        assert_eq!(t.to_rows(), back.to_rows());
    }

    #[test]
    fn header_mismatch_rejected() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Str),
        ])
        .unwrap();
        assert_eq!(
            table_from_csv("a,c\n1,x", &schema),
            Err(EngineError::SchemaMismatch)
        );
    }

    #[test]
    fn bad_integer_reports_column() {
        let schema = Schema::new(vec![Field::new("a", DataType::Int)]).unwrap();
        let err = table_from_csv("a\nnope", &schema).unwrap_err();
        assert!(matches!(err, EngineError::TypeMismatch { ref column, .. } if column == "a"));
    }

    #[test]
    fn ragged_row_rejected() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Int),
        ])
        .unwrap();
        assert!(matches!(
            table_from_csv("a,b\n1", &schema),
            Err(EngineError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn crlf_and_blank_lines() {
        let schema = Schema::new(vec![Field::new("a", DataType::Int)]).unwrap();
        let t = table_from_csv("a\r\n1\r\n\r\n2\n", &schema).unwrap();
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn empty_table_roundtrip() {
        let t = TableBuilder::new(&[("x", DataType::Int)]).unwrap().build();
        let csv = table_to_csv(&t);
        assert_eq!(csv, "x");
        let back = table_from_csv(&csv, t.schema()).unwrap();
        assert_eq!(back.num_rows(), 0);
    }
}
