//! View maintenance: full recomputation vs incremental refresh.
//!
//! The paper charges a maintenance time `t_maintenance(V_k)` per view per
//! period but does not prescribe a method ("queries are posed during
//! day-time and maintenance is performed during night-time"). Both classic
//! strategies are implemented so the maintenance ablation (DESIGN.md §A3)
//! can quantify the difference the choice makes to the cost models:
//!
//! * **Full** — rerun the view's defining query over the whole base table;
//! * **Incremental** — aggregate only the day's insert delta and merge the
//!   partial states into the stored table (valid for insert-only deltas;
//!   `MIN`/`MAX` stay correct because inserts can only tighten them).

use serde::{Deserialize, Serialize};

use crate::fx::FxHashMap;
use crate::{AggFunc, Column, EngineError, ExecStats, MaterializedView, Table};

/// Maintenance strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RefreshStrategy {
    /// Recompute the view from the (already updated) base table.
    Full,
    /// Merge an aggregation of the insert delta into the stored table.
    Incremental,
}

impl MaterializedView {
    /// Fully recomputes this view from `base` (which must already contain
    /// any new rows). Returns the work performed.
    pub fn refresh_full(&mut self, base: &Table) -> Result<ExecStats, EngineError> {
        let rebuilt = MaterializedView::materialize(self.def().clone(), base)?;
        let stats = *rebuilt.build_stats();
        *self = rebuilt;
        Ok(stats)
    }

    /// Incrementally merges the insert-only `delta` (same schema as the
    /// base table) into the stored table. Returns the work performed —
    /// proportional to the delta, not the base, which is the whole point.
    pub fn refresh_incremental(&mut self, delta: &Table) -> Result<ExecStats, EngineError> {
        // Aggregate the delta at the view's granularity.
        let (partial, mut stats) = self.def().as_query().execute(delta)?;

        // The partial and the stored table share an identical schema
        // (both produced by the same defining query).
        if partial.schema() != self.data().schema() {
            return Err(EngineError::SchemaMismatch);
        }

        let n_keys = self.def().group_by.len();
        let measures = self.def().measures.clone();

        // Index existing groups by key.
        let mut index: FxHashMap<Box<[i64]>, usize> = FxHashMap::default();
        {
            let data = self.data();
            let mut key = vec![0i64; n_keys];
            for row in 0..data.num_rows() {
                for (i, k) in key.iter_mut().enumerate() {
                    *k = data.column(i).key_at(row);
                }
                index.insert(key.as_slice().into(), row);
            }
        }

        // Merge each partial row. String key columns must be re-interned
        // into the stored table's dictionaries, so keys are matched through
        // decoded values rather than raw codes.
        let data = self.data_mut();
        let mut appended = 0u64;
        for prow in 0..partial.num_rows() {
            // Build the key in the *stored* table's code space.
            let mut key = Vec::with_capacity(n_keys);
            let mut translatable = true;
            for i in 0..n_keys {
                match (partial.column(i), data.column(i)) {
                    (Column::Int(v), Column::Int(_)) => key.push(v[prow]),
                    (Column::Str { codes, dict }, Column::Str { dict: tdict, .. }) => {
                        match tdict.lookup(dict.decode(codes[prow])) {
                            Some(code) => key.push(code as i64),
                            None => {
                                translatable = false;
                                break;
                            }
                        }
                    }
                    _ => return Err(EngineError::SchemaMismatch),
                }
            }
            let existing = if translatable {
                index.get(key.as_slice()).copied()
            } else {
                None
            };
            match existing {
                Some(row) => {
                    // Merge measures in place.
                    for (m, spec) in measures.iter().enumerate() {
                        let col_idx = n_keys + m;
                        let delta_v = partial.column(col_idx).as_int()?[prow];
                        let values = data.column_mut(col_idx).int_values_mut();
                        let cur = values[row];
                        values[row] = match spec.func {
                            AggFunc::Sum | AggFunc::Count => cur + delta_v,
                            AggFunc::Min => cur.min(delta_v),
                            AggFunc::Max => cur.max(delta_v),
                            AggFunc::Avg => {
                                unreachable!("canonical views never store Avg")
                            }
                        };
                    }
                }
                None => {
                    // New group: append the partial row wholesale.
                    let values = partial.row(prow);
                    data.push_row(&values)?;
                    appended += 1;
                }
            }
        }
        stats.rows_out += appended;
        Ok(stats)
    }

    /// Dispatches on `strategy`: `base_after` is the base table *after*
    /// appending `delta`.
    pub fn refresh(
        &mut self,
        strategy: RefreshStrategy,
        base_after: &Table,
        delta: &Table,
    ) -> Result<ExecStats, EngineError> {
        match strategy {
            RefreshStrategy::Full => self.refresh_full(base_after),
            RefreshStrategy::Incremental => self.refresh_incremental(delta),
        }
    }

    fn data_mut(&mut self) -> &mut Table {
        // Private accessor: `self.data` is private to view.rs, so route
        // through a crate-internal helper defined there.
        self.data_mut_internal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AggQuery, AggSpec, DataType, TableBuilder, Value, ViewDefinition};

    fn base() -> Table {
        TableBuilder::new(&[
            ("year", DataType::Int),
            ("country", DataType::Str),
            ("profit", DataType::Int),
        ])
        .unwrap()
        .row(&[2000.into(), "France".into(), 35.into()])
        .unwrap()
        .row(&[2000.into(), "Italy".into(), 23.into()])
        .unwrap()
        .row(&[1999.into(), "Italy".into(), 50.into()])
        .unwrap()
        .build()
    }

    fn delta() -> Table {
        TableBuilder::new(&[
            ("year", DataType::Int),
            ("country", DataType::Str),
            ("profit", DataType::Int),
        ])
        .unwrap()
        // Existing group.
        .row(&[2000.into(), "France".into(), 5.into()])
        .unwrap()
        // New group with a new dictionary string.
        .row(&[2001.into(), "Spain".into(), 7.into()])
        .unwrap()
        .build()
    }

    fn view() -> MaterializedView {
        let def = ViewDefinition::canonical(
            "v",
            &["year", "country"],
            &[
                AggSpec::sum("profit"),
                AggSpec::min("profit"),
                AggSpec::max("profit"),
            ],
        );
        MaterializedView::materialize(def, &base()).unwrap()
    }

    fn base_after() -> Table {
        let mut b = base();
        b.append(&delta()).unwrap();
        b
    }

    #[test]
    fn incremental_equals_full() {
        let mut inc = view();
        let mut full = view();
        inc.refresh_incremental(&delta()).unwrap();
        full.refresh_full(&base_after()).unwrap();
        assert_eq!(inc.data().to_sorted_rows(), full.data().to_sorted_rows());
    }

    #[test]
    fn incremental_work_proportional_to_delta() {
        let mut v = view();
        let stats = v.refresh_incremental(&delta()).unwrap();
        // Scanned the 2-row delta, not the 5-row base.
        assert_eq!(stats.rows_scanned, 2);
        let mut v2 = view();
        let full_stats = v2.refresh_full(&base_after()).unwrap();
        assert_eq!(full_stats.rows_scanned, 5);
    }

    #[test]
    fn refresh_dispatch() {
        let mut a = view();
        let mut b = view();
        a.refresh(RefreshStrategy::Incremental, &base_after(), &delta())
            .unwrap();
        b.refresh(RefreshStrategy::Full, &base_after(), &delta())
            .unwrap();
        assert_eq!(a.data().to_sorted_rows(), b.data().to_sorted_rows());
    }

    #[test]
    fn refreshed_view_answers_queries_correctly() {
        let mut v = view();
        v.refresh_incremental(&delta()).unwrap();
        let q = AggQuery::new(
            "q",
            &["country"],
            vec![
                AggSpec::sum("profit"),
                AggSpec::min("profit"),
                AggSpec::max("profit"),
                AggSpec::count(),
                AggSpec::avg("profit"),
            ],
        );
        let (from_view, _) = v.answer(&q).unwrap();
        let (from_base, _) = q.execute(&base_after()).unwrap();
        assert_eq!(from_view.to_sorted_rows(), from_base.to_sorted_rows());
    }

    #[test]
    fn empty_delta_is_a_noop() {
        let mut v = view();
        let before = v.data().to_sorted_rows();
        let empty = TableBuilder::new(&[
            ("year", DataType::Int),
            ("country", DataType::Str),
            ("profit", DataType::Int),
        ])
        .unwrap()
        .build();
        let stats = v.refresh_incremental(&empty).unwrap();
        assert_eq!(stats.rows_scanned, 0);
        assert_eq!(v.data().to_sorted_rows(), before);
    }

    #[test]
    fn repeated_increments_accumulate() {
        let mut v = view();
        v.refresh_incremental(&delta()).unwrap();
        v.refresh_incremental(&delta()).unwrap();
        let q = AggQuery::new("q", &[], vec![AggSpec::sum("profit")]);
        let (out, _) = v.answer(&q).unwrap();
        // 108 base + 2×12 delta.
        assert_eq!(out.row(0), vec![Value::Int(132)]);
    }
}
