//! An in-memory columnar aggregation engine.
//!
//! This crate is the execution substrate of the reproduction: it plays the
//! role of the paper's Hadoop 0.20 + Pig Latin cluster. It executes the
//! paper's query class — roll-up group-by aggregations over a denormalized
//! star schema — materializes views, answers queries from them, and
//! maintains them incrementally. Every execution reports the work performed
//! ([`ExecStats`]); a [`ThroughputModel`] turns work into deterministic
//! simulated cluster-hours for the cost models (see `crates/cost`).
//!
//! ## Module map — the replay/metering path
//!
//! The calibration loop (`mvcloud::calibrate`) drives these modules, in
//! order:
//!
//! * [`ssb`] / [`datagen`] — generate the fact table the replay runs on;
//! * [`query`](AggQuery) — the roll-up query class, executed with full
//!   per-operator metering;
//! * [`view`](MaterializedView) — materialize candidates (build work is
//!   metered) and answer queries from them;
//! * [`catalog`](ViewCatalog) — best-view routing with base-table
//!   fallback, plus [`ViewCatalog::refresh_incremental_all`] for
//!   epoch-boundary maintenance;
//! * [`replay`](ReplayDriver) — the epoch driver: apply a plan's view
//!   transitions, run the query stream, refresh, and return the metered
//!   [`EpochReplay`];
//! * [`metering`](ThroughputModel) — convert metered bytes into
//!   simulated cluster-hours ([`SimScale`] maps engine bytes to cloud
//!   gigabytes).
//!
//! ```
//! use mv_engine::{
//!     datagen, AggQuery, AggSpec, MaterializedView, SalesConfig, ViewDefinition,
//! };
//!
//! // The paper's running example: V1 = "sales per month and country".
//! let sales = datagen::generate_sales(&SalesConfig::with_rows(1_000));
//! let v1 = MaterializedView::materialize(
//!     ViewDefinition::canonical("V1", &["year", "month", "country"], &[AggSpec::sum("profit")]),
//!     &sales,
//! )
//! .unwrap();
//!
//! // Q1 = "sales per year and country" answered from V1 equals the answer
//! // from the base table.
//! let q1 = AggQuery::new("Q1", &["year", "country"], vec![AggSpec::sum("profit")]);
//! let (from_base, _) = q1.execute(&sales).unwrap();
//! let (from_view, _) = v1.answer(&q1).unwrap();
//! assert_eq!(from_base.to_sorted_rows(), from_view.to_sorted_rows());
//! ```

mod agg;
mod catalog;
mod column;
pub mod csv;
pub mod datagen;
mod dict;
mod error;
mod fx;
mod groupby;
mod maintenance;
mod metering;
mod predicate;
mod query;
pub mod replay;
mod schema;
pub mod sql;
pub mod ssb;
mod table;
mod value;
mod view;

pub use agg::{AggFunc, AggSpec};
pub use catalog::ViewCatalog;
pub use column::Column;
pub use datagen::SalesConfig;
pub use dict::Dictionary;
pub use error::EngineError;
pub use fx::{FxHashMap, FxHashSet, FxHasher};
pub use maintenance::RefreshStrategy;
pub use metering::{ExecStats, SimScale, ThroughputModel};
pub use predicate::{CmpOp, Predicate};
pub use query::{AggQuery, QueryShape};
pub use replay::{EpochReplay, QueryExecution, ReplayDriver};
pub use schema::{DataType, Field, Schema};
pub use sql::{parse_query, ParsedQuery, SqlError};
pub use ssb::SsbConfig;
pub use table::{Table, TableBuilder};
pub use value::Value;
pub use view::{MaterializedView, ViewDefinition};
