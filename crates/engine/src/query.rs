//! Aggregation queries.

use serde::{Deserialize, Serialize};

use crate::agg::AggExpr;
use crate::groupby::{hash_group_by, parallel_group_by, LoweredAgg};
use crate::{AggFunc, AggSpec, DataType, EngineError, ExecStats, Predicate, Schema, Table};

/// A roll-up aggregation query: `SELECT group_by…, agg(…)… FROM t [WHERE …]
/// GROUP BY group_by…`.
///
/// This is the query class of the paper's workload ("total profit per year
/// and per country") and the only class its materialized views need to
/// serve.
#[derive(Debug, Clone, PartialEq)]
pub struct AggQuery {
    /// Query identifier, used in workload definitions and reports.
    pub name: String,
    /// Group-by column names (order defines output order).
    pub group_by: Vec<String>,
    /// Requested aggregates (at least one).
    pub aggregates: Vec<AggSpec>,
    /// Optional row filter.
    pub predicate: Option<Predicate>,
}

impl AggQuery {
    /// Builds a query; `group_by` may be empty (grand total).
    pub fn new(name: impl Into<String>, group_by: &[&str], aggregates: Vec<AggSpec>) -> Self {
        AggQuery {
            name: name.into(),
            group_by: group_by.iter().map(|s| s.to_string()).collect(),
            aggregates,
            predicate: None,
        }
    }

    /// Adds a filter.
    pub fn with_predicate(mut self, predicate: Predicate) -> Self {
        self.predicate = Some(predicate);
        self
    }

    /// Validates the query against `schema` and lowers the aggregates to
    /// executor expressions.
    fn plan(&self, schema: &Schema) -> Result<(Vec<usize>, Vec<LoweredAgg>), EngineError> {
        if self.aggregates.is_empty() {
            return Err(EngineError::NoAggregates);
        }
        let mut group_cols = Vec::with_capacity(self.group_by.len());
        for (i, name) in self.group_by.iter().enumerate() {
            if self.group_by[..i].contains(name) {
                return Err(EngineError::DuplicateGroupColumn { name: name.clone() });
            }
            group_cols.push(schema.index_of(name)?);
        }
        let mut lowered = Vec::with_capacity(self.aggregates.len());
        for spec in &self.aggregates {
            let expr = match (spec.func, &spec.column) {
                (AggFunc::Count, _) => AggExpr::Count,
                (func, Some(col_name)) => {
                    let col = schema.index_of(col_name)?;
                    let field = &schema.fields()[col];
                    if field.dtype != DataType::Int {
                        return Err(EngineError::TypeMismatch {
                            column: col_name.clone(),
                            expected: "int",
                            actual: field.dtype.name(),
                        });
                    }
                    match func {
                        AggFunc::Sum => AggExpr::Sum { col },
                        AggFunc::Min => AggExpr::Min { col },
                        AggFunc::Max => AggExpr::Max { col },
                        AggFunc::Avg => AggExpr::Avg { col },
                        AggFunc::Count => unreachable!("handled above"),
                    }
                }
                (func, None) => {
                    return Err(EngineError::UnknownColumn {
                        name: format!("<missing input column for {}>", func.name()),
                    })
                }
            };
            lowered.push(LoweredAgg {
                expr,
                alias: spec.alias.clone(),
            });
        }
        Ok((group_cols, lowered))
    }

    /// Executes against `table`, returning the result and metering record.
    pub fn execute(&self, table: &Table) -> Result<(Table, ExecStats), EngineError> {
        self.execute_with_threads(table, 1)
    }

    /// Executes with a thread budget (1 = serial). Results are identical to
    /// [`AggQuery::execute`]; only wall-clock differs.
    pub fn execute_with_threads(
        &self,
        table: &Table,
        threads: usize,
    ) -> Result<(Table, ExecStats), EngineError> {
        let (group_cols, lowered) = self.plan(table.schema())?;
        let (mask, mut pred_stats) = match &self.predicate {
            Some(p) => {
                let mask = p.eval(table)?;
                // Metering: predicate evaluation scans its referenced columns.
                let width: u64 = p
                    .columns()
                    .iter()
                    .map(|c| {
                        table
                            .schema()
                            .field(c)
                            .map(|f| f.dtype.byte_width())
                            .unwrap_or(0)
                    })
                    .sum();
                let stats = ExecStats {
                    rows_scanned: table.num_rows() as u64,
                    bytes_scanned: table.num_rows() as u64 * width,
                    ..ExecStats::default()
                };
                (Some(mask), stats)
            }
            None => (None, ExecStats::default()),
        };
        let (out, agg_stats) = if threads > 1 {
            parallel_group_by(table, &group_cols, &lowered, mask.as_deref(), threads)?
        } else {
            hash_group_by(table, &group_cols, &lowered, mask.as_deref())?
        };
        pred_stats.merge(&agg_stats);
        // Rows were scanned once, not twice; keep the aggregation's count.
        pred_stats.rows_scanned = agg_stats.rows_scanned;
        Ok((out, pred_stats))
    }
}

/// Serializable description of a query (without predicates), used in
/// experiment configs. Lossless for the paper's workload class.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryShape {
    /// Query identifier.
    pub name: String,
    /// Group-by column names.
    pub group_by: Vec<String>,
}

impl From<&AggQuery> for QueryShape {
    fn from(q: &AggQuery) -> Self {
        QueryShape {
            name: q.name.clone(),
            group_by: q.group_by.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CmpOp, TableBuilder, Value};

    fn sales() -> Table {
        TableBuilder::new(&[
            ("year", DataType::Int),
            ("country", DataType::Str),
            ("profit", DataType::Int),
        ])
        .unwrap()
        .row(&[2000.into(), "France".into(), 35.into()])
        .unwrap()
        .row(&[2000.into(), "France".into(), 40.into()])
        .unwrap()
        .row(&[2000.into(), "Italy".into(), 23.into()])
        .unwrap()
        .row(&[1999.into(), "Italy".into(), 50.into()])
        .unwrap()
        .build()
    }

    #[test]
    fn basic_rollup() {
        let q = AggQuery::new("q1", &["country"], vec![AggSpec::sum("profit")]);
        let (out, stats) = q.execute(&sales()).unwrap();
        assert_eq!(
            out.to_sorted_rows(),
            vec![
                vec![Value::from("France"), Value::Int(75)],
                vec![Value::from("Italy"), Value::Int(73)],
            ]
        );
        assert_eq!(stats.groups, 2);
    }

    #[test]
    fn multiple_aggregates() {
        let q = AggQuery::new(
            "q",
            &["year"],
            vec![
                AggSpec::sum("profit"),
                AggSpec::count(),
                AggSpec::min("profit"),
                AggSpec::max("profit"),
                AggSpec::avg("profit"),
            ],
        );
        let (out, _) = q.execute(&sales()).unwrap();
        let rows = out.to_sorted_rows();
        // 1999: sum 50, count 1, min 50, max 50, avg 50.
        assert_eq!(
            rows[0],
            vec![
                Value::Int(1999),
                Value::Int(50),
                Value::Int(1),
                Value::Int(50),
                Value::Int(50),
                Value::Int(50)
            ]
        );
        // 2000: sum 98, count 3, min 23, max 40, avg 32.
        assert_eq!(
            rows[1],
            vec![
                Value::Int(2000),
                Value::Int(98),
                Value::Int(3),
                Value::Int(23),
                Value::Int(40),
                Value::Int(32)
            ]
        );
    }

    #[test]
    fn predicate_filters_and_meters() {
        let q = AggQuery::new("q", &["country"], vec![AggSpec::sum("profit")])
            .with_predicate(Predicate::cmp("year", CmpOp::Ge, 2000));
        let (out, stats) = q.execute(&sales()).unwrap();
        assert_eq!(
            out.to_sorted_rows(),
            vec![
                vec![Value::from("France"), Value::Int(75)],
                vec![Value::from("Italy"), Value::Int(23)],
            ]
        );
        // Predicate scanned the year column (8 bytes/row) on top of the
        // aggregation's own scan.
        assert!(stats.bytes_scanned > 4 * (4 + 8));
    }

    #[test]
    fn validation_errors() {
        let t = sales();
        let no_agg = AggQuery::new("q", &["year"], vec![]);
        assert_eq!(no_agg.execute(&t).unwrap_err(), EngineError::NoAggregates);

        let dup = AggQuery::new("q", &["year", "year"], vec![AggSpec::count()]);
        assert!(matches!(
            dup.execute(&t).unwrap_err(),
            EngineError::DuplicateGroupColumn { .. }
        ));

        let missing = AggQuery::new("q", &["nope"], vec![AggSpec::count()]);
        assert!(matches!(
            missing.execute(&t).unwrap_err(),
            EngineError::UnknownColumn { .. }
        ));

        let str_sum = AggQuery::new("q", &[], vec![AggSpec::sum("country")]);
        assert!(matches!(
            str_sum.execute(&t).unwrap_err(),
            EngineError::TypeMismatch { .. }
        ));

        let no_col = AggQuery::new(
            "q",
            &[],
            vec![AggSpec {
                func: AggFunc::Sum,
                column: None,
                alias: "s".into(),
            }],
        );
        assert!(matches!(
            no_col.execute(&t).unwrap_err(),
            EngineError::UnknownColumn { .. }
        ));
    }

    #[test]
    fn threads_do_not_change_results() {
        let q = AggQuery::new(
            "q",
            &["year", "country"],
            vec![AggSpec::sum("profit"), AggSpec::avg("profit")],
        );
        let (serial, _) = q.execute(&sales()).unwrap();
        let (par, _) = q.execute_with_threads(&sales(), 4).unwrap();
        assert_eq!(serial.to_sorted_rows(), par.to_sorted_rows());
    }

    #[test]
    fn shape_roundtrip() {
        let q = AggQuery::new("q1", &["year", "country"], vec![AggSpec::sum("profit")]);
        let shape = QueryShape::from(&q);
        assert_eq!(shape.name, "q1");
        assert_eq!(shape.group_by, vec!["year", "country"]);
    }
}
