//! A fast, non-cryptographic hasher for group-by keys.
//!
//! This is the well-known "Fx" multiply-rotate hash used by rustc (the
//! `rustc-hash` crate), reimplemented here because the offline dependency
//! set does not include it. Group keys are short integer slices with no
//! adversarial source, so HashDoS resistance is not needed and a fast
//! integer mix wins — the guide's standard advice for database hash
//! aggregation.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher; state is a single `u64`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash + ?Sized>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&[1i64, 2, 3][..]), hash_of(&[1i64, 2, 3][..]));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&[1i64, 2][..]), hash_of(&[2i64, 1][..]));
    }

    #[test]
    fn map_works() {
        let mut m: FxHashMap<Vec<i64>, u32> = FxHashMap::default();
        m.insert(vec![2000, 0], 1);
        m.insert(vec![2000, 1], 2);
        assert_eq!(m.get(&vec![2000, 0]), Some(&1));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn byte_writes_cover_partial_chunks() {
        // 9 bytes exercises the chunked `write` path.
        assert_ne!(hash_of(&b"123456789"[..]), hash_of(&b"123456780"[..]));
    }
}
