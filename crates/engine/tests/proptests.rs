//! Property-based invariants of the engine.
//!
//! The central soundness property of the whole reproduction is tested here:
//! **answering a roll-up query from any coarser materialized view returns
//! exactly the same result as answering it from the base table.** All of
//! the paper's time savings rest on this rewrite being lossless.

use mv_engine::{
    AggQuery, AggSpec, CmpOp, DataType, MaterializedView, Predicate, Table, TableBuilder, Value,
    ViewDefinition,
};
use proptest::prelude::*;

/// The hierarchy prefixes of the sales schema: any query/view key is a
/// (time-prefix, geo-prefix) pair, mirroring the paper's lattice.
const TIME_LEVELS: [&[&str]; 4] = [
    &[],
    &["year"],
    &["year", "month"],
    &["year", "month", "day"],
];
const GEO_LEVELS: [&[&str]; 4] = [
    &[],
    &["country"],
    &["country", "region"],
    &["country", "region", "department"],
];

fn key_columns(time: usize, geo: usize) -> Vec<&'static str> {
    let mut cols: Vec<&'static str> = TIME_LEVELS[time].to_vec();
    cols.extend_from_slice(GEO_LEVELS[geo]);
    cols
}

/// Random small sales table: rows over a constrained domain so that groups
/// collide often (exercising accumulator merges).
fn arb_sales(max_rows: usize) -> impl Strategy<Value = Table> {
    proptest::collection::vec(
        (
            2000i64..2003,
            1i64..4,
            1i64..5,
            0usize..3,
            0usize..2,
            0usize..2,
            -500i64..500,
        ),
        1..max_rows,
    )
    .prop_map(|rows| {
        let countries = ["France", "Italy", "Spain"];
        let regions = ["R0", "R1"];
        let departments = ["D0", "D1"];
        let mut b = TableBuilder::new(&[
            ("year", DataType::Int),
            ("month", DataType::Int),
            ("day", DataType::Int),
            ("country", DataType::Str),
            ("region", DataType::Str),
            ("department", DataType::Str),
            ("profit", DataType::Int),
        ])
        .unwrap();
        for (y, m, d, c, r, dep, p) in rows {
            b = b
                .row(&[
                    Value::Int(y),
                    Value::Int(m),
                    Value::Int(d),
                    Value::from(countries[c]),
                    Value::from(format!("{}-{}", countries[c], regions[r])),
                    Value::from(format!(
                        "{}-{}-{}",
                        countries[c], regions[r], departments[dep]
                    )),
                    Value::Int(p),
                ])
                .unwrap();
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any coarser-or-equal view answers any query identically to the base.
    #[test]
    fn view_rewrite_is_lossless(
        table in arb_sales(60),
        vt in 0usize..4, vg in 0usize..4,
        qt in 0usize..4, qg in 0usize..4,
    ) {
        // Make the view at least as fine as the query on both dimensions.
        let (vt, vg) = (vt.max(qt), vg.max(qg));
        let view_cols = key_columns(vt, vg);
        let query_cols = key_columns(qt, qg);

        let aggs = vec![
            AggSpec::sum("profit"),
            AggSpec::count(),
            AggSpec::min("profit"),
            AggSpec::max("profit"),
            AggSpec::avg("profit"),
        ];
        let def = ViewDefinition::canonical("v", &view_cols, &aggs);
        let view = MaterializedView::materialize(def, &table).unwrap();

        let q = AggQuery::new("q", &query_cols, aggs);
        prop_assert!(view.can_answer(&q).is_ok());
        let (from_base, _) = q.execute(&table).unwrap();
        let (from_view, _) = view.answer(&q).unwrap();
        prop_assert_eq!(from_base.to_sorted_rows(), from_view.to_sorted_rows());
    }

    /// Predicates on view key columns push down losslessly.
    #[test]
    fn predicated_rewrite_is_lossless(
        table in arb_sales(60),
        year in 2000i64..2003,
    ) {
        let def = ViewDefinition::canonical(
            "v",
            &["year", "month", "country"],
            &[AggSpec::sum("profit")],
        );
        let view = MaterializedView::materialize(def, &table).unwrap();
        let q = AggQuery::new("q", &["country"], vec![AggSpec::sum("profit")])
            .with_predicate(Predicate::cmp("year", CmpOp::Ge, year));
        let (from_base, _) = q.execute(&table).unwrap();
        let (from_view, _) = view.answer(&q).unwrap();
        prop_assert_eq!(from_base.to_sorted_rows(), from_view.to_sorted_rows());
    }

    /// Incremental maintenance equals full recomputation after any split of
    /// the data into base + delta.
    #[test]
    fn incremental_refresh_equals_full(
        table in arb_sales(60),
        split_pct in 10usize..90,
    ) {
        let split = (table.num_rows() * split_pct / 100).max(1).min(table.num_rows());
        let mut base = Table::empty(table.schema().clone());
        let mut delta = Table::empty(table.schema().clone());
        for r in 0..table.num_rows() {
            let row = table.row(r);
            if r < split {
                base.push_row(&row).unwrap();
            } else {
                delta.push_row(&row).unwrap();
            }
        }
        let def = ViewDefinition::canonical(
            "v",
            &["year", "country"],
            &[AggSpec::sum("profit"), AggSpec::min("profit"), AggSpec::max("profit")],
        );
        let mut incremental = MaterializedView::materialize(def.clone(), &base).unwrap();
        incremental.refresh_incremental(&delta).unwrap();
        let full = MaterializedView::materialize(def, &table).unwrap();
        prop_assert_eq!(
            incremental.data().to_sorted_rows(),
            full.data().to_sorted_rows()
        );
    }

    /// Thread count never changes results.
    #[test]
    fn parallel_equals_serial(table in arb_sales(80), threads in 2usize..6) {
        let q = AggQuery::new(
            "q",
            &["year", "country"],
            vec![AggSpec::sum("profit"), AggSpec::avg("profit"), AggSpec::count()],
        );
        let (serial, _) = q.execute(&table).unwrap();
        let (parallel, _) = q.execute_with_threads(&table, threads).unwrap();
        prop_assert_eq!(serial.to_sorted_rows(), parallel.to_sorted_rows());
    }

    /// Aggregation invariants: the output group count never exceeds the
    /// input row count; SUM over all groups equals the column's total.
    #[test]
    fn aggregation_conservation(table in arb_sales(80)) {
        let q = AggQuery::new("q", &["year", "month", "country"], vec![AggSpec::sum("profit")]);
        let (out, stats) = q.execute(&table).unwrap();
        prop_assert!(out.num_rows() <= table.num_rows());
        prop_assert_eq!(stats.groups as usize, out.num_rows());

        let total_in: i64 = table
            .column_by_name("profit").unwrap()
            .as_int().unwrap()
            .iter()
            .sum();
        let total_out: i64 = out
            .column_by_name("sum_profit").unwrap()
            .as_int().unwrap()
            .iter()
            .sum();
        prop_assert_eq!(total_in, total_out);
    }
}

/// Strategy for random roll-up SQL over the sales schema.
fn arb_sql() -> impl Strategy<Value = String> {
    let cols = proptest::sample::subsequence(
        vec!["year", "month", "day", "country", "region", "department"],
        0..4,
    );
    let aggs = proptest::sample::subsequence(
        vec![
            "SUM(profit)",
            "COUNT(*)",
            "MIN(profit)",
            "MAX(profit)",
            "AVG(profit)",
        ],
        1..5,
    );
    (cols, aggs, 2000i64..2003).prop_map(|(cols, aggs, year)| {
        let mut select: Vec<String> = cols.iter().map(|c| c.to_string()).collect();
        select.extend(aggs.iter().map(|a| a.to_string()));
        let mut sql = format!(
            "SELECT {} FROM sales WHERE year >= {}",
            select.join(", "),
            year
        );
        if !cols.is_empty() {
            sql.push_str(&format!(" GROUP BY {}", cols.join(", ")));
        }
        sql
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any SQL of the supported subset parses, executes, and matches the
    /// hand-built equivalent query: the parser adds no semantics.
    #[test]
    fn sql_matches_hand_built_query(table in arb_sales(60), sql in arb_sql()) {
        let parsed = mv_engine::parse_query(&sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        prop_assert_eq!(parsed.table.as_str(), "sales");
        let (via_sql, _) = parsed.query.execute(&table).unwrap();
        // Build the same query programmatically.
        let hand = AggQuery {
            name: "hand".to_string(),
            group_by: parsed.query.group_by.clone(),
            aggregates: parsed.query.aggregates.clone(),
            predicate: parsed.query.predicate.clone(),
        };
        let (direct, _) = hand.execute(&table).unwrap();
        prop_assert_eq!(via_sql.to_sorted_rows(), direct.to_sorted_rows());
    }

    /// CSV roundtrips any generated table exactly.
    #[test]
    fn csv_roundtrip(table in arb_sales(80)) {
        let csv = mv_engine::csv::table_to_csv(&table);
        let back = mv_engine::csv::table_from_csv(&csv, table.schema()).unwrap();
        prop_assert_eq!(table.to_rows(), back.to_rows());
    }
}
