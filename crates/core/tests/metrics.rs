//! Schema round-trip for the `--metrics` surface: a captured
//! [`mv_obs::Snapshot`] rendered through [`mvcloud::json::snapshot_json`]
//! must parse back (compact *and* pretty) with every section intact
//! and every value equal to what the snapshot's own accessors report.

use mvcloud::json::{snapshot_json, Json};
use mvcloud::obs;
use mvcloud::{sales_domain, Advisor, AdvisorConfig, Scenario, SolverKind};

#[test]
fn snapshot_json_round_trips_through_the_parser() {
    let counters = obs::CounterGuard::scoped();

    // Real solver work so every section is populated: counters, the
    // dirty-blocks histogram, the advisor/solve span, and (via the
    // local-search placement path) possibly events. Seed one event
    // explicitly so the section is never empty.
    obs::event("schema_probe", &[("answer", 42.0)]);
    let advisor = Advisor::build(sales_domain(500, 3, 1.0, 42), AdvisorConfig::default()).unwrap();
    let outcome = advisor.solve(Scenario::tradeoff_normalized(0.5), SolverKind::LocalSearch);
    assert!(outcome.feasible());

    let snapshot = obs::Snapshot::capture();
    drop(counters);

    for rendered in [
        snapshot_json(&snapshot).render(),
        snapshot_json(&snapshot).render_pretty(),
    ] {
        let doc = Json::parse(&rendered).expect("snapshot JSON parses");
        assert_eq!(doc.get("version").and_then(Json::as_u64), Some(1));

        // Counters: same set of names, same values.
        let Some(Json::Obj(counter_pairs)) = doc.get("counters") else {
            panic!("counters must be an object");
        };
        assert!(!counter_pairs.is_empty(), "solver work moved counters");
        for (name, value) in counter_pairs {
            assert_eq!(
                value.as_u64(),
                Some(snapshot.counter(name)),
                "counter {name} survives the round trip"
            );
        }
        assert!(snapshot.counter("evaluator/build") >= 1);

        // Histograms: count equals the sum over buckets.
        let Some(Json::Obj(hists)) = doc.get("histograms") else {
            panic!("histograms must be an object");
        };
        for (name, h) in hists {
            let count = h.get("count").and_then(Json::as_u64).unwrap();
            let bucket_total: u64 = h
                .get("buckets")
                .and_then(Json::as_array)
                .unwrap()
                .iter()
                .map(|b| b.as_array().unwrap()[1].as_u64().unwrap())
                .sum();
            assert_eq!(count, bucket_total, "histogram {name} is consistent");
        }

        // Spans: the advisor/solve timer is present with its count.
        let spans = doc.get("spans").and_then(Json::as_array).unwrap();
        let solve = spans
            .iter()
            .find(|s| s.get("path").and_then(Json::as_str) == Some("advisor/solve"))
            .expect("advisor/solve span recorded");
        assert_eq!(solve.get("count").and_then(Json::as_u64), Some(1));
        assert!(solve.get("total_ns").and_then(Json::as_u64).unwrap() > 0);

        // Events: the seeded probe survives with its field.
        let events = doc.get("events").and_then(Json::as_array).unwrap();
        let probe = events
            .iter()
            .find(|e| e.get("kind").and_then(Json::as_str) == Some("schema_probe"))
            .expect("seeded event retained");
        assert_eq!(
            probe.get("fields").unwrap().get("answer").unwrap().as_f64(),
            Some(42.0)
        );
        assert_eq!(
            doc.get("events_seen").and_then(Json::as_u64),
            Some(snapshot.events_seen)
        );
    }
}
