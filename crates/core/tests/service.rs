//! Resident-service durability and isolation contracts.
//!
//! 1. **Bit-identical restart** — spilling the catalog and reopening
//!    the service reproduces the resident plan's report byte for byte
//!    (the canonical solve is deterministic in the catalog + configs).
//! 2. **Crash recovery** — a crash mid-spill leaves only the atomic
//!    temp file behind; reload returns the last durably-written state,
//!    with the high-water mark not advanced past it, so replaying the
//!    tail of the stream reconverges.
//! 3. **Snapshot isolation** — concurrent what-if probes (proptest,
//!    real threads) never perturb the resident plan.

use std::fs;
use std::path::Path;

use mvcloud::{
    sales_domain, Advisor, AdvisorConfig, AdvisorService, CandidateCatalog, QueryEvent, Scenario,
    ServiceConfig,
};
use proptest::prelude::*;

fn service(rows: usize, n_queries: usize, seed: u64) -> AdvisorService {
    let domain = sales_domain(rows, n_queries, 1.0, seed);
    let advisor = Advisor::build(domain, AdvisorConfig::default()).expect("build");
    AdvisorService::from_advisor(
        &advisor,
        ServiceConfig::new(Scenario::tradeoff_normalized(0.5)),
    )
    .expect("service")
}

fn skew_events(timestamp: u64, n: u64, query: &str) -> Vec<QueryEvent> {
    (0..n)
        .map(|i| QueryEvent {
            timestamp,
            query_id: i + 1,
            query: query.to_string(),
        })
        .collect()
}

fn reopen(path: &Path) -> AdvisorService {
    AdvisorService::open(
        path,
        AdvisorConfig::default(),
        ServiceConfig::new(Scenario::tradeoff_normalized(0.5)),
    )
    .expect("reopen")
}

#[test]
fn restart_reproduces_the_plan_report_bit_identically() {
    let dir = std::env::temp_dir().join(format!("mv-service-restart-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join("catalog.json");

    let mut svc = service(600, 3, 11);
    // Drive skewed traffic through a drift re-solve, then spill at the
    // re-solve point — the precondition for report-identical reload.
    let out = svc.ingest(&skew_events(7, 25, "Q2")).expect("ingest");
    assert!(out.resolved, "skew must re-solve (drift {})", out.drift);
    svc.spill(&path).expect("spill");
    let before = svc.plan_report().render_pretty();

    let reloaded = reopen(&path);
    assert_eq!(
        reloaded.plan_report().render_pretty(),
        before,
        "reloaded service must render the identical plan report"
    );
    assert_eq!(reloaded.plan(), svc.plan());
    assert_eq!(reloaded.catalog(), svc.catalog());
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_mid_spill_recovers_the_last_durable_state() {
    let dir = std::env::temp_dir().join(format!("mv-service-crash-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join("catalog.json");

    let mut svc = service(500, 3, 3);
    svc.ingest(&skew_events(1, 5, "Q1")).expect("ingest");
    svc.spill(&path).expect("durable spill");
    let durable = svc.catalog().clone();

    // More traffic arrives, then the process dies mid-spill: the atomic
    // protocol writes a temp file first, so a crash before the rename
    // leaves the destination untouched. Simulate the torn temp file.
    svc.ingest(&skew_events(2, 9, "Q3")).expect("ingest");
    let torn = svc.catalog().to_json().render_pretty();
    fs::write(dir.join("catalog.json.tmp.99999"), &torn[..torn.len() / 2]).unwrap();

    let recovered = CandidateCatalog::load(&path).expect("reload");
    assert_eq!(recovered, durable, "reload sees the last durable state");
    assert_eq!(
        recovered.hwm, durable.hwm,
        "HWM not advanced past the spill"
    );
    assert!(recovered.hwm < svc.catalog().hwm);

    // Replaying the full stream from a reopened service reconverges:
    // the pre-spill prefix is skipped, the lost tail is re-applied.
    let mut reopened = reopen(&path);
    let mut all = skew_events(1, 5, "Q1");
    all.extend(skew_events(2, 9, "Q3"));
    let out = reopened.ingest(&all).expect("replay");
    assert_eq!(out.replayed, 5, "durable prefix is idempotent");
    assert_eq!(out.accepted, 9, "lost tail is re-applied");
    assert_eq!(reopened.catalog().counts, svc.catalog().counts);
    assert_eq!(reopened.catalog().hwm, svc.catalog().hwm);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn replayed_restart_converges_on_the_running_plan() {
    let dir = std::env::temp_dir().join(format!("mv-service-replay-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join("catalog.json");

    // A service that spilled before traffic (cold catalog on disk).
    let mut svc = service(400, 3, 21);
    svc.spill(&path).expect("cold spill");
    let stream = skew_events(5, 30, "Q1");
    let out = svc.ingest(&stream).expect("ingest");
    assert!(out.resolved);

    // Restart from the cold catalog and replay the same stream: the
    // mark is behind, everything is accepted, and the two services
    // agree bit for bit.
    let mut restarted = reopen(&path);
    let replay = restarted.ingest(&stream).expect("replay");
    assert_eq!(replay.accepted, 30);
    assert!(replay.resolved);
    assert_eq!(restarted.plan_report().render(), svc.plan_report().render());
    fs::remove_dir_all(&dir).ok();
}

proptest! {
    // Each case builds a measured advisor; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Concurrent what-ifs run on evaluator forks: whatever they flip,
    /// from however many threads, the resident plan and its report are
    /// untouched.
    #[test]
    fn concurrent_what_ifs_never_perturb_the_resident_plan(
        seed in 0u64..1_000,
        rows in 250usize..500,
        n_queries in 2usize..5,
        toggles in prop::collection::vec(prop::collection::vec(0usize..15, 1..5), 1..8),
    ) {
        let svc = service(rows, n_queries, seed);
        let before = svc.plan().clone();
        let report_before = svc.plan_report().render();
        let n = svc.catalog().candidates.len();

        std::thread::scope(|scope| {
            for spec in &toggles {
                let svc = &svc;
                scope.spawn(move || {
                    let ks: Vec<usize> = spec.iter().map(|&k| k % n).collect();
                    let probe = svc.what_if_toggle(&ks);
                    // The fork starts from the resident selection, so a
                    // single distinct toggle must change it.
                    let mut distinct: Vec<usize> = ks.clone();
                    distinct.sort_unstable();
                    distinct.dedup();
                    let odd: Vec<usize> = distinct
                        .into_iter()
                        .filter(|k| ks.iter().filter(|&&x| x == *k).count() % 2 == 1)
                        .collect();
                    if !odd.is_empty() {
                        assert_ne!(probe.selection, svc.plan().selection);
                    }
                });
            }
        });

        prop_assert_eq!(svc.plan(), &before);
        prop_assert_eq!(svc.plan_report().render(), report_before);
        // The resident evaluator still evaluates to the resident plan.
        prop_assert_eq!(svc.what_if(|ev| ev.snapshot()), before);
    }
}
