//! Property: the streaming advisor is never worse than batch greedy.
//!
//! `Advisor::solve_streaming` pulls, measures and admits candidates one
//! at a time from a `CandidateStream`, repairing with bounded local
//! search and retiring dominated candidates as it goes. Once the stream
//! is fully drained its candidate *set* equals the batch
//! workload-closure pool, both pipelines meter each cuboid through the
//! same `CandidateMeter` code, and the drain phase multi-starts against
//! a greedy fill — so the streamed outcome must never lose to
//! `SolverKind::Greedy` on the batch problem, for any domain, workload
//! mix or scenario.

use mvcloud::units::{Hours, Money};
use mvcloud::{
    sales_domain, ssb_domain, Advisor, AdvisorConfig, CandidateStrategy, Scenario, SolverKind,
    StreamStrategy, StreamingConfig,
};
use proptest::prelude::*;

/// Builds the scenario family the paper optimizes, parameterized on the
/// batch baseline so constraints are neither trivially loose nor
/// unsatisfiable.
fn pick_scenario(kind: u8, knob: f64, batch: &Advisor) -> Scenario {
    let base = batch.problem().baseline();
    match kind % 3 {
        0 => Scenario::budget(base.cost() + Money::from_cents((knob * 200.0) as i64)),
        1 => Scenario::time_limit(Hours::new(base.time.value() * (0.05 + 0.9 * knob))),
        _ => Scenario::tradeoff_normalized(knob),
    }
}

proptest! {
    // Each case measures two full advisors (engine materialization per
    // candidate), so keep the case count modest; the domains themselves
    // are randomized heavily.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn streaming_never_worse_than_batch_greedy(
        seed in 0u64..10_000,
        rows in 250usize..600,
        n_queries in 2usize..6,
        frequency in 1.0f64..20.0,
        kind in 0u8..3,
        knob in 0.0f64..1.0,
    ) {
        // Two lattices: the paper's 16-cuboid sales cube and (every third
        // seed) the 64-cuboid SSB cube with its 13-query flight workload.
        let domain = if seed % 3 == 0 {
            ssb_domain(rows, frequency, seed)
        } else {
            sales_domain(rows, n_queries, frequency, seed)
        };
        let config = AdvisorConfig {
            candidates: CandidateStrategy::WorkloadClosure,
            ..AdvisorConfig::default()
        };
        let batch = Advisor::build(domain.clone(), config.clone()).expect("batch build");
        let scenario = pick_scenario(kind, knob, &batch);
        let greedy = batch.solve(scenario, SolverKind::Greedy);

        let (streamed_advisor, streamed, report) = Advisor::solve_streaming(
            domain,
            config,
            scenario,
            StreamingConfig {
                strategy: StreamStrategy::WorkloadClosure,
                ..StreamingConfig::default()
            },
        )
        .expect("streaming solve");

        // Same pool drained: every pulled candidate is accounted for.
        prop_assert_eq!(report.pulled, batch.problem().len());
        prop_assert_eq!(report.admitted + report.retired, report.pulled);
        prop_assert_eq!(report.admitted, streamed_advisor.problem().len());

        // The streamed outcome reproduces on its own problem.
        prop_assert_eq!(
            &streamed.evaluation,
            &streamed_advisor
                .problem()
                .evaluate(&streamed.evaluation.selection)
        );

        // Never worse than batch greedy, in Scenario::better's own
        // ordering: feasibility first, then constraint violation (when
        // both infeasible), then the scenario objective.
        let g_feasible = greedy.feasible();
        let s_feasible = streamed.feasible();
        prop_assert!(
            s_feasible || !g_feasible,
            "streaming lost feasibility greedy kept: greedy {:?} streamed {:?}",
            greedy.evaluation.cost(),
            streamed.evaluation.cost()
        );
        if g_feasible == s_feasible {
            if g_feasible {
                prop_assert!(
                    streamed.objective() <= greedy.objective() + 1e-9,
                    "streaming objective {} worse than greedy {}",
                    streamed.objective(),
                    greedy.objective()
                );
            } else {
                let (sv, gv) = (
                    scenario.violation(&streamed.evaluation),
                    scenario.violation(&greedy.evaluation),
                );
                prop_assert!(sv <= gv + 1e-9, "streaming violation {sv} worse than {gv}");
            }
        }
    }
}
