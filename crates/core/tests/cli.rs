//! Exit-code contract for `mvcloud-cli`: user-reachable bad arguments
//! must exit nonzero with an `error:` diagnostic on stderr — never a
//! panic/abort — and a well-formed invocation must exit zero.

use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mvcloud-cli"))
        .args(args)
        .output()
        .expect("spawn mvcloud-cli")
}

/// Asserts a clean, typed CLI failure: status 1, a human diagnostic on
/// stderr, and no panic backtrace anywhere.
fn assert_clean_error(args: &[&str]) {
    let out = run(args);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(1),
        "{args:?} should exit 1, got {:?} (stderr: {stderr})",
        out.status
    );
    assert!(
        stderr.starts_with("error:"),
        "{args:?} stderr should be an `error:` diagnostic, got: {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "{args:?} must not panic: {stderr}"
    );
}

#[test]
fn bad_arguments_are_clean_errors_not_panics() {
    // Zero-sized inputs that used to be reachable panics deeper in the
    // pipeline are now flag errors at the edge.
    assert_clean_error(&["advise", "--rows", "0", "--alpha", "0.5"]);
    assert_clean_error(&["advise", "--instances", "0", "--alpha", "0.5"]);
    assert_clean_error(&["horizon", "--period", "0", "--alpha", "0.5"]);
    assert_clean_error(&["market", "--rows", "0", "--alpha", "0.5"]);
    assert_clean_error(&["sql", "SELECT sum(profit) FROM sales", "--rows", "0"]);
    assert_clean_error(&["calibrate", "--rows", "0", "--alpha", "0.5"]);
    assert_clean_error(&["calibrate", "--epochs", "1", "--alpha", "0.5"]);
    // Typos and contradictions fail loudly instead of falling back.
    assert_clean_error(&["advise", "--bogus", "1", "--alpha", "0.5"]);
    assert_clean_error(&["advise", "--alpha", "2.0"]);
    assert_clean_error(&["advise"]);
    assert_clean_error(&["frobnicate"]);
}

#[test]
fn advise_succeeds_on_a_small_workload() {
    let out = run(&[
        "advise",
        "--rows",
        "500",
        "--queries",
        "3",
        "--alpha",
        "0.5",
    ]);
    assert!(out.status.success(), "advise should exit 0");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("selected"), "summary output: {stdout}");
}

#[test]
fn market_flat_flag_switches_route_but_not_the_answer() {
    let base = [
        "market",
        "--rows",
        "500",
        "--queries",
        "3",
        "--epochs",
        "3",
        "--paths",
        "4",
        "--alpha",
        "0.5",
    ];
    let tree = run(&base);
    assert!(tree.status.success(), "market should exit 0");
    let tree_out = String::from_utf8_lossy(&tree.stdout).to_string();
    assert!(
        tree_out.contains("\"distinct_solves\":"),
        "tree JSON reports its dedup: {tree_out}"
    );
    assert!(
        !tree_out.contains("\"tree_nodes\":null"),
        "default route is the scenario tree: {tree_out}"
    );

    let mut flat_args = base.to_vec();
    flat_args.push("--flat");
    let flat = run(&flat_args);
    assert!(flat.status.success(), "market --flat should exit 0");
    let flat_out = String::from_utf8_lossy(&flat.stdout).to_string();
    assert!(
        flat_out.contains("\"tree_nodes\":null"),
        "--flat skips the tree: {flat_out}"
    );

    // Same seed, same market: the routes must price identically, so
    // everything past the route metadata is byte-identical JSON.
    let strip = |s: &str| {
        s.lines()
            .filter(|l| !l.contains("\"tree_nodes\""))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&tree_out), strip(&flat_out));
}

#[test]
fn calibrate_emits_a_reconciliation_report() {
    let out = run(&[
        "calibrate",
        "--rows",
        "500",
        "--queries",
        "3",
        "--epochs",
        "2",
        "--alpha",
        "0.5",
    ]);
    assert!(out.status.success(), "calibrate should exit 0");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for field in [
        "\"holdout_fitted_rel_error\"",
        "\"holdout_synthetic_rel_error\"",
        "\"fitted\"",
        "\"measured_bill\"",
    ] {
        assert!(stdout.contains(field), "missing {field} in: {stdout}");
    }
}

/// `--metrics` acceptance: the telemetry snapshot a market run emits
/// must reconcile *exactly* with the report's own solve accounting —
/// tree mode pays one `solve_tree/node` span per scenario-tree node,
/// flat mode one `market/solve_path` span per distinct quote sequence.
#[test]
fn market_metrics_reconcile_with_solve_accounting() {
    use mvcloud::json::Json;

    let dir = std::env::temp_dir().join(format!("mvcloud-metrics-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create metrics dir");
    let base = [
        "market",
        "--rows",
        "500",
        "--queries",
        "3",
        "--epochs",
        "3",
        "--paths",
        "6",
        "--alpha",
        "0.5",
    ];

    let run_with_metrics = |extra: &[&str], file: &str| -> (Json, Json) {
        let path = dir.join(file);
        let mut args = base.to_vec();
        args.extend_from_slice(extra);
        args.extend_from_slice(&["--metrics", path.to_str().unwrap()]);
        let out = run(&args);
        assert!(out.status.success(), "market --metrics should exit 0");
        let report = Json::parse(&String::from_utf8_lossy(&out.stdout)).expect("report JSON");
        let raw = std::fs::read_to_string(&path).expect("metrics file written");
        let metrics = Json::parse(&raw).expect("metrics JSON");
        (report, metrics)
    };
    let span_count = |metrics: &Json, leaf: &str| -> u64 {
        metrics
            .get("spans")
            .and_then(Json::as_array)
            .expect("spans array")
            .iter()
            .filter(|s| {
                let path = s.get("path").and_then(Json::as_str).expect("span path");
                path == leaf || path.ends_with(&format!(" + {leaf}"))
            })
            .map(|s| s.get("count").and_then(Json::as_u64).expect("span count"))
            .sum()
    };
    let counter = |metrics: &Json, name: &str| -> u64 {
        metrics
            .get("counters")
            .and_then(|c| c.get(name))
            .and_then(Json::as_u64)
            .unwrap_or(0)
    };

    let (report, metrics) = run_with_metrics(&[], "tree.json");
    assert_eq!(
        metrics.get("version").and_then(Json::as_u64),
        Some(1),
        "versioned schema"
    );
    let tree_nodes = report
        .get("tree_nodes")
        .and_then(Json::as_u64)
        .expect("tree route reports node count");
    assert_eq!(
        span_count(&metrics, "solve_tree/node"),
        tree_nodes,
        "one tree-solve span per scenario-tree node"
    );
    assert_eq!(counter(&metrics, "tree/node_solves"), tree_nodes);

    let (report, metrics) = run_with_metrics(&["--flat"], "flat.json");
    assert!(report.get("tree_nodes").unwrap().is_null());
    let distinct = report
        .get("distinct_solves")
        .and_then(Json::as_u64)
        .expect("flat route reports dedup");
    assert_eq!(
        span_count(&metrics, "market/solve_path"),
        distinct,
        "one path-solve span per distinct quote sequence"
    );
    assert_eq!(counter(&metrics, "market/path_solves"), distinct);

    std::fs::remove_dir_all(&dir).ok();
}

/// `serve --script` smoke: a scripted ingest drives exactly one drift
/// re-solve, and the status document reconciles with the telemetry
/// snapshot — resolves == `service/drift_resolves` == warm retargets,
/// with exactly one evaluator build for the whole service lifetime. A
/// second run reloads the spilled catalog instead of re-measuring.
#[test]
fn serve_script_reconciles_with_metrics() {
    use mvcloud::json::Json;

    let dir = std::env::temp_dir().join(format!("mvcloud-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create serve dir");
    let script = dir.join("script.txt");
    let catalog = dir.join("catalog.json");
    let metrics = dir.join("metrics.json");
    // Skewed traffic on a uniform 3-query workload: the first accepted
    // event already drifts L1 = 4/3 past the 0.25 default and
    // re-solves; the duplicate line is skipped as a replay.
    std::fs::write(
        &script,
        "ingest 1 1 Q1\ningest 1 1 Q1\ningest 1 2 Q1\nwhatif 0\n",
    )
    .expect("write script");

    let out = run(&[
        "serve",
        "--rows",
        "500",
        "--queries",
        "3",
        "--alpha",
        "0.5",
        "--script",
        script.to_str().unwrap(),
        "--catalog",
        catalog.to_str().unwrap(),
        "--metrics",
        metrics.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "serve --script should exit 0");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The status document is the only output block starting a line
    // with '{' (progress lines are prose).
    let doc_start = stdout.find("\n{").map(|i| i + 1).unwrap_or(0);
    let status = Json::parse(&stdout[doc_start..]).expect("status JSON");
    let snapshot =
        Json::parse(&std::fs::read_to_string(&metrics).expect("metrics file")).expect("snapshot");
    let counter = |name: &str| -> u64 {
        snapshot
            .get("counters")
            .and_then(|c| c.get(name))
            .and_then(Json::as_u64)
            .unwrap_or(0)
    };

    let resolves = status
        .get("resolves")
        .and_then(Json::as_u64)
        .expect("resolves");
    assert_eq!(resolves, 1, "the skew must re-solve exactly once");
    assert_eq!(counter("service/drift_resolves"), resolves);
    assert_eq!(
        counter("evaluator/retarget"),
        resolves,
        "every re-solve is one warm retarget"
    );
    assert_eq!(
        counter("evaluator/build"),
        1,
        "the service builds its evaluator exactly once"
    );
    assert_eq!(status.get("accepted").and_then(Json::as_u64), Some(2));
    assert_eq!(status.get("replayed").and_then(Json::as_u64), Some(1));
    assert_eq!(counter("service/ingest_events"), 2);
    assert_eq!(counter("service/ingest_duplicates"), 1);
    assert_eq!(counter("service/what_ifs"), 1);
    assert!(counter("catalog/spills") >= 1);

    // Warm restart: the catalog is on disk, so the second run reloads
    // instead of measuring and reproduces the same resident plan.
    let plan_before = status.get("plan").expect("plan").render();
    let out = run(&[
        "serve",
        "--alpha",
        "0.5",
        "--catalog",
        catalog.to_str().unwrap(),
        "--metrics",
        metrics.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "serve restart should exit 0");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let status = Json::parse(&stdout).expect("restart status JSON");
    assert_eq!(
        status.get("plan").expect("plan").render(),
        plan_before,
        "a reloaded service reproduces the resident plan report"
    );
    let snapshot =
        Json::parse(&std::fs::read_to_string(&metrics).expect("metrics file")).expect("snapshot");
    let reloads = snapshot
        .get("counters")
        .and_then(|c| c.get("catalog/reloads"))
        .and_then(Json::as_u64);
    assert_eq!(reloads, Some(1), "restart reloads, never re-measures");

    std::fs::remove_dir_all(&dir).ok();
}

/// `--metrics -` appends exactly one parseable compact JSON line after
/// the report, on every subcommand.
#[test]
fn metrics_stdout_is_one_trailing_json_line() {
    use mvcloud::json::Json;

    let out = run(&[
        "advise",
        "--rows",
        "500",
        "--queries",
        "3",
        "--alpha",
        "0.5",
        "--metrics",
        "-",
    ]);
    assert!(out.status.success(), "advise --metrics - should exit 0");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let last = stdout.lines().last().expect("nonempty stdout");
    let snapshot = Json::parse(last).expect("trailing line is the snapshot");
    assert_eq!(snapshot.get("version").and_then(Json::as_u64), Some(1));
    let counters = snapshot.get("counters").expect("counters object");
    assert!(
        matches!(counters, Json::Obj(pairs) if !pairs.is_empty()),
        "an advising run must move at least one counter: {last}"
    );
}
