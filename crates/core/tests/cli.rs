//! Exit-code contract for `mvcloud-cli`: user-reachable bad arguments
//! must exit nonzero with an `error:` diagnostic on stderr — never a
//! panic/abort — and a well-formed invocation must exit zero.

use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mvcloud-cli"))
        .args(args)
        .output()
        .expect("spawn mvcloud-cli")
}

/// Asserts a clean, typed CLI failure: status 1, a human diagnostic on
/// stderr, and no panic backtrace anywhere.
fn assert_clean_error(args: &[&str]) {
    let out = run(args);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(1),
        "{args:?} should exit 1, got {:?} (stderr: {stderr})",
        out.status
    );
    assert!(
        stderr.starts_with("error:"),
        "{args:?} stderr should be an `error:` diagnostic, got: {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "{args:?} must not panic: {stderr}"
    );
}

#[test]
fn bad_arguments_are_clean_errors_not_panics() {
    // Zero-sized inputs that used to be reachable panics deeper in the
    // pipeline are now flag errors at the edge.
    assert_clean_error(&["advise", "--rows", "0", "--alpha", "0.5"]);
    assert_clean_error(&["advise", "--instances", "0", "--alpha", "0.5"]);
    assert_clean_error(&["horizon", "--period", "0", "--alpha", "0.5"]);
    assert_clean_error(&["market", "--rows", "0", "--alpha", "0.5"]);
    assert_clean_error(&["sql", "SELECT sum(profit) FROM sales", "--rows", "0"]);
    assert_clean_error(&["calibrate", "--rows", "0", "--alpha", "0.5"]);
    assert_clean_error(&["calibrate", "--epochs", "1", "--alpha", "0.5"]);
    // Typos and contradictions fail loudly instead of falling back.
    assert_clean_error(&["advise", "--bogus", "1", "--alpha", "0.5"]);
    assert_clean_error(&["advise", "--alpha", "2.0"]);
    assert_clean_error(&["advise"]);
    assert_clean_error(&["frobnicate"]);
}

#[test]
fn advise_succeeds_on_a_small_workload() {
    let out = run(&[
        "advise",
        "--rows",
        "500",
        "--queries",
        "3",
        "--alpha",
        "0.5",
    ]);
    assert!(out.status.success(), "advise should exit 0");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("selected"), "summary output: {stdout}");
}

#[test]
fn market_flat_flag_switches_route_but_not_the_answer() {
    let base = [
        "market",
        "--rows",
        "500",
        "--queries",
        "3",
        "--epochs",
        "3",
        "--paths",
        "4",
        "--alpha",
        "0.5",
    ];
    let tree = run(&base);
    assert!(tree.status.success(), "market should exit 0");
    let tree_out = String::from_utf8_lossy(&tree.stdout).to_string();
    assert!(
        tree_out.contains("\"distinct_solves\":"),
        "tree JSON reports its dedup: {tree_out}"
    );
    assert!(
        !tree_out.contains("\"tree_nodes\":null"),
        "default route is the scenario tree: {tree_out}"
    );

    let mut flat_args = base.to_vec();
    flat_args.push("--flat");
    let flat = run(&flat_args);
    assert!(flat.status.success(), "market --flat should exit 0");
    let flat_out = String::from_utf8_lossy(&flat.stdout).to_string();
    assert!(
        flat_out.contains("\"tree_nodes\":null"),
        "--flat skips the tree: {flat_out}"
    );

    // Same seed, same market: the routes must price identically, so
    // everything past the route metadata is byte-identical JSON.
    let strip = |s: &str| {
        s.lines()
            .filter(|l| !l.contains("\"tree_nodes\""))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&tree_out), strip(&flat_out));
}

#[test]
fn calibrate_emits_a_reconciliation_report() {
    let out = run(&[
        "calibrate",
        "--rows",
        "500",
        "--queries",
        "3",
        "--epochs",
        "2",
        "--alpha",
        "0.5",
    ]);
    assert!(out.status.success(), "calibrate should exit 0");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for field in [
        "\"holdout_fitted_rel_error\"",
        "\"holdout_synthetic_rel_error\"",
        "\"fitted\"",
        "\"measured_bill\"",
    ] {
        assert!(stdout.contains(field), "missing {field} in: {stdout}");
    }
}
