//! Analysis domains: a base table, its dimensional lattice, and a workload.
//!
//! Two ready-made domains ship with the reproduction: the paper's
//! supply-chain sales dataset ([`sales_domain`]) and the future-work
//! SSB-like dataset ([`ssb_domain`]). Both are plain data — the advisor
//! works on any [`Domain`] whose lattice prefix-encodes the base table's
//! hierarchy columns.

use mv_engine::{datagen, ssb, SalesConfig, SsbConfig, Table};
use mv_lattice::{Cuboid, Dimension, Lattice, LatticeQuery, LatticeWorkload, Level};

use crate::AdvisorError;

/// A self-contained analysis domain.
#[derive(Debug, Clone)]
pub struct Domain {
    /// Human-readable domain name.
    pub name: String,
    /// The denormalized fact table.
    pub base: Table,
    /// The dimensional lattice over the fact table's hierarchy columns.
    pub lattice: Lattice,
    /// The measure column aggregated by every workload query.
    pub measure: String,
    /// The workload, as lattice-level queries.
    pub workload: LatticeWorkload,
}

impl Domain {
    /// Validates internal consistency (measure exists, workload fits the
    /// lattice, every lattice column exists in the base table).
    pub fn validate(&self) -> Result<(), AdvisorError> {
        if self.base.schema().index_of(&self.measure).is_err() {
            return Err(AdvisorError::MissingMeasure {
                column: self.measure.clone(),
            });
        }
        for q in &self.workload.queries {
            self.lattice.check(&q.cuboid)?;
        }
        for c in self.lattice.all_cuboids() {
            for col in self.lattice.key_columns(&c) {
                self.base
                    .schema()
                    .index_of(&col)
                    .map_err(AdvisorError::from)?;
            }
        }
        if self.workload.is_empty() {
            return Err(AdvisorError::EmptyWorkload);
        }
        Ok(())
    }
}

/// The paper's running-example domain: `rows` of generated sales, the
/// 16-cuboid time×geography lattice, and the first `n_queries` of the
/// paper's 10-query workload, each run `frequency` times per period.
pub fn sales_domain(rows: usize, n_queries: usize, frequency: f64, seed: u64) -> Domain {
    let cfg = SalesConfig {
        rows,
        seed,
        ..SalesConfig::default()
    };
    let base = datagen::generate_sales(&cfg);
    let lattice = Lattice::paper_running_example();
    let mut workload = mv_lattice::paper_workload(&lattice).prefix(n_queries);
    for q in &mut workload.queries {
        q.frequency = frequency;
    }
    Domain {
        name: "sales".to_string(),
        base,
        lattice,
        measure: "profit".to_string(),
        workload,
    }
}

/// The SSB-like domain (the paper's future-work benchmark): three
/// dimensions (date, customer geography, part taxonomy) and the 13-query
/// flight workload.
pub fn ssb_domain(rows: usize, frequency: f64, seed: u64) -> Domain {
    let base = ssb::generate_lineorder(&SsbConfig { rows, seed });
    let date = Dimension::new(
        "date",
        vec![
            Dimension::all_level(),
            Level::new("year", &["d_year"], 7),
            Level::new("month", &["d_year", "d_month"], 7 * 12),
            Level::new("day", &["d_year", "d_month", "d_day"], 7 * 365),
        ],
    )
    .expect("ssb date dimension is valid");
    let customer = Dimension::new(
        "customer",
        vec![
            Dimension::all_level(),
            Level::new("region", &["c_region"], 5),
            Level::new("nation", &["c_region", "c_nation"], 15),
            Level::new("city", &["c_region", "c_nation", "c_city"], 60),
        ],
    )
    .expect("ssb customer dimension is valid");
    let part = Dimension::new(
        "part",
        vec![
            Dimension::all_level(),
            Level::new("mfgr", &["p_mfgr"], 3),
            Level::new("category", &["p_mfgr", "p_category"], 12),
            Level::new("brand", &["p_mfgr", "p_category", "p_brand"], 96),
        ],
    )
    .expect("ssb part dimension is valid");
    let lattice = Lattice::new(vec![date, customer, part]).expect("non-empty");

    // Map the 13 SSB flight queries onto lattice cuboids by their group-by
    // column sets.
    let queries: Vec<LatticeQuery> = ssb::ssb_queries()
        .iter()
        .map(|q| {
            let cuboid: Cuboid = lattice
                .cuboid_for_columns(&q.group_by)
                .expect("ssb queries align with the ssb lattice");
            LatticeQuery {
                name: q.name.clone(),
                cuboid,
                frequency,
            }
        })
        .collect();
    let workload =
        LatticeWorkload::new(&lattice, queries).expect("ssb workload fits the ssb lattice");
    Domain {
        name: "ssb".to_string(),
        base,
        lattice,
        measure: "revenue".to_string(),
        workload,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sales_domain_validates() {
        let d = sales_domain(500, 5, 1.0, 42);
        d.validate().unwrap();
        assert_eq!(d.workload.len(), 5);
        assert_eq!(d.lattice.num_cuboids(), 16);
        assert_eq!(d.base.num_rows(), 500);
    }

    #[test]
    fn ssb_domain_validates() {
        let d = ssb_domain(400, 2.0, 7);
        d.validate().unwrap();
        assert_eq!(d.workload.len(), 13);
        assert_eq!(d.lattice.num_cuboids(), 64);
        assert!(d.workload.queries.iter().all(|q| q.frequency == 2.0));
    }

    #[test]
    fn bad_measure_detected() {
        let mut d = sales_domain(100, 3, 1.0, 1);
        d.measure = "revenue".to_string();
        assert!(matches!(
            d.validate(),
            Err(AdvisorError::MissingMeasure { .. })
        ));
    }

    #[test]
    fn empty_workload_detected() {
        let mut d = sales_domain(100, 3, 1.0, 1);
        d.workload = d.workload.prefix(0);
        assert_eq!(d.validate(), Err(AdvisorError::EmptyWorkload));
    }
}
