//! The resident advisor service: ingest traffic, watch for drift,
//! re-plan warm.
//!
//! Every solve elsewhere in the crate is a batch call over a fully
//! -specified workload. [`AdvisorService`] instead *lives alongside*
//! the warehouse, the setting where the paper's cost models pay off
//! continuously:
//!
//! 1. **Persistent catalog** — measured charges live in a
//!    [`CandidateCatalog`] that spills to disk atomically and reloads
//!    bit-identically ([`crate::catalog`]), so a restart never re-pays
//!    the measurement pipeline.
//! 2. **Stream ingest behind a high-water mark** — [`AdvisorService::ingest`]
//!    folds `(timestamp, query_id)`-stamped query events into per-query
//!    counts, skipping anything at or below the catalog's
//!    [`HighWaterMark`]; replaying a batch is therefore idempotent.
//! 3. **Drift detection + warm re-solve** — observed counts define the
//!    current workload frequency distribution; when its L1 distance
//!    from the resident plan's distribution crosses
//!    [`ServiceConfig::drift_threshold`], the service re-costs the
//!    workload and re-solves **without rebuilding the evaluator**: one
//!    [`IncrementalEvaluator::retarget`] (the O(m) model swap) plus
//!    local search over the standing answer tables. `mv_obs` counters
//!    pin the contract: a drift re-solve moves `evaluator/retarget`,
//!    never `evaluator/build`.
//! 4. **Concurrent what-ifs with snapshot isolation** — each
//!    [`AdvisorService::what_if`] runs on an [`IncrementalEvaluator::fork`]
//!    of the resident evaluator (copy-on-write problem, refcounted
//!    selection words), so any number of concurrent explorations can
//!    flip candidates without perturbing the resident plan
//!    (property-tested in `tests/service.rs`).
//!
//! The resident plan is always derived by one canonical procedure —
//! greedy fill from empty plus a bounded local-search polish on the
//! resident evaluator — so a service reloaded from a spilled catalog
//! reproduces the pre-restart plan (and its report, bit for bit)
//! whenever the spill happened at a re-solve point (the service's last
//! re-solve covered the spilled counts).

use std::collections::HashMap;
use std::path::Path;

use mv_cost::{CloudCostModel, CostContext};
use mv_select::{local_search, Evaluation, IncrementalEvaluator, Scenario, SelectionProblem};

use crate::catalog::{CandidateCatalog, HighWaterMark};
use crate::json::Json;
use crate::{Advisor, AdvisorConfig, AdvisorError};

/// Service-loop tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// The scenario the resident plan optimizes (MV1/MV2/MV3).
    pub scenario: Scenario,
    /// L1 distance between the plan's and the observed frequency
    /// *distributions* (each normalized to sum 1; the distance ranges
    /// over [0, 2]) above which ingest triggers a warm re-solve.
    pub drift_threshold: f64,
    /// Local-search move budget for each re-solve's polish pass.
    pub resolve_moves: usize,
}

impl ServiceConfig {
    /// Defaults: re-solve when a quarter of the probability mass moved.
    pub fn new(scenario: Scenario) -> ServiceConfig {
        ServiceConfig {
            scenario,
            drift_threshold: 0.25,
            resolve_moves: 64,
        }
    }
}

/// One observed query execution in the ingest stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryEvent {
    /// Event timestamp (opaque monotone clock; only compared).
    pub timestamp: u64,
    /// Unique event id, the tiebreaker within a timestamp.
    pub query_id: u64,
    /// The workload query that ran (must match a catalog workload name).
    pub query: String,
}

/// What one [`AdvisorService::ingest`] batch did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IngestOutcome {
    /// Events above the high-water mark, folded into the counts.
    pub accepted: u64,
    /// Events at or below the mark, skipped (idempotent replay).
    pub replayed: u64,
    /// L1 frequency drift after the batch (post-re-solve it is 0).
    pub drift: f64,
    /// Whether the batch pushed drift over the threshold and the
    /// resident plan was re-solved.
    pub resolved: bool,
}

/// The resident advisor: catalog + warm evaluator + current plan.
#[derive(Debug)]
pub struct AdvisorService {
    advisor_config: AdvisorConfig,
    service_config: ServiceConfig,
    catalog: CandidateCatalog,
    query_index: HashMap<String, usize>,
    evaluator: IncrementalEvaluator<'static>,
    baseline: Evaluation,
    plan: Evaluation,
    /// The frequencies the resident plan was solved against.
    plan_frequencies: Vec<f64>,
    resolves: u64,
    accepted: u64,
    replayed: u64,
}

impl AdvisorService {
    /// Starts a service over a freshly built [`Advisor`] (no disk
    /// involved until [`AdvisorService::spill`]).
    pub fn from_advisor(
        advisor: &Advisor,
        service_config: ServiceConfig,
    ) -> Result<AdvisorService, AdvisorError> {
        let catalog = CandidateCatalog::new(
            advisor.problem().model().context().workload.clone(),
            advisor.problem().candidates().to_vec(),
        );
        AdvisorService::from_catalog(catalog, advisor.config().clone(), service_config)
    }

    /// Restarts a service from a spilled catalog: no re-measurement —
    /// the selection problem is rebuilt from the catalog's charges
    /// (bit-identical to the problem that was spilled) and re-solved at
    /// the catalog's stream position.
    pub fn open(
        path: &Path,
        advisor_config: AdvisorConfig,
        service_config: ServiceConfig,
    ) -> Result<AdvisorService, AdvisorError> {
        let catalog = CandidateCatalog::load(path)?;
        AdvisorService::from_catalog(catalog, advisor_config, service_config)
    }

    /// The one constructor: problem from catalog charges, resident
    /// evaluator built once, plan derived by the canonical procedure.
    pub fn from_catalog(
        catalog: CandidateCatalog,
        advisor_config: AdvisorConfig,
        service_config: ServiceConfig,
    ) -> Result<AdvisorService, AdvisorError> {
        if catalog.workload.is_empty() {
            return Err(AdvisorError::EmptyWorkload);
        }
        // The model prices the workload at the catalog's stream
        // position (counts-adjusted frequencies) — a reload must land
        // on the same model a running service had after its last
        // re-solve, not on the pre-traffic one.
        let charges = current_charges(&catalog);
        let plan_frequencies: Vec<f64> = charges.iter().map(|q| q.frequency).collect();
        let model = cost_model_for(&advisor_config, charges)?;
        let problem = SelectionProblem::new(model, catalog.candidates.clone());
        let query_index = catalog
            .workload
            .iter()
            .enumerate()
            .map(|(i, q)| (q.name.clone(), i))
            .collect();
        // The service's ONE evaluator build — everything after this is
        // retarget/fork territory.
        let mut evaluator = IncrementalEvaluator::from_problem(problem);
        let baseline = evaluator.problem().baseline();
        let plan = solve_resident(&mut evaluator, &service_config, &baseline);
        Ok(AdvisorService {
            advisor_config,
            service_config,
            catalog,
            query_index,
            evaluator,
            baseline,
            plan,
            plan_frequencies,
            resolves: 0,
            accepted: 0,
            replayed: 0,
        })
    }

    /// Folds a batch of stream events into the workload counts.
    ///
    /// Events at or below the catalog's high-water mark are skipped
    /// (`replayed`), so re-delivering a batch — a crash-recovery replay,
    /// an at-least-once stream — is idempotent. Events must arrive in
    /// `(timestamp, query_id)` order to all be accepted; an out-of-order
    /// event behind the mark is indistinguishable from a replay and is
    /// skipped. An unknown query name fails the whole batch before any
    /// state changes.
    ///
    /// After folding, the L1 drift between the resident plan's
    /// frequency distribution and the observed one is evaluated; at or
    /// above [`ServiceConfig::drift_threshold`] the plan is re-solved
    /// warm ([`AdvisorService::resolve`]).
    pub fn ingest(&mut self, events: &[QueryEvent]) -> Result<IngestOutcome, AdvisorError> {
        mv_obs::span!("service/ingest");
        // Validate the whole batch first: ingest is all-or-nothing.
        let indices: Vec<Option<usize>> = events
            .iter()
            .map(|e| {
                let mark = HighWaterMark {
                    timestamp: e.timestamp,
                    query_id: e.query_id,
                };
                if mark <= self.catalog.hwm {
                    return Ok(None);
                }
                match self.query_index.get(&e.query) {
                    Some(&i) => Ok(Some(i)),
                    None => Err(AdvisorError::UnknownQuery {
                        name: e.query.clone(),
                    }),
                }
            })
            .collect::<Result<_, AdvisorError>>()?;
        let mut accepted = 0u64;
        let mut replayed = 0u64;
        for (e, index) in events.iter().zip(indices) {
            let mark = HighWaterMark {
                timestamp: e.timestamp,
                query_id: e.query_id,
            };
            // Re-check against the advancing mark: a duplicate *within*
            // the batch is a replay too.
            match index.filter(|_| mark > self.catalog.hwm) {
                Some(i) => {
                    self.catalog.counts[i] += 1;
                    self.catalog.hwm = mark;
                    accepted += 1;
                }
                None => replayed += 1,
            }
        }
        self.accepted += accepted;
        self.replayed += replayed;
        mv_obs::add(mv_obs::Counter::ServiceIngestEvents, accepted);
        mv_obs::add(mv_obs::Counter::ServiceIngestDuplicates, replayed);
        let drift = self.drift();
        let resolved = accepted > 0 && drift >= self.service_config.drift_threshold;
        if resolved {
            self.resolve()?;
        }
        Ok(IngestOutcome {
            accepted,
            replayed,
            drift: if resolved { self.drift() } else { drift },
            resolved,
        })
    }

    /// L1 distance between the resident plan's frequency distribution
    /// and the currently observed one (both normalized to sum 1; range
    /// [0, 2]). Zero while no events have been observed, and zero
    /// immediately after a re-solve.
    pub fn drift(&self) -> f64 {
        let observed: Vec<f64> = current_charges(&self.catalog)
            .iter()
            .map(|q| q.frequency)
            .collect();
        l1_distribution_distance(&self.plan_frequencies, &observed)
    }

    /// Re-solves the resident plan against the observed frequencies,
    /// warm: the standing evaluator is retargeted to the re-costed
    /// model (no rebuild — the sparse answer tables survive, only the
    /// pricing context swaps) and the canonical solve procedure runs on
    /// it.
    pub fn resolve(&mut self) -> Result<&Evaluation, AdvisorError> {
        mv_obs::span!("service/resolve");
        let charges = current_charges(&self.catalog);
        self.plan_frequencies = charges.iter().map(|q| q.frequency).collect();
        let model = cost_model_for(&self.advisor_config, charges)?;
        self.evaluator.retarget(model);
        self.baseline = self.evaluator.problem().baseline();
        self.plan = solve_resident(&mut self.evaluator, &self.service_config, &self.baseline);
        self.resolves += 1;
        mv_obs::inc(mv_obs::Counter::ServiceDriftResolves);
        Ok(&self.plan)
    }

    /// Runs `explore` on a fork of the resident evaluator: snapshot
    /// isolation over the copy-on-write problem. The fork sees the
    /// resident plan's selection and model; nothing it flips, splices
    /// or retargets reaches the resident state. `&self` — any number of
    /// what-ifs may run concurrently.
    pub fn what_if<R>(&self, explore: impl FnOnce(&mut IncrementalEvaluator<'static>) -> R) -> R {
        mv_obs::inc(mv_obs::Counter::ServiceWhatIfs);
        let mut fork = self.evaluator.fork();
        explore(&mut fork)
    }

    /// Convenience what-if: toggle the given candidates relative to the
    /// resident plan and evaluate.
    pub fn what_if_toggle(&self, toggles: &[usize]) -> Evaluation {
        self.what_if(|ev| {
            for &k in toggles {
                if ev.is_selected(k) {
                    ev.unflip(k);
                } else {
                    ev.flip(k);
                }
            }
            ev.snapshot()
        })
    }

    /// Durably spills the catalog (measured charges + counts + HWM) —
    /// atomic; see [`CandidateCatalog::spill`].
    pub fn spill(&self, path: &Path) -> Result<(), AdvisorError> {
        self.catalog.spill(path)
    }

    /// The catalog (charges, counts, high-water mark).
    pub fn catalog(&self) -> &CandidateCatalog {
        &self.catalog
    }

    /// The resident plan's evaluation.
    pub fn plan(&self) -> &Evaluation {
        &self.plan
    }

    /// The baseline (no views) evaluation of the current model.
    pub fn baseline(&self) -> &Evaluation {
        &self.baseline
    }

    /// Warm re-solves performed so far.
    pub fn resolves(&self) -> u64 {
        self.resolves
    }

    /// Events accepted / skipped-as-replayed so far.
    pub fn ingest_totals(&self) -> (u64, u64) {
        (self.accepted, self.replayed)
    }

    /// The names of the resident plan's selected views.
    pub fn selected_labels(&self) -> Vec<String> {
        self.plan
            .selection
            .ones()
            .map(|k| self.catalog.candidates[k].name.clone())
            .collect()
    }

    /// The resident plan's report: scenario, selection, predicted
    /// time/cost, stream position. Deterministic in the catalog and the
    /// configs — a service reloaded from a spill taken at a re-solve
    /// point renders this byte-identically (pinned in
    /// `tests/service.rs`).
    pub fn plan_report(&self) -> Json {
        Json::obj(vec![
            ("scenario", Json::str(self.service_config.scenario.label())),
            (
                "selected",
                Json::Arr(self.selected_labels().into_iter().map(Json::Str).collect()),
            ),
            ("time_hours", Json::Num(self.plan.time.value())),
            ("cost", Json::Num(self.plan.cost().to_dollars_f64())),
            ("baseline_time_hours", Json::Num(self.baseline.time.value())),
            (
                "baseline_cost",
                Json::Num(self.baseline.cost().to_dollars_f64()),
            ),
            ("drift", Json::Num(self.drift())),
            (
                "hwm",
                Json::obj(vec![
                    ("timestamp", Json::UInt(self.catalog.hwm.timestamp)),
                    ("query_id", Json::UInt(self.catalog.hwm.query_id)),
                ]),
            ),
            (
                "frequencies",
                Json::Arr(
                    self.plan_frequencies
                        .iter()
                        .map(|&f| Json::Num(f))
                        .collect(),
                ),
            ),
        ])
    }

    /// The service-session status: the plan report plus loop counters
    /// (which are *session* state, deliberately outside the
    /// reload-identical plan report).
    pub fn status_json(&self) -> Json {
        Json::obj(vec![
            ("plan", self.plan_report()),
            ("accepted", Json::UInt(self.accepted)),
            ("replayed", Json::UInt(self.replayed)),
            ("resolves", Json::UInt(self.resolves)),
            (
                "candidates",
                Json::UInt(self.catalog.candidates.len() as u64),
            ),
        ])
    }
}

/// The canonical resident-plan procedure: greedy fill from the empty
/// selection, then a bounded best-improvement polish. Deterministic in
/// the problem, so first-build and reload-and-rebuild agree.
fn solve_resident(
    evaluator: &mut IncrementalEvaluator<'static>,
    config: &ServiceConfig,
    baseline: &Evaluation,
) -> Evaluation {
    for k in 0..evaluator.problem().len() {
        if evaluator.is_selected(k) {
            evaluator.unflip(k);
        }
    }
    local_search::greedy_fill(evaluator, config.scenario, baseline);
    local_search::improve(evaluator, config.scenario, baseline, config.resolve_moves)
}

/// The workload charges at the catalog's stream position: measured
/// per-query sizes/times unchanged, frequencies re-derived from the
/// observed counts. While no events have been observed the original
/// frequencies stand; afterwards the observed distribution carries the
/// workload's total frequency mass (so bills stay comparable while the
/// *mix* tracks traffic).
fn current_charges(catalog: &CandidateCatalog) -> Vec<mv_cost::QueryCharge> {
    let total: u64 = catalog.counts.iter().sum();
    let mass: f64 = catalog.workload.iter().map(|q| q.frequency).sum();
    catalog
        .workload
        .iter()
        .zip(&catalog.counts)
        .map(|(q, &count)| {
            let mut charge = q.clone();
            if total > 0 {
                charge.frequency = mass * count as f64 / total as f64;
            }
            charge
        })
        .collect()
}

/// L1 distance between two frequency vectors' normalized distributions.
fn l1_distribution_distance(a: &[f64], b: &[f64]) -> f64 {
    let (sa, sb): (f64, f64) = (a.iter().sum(), b.iter().sum());
    if sa <= 0.0 || sb <= 0.0 {
        return 0.0;
    }
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x / sa - y / sb).abs())
        .sum()
}

/// Rebuilds the paper's cost model from the advisor configuration and
/// the given workload charges — the same [`CostContext`] the
/// measurement pipeline assembles, minus any need for the engine or the
/// domain. Bit-identical inputs produce a bit-identical model.
fn cost_model_for(
    config: &AdvisorConfig,
    workload: Vec<mv_cost::QueryCharge>,
) -> Result<CloudCostModel, AdvisorError> {
    let instance = config
        .pricing
        .compute
        .instance(&config.instance)
        .map_err(|_| AdvisorError::UnknownInstance {
            name: config.instance.clone(),
        })?
        .clone();
    Ok(CloudCostModel::new(CostContext {
        pricing: config.pricing.clone(),
        instance,
        nb_instances: config.nb_instances,
        months: config.months,
        dataset_size: config.simulated_dataset,
        inserts: vec![],
        workload,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sales_domain;

    fn small_service() -> AdvisorService {
        let domain = sales_domain(1_000, 3, 1.0, 42);
        let advisor = Advisor::build(domain, AdvisorConfig::default()).unwrap();
        AdvisorService::from_advisor(
            &advisor,
            ServiceConfig::new(Scenario::tradeoff_normalized(0.5)),
        )
        .unwrap()
    }

    fn events(specs: &[(u64, u64, &str)]) -> Vec<QueryEvent> {
        specs
            .iter()
            .map(|&(timestamp, query_id, query)| QueryEvent {
                timestamp,
                query_id,
                query: query.to_string(),
            })
            .collect()
    }

    #[test]
    fn ingest_is_hwm_idempotent() {
        let mut svc = small_service();
        let batch = events(&[(10, 1, "Q1"), (10, 2, "Q2"), (11, 1, "Q1")]);
        let first = svc.ingest(&batch).unwrap();
        assert_eq!(first.accepted, 3);
        assert_eq!(first.replayed, 0);
        let counts_after = svc.catalog().counts.clone();
        let hwm_after = svc.catalog().hwm;
        // Replaying the exact same batch (at-least-once delivery) is a
        // no-op: everything is at or below the mark.
        let again = svc.ingest(&batch).unwrap();
        assert_eq!(again.accepted, 0);
        assert_eq!(again.replayed, 3);
        assert_eq!(svc.catalog().counts, counts_after);
        assert_eq!(svc.catalog().hwm, hwm_after);
        assert!(!again.resolved, "a replayed batch never re-solves");
    }

    #[test]
    fn duplicate_within_a_batch_is_a_replay() {
        let mut svc = small_service();
        let out = svc
            .ingest(&events(&[(5, 1, "Q1"), (5, 1, "Q2"), (5, 2, "Q2")]))
            .unwrap();
        assert_eq!(out.accepted, 2);
        assert_eq!(out.replayed, 1);
        assert_eq!(svc.catalog().counts, vec![1, 1, 0]);
    }

    #[test]
    fn unknown_query_fails_the_whole_batch() {
        let mut svc = small_service();
        let err = svc.ingest(&events(&[(1, 1, "Q1"), (1, 2, "Q99")]));
        assert!(matches!(err, Err(AdvisorError::UnknownQuery { .. })));
        // All-or-nothing: the valid prefix was not applied either.
        assert_eq!(svc.catalog().counts, vec![0, 0, 0]);
        assert_eq!(svc.catalog().hwm, HighWaterMark::default());
    }

    #[test]
    fn drift_is_zero_without_traffic_and_after_resolve() {
        let mut svc = small_service();
        assert_eq!(svc.drift(), 0.0);
        // Uniform traffic matches the uniform plan distribution: no
        // drift however many events arrive.
        let out = svc
            .ingest(&events(&[(1, 1, "Q1"), (1, 2, "Q2"), (1, 3, "Q3")]))
            .unwrap();
        assert!(out.drift < 1e-12, "{}", out.drift);
        assert!(!out.resolved);
        // Skewed traffic drifts, re-solves, and drift resets to 0.
        let skew: Vec<QueryEvent> = (0..30)
            .map(|i| QueryEvent {
                timestamp: 2,
                query_id: i + 1,
                query: "Q1".to_string(),
            })
            .collect();
        let out = svc.ingest(&skew).unwrap();
        assert!(out.resolved);
        assert_eq!(svc.resolves(), 1);
        assert!(svc.drift() < 1e-12, "{}", svc.drift());
    }

    #[test]
    fn drift_resolve_retargets_without_rebuilding() {
        let guard = mv_obs::CounterGuard::scoped();
        let mut svc = small_service();
        let base_builds = guard.delta(mv_obs::Counter::EvaluatorBuild);
        assert_eq!(base_builds, 1, "the service builds its evaluator once");
        let skew: Vec<QueryEvent> = (0..40)
            .map(|i| QueryEvent {
                timestamp: 1,
                query_id: i + 1,
                query: "Q2".to_string(),
            })
            .collect();
        let out = svc.ingest(&skew).unwrap();
        assert!(out.resolved, "skewed traffic must trigger a re-solve");
        // The ISSUE's contract: drift re-solves are retarget-only.
        assert_eq!(
            guard.delta(mv_obs::Counter::EvaluatorBuild),
            base_builds,
            "a drift re-solve must not rebuild the evaluator"
        );
        assert!(guard.delta(mv_obs::Counter::EvaluatorRetarget) > 0);
        assert_eq!(guard.delta(mv_obs::Counter::ServiceDriftResolves), 1);
    }

    #[test]
    fn what_ifs_never_perturb_the_resident_plan() {
        let svc = small_service();
        let before = svc.plan().clone();
        let n = svc.catalog().candidates.len();
        for k in 0..n {
            let _ = svc.what_if_toggle(&[k]);
        }
        let toggled = svc.what_if_toggle(&[0, 1, 2]);
        assert_ne!(toggled.selection, before.selection);
        assert_eq!(svc.plan(), &before);
        // The resident evaluator still evaluates to the same plan.
        let resident = svc.what_if(|ev| ev.snapshot());
        assert_eq!(resident, before);
    }

    #[test]
    fn frequencies_preserve_total_mass() {
        let catalog = {
            let domain = sales_domain(800, 3, 2.0, 7);
            let advisor = Advisor::build(domain, AdvisorConfig::default()).unwrap();
            let mut c = CandidateCatalog::new(
                advisor.problem().model().context().workload.clone(),
                advisor.problem().candidates().to_vec(),
            );
            c.counts = vec![3, 1, 0];
            c
        };
        let charges = current_charges(&catalog);
        let mass: f64 = charges.iter().map(|q| q.frequency).sum();
        assert!((mass - 6.0).abs() < 1e-12, "3 queries × frequency 2");
        assert!((charges[0].frequency - 4.5).abs() < 1e-12);
        assert_eq!(charges[2].frequency, 0.0);
    }
}
