//! The persistent candidate catalog (`mv-catalog`): measured charges on
//! disk, behind a stream high-water mark.
//!
//! Measuring a candidate is the expensive step of the pipeline — every
//! [`crate::Advisor::build`] materializes each cuboid in the engine and
//! meters build/size/maintenance plus per-query answer times. A
//! resident advisor ([`crate::service::AdvisorService`]) must survive a
//! restart *without* paying that again, so the measured state spills to
//! disk here: the workload's [`QueryCharge`]s, every candidate's
//! [`ViewCharge`] (sparse answer profile included), the stream counts
//! accumulated so far, and the `(timestamp, query_id)` high-water mark
//! the ingest loop replays behind.
//!
//! Two properties carry the service's correctness argument:
//!
//! * **Bit-identical reload.** Charges are serialized through
//!   [`crate::json`]'s `Num` variant, whose `{}` float rendering is
//!   shortest-roundtrip, so `load(spill(c)) == c` exactly — a reloaded
//!   catalog rebuilds the *same* [`SelectionProblem`] and therefore the
//!   same resident plan and report (asserted in `tests/service.rs`).
//! * **Atomic spill.** [`CandidateCatalog::spill`] writes through
//!   [`crate::json::write_atomic`] (temp file + rename), so a crash
//!   mid-spill leaves the previous durable catalog intact and the HWM
//!   never advances past durably-written state (crash-recovery test in
//!   `tests/service.rs`).
//!
//! Engine-side [`mv_engine::MaterializedView`]s are deliberately *not*
//! persisted: the catalog restores the costing problem, not the data
//! plane — re-materializing a chosen selection stays an explicit,
//! priced step.

use std::path::Path;

use mv_cost::{QueryCharge, ViewCharge};
use mv_pricing::Placement;
use mv_units::{Gb, Hours};

use crate::json::{write_atomic, Json};
use crate::AdvisorError;

/// Catalog file schema version (bumped on incompatible layout change).
pub const CATALOG_VERSION: u64 = 1;

/// The ingest stream position: events at or below this mark have
/// already been folded into the catalog's counts. Ordered
/// lexicographically by `(timestamp, query_id)`, matching a stream that
/// is timestamp-ordered with the event id as tiebreaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct HighWaterMark {
    /// Event timestamp (opaque monotone clock; seconds, ticks — the
    /// catalog only compares).
    pub timestamp: u64,
    /// Event id within the timestamp (unique per event).
    pub query_id: u64,
}

/// The durable advisor state: measured workload + candidate charges,
/// stream counts, and the high-water mark they are current to.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateCatalog {
    /// The measured workload charges (frequencies as originally built).
    pub workload: Vec<QueryCharge>,
    /// Stream events observed per workload query (aligned with
    /// `workload`), cumulative since the catalog was created.
    pub counts: Vec<u64>,
    /// Every measured candidate's cost-model attributes, in problem
    /// candidate order.
    pub candidates: Vec<ViewCharge>,
    /// The stream position `counts` is current to.
    pub hwm: HighWaterMark,
}

impl CandidateCatalog {
    /// A fresh catalog over measured charges: zero counts, zero HWM.
    pub fn new(workload: Vec<QueryCharge>, candidates: Vec<ViewCharge>) -> CandidateCatalog {
        let counts = vec![0; workload.len()];
        CandidateCatalog {
            workload,
            counts,
            candidates,
            hwm: HighWaterMark::default(),
        }
    }

    /// Serializes the catalog. All floats go through [`Json::Num`]
    /// (shortest-roundtrip — see the module docs).
    pub fn to_json(&self) -> Json {
        let workload = Json::Arr(
            self.workload
                .iter()
                .map(|q| {
                    Json::obj(vec![
                        ("name", Json::str(q.name.clone())),
                        ("result_size_gb", Json::Num(q.result_size.value())),
                        ("base_time_hours", Json::Num(q.base_time.value())),
                        ("frequency", Json::Num(q.frequency)),
                    ])
                })
                .collect(),
        );
        let candidates = Json::Arr(
            self.candidates
                .iter()
                .map(|c| {
                    let answers = Json::Arr(
                        c.profile
                            .query_ids()
                            .iter()
                            .zip(c.profile.times())
                            .map(|(&q, t)| {
                                Json::Arr(vec![Json::UInt(q as u64), Json::Num(t.value())])
                            })
                            .collect(),
                    );
                    Json::obj(vec![
                        ("name", Json::str(c.name.clone())),
                        ("size_gb", Json::Num(c.size.value())),
                        (
                            "materialization_hours",
                            Json::Num(c.materialization.value()),
                        ),
                        ("maintenance_hours", Json::Num(c.maintenance.value())),
                        ("answers", answers),
                        (
                            "placement",
                            Json::str(match c.placement {
                                Placement::Reserved => "reserved",
                                Placement::Spot => "spot",
                            }),
                        ),
                    ])
                })
                .collect(),
        );
        Json::obj(vec![
            ("version", Json::UInt(CATALOG_VERSION)),
            (
                "hwm",
                Json::obj(vec![
                    ("timestamp", Json::UInt(self.hwm.timestamp)),
                    ("query_id", Json::UInt(self.hwm.query_id)),
                ]),
            ),
            ("workload", workload),
            (
                "counts",
                Json::Arr(self.counts.iter().map(|&c| Json::UInt(c)).collect()),
            ),
            ("candidates", candidates),
        ])
    }

    /// Decodes a catalog document (inverse of [`CandidateCatalog::to_json`]).
    pub fn from_json(doc: &Json) -> Result<CandidateCatalog, String> {
        let version = doc
            .get("version")
            .and_then(Json::as_u64)
            .ok_or("missing version")?;
        if version != CATALOG_VERSION {
            return Err(format!(
                "unsupported catalog version {version} (expected {CATALOG_VERSION})"
            ));
        }
        let hwm_doc = doc.get("hwm").ok_or("missing hwm")?;
        let hwm = HighWaterMark {
            timestamp: hwm_doc
                .get("timestamp")
                .and_then(Json::as_u64)
                .ok_or("hwm.timestamp")?,
            query_id: hwm_doc
                .get("query_id")
                .and_then(Json::as_u64)
                .ok_or("hwm.query_id")?,
        };
        let workload: Vec<QueryCharge> = doc
            .get("workload")
            .and_then(Json::as_array)
            .ok_or("missing workload")?
            .iter()
            .enumerate()
            .map(|(i, q)| {
                Ok(QueryCharge {
                    name: q
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or(format!("workload[{i}].name"))?
                        .to_string(),
                    result_size: size_field(q, "result_size_gb", i)?,
                    base_time: hours_field(q, "base_time_hours", i)?,
                    frequency: finite_field(q, "frequency", i)?,
                })
            })
            .collect::<Result<_, String>>()?;
        let counts: Vec<u64> = doc
            .get("counts")
            .and_then(Json::as_array)
            .ok_or("missing counts")?
            .iter()
            .enumerate()
            .map(|(i, c)| c.as_u64().ok_or(format!("counts[{i}]")))
            .collect::<Result<_, String>>()?;
        if counts.len() != workload.len() {
            return Err(format!(
                "counts length {} does not match workload length {}",
                counts.len(),
                workload.len()
            ));
        }
        let candidates: Vec<ViewCharge> = doc
            .get("candidates")
            .and_then(Json::as_array)
            .ok_or("missing candidates")?
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let name = c
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or(format!("candidates[{i}].name"))?;
                let mut charge = ViewCharge::new(
                    name,
                    size_field(c, "size_gb", i)?,
                    hours_field(c, "materialization_hours", i)?,
                    hours_field(c, "maintenance_hours", i)?,
                    workload.len(),
                );
                for (j, pair) in c
                    .get("answers")
                    .and_then(Json::as_array)
                    .ok_or(format!("candidates[{i}].answers"))?
                    .iter()
                    .enumerate()
                {
                    let entry = pair
                        .as_array()
                        .filter(|p| p.len() == 2)
                        .ok_or(format!("candidates[{i}].answers[{j}]"))?;
                    let q = entry[0]
                        .as_u64()
                        .filter(|&q| (q as usize) < workload.len())
                        .ok_or(format!("candidates[{i}].answers[{j}] query index"))?;
                    let t = entry[1]
                        .as_f64()
                        .filter(|t| t.is_finite() && *t >= 0.0)
                        .ok_or(format!("candidates[{i}].answers[{j}] time"))?;
                    charge = charge.answers(q as usize, Hours::new(t));
                }
                let placement = match c.get("placement").and_then(Json::as_str) {
                    Some("reserved") => Placement::Reserved,
                    Some("spot") => Placement::Spot,
                    other => return Err(format!("candidates[{i}].placement: {other:?}")),
                };
                Ok(charge.placed(placement))
            })
            .collect::<Result<_, String>>()?;
        Ok(CandidateCatalog {
            workload,
            counts,
            candidates,
            hwm,
        })
    }

    /// Durably writes the catalog to `path` (atomic temp-file + rename:
    /// a reader never observes a partial catalog, and a crash mid-spill
    /// leaves the previous durable state in place).
    pub fn spill(&self, path: &Path) -> Result<(), AdvisorError> {
        mv_obs::span!("catalog/spill");
        let doc = format!("{}\n", self.to_json().render_pretty());
        write_atomic(path, &doc).map_err(|e| AdvisorError::CatalogIo {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        mv_obs::inc(mv_obs::Counter::CatalogSpills);
        Ok(())
    }

    /// Reloads a catalog spilled by [`CandidateCatalog::spill`].
    pub fn load(path: &Path) -> Result<CandidateCatalog, AdvisorError> {
        mv_obs::span!("catalog/reload");
        let raw = std::fs::read_to_string(path).map_err(|e| AdvisorError::CatalogIo {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        let corrupt = |message: String| AdvisorError::CatalogCorrupt {
            path: path.display().to_string(),
            message,
        };
        let doc = Json::parse(&raw).map_err(corrupt)?;
        let catalog = CandidateCatalog::from_json(&doc).map_err(corrupt)?;
        mv_obs::inc(mv_obs::Counter::CatalogReloads);
        Ok(catalog)
    }
}

/// Reads object field `key` as a finite f64 (the parser already rejects
/// non-finite literals; this guards hand-edited documents too).
fn finite_field(obj: &Json, key: &str, index: usize) -> Result<f64, String> {
    obj.get(key)
        .and_then(Json::as_f64)
        .filter(|v| v.is_finite())
        .ok_or(format!("[{index}].{key}: missing or non-finite"))
}

/// Reads a non-negative size field (`Gb::new` would panic on negative
/// input — a corrupt file must be an error instead).
fn size_field(obj: &Json, key: &str, index: usize) -> Result<Gb, String> {
    let v = finite_field(obj, key, index)?;
    if v < 0.0 {
        return Err(format!("[{index}].{key}: negative size {v}"));
    }
    Ok(Gb::new(v))
}

/// Reads a non-negative duration field (same rationale as [`size_field`]).
fn hours_field(obj: &Json, key: &str, index: usize) -> Result<Hours, String> {
    let v = finite_field(obj, key, index)?;
    if v < 0.0 {
        return Err(format!("[{index}].{key}: negative duration {v}"));
    }
    Ok(Hours::new(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_catalog() -> CandidateCatalog {
        let workload = vec![
            QueryCharge {
                name: "q0".to_string(),
                result_size: Gb::new(0.125),
                base_time: Hours::new(1.0 / 3.0),
                frequency: 2.0,
            },
            QueryCharge {
                name: "q1".to_string(),
                result_size: Gb::new(2.5e-4),
                base_time: Hours::new(0.618_033_988_749_894_9),
                frequency: 1.0,
            },
        ];
        let candidates = vec![
            ViewCharge::new(
                "month×country",
                Gb::new(0.1),
                Hours::new(0.2),
                Hours::new(0.01),
                2,
            )
            .answers(0, Hours::new(0.05))
            .answers(1, Hours::new(0.125)),
            ViewCharge::new("month", Gb::new(0.02), Hours::new(0.15), Hours::ZERO, 2)
                .answers(1, Hours::new(1e-3))
                .placed(Placement::Spot),
        ];
        let mut catalog = CandidateCatalog::new(workload, candidates);
        catalog.counts = vec![3, 8];
        catalog.hwm = HighWaterMark {
            timestamp: 1_700_000_000,
            query_id: 41,
        };
        catalog
    }

    #[test]
    fn json_round_trip_is_bit_identical() {
        let catalog = sample_catalog();
        let rendered = catalog.to_json().render_pretty();
        let back = CandidateCatalog::from_json(&Json::parse(&rendered).unwrap()).unwrap();
        // PartialEq on f64-carrying charges IS bit-level here: every
        // float in the sample is finite, and `{}` rendering is
        // shortest-roundtrip.
        assert_eq!(back, catalog);
        // And the re-render is byte-identical, the stronger invariant.
        assert_eq!(back.to_json().render_pretty(), rendered);
    }

    #[test]
    fn spill_and_load_round_trip_through_disk() {
        let dir = std::env::temp_dir().join(format!("mvcloud-catalog-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("catalog.json");
        let catalog = sample_catalog();
        catalog.spill(&path).unwrap();
        assert_eq!(CandidateCatalog::load(&path).unwrap(), catalog);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_and_missing_files_are_typed_errors() {
        let dir = std::env::temp_dir().join(format!("mvcloud-catalog-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let missing = dir.join("nope.json");
        assert!(matches!(
            CandidateCatalog::load(&missing),
            Err(AdvisorError::CatalogIo { .. })
        ));
        // A truncated document — what a non-atomic writer would leave —
        // must fail loudly, not load as an empty catalog.
        let truncated = dir.join("truncated.json");
        let full = sample_catalog().to_json().render_pretty();
        std::fs::write(&truncated, &full[..full.len() / 2]).unwrap();
        assert!(matches!(
            CandidateCatalog::load(&truncated),
            Err(AdvisorError::CatalogCorrupt { .. })
        ));
        // Wrong version: typed error, not a silent best-effort read.
        let versioned = dir.join("versioned.json");
        std::fs::write(
            &versioned,
            full.replacen("\"version\":1", "\"version\":99", 1),
        )
        .unwrap();
        assert!(matches!(
            CandidateCatalog::load(&versioned),
            Err(AdvisorError::CatalogCorrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn negative_and_misaligned_fields_are_rejected() {
        let catalog = sample_catalog();
        let good = catalog.to_json().render_pretty();
        let negative = good.replacen("\"size_gb\":0.1", "\"size_gb\":-0.1", 1);
        assert!(CandidateCatalog::from_json(&Json::parse(&negative).unwrap()).is_err());
        let misaligned = good.replacen("\"counts\":[\n    3,\n    8\n  ]", "\"counts\":[3]", 1);
        let doc = Json::parse(&misaligned).unwrap();
        assert!(CandidateCatalog::from_json(&doc).is_err());
    }

    #[test]
    fn hwm_orders_lexicographically() {
        let a = HighWaterMark {
            timestamp: 5,
            query_id: 9,
        };
        let b = HighWaterMark {
            timestamp: 6,
            query_id: 0,
        };
        let c = HighWaterMark {
            timestamp: 6,
            query_id: 1,
        };
        assert!(a < b && b < c);
    }
}
