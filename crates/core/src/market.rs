//! Market-aware advising: solve the horizon against sampled price
//! trajectories instead of a frozen price sheet.
//!
//! [`Advisor::solve_horizon`] already re-bills a measured workload over
//! a multi-epoch horizon — but with one pricing policy for every epoch.
//! [`Advisor::solve_market`] replaces that constant with an
//! [`mv_market::MarketScenario`]: a stack of price processes (spot
//! swings, announced cuts, storage decay) sampled into `K` reproducible
//! price paths. Each path compiles into its own epoch-aligned sequence
//! of [`CloudCostModel`]s (per-epoch re-priced policies) plus per-epoch
//! interruption probabilities, and the transition-aware chain solves it
//! with **risk-adjusted charging**: every candidate's
//! materialization/maintenance charge is inflated by its expected
//! re-run count under interruption ([`InterruptionRisk`]), spliced into
//! the live evaluator through the O(m) `retarget`/`update_charge`
//! primitives — never a per-epoch rebuild.
//!
//! The Monte-Carlo hot path goes further: sampled paths share long
//! common quote-prefixes, so the default route factors the K paths
//! into a [`ScenarioTree`] and solves the whole *forest* in one pass
//! ([`EpochChain::solve_tree`]) — one evaluator build per root, one
//! warm `retarget` + charge-splice per tree *edge*, one cheap
//! evaluator fork per extra sibling at each split — instead of per
//! path × epoch (asserted via the evaluator's build/retarget/fork
//! counters in `tests/market_no_rebuild.rs`). A deterministic market
//! degenerates to a single chain, reproducing the old "solve path 0
//! once" dedup; tree-node work distributes across threads through a
//! ready-queue. [`MarketConfig::flat`] keeps the flat per-path loop as
//! the bit-identical reference (pinned by `tests/tree_identity.rs`);
//! in flat mode coincidentally-identical quote sequences still
//! hash-dedup onto one representative solve. Either way the result is
//! a Monte-Carlo envelope rather than a single bill: per-epoch cost
//! quantiles, plan stability (how often the selected set agrees across
//! paths), and a reserved-vs-spot commitment comparison priced per
//! path.

// The price-dynamics vocabulary, re-exported so downstream users reach
// everything through `mvcloud::market::*`.
pub use mv_market::{
    AnnouncedCut, CorrelatedHazard, EpochQuote, MarketPath, MarketScenario, PriceFactors,
    PriceProcess, PriceTrace, ProcessQuote, ScenarioTree, SpotMarket, StorageDecay, TreeNode,
};

use std::collections::HashMap;

use mv_cost::{CloudCostModel, InterruptionRisk, SelectionSet};
use mv_lattice::WorkloadEvolution;
use mv_pricing::CommitmentPlan;
use mv_select::epoch::{EpochChain, EpochStep, EpochTree, EpochTreeNode};
use mv_select::Scenario;
use mv_units::{Hours, Money};
use serde::Serialize;

use crate::{Advisor, AdvisorError, HorizonConfig};

/// Shape of a market-aware Monte-Carlo solve.
#[derive(Debug, Clone)]
pub struct MarketConfig {
    /// The price-dynamics scenario (horizon length, seed, processes).
    pub market: MarketScenario,
    /// Number of sampled price paths `K`.
    pub paths: usize,
    /// How query frequencies evolve across epochs (composes with the
    /// price dynamics; [`WorkloadEvolution::fixed`] isolates the price
    /// effect).
    pub evolution: WorkloadEvolution,
    /// Optional reserved-capacity plan to price each path's compute
    /// against (must target the advisor's instance type).
    pub commitment: Option<CommitmentPlan>,
    /// Use the flat per-path reference loop instead of the scenario
    /// tree. Results are bit-identical either way (pinned by
    /// `tests/tree_identity.rs`); the tree is the default hot path,
    /// the flat loop the baseline it is benchmarked against.
    pub flat: bool,
}

impl Default for MarketConfig {
    /// 16 paths over a year of constant prices (seed 42), fixed
    /// workload, no reservation, scenario-tree solving.
    fn default() -> Self {
        MarketConfig {
            market: MarketScenario::constant(12, 42),
            paths: 16,
            evolution: WorkloadEvolution::fixed(),
            commitment: None,
            flat: false,
        }
    }
}

/// Distribution summary of one per-path metric (nearest-rank
/// quantiles over the K sampled paths).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Quantiles {
    /// Smallest sampled value.
    pub min: f64,
    /// 10th percentile.
    pub p10: f64,
    /// Median.
    pub median: f64,
    /// 90th percentile.
    pub p90: f64,
    /// Largest sampled value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Quantiles {
    /// Summarizes `values` (must be non-empty). NaNs are tolerated (they
    /// order last under IEEE total order, never panic); callers with
    /// user-supplied inputs should prefer [`Quantiles::checked`], which
    /// rejects non-finite samples with a typed error instead of letting
    /// them poison the summary.
    pub fn of(values: &[f64]) -> Quantiles {
        assert!(!values.is_empty(), "quantiles need at least one sample");
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let rank = |p: f64| -> f64 {
            // Nearest-rank: the smallest value with at least p·K samples
            // at or below it.
            let k = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[k - 1]
        };
        Quantiles {
            min: sorted[0],
            p10: rank(0.10),
            median: rank(0.50),
            p90: rank(0.90),
            max: *sorted.last().expect("non-empty"),
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
        }
    }

    /// Like [`Quantiles::of`], but surfaces non-finite samples as
    /// [`AdvisorError::NonFiniteMetric`] (tagged with `metric`) instead
    /// of summarizing garbage — the entry point for metrics derived from
    /// user-supplied configuration.
    pub fn checked(metric: &str, values: &[f64]) -> Result<Quantiles, AdvisorError> {
        if values.iter().any(|v| !v.is_finite()) {
            return Err(AdvisorError::NonFiniteMetric {
                metric: metric.to_string(),
            });
        }
        Ok(Quantiles::of(values))
    }

    /// The p90 − p10 spread (0 for a deterministic market).
    pub fn spread(&self) -> f64 {
        self.p90 - self.p10
    }
}

/// One epoch of the Monte-Carlo envelope.
#[derive(Debug, Clone, Serialize)]
pub struct MarketEpochReport {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Transition-aware charged cost across paths, in dollars.
    pub charged_cost: Quantiles,
    /// Running cumulative bill across paths, in dollars.
    pub cumulative_cost: Quantiles,
    /// Frequency-weighted processing hours across paths.
    pub time_hours: Quantiles,
    /// The sampled compute price factor across paths.
    pub compute_factor: Quantiles,
    /// The per-epoch interruption probability across paths.
    pub interruption: Quantiles,
    /// How many distinct selected sets the paths chose this epoch.
    pub distinct_plans: usize,
    /// Share of paths choosing the most common selected set (1.0 =
    /// every path agrees).
    pub modal_share: f64,
    /// Labels of that most common selected set.
    pub modal_selection: Vec<String>,
}

/// Per-path accounting of one sampled trajectory.
#[derive(Debug, Clone, Serialize)]
pub struct MarketPathSummary {
    /// Path index (aligned with [`MarketScenario::path`]).
    pub path: usize,
    /// Total charged cost along the path.
    pub total_cost: Money,
    /// Total processing hours along the path.
    pub total_time: Hours,
    /// Total billable instance-hours (per-component rounding applied,
    /// fleet-multiplied, risk-adjusted work included).
    pub billed_instance_hours: Hours,
    /// The compute component of the path's bill, at the path's sampled
    /// (spot) prices.
    pub compute_bill: Money,
    /// Epoch boundaries at which the selected set changed.
    pub switches: usize,
    /// Sampled interruption events along the path.
    pub interruptions: usize,
    /// Per-epoch charged cost.
    pub epoch_costs: Vec<Money>,
    /// Per-epoch selected sets.
    pub selections: Vec<SelectionSet>,
}

/// Reserved-vs-spot pricing of the horizon's compute, across paths.
#[derive(Debug, Clone, Serialize)]
pub struct SpotCommitmentReport {
    /// The plan's name.
    pub plan: String,
    /// Per-path compute bill at the sampled spot prices, in dollars.
    pub spot_compute: Quantiles,
    /// Per-path cost of covering the same billed hours with the
    /// reservation (upfronts + discounted rate), in dollars.
    pub reserved: Quantiles,
    /// Per-path saving of reserving over riding the spot market
    /// (positive = the reservation wins), in dollars.
    pub saving: Quantiles,
    /// Share of paths on which the reservation was cheaper.
    pub reserved_wins_share: f64,
}

impl SpotCommitmentReport {
    /// Assembles the report from aligned per-path bills: what the
    /// compute actually cost on the sampled market vs covering the
    /// same billed hours with the reservation. This is the ONE place
    /// the comparison's arithmetic lives — `Advisor::solve_market` and
    /// the mixed-fleet `Advisor::solve_fleet` both price through it,
    /// so the single-fleet report is exactly the pure-fleet special
    /// case of the fleet comparison (equality-tested in
    /// `tests/fleet.rs`).
    pub fn from_path_bills(plan: &str, spot: &[f64], reserved: &[f64]) -> SpotCommitmentReport {
        assert_eq!(
            spot.len(),
            reserved.len(),
            "per-path bills must align across the comparison"
        );
        let saving: Vec<f64> = spot.iter().zip(reserved).map(|(s, r)| s - r).collect();
        let wins = saving.iter().filter(|&&d| d > 0.0).count();
        SpotCommitmentReport {
            plan: plan.to_string(),
            spot_compute: Quantiles::of(spot),
            reserved: Quantiles::of(reserved),
            saving: Quantiles::of(&saving),
            reserved_wins_share: wins as f64 / spot.len() as f64,
        }
    }
}

/// The Monte-Carlo envelope of a market-aware horizon solve.
#[derive(Debug, Clone, Serialize)]
pub struct MarketReport {
    /// Per-path accounting, in path order.
    pub paths: Vec<MarketPathSummary>,
    /// The per-epoch quantile timeline.
    pub epochs: Vec<MarketEpochReport>,
    /// Total charged cost across paths, in dollars.
    pub total_cost: Quantiles,
    /// Total processing hours across paths.
    pub total_time_hours: Quantiles,
    /// Mean modal share across epochs: 1.0 means the plan is immune to
    /// the sampled price dynamics, lower values mean the money-optimal
    /// selection genuinely depends on the price path.
    pub plan_stability: f64,
    /// Reserved-vs-spot comparison, when a plan was supplied.
    pub commitment: Option<SpotCommitmentReport>,
    /// Distinct full-horizon solves actually performed for the K
    /// requested paths: distinct scenario-tree leaves (tree mode) or
    /// distinct quote sequences after hash dedup (flat mode). A
    /// deterministic market reports 1 either way.
    pub distinct_solves: usize,
    /// Scenario-tree node count — the number of epoch-solves the tree
    /// route paid (vs `distinct_solves × epochs` for the flat loop).
    /// `None` when the flat reference path was used.
    pub tree_nodes: Option<usize>,
    /// Telemetry recorded during this solve — a
    /// [`mv_obs::Snapshot::since`] delta over the solve window. `None`
    /// unless telemetry was enabled when the solve started.
    pub telemetry: Option<mv_obs::Snapshot>,
}

impl MarketReport {
    /// Renders the quantile timeline as CSV (one row per epoch).
    pub fn timeline_csv(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .epochs
            .iter()
            .map(|e| {
                vec![
                    e.epoch.to_string(),
                    format!("{:.6}", e.charged_cost.p10),
                    format!("{:.6}", e.charged_cost.median),
                    format!("{:.6}", e.charged_cost.p90),
                    format!("{:.6}", e.cumulative_cost.median),
                    format!("{:.6}", e.time_hours.median),
                    format!("{:.6}", e.compute_factor.mean),
                    format!("{:.6}", e.interruption.mean),
                    e.distinct_plans.to_string(),
                    format!("{:.4}", e.modal_share),
                ]
            })
            .collect();
        crate::report::render_csv(
            &[
                "epoch",
                "cost_p10",
                "cost_median",
                "cost_p90",
                "cumulative_median",
                "time_median",
                "compute_factor_mean",
                "interruption_mean",
                "distinct_plans",
                "modal_share",
            ],
            &rows,
        )
    }
}

impl Advisor {
    /// The per-epoch costing models one sampled price path induces: the
    /// evolution-reweighted workload of [`Advisor::epoch_models`], with
    /// each epoch's pricing re-priced by the path's quote. Unit quotes
    /// reproduce the base models bit-for-bit.
    pub fn market_epoch_models(
        &self,
        path: &MarketPath,
        evolution: &WorkloadEvolution,
    ) -> Vec<CloudCostModel> {
        self.market_base_models(path.quotes.len(), evolution)
            .iter()
            .zip(&path.quotes)
            .map(|(model, quote)| self.quote_model(model, quote))
            .collect()
    }

    /// The evolution-reweighted per-epoch models *before* any market
    /// quote is applied — the shared base both the flat per-path loop
    /// and the scenario tree re-price from.
    pub(crate) fn market_base_models(
        &self,
        epochs: usize,
        evolution: &WorkloadEvolution,
    ) -> Vec<CloudCostModel> {
        self.epoch_models(&HorizonConfig {
            epochs,
            evolution: *evolution,
            commitment: None,
        })
    }

    /// One epoch's base model re-priced by a sampled quote. Unit quotes
    /// reproduce the base model bit-for-bit.
    pub(crate) fn quote_model(&self, base: &CloudCostModel, quote: &EpochQuote) -> CloudCostModel {
        let mut ctx = base.context().clone();
        ctx.pricing = quote.reprice(&self.config().pricing);
        // The context embeds the *resolved* instance (Formula 4
        // prices through `ctx.instance.hourly`), so the rented
        // configuration must be re-resolved from the re-priced
        // catalog or compute drift would never reach the bill.
        ctx.instance = ctx
            .pricing
            .compute
            .instance(&self.config().instance)
            .expect("advisor instance validated at build")
            .clone();
        CloudCostModel::new(ctx)
    }

    /// Solves the horizon across `K` sampled price paths and reports
    /// the Monte-Carlo envelope. See the module docs for semantics; the
    /// per-path hot loop is one warm-started
    /// [`EpochChain::solve_repriced`] with risk-adjusted charges.
    pub fn solve_market(
        &self,
        scenario: Scenario,
        config: &MarketConfig,
    ) -> Result<MarketReport, AdvisorError> {
        if config.market.epochs == 0 {
            return Err(AdvisorError::EmptyHorizon);
        }
        if config.paths == 0 {
            return Err(AdvisorError::NoMarketPaths);
        }
        if let Some(plan) = &config.commitment {
            if plan.instance != self.config().instance {
                return Err(AdvisorError::CommitmentMismatch {
                    plan: plan.name.clone(),
                    plan_instance: plan.instance.clone(),
                    advisor_instance: self.config().instance.clone(),
                });
            }
        }
        // Sample the full path set once: the tree factoring, the flat
        // dedup, and the per-path event reporting all read from it.
        let sampled: Vec<MarketPath> = (0..config.paths).map(|j| config.market.path(j)).collect();
        // A NaN volatility (or similar user-supplied process parameter)
        // poisons every sampled price; fail up front with the offending
        // metric named instead of summarizing garbage quantiles later.
        for q in &sampled[0].quotes {
            let f = &q.factors;
            if !(f.compute.is_finite() && f.storage.is_finite() && f.transfer.is_finite()) {
                return Err(AdvisorError::NonFiniteMetric {
                    metric: "price factor".to_string(),
                });
            }
            if !q.interruption.is_finite() {
                return Err(AdvisorError::NonFiniteMetric {
                    metric: "interruption probability".to_string(),
                });
            }
        }

        let telemetry_base = mv_obs::enabled().then(mv_obs::Snapshot::capture);
        let (solved, distinct_solves, tree_nodes) = if config.flat {
            self.solve_market_flat(scenario, config, &sampled)
        } else {
            self.solve_market_tree(scenario, config, &sampled)
        };
        let mut report = self.render_market(scenario, config, solved, distinct_solves, tree_nodes);
        if let Some(base) = telemetry_base {
            report.telemetry = Some(mv_obs::Snapshot::capture().since(&base));
        }
        Ok(report)
    }

    /// The scenario-tree hot path: factor the sampled paths into a
    /// shared-prefix forest, compile one quote-repriced model and one
    /// interruption risk per *node*, and let [`EpochChain::solve_tree`]
    /// pay one solve per node — branching the warm evaluator at split
    /// points — instead of one per path × epoch. Bit-identical to
    /// [`Advisor::solve_market_flat`] (a node's search trajectory
    /// depends only on its model, its effective charges and the
    /// selection it inherits, all shared along the prefix).
    fn solve_market_tree(
        &self,
        scenario: Scenario,
        config: &MarketConfig,
        sampled: &[MarketPath],
    ) -> (Vec<SolvedPath>, usize, Option<usize>) {
        let stree = ScenarioTree::from_paths(sampled);
        let base = self.market_base_models(stree.epochs, &config.evolution);
        let nodes: Vec<EpochTreeNode> = stree
            .nodes()
            .iter()
            .map(|n| EpochTreeNode {
                parent: n.parent,
                epoch: n.epoch,
                model: self.quote_model(&base[n.epoch], &n.quote),
            })
            .collect();
        let leaves: Vec<usize> = (0..sampled.len()).map(|j| stree.leaf_of(j)).collect();
        let tree = EpochTree::new(nodes, leaves);
        let risks: Vec<InterruptionRisk> = stree
            .nodes()
            .iter()
            .map(|n| InterruptionRisk::new(n.quote.interruption))
            .collect();
        let pool = self.problem().candidates().to_vec();
        let chain = EpochChain::new(base, pool);
        let per_path = chain.solve_tree(scenario, &tree, &|node, _k, transition| {
            risks[node].adjust(transition)
        });
        let solved = sampled
            .iter()
            .zip(per_path)
            .enumerate()
            .map(|(j, (p, steps))| {
                let path_risks: Vec<InterruptionRisk> = p
                    .quotes
                    .iter()
                    .map(|q| InterruptionRisk::new(q.interruption))
                    .collect();
                let summary = self.account_path(j, &chain, &steps, &path_risks);
                SolvedPath {
                    summary,
                    path: p.clone(),
                    steps,
                }
            })
            .collect();
        (solved, stree.distinct_leaves(), Some(stree.len()))
    }

    /// The flat per-path reference loop: solve one representative chain
    /// per *distinct quote sequence* and replicate the result to the
    /// aliases (fingerprint-bucketed, full-key-verified grouping —
    /// [`crate::dedup`]). This generalizes the old all-or-nothing
    /// "deterministic market solves path 0 once" shortcut —
    /// coincidentally-identical stochastic paths collapse too.
    fn solve_market_flat(
        &self,
        scenario: Scenario,
        config: &MarketConfig,
        sampled: &[MarketPath],
    ) -> (Vec<SolvedPath>, usize, Option<usize>) {
        let groups = crate::dedup::quote_sequence_groups(sampled);
        mv_obs::add(mv_obs::Counter::MarketDedupHits, groups.duplicates() as u64);
        let (reps, rep_of) = (groups.reps, groups.rep_of);
        let solved_reps = self.solve_market_paths(scenario, config, &reps);
        let solved = sampled
            .iter()
            .enumerate()
            .map(|(j, p)| {
                let mut s = solved_reps[rep_of[j]].clone();
                s.summary.path = j;
                // The replica's factors and probabilities match its
                // representative bit-for-bit (that is what the key
                // means), but interruption *events* are Bernoulli
                // -sampled per path — keep the replica's own quotes so
                // event reporting matches `MarketScenario::path(j)`.
                s.path = p.clone();
                s
            })
            .collect();
        (solved, reps.len(), None)
    }

    /// Solves the representative paths `reps`, fanned out across
    /// threads in contiguous chunks and merged in order (identical
    /// results for any thread count).
    fn solve_market_paths(
        &self,
        scenario: Scenario,
        config: &MarketConfig,
        reps: &[usize],
    ) -> Vec<SolvedPath> {
        let threads = std::thread::available_parallelism()
            .map_or(1, |t| t.get())
            .min(reps.len());
        let solve = |i: usize| -> SolvedPath { self.solve_market_path(scenario, config, reps[i]) };
        if threads <= 1 {
            return (0..reps.len()).map(solve).collect();
        }
        let chunk = reps.len().div_ceil(threads);
        let solve = &solve;
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .filter_map(|t| {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(reps.len());
                    (lo < hi).then(|| scope.spawn(move |_| (lo..hi).map(solve).collect::<Vec<_>>()))
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("market path worker panicked"))
                .collect()
        })
        .expect("market sweep scope failed")
    }

    /// Solves one sampled path: compile models, risk-adjust charges,
    /// run the warm-started chain, account the result.
    fn solve_market_path(&self, scenario: Scenario, config: &MarketConfig, j: usize) -> SolvedPath {
        mv_obs::span!("market/solve_path");
        mv_obs::inc(mv_obs::Counter::MarketPathSolves);
        let path = config.market.path(j);
        let models = self.market_epoch_models(&path, &config.evolution);
        let risks: Vec<InterruptionRisk> = path
            .quotes
            .iter()
            .map(|q| InterruptionRisk::new(q.interruption))
            .collect();
        let pool = self.problem().candidates().to_vec();
        let chain = EpochChain::new(models, pool);
        // The sampled-path hot loop: ONE evaluator per path, re-risked
        // and re-priced per epoch through retarget/update_charge. The
        // risk transform only moves materialization/maintenance, so
        // every splice takes update_charge's O(1) same-answer fast path.
        let steps =
            chain.solve_repriced(scenario, &|e, _k, transition| risks[e].adjust(transition));
        let summary = self.account_path(j, &chain, &steps, &risks);
        SolvedPath {
            summary,
            path,
            steps,
        }
    }

    /// Per-path accounting: totals, billable hours (risk-adjusted work,
    /// per-component rounding, fleet-multiplied) and plan churn.
    fn account_path(
        &self,
        j: usize,
        chain: &EpochChain,
        steps: &[EpochStep],
        risks: &[InterruptionRisk],
    ) -> MarketPathSummary {
        let pool = chain.pool();
        let mut billed = Hours::ZERO;
        let mut compute_bill = Money::ZERO;
        let mut switches = 0;
        let mut epoch_costs = Vec::with_capacity(steps.len());
        let mut selections = Vec::with_capacity(steps.len());
        for (e, step) in steps.iter().enumerate() {
            // Billable hours include the risk premium: interrupted
            // build/refresh work re-runs, and the re-runs bill too.
            billed += self.epoch_billed_instance_hours(pool, step, risks[e].expected_attempts());
            compute_bill += step.outcome.evaluation.breakdown.compute();
            if e > 0 && !(step.added.is_empty() && step.dropped.is_empty()) {
                switches += 1;
            }
            epoch_costs.push(step.outcome.evaluation.cost());
            selections.push(step.selection().clone());
        }
        MarketPathSummary {
            path: j,
            total_cost: epoch_costs.iter().copied().sum(),
            total_time: steps.iter().map(|s| s.outcome.evaluation.time).sum(),
            billed_instance_hours: billed,
            compute_bill,
            switches,
            interruptions: 0, // filled by the caller from the sampled path
            epoch_costs,
            selections,
        }
    }

    /// Aggregates solved paths into the quantile envelope.
    fn render_market(
        &self,
        _scenario: Scenario,
        config: &MarketConfig,
        mut solved: Vec<SolvedPath>,
        distinct_solves: usize,
        tree_nodes: Option<usize>,
    ) -> MarketReport {
        let epochs = config.market.epochs;
        let labels: Vec<String> = self.candidates().iter().map(|m| m.label.clone()).collect();
        for s in &mut solved {
            s.summary.interruptions = s.path.interruptions();
        }

        let mut epoch_reports = Vec::with_capacity(epochs);
        let mut cumulative: Vec<f64> = vec![0.0; solved.len()];
        let mut stability_sum = 0.0;
        for e in 0..epochs {
            let costs: Vec<f64> = solved
                .iter()
                .map(|s| s.summary.epoch_costs[e].to_dollars_f64())
                .collect();
            for (c, s) in cumulative.iter_mut().zip(&solved) {
                *c += s.summary.epoch_costs[e].to_dollars_f64();
            }
            let times: Vec<f64> = solved
                .iter()
                .map(|s| s.steps[e].outcome.evaluation.time.value())
                .collect();
            let factors: Vec<f64> = solved
                .iter()
                .map(|s| s.path.quotes[e].factors.compute)
                .collect();
            let probs: Vec<f64> = solved
                .iter()
                .map(|s| s.path.quotes[e].interruption)
                .collect();
            let mut plans: HashMap<&SelectionSet, usize> = HashMap::new();
            for s in &solved {
                *plans.entry(&s.summary.selections[e]).or_insert(0) += 1;
            }
            // Tie-break modal plans deterministically (last maximal in
            // path order), not by HashMap iteration order — the report
            // must reproduce bit-for-bit from the seed.
            let modal_set = solved
                .iter()
                .map(|s| &s.summary.selections[e])
                .max_by_key(|sel| plans[*sel])
                .expect("at least one path");
            let modal_share = plans[modal_set] as f64 / solved.len() as f64;
            stability_sum += modal_share;
            epoch_reports.push(MarketEpochReport {
                epoch: e,
                charged_cost: Quantiles::of(&costs),
                cumulative_cost: Quantiles::of(&cumulative),
                time_hours: Quantiles::of(&times),
                compute_factor: Quantiles::of(&factors),
                interruption: Quantiles::of(&probs),
                distinct_plans: plans.len(),
                modal_share,
                modal_selection: modal_set.ones().map(|k| labels[k].clone()).collect(),
            });
        }

        let totals: Vec<f64> = solved
            .iter()
            .map(|s| s.summary.total_cost.to_dollars_f64())
            .collect();
        let total_times: Vec<f64> = solved
            .iter()
            .map(|s| s.summary.total_time.value())
            .collect();
        let commitment = config.commitment.as_ref().map(|plan| {
            let total_months = self.config().months * epochs as f64;
            let spot: Vec<f64> = solved
                .iter()
                .map(|s| s.summary.compute_bill.to_dollars_f64())
                .collect();
            let reserved: Vec<f64> = solved
                .iter()
                .map(|s| {
                    plan.fleet_horizon_cost(
                        total_months,
                        s.summary.billed_instance_hours,
                        self.config().nb_instances,
                    )
                    .to_dollars_f64()
                })
                .collect();
            SpotCommitmentReport::from_path_bills(&plan.name, &spot, &reserved)
        });
        MarketReport {
            paths: solved.into_iter().map(|s| s.summary).collect(),
            epochs: epoch_reports,
            total_cost: Quantiles::of(&totals),
            total_time_hours: Quantiles::of(&total_times),
            plan_stability: stability_sum / epochs as f64,
            commitment,
            distinct_solves,
            tree_nodes,
            telemetry: None,
        }
    }
}

/// One solved path: the sampled quotes, the chain steps, and the
/// rendered summary.
#[derive(Debug, Clone)]
struct SolvedPath {
    summary: MarketPathSummary,
    path: MarketPath,
    steps: Vec<EpochStep>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sales_domain, AdvisorConfig};
    use mv_market::{AnnouncedCut, PriceProcess, SpotMarket};

    fn advisor() -> Advisor {
        Advisor::build(sales_domain(1_000, 4, 5.0, 42), AdvisorConfig::default()).unwrap()
    }

    #[test]
    fn constant_market_collapses_quantiles_to_the_horizon_solve() {
        let a = advisor();
        let scenario = Scenario::tradeoff_normalized(0.5);
        let config = MarketConfig {
            market: MarketScenario::constant(4, 7),
            paths: 16,
            ..MarketConfig::default()
        };
        let report = a.solve_market(scenario, &config).unwrap();
        let horizon = a
            .solve_horizon(
                scenario,
                &HorizonConfig {
                    epochs: 4,
                    ..HorizonConfig::default()
                },
            )
            .unwrap();
        assert_eq!(report.paths.len(), 16);
        assert_eq!(report.epochs.len(), 4);
        assert_eq!(report.plan_stability, 1.0);
        for (e, er) in report.epochs.iter().enumerate() {
            let expected = horizon.epochs[e].charged_cost.to_dollars_f64();
            assert_eq!(er.charged_cost.min, expected, "epoch {e}");
            assert_eq!(er.charged_cost.max, expected, "epoch {e}");
            assert_eq!(er.charged_cost.spread(), 0.0, "epoch {e}");
            assert_eq!(er.distinct_plans, 1);
            assert_eq!(er.interruption.max, 0.0);
        }
        for p in &report.paths {
            assert_eq!(p.total_cost, horizon.total_cost);
            assert_eq!(p.billed_instance_hours, horizon.billed_instance_hours);
        }
    }

    #[test]
    fn announced_cut_lowers_the_tail_of_the_bill() {
        let a = advisor();
        let scenario = Scenario::tradeoff_normalized(0.5);
        let base = MarketConfig {
            market: MarketScenario::constant(6, 1),
            paths: 4,
            ..MarketConfig::default()
        };
        let cut = MarketConfig {
            market: MarketScenario::constant(6, 1)
                .with(PriceProcess::Cut(AnnouncedCut::compute(3, 0.5))),
            paths: 4,
            ..MarketConfig::default()
        };
        let flat = a.solve_market(scenario, &base).unwrap();
        let with_cut = a.solve_market(scenario, &cut).unwrap();
        // Before the cut takes effect the bills agree; after, the cut
        // path is never dearer.
        for e in 0..3 {
            assert_eq!(
                flat.epochs[e].charged_cost.median,
                with_cut.epochs[e].charged_cost.median
            );
        }
        for e in 3..6 {
            assert!(with_cut.epochs[e].charged_cost.median <= flat.epochs[e].charged_cost.median);
        }
        assert!(with_cut.total_cost.median < flat.total_cost.median);
    }

    #[test]
    fn stochastic_spot_spreads_the_envelope_reproducibly() {
        let a = advisor();
        let scenario = Scenario::tradeoff_normalized(0.5);
        let config = MarketConfig {
            market: MarketScenario::constant(6, 99)
                .with(PriceProcess::Spot(SpotMarket::with_volatility(0.5))),
            paths: 16,
            ..MarketConfig::default()
        };
        let r1 = a.solve_market(scenario, &config).unwrap();
        let r2 = a.solve_market(scenario, &config).unwrap();
        // Reproducible bit-for-bit from the seed.
        assert_eq!(r1.total_cost, r2.total_cost);
        assert_eq!(r1.plan_stability, r2.plan_stability);
        // Volatility genuinely spreads the per-epoch envelope somewhere.
        assert!(r1.epochs.iter().any(|e| e.charged_cost.spread() > 0.0));
        // Quantiles are ordered.
        for e in &r1.epochs {
            assert!(e.charged_cost.min <= e.charged_cost.p10);
            assert!(e.charged_cost.p10 <= e.charged_cost.median);
            assert!(e.charged_cost.median <= e.charged_cost.p90);
            assert!(e.charged_cost.p90 <= e.charged_cost.max);
        }
        let csv = r1.timeline_csv();
        assert_eq!(csv.lines().count(), 7);
        assert!(csv.starts_with("epoch,cost_p10"));
    }

    #[test]
    fn commitment_comparison_prices_each_path() {
        let a = advisor();
        let config = MarketConfig {
            market: MarketScenario::constant(12, 3)
                .with(PriceProcess::Spot(SpotMarket::discounted(0.4, 0.3))),
            paths: 16,
            commitment: Some(mv_pricing::CommitmentPlan::aws_small_1yr()),
            ..MarketConfig::default()
        };
        let report = a
            .solve_market(Scenario::tradeoff_normalized(0.5), &config)
            .unwrap();
        let cmp = report.commitment.expect("plan supplied");
        assert!(cmp.spot_compute.min > 0.0);
        assert!(cmp.reserved.min > 0.0);
        assert!((0.0..=1.0).contains(&cmp.reserved_wins_share));
        // At a deep average spot discount the spot market usually beats
        // the (on-demand-anchored) reservation.
        assert!(cmp.saving.median < 0.0);
    }

    #[test]
    fn tree_route_is_bit_identical_to_the_flat_loop() {
        let a = advisor();
        let scenario = Scenario::tradeoff_normalized(0.5);
        let tree_cfg = MarketConfig {
            market: MarketScenario::constant(6, 99)
                .with(PriceProcess::Spot(SpotMarket::with_volatility(0.5))),
            paths: 12,
            commitment: Some(mv_pricing::CommitmentPlan::aws_small_1yr()),
            ..MarketConfig::default()
        };
        let flat_cfg = MarketConfig {
            flat: true,
            ..tree_cfg.clone()
        };
        let tree = a.solve_market(scenario, &tree_cfg).unwrap();
        let flat = a.solve_market(scenario, &flat_cfg).unwrap();
        assert_eq!(tree.total_cost, flat.total_cost);
        assert_eq!(tree.total_time_hours, flat.total_time_hours);
        assert_eq!(tree.plan_stability, flat.plan_stability);
        for (t, f) in tree.paths.iter().zip(&flat.paths) {
            assert_eq!(t.total_cost, f.total_cost);
            assert_eq!(t.billed_instance_hours, f.billed_instance_hours);
            assert_eq!(t.compute_bill, f.compute_bill);
            assert_eq!(t.selections, f.selections);
            assert_eq!(t.switches, f.switches);
            assert_eq!(t.interruptions, f.interruptions);
        }
        for (t, f) in tree.epochs.iter().zip(&flat.epochs) {
            assert_eq!(t.charged_cost, f.charged_cost);
            assert_eq!(t.modal_selection, f.modal_selection);
        }
        let (tc, fc) = (tree.commitment.unwrap(), flat.commitment.unwrap());
        assert_eq!(tc.saving, fc.saving);
        // Both modes report what they actually paid for.
        assert_eq!(tree.distinct_solves, flat.distinct_solves);
        let nodes = tree.tree_nodes.expect("tree route reports its size");
        assert!(nodes < tree.distinct_solves * 6, "no prefix shared");
        assert!(flat.tree_nodes.is_none());
    }

    #[test]
    fn deterministic_market_pays_one_solve_in_both_modes() {
        let a = advisor();
        let scenario = Scenario::tradeoff_normalized(0.5);
        let tree_cfg = MarketConfig {
            market: MarketScenario::constant(4, 7),
            paths: 16,
            ..MarketConfig::default()
        };
        let flat_cfg = MarketConfig {
            flat: true,
            ..tree_cfg.clone()
        };
        let tree = a.solve_market(scenario, &tree_cfg).unwrap();
        let flat = a.solve_market(scenario, &flat_cfg).unwrap();
        // The tree degenerates to a single 4-node chain; the flat loop
        // hash-dedups all 16 identical paths onto one representative.
        assert_eq!(tree.distinct_solves, 1);
        assert_eq!(tree.tree_nodes, Some(4));
        assert_eq!(flat.distinct_solves, 1);
        assert_eq!(tree.total_cost, flat.total_cost);
    }

    #[test]
    fn quantiles_tolerate_nan_without_panicking() {
        // Regression: `Quantiles::of` used to sort with
        // `partial_cmp(..).expect(..)` and abort on the first NaN.
        let q = Quantiles::of(&[1.0, f64::NAN, 0.5]);
        assert_eq!(q.min, 0.5);
        assert!(q.max.is_nan(), "NaN orders last under total order");
        // The checked entry point surfaces the problem as a typed error.
        assert!(matches!(
            Quantiles::checked("bill", &[1.0, f64::NAN]),
            Err(AdvisorError::NonFiniteMetric { metric }) if metric == "bill"
        ));
        assert!(Quantiles::checked("bill", &[1.0, 2.0]).is_ok());
    }

    #[test]
    fn non_finite_price_inputs_are_typed_errors_not_aborts() {
        let a = advisor();
        // A NaN in a user-supplied price trace used to survive until the
        // quantile sort's `partial_cmp(..).expect(..)` and abort there.
        let config = MarketConfig {
            market: MarketScenario::constant(4, 1).with(PriceProcess::Trace(
                super::PriceTrace::compute(vec![1.0, f64::NAN, 1.0]),
            )),
            paths: 4,
            ..MarketConfig::default()
        };
        assert!(matches!(
            a.solve_market(Scenario::tradeoff_normalized(0.5), &config),
            Err(AdvisorError::NonFiniteMetric { .. })
        ));
        // A NaN volatility is sanitized by the spot sampler itself
        // (IEEE max drops the NaN at the price floor): no abort, and the
        // sampled factors stay finite, so the solve succeeds.
        let nan_vol = MarketConfig {
            market: MarketScenario::constant(4, 1)
                .with(PriceProcess::Spot(SpotMarket::with_volatility(f64::NAN))),
            paths: 2,
            ..MarketConfig::default()
        };
        assert!(a
            .solve_market(Scenario::tradeoff_normalized(0.5), &nan_vol)
            .is_ok());
    }

    #[test]
    fn degenerate_configs_are_errors() {
        let a = advisor();
        let scenario = Scenario::tradeoff_normalized(0.5);
        let zero_paths = MarketConfig {
            paths: 0,
            ..MarketConfig::default()
        };
        assert!(matches!(
            a.solve_market(scenario, &zero_paths),
            Err(AdvisorError::NoMarketPaths)
        ));
        let zero_epochs = MarketConfig {
            market: MarketScenario::constant(0, 1),
            ..MarketConfig::default()
        };
        assert!(matches!(
            a.solve_market(scenario, &zero_epochs),
            Err(AdvisorError::EmptyHorizon)
        ));
        let mut plan = mv_pricing::CommitmentPlan::aws_small_1yr();
        plan.instance = "large".to_string();
        let mismatch = MarketConfig {
            commitment: Some(plan),
            ..MarketConfig::default()
        };
        assert!(matches!(
            a.solve_market(scenario, &mismatch),
            Err(AdvisorError::CommitmentMismatch { .. })
        ));
    }
}
