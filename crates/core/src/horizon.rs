//! Multi-epoch advising: solve a billing *horizon* instead of a single
//! period.
//!
//! [`Advisor::build`] measures the workload and candidate pool once;
//! [`Advisor::solve_horizon`] then re-bills that measurement over a
//! sequence of epochs whose query frequencies evolve (drift, bursts,
//! seasonality — [`WorkloadEvolution`]), threading the selection state
//! through `mv_select`'s transition-aware [`EpochChain`]: views kept
//! across an epoch boundary pay maintenance and storage only, newly
//! added views pay materialization, dropped views forfeit theirs. The
//! result is a [`HorizonReport`]: the per-epoch timeline of selections
//! and transitions, a provider-side [`UsageLedger`] invoice per epoch
//! (reconciled against the predicted charges in `tests/horizon.rs`),
//! the cumulative bill, and — because a horizon finally gives the
//! upfront fee enough hours to amortize — an on-demand vs
//! reserved-instance comparison over the horizon's billed compute.

use mv_cost::{CloudCostModel, ViewCharge};
use mv_lattice::WorkloadEvolution;
use mv_pricing::{CommitmentComparison, CommitmentPlan, Invoice, UsageLedger};
use mv_select::epoch::{horizon_cost, horizon_time, EpochChain, EpochStep};
use mv_select::Scenario;
use mv_units::{Hours, Money};
use serde::Serialize;

use crate::{Advisor, AdvisorError};

/// Shape of a billing horizon.
#[derive(Debug, Clone)]
pub struct HorizonConfig {
    /// Number of billing periods, each `AdvisorConfig::months` long.
    pub epochs: usize,
    /// How query frequencies evolve from the measured base workload.
    pub evolution: WorkloadEvolution,
    /// Optional reserved-capacity plan to price the horizon's compute
    /// against (must target the advisor's instance type).
    pub commitment: Option<CommitmentPlan>,
}

impl Default for HorizonConfig {
    /// A year of identical monthly epochs, no reservation.
    fn default() -> Self {
        HorizonConfig {
            epochs: 12,
            evolution: WorkloadEvolution::fixed(),
            commitment: None,
        }
    }
}

/// One epoch of the rendered timeline.
#[derive(Debug, Clone, Serialize)]
pub struct EpochReport {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Labels of the selected views.
    pub selected: Vec<String>,
    /// Labels of views newly materialized this epoch.
    pub added: Vec<String>,
    /// Labels of views carried over (maintenance + storage only).
    pub kept: Vec<String>,
    /// Labels of views dropped at this boundary (build cost forfeited).
    pub dropped: Vec<String>,
    /// Frequency-weighted workload processing hours this epoch.
    pub time_hours: f64,
    /// The transition-aware bill for this epoch.
    pub charged_cost: Money,
    /// What the same selection would bill if the epoch stood alone
    /// (full materialization) — the single-period reference.
    pub full_price_cost: Money,
    /// Running total of charged costs through this epoch.
    pub cumulative_cost: Money,
    /// The provider-side invoice for this epoch's recorded usage. Its
    /// total equals `charged_cost` (reconciled in `tests/horizon.rs`).
    pub invoice: Invoice,
}

/// A solved horizon: the full chain state plus the rendered timeline.
#[derive(Debug, Clone)]
pub struct HorizonReport {
    /// Raw per-epoch chain steps (selections, transitions, charged and
    /// full-price evaluations).
    pub steps: Vec<EpochStep>,
    /// The rendered per-epoch timeline.
    pub epochs: Vec<EpochReport>,
    /// Total charged cost across the horizon.
    pub total_cost: Money,
    /// Total workload processing hours across the horizon.
    pub total_time: Hours,
    /// Total *billable* compute across the horizon, in instance-hours
    /// (per-component rounding applied, fleet-multiplied) — the hours a
    /// reservation would have to cover.
    pub billed_instance_hours: Hours,
    /// On-demand vs reserved pricing of those hours, when a plan was
    /// supplied.
    pub commitment: Option<CommitmentComparison>,
    /// Telemetry delta covering this solve, when [`mv_obs`] was
    /// enabled at entry; `None` otherwise.
    pub telemetry: Option<mv_obs::Snapshot>,
}

impl HorizonReport {
    /// Renders the timeline as CSV (one row per epoch).
    pub fn timeline_csv(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .epochs
            .iter()
            .map(|e| {
                vec![
                    e.epoch.to_string(),
                    e.selected.join(" "),
                    e.added.len().to_string(),
                    e.kept.len().to_string(),
                    e.dropped.len().to_string(),
                    format!("{:.6}", e.time_hours),
                    format!("{:.6}", e.charged_cost.to_dollars_f64()),
                    format!("{:.6}", e.full_price_cost.to_dollars_f64()),
                    format!("{:.6}", e.cumulative_cost.to_dollars_f64()),
                ]
            })
            .collect();
        crate::report::render_csv(
            &[
                "epoch",
                "selected",
                "added",
                "kept",
                "dropped",
                "time_hours",
                "charged_cost",
                "full_price_cost",
                "cumulative_cost",
            ],
            &rows,
        )
    }
}

impl Advisor {
    /// The per-epoch costing models a horizon induces over this
    /// advisor's measured workload: epoch `e` keeps every measured
    /// charge but re-weights query frequencies by the evolution. The
    /// query universe is fixed, so the measured candidate pool stays
    /// aligned with every epoch.
    pub fn epoch_models(&self, horizon: &HorizonConfig) -> Vec<CloudCostModel> {
        let base_ctx = self.problem().model().context();
        (0..horizon.epochs)
            .map(|e| {
                let mut ctx = base_ctx.clone();
                let freqs = horizon.evolution.frequencies(&self.domain().workload, e);
                for (q, f) in ctx.workload.iter_mut().zip(freqs) {
                    q.frequency = f;
                }
                CloudCostModel::new(ctx)
            })
            .collect()
    }

    /// The transition-aware [`EpochChain`] for a horizon over this
    /// advisor's measured pool.
    pub fn epoch_chain(&self, horizon: &HorizonConfig) -> EpochChain {
        EpochChain::new(
            self.epoch_models(horizon),
            self.problem().candidates().to_vec(),
        )
    }

    /// Solves the horizon with the transition-aware chain and renders
    /// the full report. See the module docs for semantics.
    pub fn solve_horizon(
        &self,
        scenario: Scenario,
        horizon: &HorizonConfig,
    ) -> Result<HorizonReport, AdvisorError> {
        if horizon.epochs == 0 {
            return Err(AdvisorError::EmptyHorizon);
        }
        let telemetry_base = mv_obs::enabled().then(mv_obs::Snapshot::capture);
        let chain = self.epoch_chain(horizon);
        let steps = chain.solve(scenario);
        let mut report = self.render_horizon(horizon, &chain, steps)?;
        if let Some(base) = telemetry_base {
            report.telemetry = Some(mv_obs::Snapshot::capture().since(&base));
        }
        Ok(report)
    }

    /// The transition-blind comparator: every epoch re-solved from
    /// scratch (the "run the single-period advisor each month" policy),
    /// then billed under true transition accounting. Useful to quantify
    /// what chain-awareness saves on a drifting horizon.
    pub fn solve_horizon_myopic(
        &self,
        scenario: Scenario,
        horizon: &HorizonConfig,
    ) -> Result<HorizonReport, AdvisorError> {
        if horizon.epochs == 0 {
            return Err(AdvisorError::EmptyHorizon);
        }
        let telemetry_base = mv_obs::enabled().then(mv_obs::Snapshot::capture);
        let chain = self.epoch_chain(horizon);
        let steps = chain.solve_myopic(scenario);
        let mut report = self.render_horizon(horizon, &chain, steps)?;
        if let Some(base) = telemetry_base {
            report.telemetry = Some(mv_obs::Snapshot::capture().since(&base));
        }
        Ok(report)
    }

    /// Assembles a [`HorizonReport`] from solved chain steps: per-epoch
    /// ledgers/invoices, cumulative totals, billable compute and the
    /// optional commitment comparison.
    fn render_horizon(
        &self,
        horizon: &HorizonConfig,
        chain: &EpochChain,
        steps: Vec<EpochStep>,
    ) -> Result<HorizonReport, AdvisorError> {
        let config = self.config();
        let labels: Vec<String> = self.candidates().iter().map(|m| m.label.clone()).collect();
        let name = |ks: &[usize]| ks.iter().map(|&k| labels[k].clone()).collect::<Vec<_>>();
        let mut epochs = Vec::with_capacity(steps.len());
        let mut cumulative = Money::ZERO;
        let mut billed = Hours::ZERO;
        for (e, (step, model)) in steps.iter().zip(chain.epochs()).enumerate() {
            let ledger = self.epoch_usage_ledger(model, step);
            let invoice = ledger
                .invoice(&config.pricing)
                .map_err(AdvisorError::from)?;
            let charged = step.outcome.evaluation.cost();
            cumulative += charged;
            billed += self.epoch_billed_instance_hours(chain.pool(), step, 1.0);
            epochs.push(EpochReport {
                epoch: e,
                selected: name(&step.selection().ones().collect::<Vec<_>>()),
                added: name(&step.added),
                kept: name(&step.kept),
                dropped: name(&step.dropped),
                time_hours: step.outcome.evaluation.time.value(),
                charged_cost: charged,
                full_price_cost: step.full_price.cost(),
                cumulative_cost: cumulative,
                invoice,
            });
        }
        let commitment = match &horizon.commitment {
            Some(plan) => {
                if plan.instance != config.instance {
                    return Err(AdvisorError::CommitmentMismatch {
                        plan: plan.name.clone(),
                        plan_instance: plan.instance.clone(),
                        advisor_instance: config.instance.clone(),
                    });
                }
                let on_demand_hourly = config
                    .pricing
                    .compute
                    .instance(&config.instance)
                    .map_err(AdvisorError::from)?
                    .hourly;
                let total_months = config.months * steps.len() as f64;
                Some(plan.compare_horizon(
                    on_demand_hourly,
                    total_months,
                    billed,
                    config.nb_instances,
                ))
            }
            None => None,
        };
        let total_cost = horizon_cost(&steps);
        let total_time = horizon_time(&steps);
        Ok(HorizonReport {
            steps,
            epochs,
            total_cost,
            total_time,
            billed_instance_hours: billed,
            commitment,
            telemetry: None,
        })
    }

    /// Billable instance-hours of one solved epoch step — processing,
    /// the selection's maintenance and the added views'
    /// materialization, each inflated by `attempts` (1.0 = risk-free),
    /// rounded per the provider's rule when nonzero (zero components
    /// bill zero) and fleet-multiplied. Shared by the horizon and
    /// market reports so the two bill through identical arithmetic
    /// (the zero-volatility market proptest pins them bit-for-bit).
    pub(crate) fn epoch_billed_instance_hours(
        &self,
        pool: &[ViewCharge],
        step: &EpochStep,
        attempts: f64,
    ) -> Hours {
        let config = self.config();
        let rounding = config.pricing.compute.rounding;
        let maintenance: Hours = step
            .selection()
            .ones()
            .map(|k| pool[k].maintenance * attempts)
            .sum();
        let materialization: Hours = step
            .added
            .iter()
            .map(|&k| pool[k].materialization * attempts)
            .sum();
        let mut billed = Hours::ZERO;
        for t in [step.outcome.evaluation.time, maintenance, materialization] {
            if t > Hours::ZERO {
                billed += rounding.apply(t) * config.nb_instances as f64;
            }
        }
        billed
    }

    /// The provider-side usage ledger for one epoch of a solved
    /// horizon: the epoch's processing and maintenance for the whole
    /// selection, materialization for the *newly added* views only
    /// (carried views' builds are sunk in earlier epochs), storage of
    /// dataset + selected views over the epoch, and the epoch's
    /// outbound results. Its invoice reconciles with the chain's
    /// charged evaluation.
    pub fn epoch_usage_ledger(&self, model: &CloudCostModel, step: &EpochStep) -> UsageLedger {
        let config = self.config();
        let candidates = self.problem().candidates();
        let selection = step.selection();
        let mut ledger = UsageLedger::new();
        ledger.record_compute(
            "workload processing",
            &config.instance,
            config.nb_instances,
            step.outcome.evaluation.time,
        );
        let maintenance: Hours = selection.ones().map(|k| candidates[k].maintenance).sum();
        if maintenance > Hours::ZERO {
            ledger.record_compute(
                "view maintenance",
                &config.instance,
                config.nb_instances,
                maintenance,
            );
        }
        let materialization: Hours = step
            .added
            .iter()
            .map(|&k| candidates[k].materialization)
            .sum();
        if materialization > Hours::ZERO {
            ledger.record_compute(
                "view materialization (new views)",
                &config.instance,
                config.nb_instances,
                materialization,
            );
        }
        let views_size = model.views_size(candidates, selection);
        ledger.record_storage("dataset + views", model.storage_timeline(views_size));
        ledger.record_transfer_out("query results", model.context().total_result_size());
        ledger
    }
}

/// One point of a horizon what-if sweep: cumulative chain vs myopic
/// bills after `epochs` periods.
#[derive(Debug, Clone, Serialize)]
pub struct HorizonSweepPoint {
    /// Horizon length this point represents (1-based epoch count).
    pub epochs: usize,
    /// Cumulative transition-aware cost.
    pub chain_cost: f64,
    /// Cumulative transition-blind (re-solve each period) cost.
    pub myopic_cost: f64,
    /// Cumulative chain processing hours.
    pub chain_time: f64,
    /// Cumulative myopic processing hours.
    pub myopic_time: f64,
}

/// Sweeps the horizon length: for every prefix of the horizon, the
/// cumulative chain-vs-myopic bill. Because both policies are
/// sequential, an `E`-epoch horizon's trajectory is the prefix of the
/// full one — one chain solve and one myopic solve cover every point.
pub fn horizon_growth_sweep(
    advisor: &Advisor,
    scenario: Scenario,
    horizon: &HorizonConfig,
) -> Vec<HorizonSweepPoint> {
    let chain = advisor.epoch_chain(horizon);
    let aware = chain.solve(scenario);
    let myopic = chain.solve_myopic(scenario);
    let mut out = Vec::with_capacity(aware.len());
    let (mut cc, mut mc) = (Money::ZERO, Money::ZERO);
    let (mut ct, mut mt) = (Hours::ZERO, Hours::ZERO);
    for (e, (a, m)) in aware.iter().zip(&myopic).enumerate() {
        cc += a.outcome.evaluation.cost();
        mc += m.outcome.evaluation.cost();
        ct += a.outcome.evaluation.time;
        mt += m.outcome.evaluation.time;
        out.push(HorizonSweepPoint {
            epochs: e + 1,
            chain_cost: cc.to_dollars_f64(),
            myopic_cost: mc.to_dollars_f64(),
            chain_time: ct.value(),
            myopic_time: mt.value(),
        });
    }
    out
}

/// Renders horizon sweep points as CSV.
pub fn horizon_sweep_csv(points: &[HorizonSweepPoint]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.epochs.to_string(),
                format!("{:.6}", p.chain_cost),
                format!("{:.6}", p.myopic_cost),
                format!("{:.6}", p.chain_time),
                format!("{:.6}", p.myopic_time),
            ]
        })
        .collect();
    crate::report::render_csv(
        &[
            "epochs",
            "chain_cost",
            "myopic_cost",
            "chain_time",
            "myopic_time",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sales_domain, AdvisorConfig};
    use mv_select::SolverKind;

    fn advisor() -> Advisor {
        Advisor::build(sales_domain(1_200, 4, 5.0, 42), AdvisorConfig::default()).unwrap()
    }

    #[test]
    fn flat_horizon_repeats_the_single_period_solve() {
        let a = advisor();
        let scenario = Scenario::tradeoff_normalized(0.5);
        let report = a
            .solve_horizon(
                scenario,
                &HorizonConfig {
                    epochs: 3,
                    ..HorizonConfig::default()
                },
            )
            .unwrap();
        assert_eq!(report.epochs.len(), 3);
        let solo = a.solve(scenario, SolverKind::LocalSearch);
        for (e, step) in report.steps.iter().enumerate() {
            assert_eq!(
                step.selection(),
                &solo.evaluation.selection,
                "epoch {e} drifted from the single-period selection"
            );
            assert_eq!(step.full_price, solo.evaluation, "epoch {e}");
        }
        // Carried epochs stop paying materialization, so the bill is
        // monotone non-increasing and the cumulative total is exact.
        assert!(report.epochs[1].charged_cost <= report.epochs[0].charged_cost);
        assert_eq!(report.epochs[0].charged_cost, solo.evaluation.cost());
        assert_eq!(
            report.epochs.last().unwrap().cumulative_cost,
            report.total_cost
        );
    }

    #[test]
    fn zero_epoch_horizon_is_an_error_not_a_panic() {
        let a = advisor();
        for solve in [Advisor::solve_horizon, Advisor::solve_horizon_myopic] {
            let err = solve(
                &a,
                Scenario::tradeoff_normalized(0.5),
                &HorizonConfig {
                    epochs: 0,
                    ..HorizonConfig::default()
                },
            );
            assert!(matches!(err, Err(crate::AdvisorError::EmptyHorizon)));
        }
    }

    #[test]
    fn epoch_invoices_reconcile_with_charged_evaluations() {
        let a = advisor();
        let report = a
            .solve_horizon(
                Scenario::tradeoff_normalized(0.4),
                &HorizonConfig {
                    epochs: 4,
                    evolution: mv_lattice::WorkloadEvolution::seasonal(4, 0.8),
                    commitment: None,
                },
            )
            .unwrap();
        for e in &report.epochs {
            assert_eq!(
                e.invoice.total(),
                e.charged_cost,
                "epoch {}: invoice drifted from prediction",
                e.epoch
            );
            assert!(e.full_price_cost >= e.charged_cost);
        }
    }

    #[test]
    fn commitment_comparison_prices_the_horizon() {
        let a = advisor();
        let report = a
            .solve_horizon(
                Scenario::tradeoff_normalized(0.5),
                &HorizonConfig {
                    epochs: 12,
                    evolution: mv_lattice::WorkloadEvolution::fixed(),
                    commitment: Some(mv_pricing::CommitmentPlan::aws_small_1yr()),
                },
            )
            .unwrap();
        let cmp = report.commitment.expect("plan supplied");
        assert_eq!(cmp.billed_instance_hours, report.billed_instance_hours);
        assert!(cmp.on_demand > Money::ZERO);
        assert!(cmp.reserved > Money::ZERO);
        // The on-demand side prices exactly the horizon's billed hours.
        let hourly = a
            .config()
            .pricing
            .compute
            .instance(&a.config().instance)
            .unwrap()
            .hourly;
        assert_eq!(
            cmp.on_demand,
            hourly.scale(report.billed_instance_hours.value())
        );
    }

    #[test]
    fn mismatched_commitment_instance_rejected() {
        let a = advisor();
        let mut plan = mv_pricing::CommitmentPlan::aws_small_1yr();
        plan.instance = "large".to_string();
        let err = a.solve_horizon(
            Scenario::tradeoff_normalized(0.5),
            &HorizonConfig {
                epochs: 2,
                evolution: mv_lattice::WorkloadEvolution::fixed(),
                commitment: Some(plan),
            },
        );
        assert!(err.is_err());
    }

    #[test]
    fn growth_sweep_is_cumulative_and_chain_never_loses() {
        let a = advisor();
        let scenario = Scenario::tradeoff(0.02);
        let horizon = HorizonConfig {
            epochs: 6,
            evolution: mv_lattice::WorkloadEvolution::seasonal(3, 1.0),
            commitment: None,
        };
        let points = horizon_growth_sweep(&a, scenario, &horizon);
        assert_eq!(points.len(), 6);
        for w in points.windows(2) {
            assert!(w[1].chain_cost >= w[0].chain_cost);
            assert!(w[1].myopic_cost >= w[0].myopic_cost);
        }
        let csv = horizon_sweep_csv(&points);
        assert_eq!(csv.lines().count(), 7);
        assert!(csv.starts_with("epochs,chain_cost"));
    }

    #[test]
    fn timeline_csv_shape() {
        let a = advisor();
        let report = a
            .solve_horizon(
                Scenario::tradeoff_normalized(0.5),
                &HorizonConfig {
                    epochs: 2,
                    ..HorizonConfig::default()
                },
            )
            .unwrap();
        let csv = report.timeline_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("epoch,selected,added,kept,dropped,time_hours"));
    }
}
