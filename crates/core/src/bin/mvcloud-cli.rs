//! `mvcloud-cli` — command-line front-end for the advisor.
//!
//! ```text
//! mvcloud-cli advise [--queries N] [--rows N] [--provider P] [--instances K]
//!                    [--candidates N] [--seed S]
//!                    (--budget $X | --time-limit H | --alpha A)
//!                    [--solver knapsack|exhaustive|greedy|bnb|local|lns]
//! mvcloud-cli horizon [--epochs N] [--pattern static|drift|burst|seasonal]
//!                     [--rate R | --factor F | --amplitude A] [--period P]
//!                     [--queries N] [--rows N] [--commitment]
//!                     (--budget $X | --time-limit H | --alpha A) [--myopic]
//! mvcloud-cli market [--epochs N] [--paths K] [--seed S]
//!                    [--volatility V] [--spot-mean M] [--bid B]
//!                    [--cut-epoch E] [--cut-factor F] [--decay R]
//!                    [--queries N] [--rows N] [--commitment]
//!                    (--budget $X | --time-limit H | --alpha A)
//! mvcloud-cli fleet [--epochs N] [--paths K] [--seed S]
//!                   [--spot-mean M] [--volatility V]
//!                   [--crunch-share S] [--persistence R] [--crunch-hazard H]
//!                   [--crunch-factor F] [--reserved-rate R] [--pin spot|reserved]
//!                   [--queries N] [--rows N] [--commitment] [--no-compare]
//!                   (--budget $X | --time-limit H | --alpha A)
//! mvcloud-cli calibrate [--domain sales|ssb] [--queries N] [--rows N]
//!                       [--frequency F] [--seed S] [--epochs N]
//!                       [--scale GB] [--instances K]
//!                       [--pattern static|drift|burst|seasonal]
//!                       [--rate R | --factor F | --amplitude A] [--period P]
//!                       [--synthetic-rate R] [--synthetic-overhead H]
//!                       (--budget $X | --time-limit H | --alpha A)
//! mvcloud-cli serve [--queries N] [--rows N] [--frequency F]
//!                   [--provider P] [--instances K]
//!                   [--catalog PATH] [--ingest CSV | --script FILE]
//!                   [--drift T] [--moves N]
//!                   (--budget $X | --time-limit H | --alpha A)
//! mvcloud-cli sql "SELECT ... FROM sales ..." [--rows N]
//! mvcloud-cli pricing
//! mvcloud-cli excerpt
//! ```
//!
//! `horizon` emits the per-epoch timeline as JSON (rendered through
//! [`mvcloud::json`]: the offline crate set has no serde_json).
//!
//! Every subcommand additionally accepts `--metrics <path|->`, which
//! enables the [`mvcloud::obs`] telemetry registry for the run and
//! emits the versioned snapshot JSON — `-` appends one compact line to
//! stdout after the report, a path receives the pretty document.
//!
//! Argument parsing is deliberately dependency-free (the offline crate set
//! has no CLI parser); flags are `--name value` pairs.

use std::env;
use std::process::ExitCode;

use mvcloud::engine::{csv, datagen, parse_query, SalesConfig};
use mvcloud::json::{snapshot_json, Json};
use mvcloud::pricing::presets;
use mvcloud::report::summarize;
use mvcloud::units::{Hours, Money};
use mvcloud::{obs, sales_domain, Advisor, AdvisorConfig, Scenario, SolverKind};

fn main() -> ExitCode {
    let mut args: Vec<String> = env::args().skip(1).collect();
    // `--metrics <path|->` is peeled before dispatch so every
    // subcommand supports it uniformly: presence turns the telemetry
    // registry on for the whole run; the snapshot is emitted after the
    // subcommand succeeds (`-` = one compact line on stdout after the
    // report, a path = pretty-printed file).
    let metrics = match extract_valued(&mut args, "--metrics") {
        Ok(m) => m,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    if metrics.is_some() {
        obs::enable();
    }
    let result = match args.first().map(String::as_str) {
        Some("advise") => cmd_advise(&args[1..]),
        Some("horizon") => cmd_horizon(&args[1..]),
        Some("market") => cmd_market(&args[1..]),
        Some("fleet") => cmd_fleet(&args[1..]),
        Some("calibrate") => cmd_calibrate(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("sql") => cmd_sql(&args[1..]),
        Some("pricing") => cmd_pricing(),
        Some("excerpt") => cmd_excerpt(),
        Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?} (try --help)")),
    };
    let result = result.and_then(|()| emit_metrics(metrics.as_deref()));
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Removes a `--name value` pair from `args`, returning the value.
fn extract_valued(args: &mut Vec<String>, name: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) if i + 1 < args.len() => {
            let value = args.remove(i + 1);
            args.remove(i);
            Ok(Some(value))
        }
        Some(_) => Err(format!("flag {name} needs a value")),
    }
}

/// Emits the process-lifetime telemetry snapshot requested by
/// `--metrics`: `-` appends one compact JSON line to stdout (after the
/// report, so `tail -n1` isolates it); anything else is a file path
/// that receives the pretty-printed document.
fn emit_metrics(target: Option<&str>) -> Result<(), String> {
    let Some(target) = target else { return Ok(()) };
    let doc = snapshot_json(&obs::Snapshot::capture());
    if target == "-" {
        println!("{}", doc.render());
    } else {
        // Atomic (temp + rename): a reader polling the snapshot file
        // never observes a partially written document.
        mvcloud::json::write_atomic(
            std::path::Path::new(target),
            &format!("{}\n", doc.render_pretty()),
        )
        .map_err(|e| format!("--metrics {target:?}: {e}"))?;
    }
    Ok(())
}

fn print_usage() {
    println!(
        "mvcloud-cli — cost-aware view materialization advisor\n\
         \n\
         USAGE:\n\
           mvcloud-cli advise [--queries N] [--rows N] [--provider P] [--instances K]\n\
                              [--candidates N] [--seed S]\n\
                              (--budget X | --time-limit H | --alpha A) [--solver S]\n\
           mvcloud-cli horizon [--epochs N] [--pattern P] [--queries N] [--rows N]\n\
                               (--budget X | --time-limit H | --alpha A)\n\
                               [--period P] [--rate R | --factor F | --amplitude A]\n\
                               [--commitment] [--myopic]\n\
           mvcloud-cli market [--epochs N] [--paths K] [--seed S] [--volatility V]\n\
                              [--spot-mean M] [--bid B] [--cut-epoch E] [--cut-factor F]\n\
                              [--decay R] [--queries N] [--rows N] [--commitment]\n\
                              [--flat] (--budget X | --time-limit H | --alpha A)\n\
           mvcloud-cli fleet [--epochs N] [--paths K] [--seed S] [--spot-mean M]\n\
                             [--volatility V] [--crunch-share S] [--persistence R]\n\
                             [--crunch-hazard H] [--crunch-factor F] [--reserved-rate R]\n\
                             [--pin spot|reserved] [--queries N] [--rows N]\n\
                             [--commitment] [--no-compare] [--flat]\n\
                             (--budget X | --time-limit H | --alpha A)\n\
           mvcloud-cli calibrate [--domain sales|ssb] [--queries N] [--rows N]\n\
                                 [--frequency F] [--seed S] [--epochs N] [--scale GB]\n\
                                 [--instances K] [--pattern P] [--period P]\n\
                                 [--rate R | --factor F | --amplitude A]\n\
                                 [--synthetic-rate R] [--synthetic-overhead H]\n\
                                 (--budget X | --time-limit H | --alpha A)\n\
           mvcloud-cli serve [--queries N] [--rows N] [--frequency F]\n\
                             [--provider P] [--instances K] [--catalog PATH]\n\
                             [--ingest CSV | --script FILE] [--drift T] [--moves N]\n\
                             (--budget X | --time-limit H | --alpha A)\n\
           mvcloud-cli sql \"SELECT sum(profit) FROM sales GROUP BY year\" [--rows N]\n\
           mvcloud-cli pricing          list provider presets\n\
           mvcloud-cli excerpt          print the paper's Table 1\n\
         \n\
         every subcommand also accepts:\n\
           --metrics PATH   enable telemetry; write the snapshot JSON to\n\
                            PATH ('-' = one compact line on stdout after\n\
                            the report)\n\
         \n\
         advise flags:\n\
           --queries N      workload size, 1-10 paper queries    [default 5]\n\
           --rows N         generated fact rows                  [default 10000]\n\
           --provider P     aws-2012|cumulus|stratus|flat-rate   [default aws-2012]\n\
           --instances K    number of identical instances        [default 2]\n\
           --budget X       MV1: minimize time under $X total\n\
           --time-limit H   MV2: minimize cost under H hours\n\
           --alpha A        MV3: weighted tradeoff, A in [0,1]\n\
           --solver S       knapsack|exhaustive|greedy|bnb|local|lns\n\
                            [default knapsack; lns is the large-pool tier]\n\
           --candidates N   synthetic scale mode: solve an N-candidate\n\
                            sparse-coverage problem instead of measuring\n\
                            the paper lattice (lifts --queries past 10;\n\
                            e.g. --candidates 2000 --queries 50000)\n\
           --seed S         scale mode generation seed           [default 42]\n\
         \n\
         horizon flags (plus advise's workload/scenario flags):\n\
           --epochs N       billing periods in the horizon       [default 12]\n\
           --pattern P      static|drift|burst|seasonal          [default seasonal]\n\
           --rate R         drift: per-epoch migration rate      [default 0.2]\n\
           --factor F       burst: spike multiplier              [default 5]\n\
           --amplitude A    seasonal: modulation depth in [0,1]  [default 0.6]\n\
           --period P       burst/seasonal: epochs per cycle     [default 12]\n\
           --commitment     compare on-demand vs reserved compute\n\
           --myopic         re-solve each epoch from scratch (transition-blind)\n\
         emits the per-epoch timeline as JSON\n\
         \n\
         market flags (plus advise's workload/scenario flags):\n\
           --epochs N       billing periods in the horizon       [default 12]\n\
           --paths K        sampled price paths                  [default 16]\n\
           --seed S         market seed (reproducible paths)     [default 42]\n\
           --volatility V   spot shock half-width (0 = no spot)  [default 0.3]\n\
           --spot-mean M    long-run spot compute factor         [default 1.0]\n\
           --bid B          spot bid factor (risk above it)      [default 1.2]\n\
           --cut-epoch E    announced compute cut effective at E\n\
           --cut-factor F   the cut's compute factor             [default 0.8]\n\
           --decay R        linear storage-rate decline/epoch    [default 0]\n\
           --commitment     price each path vs a reservation\n\
           --flat           solve each path as its own chain instead of\n\
                            the shared-prefix scenario tree (reference loop)\n\
         emits the per-epoch quantile timeline as JSON\n\
         \n\
         fleet flags (plus advise's workload/scenario flags):\n\
           --epochs N        billing periods in the horizon          [default 12]\n\
           --paths K         sampled price paths                     [default 16]\n\
           --seed S          market seed (reproducible paths)        [default 42]\n\
           --spot-mean M     long-run spot compute factor            [default 0.5]\n\
           --volatility V    spot shock half-width                   [default 0.3]\n\
           --crunch-share S  stationary share of crunch epochs       [default 0.25]\n\
           --persistence R   crunch regime autocorrelation, 0=iid    [default 0.7]\n\
           --crunch-hazard H interruption probability in a crunch    [default 0.5]\n\
           --crunch-factor F spot compute multiplier in a crunch     [default 1.3]\n\
           --reserved-rate R reserved pool rate vs on-demand         [default 1]\n\
           --pin P           pin every view: spot|reserved (pure fleet)\n\
           --commitment      price the reserved pool's reservation\n\
           --no-compare      skip the pure-spot/pure-reserved comparison\n\
           --flat            solve each path as its own chain instead of\n\
                             the shared-prefix scenario tree (reference loop)\n\
         emits the per-epoch hedge/quantile timeline as JSON\n\
         \n\
         calibrate flags (plus the scenario flags):\n\
           --domain D        sales|ssb workload domain            [default sales]\n\
           --queries N       sales workload size, 1-10            [default 5]\n\
           --rows N          generated fact rows                  [default 10000]\n\
           --frequency F     per-epoch runs of each query         [default 1]\n\
           --seed S          data generation seed                 [default 42]\n\
           --epochs N        replayed epochs, last one held out   [default 6]\n\
           --scale GB        simulated cloud dataset size         [default 500]\n\
           --instances K     number of identical instances        [default 2]\n\
           --pattern P       static|drift|burst|seasonal          [default static]\n\
                             (plus horizon's --rate/--factor/--amplitude/--period)\n\
           --synthetic-rate R     mis-specified prior GB/h/unit   [default 100]\n\
           --synthetic-overhead H prior per-job overhead hours    [default 0]\n\
         replays the horizon plan through the engine, fits the throughput\n\
         law from the metered samples, and emits the per-epoch\n\
         predicted-vs-metered reconciliation as JSON\n\
         \n\
         serve flags (plus the scenario flags):\n\
           --queries N      workload size, 1-10 paper queries    [default 3]\n\
           --rows N         generated fact rows                  [default 2000]\n\
           --frequency F    per-period runs of each query        [default 1]\n\
           --provider P     aws-2012|cumulus|stratus|flat-rate   [default aws-2012]\n\
           --instances K    number of identical instances        [default 2]\n\
           --catalog PATH   persistent candidate catalog; reloaded if it\n\
                            exists (skipping measurement), spilled on exit\n\
           --ingest CSV     event stream, one 'timestamp,query_id,query'\n\
                            line per observed execution\n\
           --script FILE    service script: ingest TS ID NAME | resolve |\n\
                            spill | status | whatif K [K..] (one per line)\n\
         runs the resident advisor: ingests traffic behind the catalog's\n\
         high-water mark, re-solves warm (retarget, no rebuild) when the\n\
         observed frequency mix drifts past --drift, and prints the\n\
         service status JSON\n\
           --drift T        L1 drift threshold in [0,2]          [default 0.25]\n\
           --moves N        re-solve local-search move budget    [default 64]"
    );
}

/// Reads `--name value` pairs; unknown flags are an error.
struct Flags<'a> {
    pairs: Vec<(&'a str, &'a str)>,
    positional: Vec<&'a str>,
}

fn parse_flags(args: &[String]) -> Result<Flags<'_>, String> {
    let mut pairs = Vec::new();
    let mut positional = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("flag --{name} needs a value"))?;
            pairs.push((name, value.as_str()));
            i += 2;
        } else {
            positional.push(args[i].as_str());
            i += 1;
        }
    }
    Ok(Flags { pairs, positional })
}

impl<'a> Flags<'a> {
    fn get(&self, name: &str) -> Option<&'a str> {
        self.pairs.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }

    fn parse_num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse::<T>()
                .map_err(|_| format!("--{name}: cannot parse {v:?}")),
        }
    }

    /// Rejects any flag outside `known` — a typo'd flag must fail
    /// loudly, not silently fall back to its default.
    fn expect_known(&self, known: &[&str]) -> Result<(), String> {
        for (name, _) in &self.pairs {
            if !known.contains(name) {
                return Err(format!("unknown flag --{name} (try --help)"));
            }
        }
        Ok(())
    }
}

/// The MV1/MV2/MV3 scenario flag names every advising subcommand takes.
const SCENARIO_FLAGS: [&str; 3] = ["budget", "time-limit", "alpha"];

fn cmd_advise(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    flags.expect_known(
        &[
            &[
                "queries",
                "rows",
                "provider",
                "instances",
                "solver",
                "candidates",
                "seed",
            ],
            &SCENARIO_FLAGS[..],
        ]
        .concat(),
    )?;
    let queries: usize = flags.parse_num("queries", 5)?;
    let rows: usize = flags.parse_num("rows", 10_000)?;
    let instances: u32 = flags.parse_num("instances", 2)?;
    let provider = flags.get("provider").unwrap_or("aws-2012");
    let pricing = presets::all()
        .into_iter()
        .find(|p| p.name == provider)
        .ok_or_else(|| format!("unknown provider {provider:?} (see `pricing`)"))?;
    let instance = pricing
        .compute
        .catalog
        .cheapest_with_units(1.0)
        .ok_or("provider has no 1-unit instance")?
        .name
        .clone();

    let solver = match flags.get("solver").unwrap_or("knapsack") {
        "knapsack" => SolverKind::PaperKnapsack,
        "exhaustive" => SolverKind::Exhaustive,
        "greedy" => SolverKind::Greedy,
        "bnb" => SolverKind::BranchAndBound,
        "local" => SolverKind::LocalSearch,
        "lns" => SolverKind::Lns,
        other => return Err(format!("unknown solver {other:?}")),
    };

    let scenario = parse_scenario(&flags)?;

    // Synthetic scale mode: a sparse-coverage problem of arbitrary size
    // (n candidates × m queries) instead of the measured paper lattice.
    if let Some(n) = flags.get("candidates") {
        let candidates: usize = n
            .parse()
            .map_err(|_| format!("--candidates: cannot parse {n:?}"))?;
        if candidates == 0 || queries == 0 {
            return Err("--candidates and --queries must be ≥ 1".to_string());
        }
        for inapplicable in ["rows", "provider", "instances"] {
            if flags.get(inapplicable).is_some() {
                return Err(format!(
                    "--{inapplicable} does not apply with --candidates (synthetic scale mode)"
                ));
            }
        }
        let shape = mvcloud::lattice::ScaleShape {
            queries,
            candidates,
            mean_coverage: 12,
            seed: flags.parse_num("seed", 42u64)?,
        };
        let problem = mvcloud::scale_problem(&shape);
        let outcome = mvcloud::select::solve(&problem, scenario, solver);
        let names: Vec<String> = problem
            .candidates()
            .iter()
            .map(|c| c.name.clone())
            .collect();
        println!("{}", summarize(&outcome, &names));
        return Ok(());
    }
    if flags.get("seed").is_some() {
        return Err("--seed needs --candidates (synthetic scale mode)".to_string());
    }

    if !(1..=10).contains(&queries) {
        return Err("--queries must be 1..=10 (the paper's workload)".to_string());
    }
    if rows == 0 {
        return Err("--rows must be ≥ 1".to_string());
    }
    if instances == 0 {
        return Err("--instances must be ≥ 1".to_string());
    }
    let domain = sales_domain(rows, queries, 1.0, 42);
    let advisor = Advisor::build(
        domain,
        AdvisorConfig {
            pricing,
            instance,
            nb_instances: instances,
            ..AdvisorConfig::default()
        },
    )
    .map_err(|e| e.to_string())?;

    let outcome = advisor.solve(scenario, solver);
    let names: Vec<String> = advisor
        .candidates()
        .iter()
        .map(|c| c.label.clone())
        .collect();
    println!("{}", summarize(&outcome, &names));
    Ok(())
}

/// Removes a valueless `--switch` token, reporting whether it was there.
fn extract_switch(args: &mut Vec<String>, switch: &str) -> bool {
    let before = args.len();
    args.retain(|a| a != switch);
    args.len() < before
}

/// Parses the shared MV1/MV2/MV3 scenario flags.
fn parse_scenario(flags: &Flags<'_>) -> Result<Scenario, String> {
    match (
        flags.get("budget"),
        flags.get("time-limit"),
        flags.get("alpha"),
    ) {
        (Some(b), None, None) => Ok(Scenario::budget(
            Money::from_dollars_str(b).map_err(|e| format!("--budget: {e}"))?,
        )),
        (None, Some(t), None) => Ok(Scenario::time_limit(Hours::new(
            t.parse::<f64>().map_err(|_| "--time-limit: not a number")?,
        ))),
        (None, None, Some(a)) => {
            let alpha: f64 = a.parse().map_err(|_| "--alpha: not a number")?;
            if !(0.0..=1.0).contains(&alpha) {
                return Err("--alpha must be in [0,1]".to_string());
            }
            Ok(Scenario::tradeoff_normalized(alpha))
        }
        _ => Err("choose exactly one of --budget, --time-limit, --alpha".to_string()),
    }
}

fn cmd_horizon(args: &[String]) -> Result<(), String> {
    use mvcloud::pricing::CommitmentPlan;
    use mvcloud::HorizonConfig;

    // Valueless switches are peeled off before `--name value` parsing.
    let mut args: Vec<String> = args.to_vec();
    let commitment_flag = extract_switch(&mut args, "--commitment");
    let myopic = extract_switch(&mut args, "--myopic");
    let flags = parse_flags(&args)?;
    flags.expect_known(
        &[
            &[
                "queries",
                "rows",
                "epochs",
                "pattern",
                "rate",
                "factor",
                "amplitude",
                "period",
            ],
            &SCENARIO_FLAGS[..],
        ]
        .concat(),
    )?;
    let queries: usize = flags.parse_num("queries", 5)?;
    let rows: usize = flags.parse_num("rows", 10_000)?;
    let epochs: usize = flags.parse_num("epochs", 12)?;
    if !(1..=10).contains(&queries) {
        return Err("--queries must be 1..=10 (the paper's workload)".to_string());
    }
    if rows == 0 {
        return Err("--rows must be ≥ 1".to_string());
    }
    if epochs == 0 {
        return Err("--epochs must be ≥ 1".to_string());
    }
    let evolution = parse_evolution(&flags, "seasonal")?;
    let scenario = parse_scenario(&flags)?;
    let commitment = commitment_flag.then(CommitmentPlan::aws_small_1yr);

    let domain = sales_domain(rows, queries, 1.0, 42);
    let advisor = Advisor::build(domain, AdvisorConfig::default()).map_err(|e| e.to_string())?;
    let horizon = HorizonConfig {
        epochs,
        evolution,
        commitment,
    };
    let report = if myopic {
        advisor.solve_horizon_myopic(scenario, &horizon)
    } else {
        advisor.solve_horizon(scenario, &horizon)
    }
    .map_err(|e| e.to_string())?;

    println!("{}", horizon_json(&report, scenario, myopic));
    Ok(())
}

/// Parses the shared workload-evolution flags (`--pattern` plus its
/// per-pattern knobs). Each drift knob belongs to one pattern; a knob
/// supplied for a different pattern would be silently ignored — reject
/// it instead.
fn parse_evolution(
    flags: &Flags<'_>,
    default_pattern: &str,
) -> Result<mvcloud::lattice::WorkloadEvolution, String> {
    use mvcloud::lattice::WorkloadEvolution;
    let pattern = flags.get("pattern").unwrap_or(default_pattern);
    let period: usize = flags.parse_num("period", 12)?;
    let applicable: &[&str] = match pattern {
        "static" => &[],
        "drift" => &["rate"],
        "burst" => &["factor", "period"],
        "seasonal" => &["amplitude", "period"],
        other => return Err(format!("unknown pattern {other:?}")),
    };
    for knob in ["rate", "factor", "amplitude", "period"] {
        if flags.get(knob).is_some() && !applicable.contains(&knob) {
            return Err(format!("--{knob} does not apply to --pattern {pattern}"));
        }
    }
    if period == 0 {
        // WorkloadEvolution::burst/seasonal assert a positive cycle
        // length; turn the would-be panic into a flag error.
        return Err("--period must be ≥ 1".to_string());
    }
    Ok(match pattern {
        "static" => WorkloadEvolution::fixed(),
        "drift" => WorkloadEvolution::drift(flags.parse_num("rate", 0.2)?),
        "burst" => WorkloadEvolution::burst(period, flags.parse_num("factor", 5.0)?),
        "seasonal" => WorkloadEvolution::seasonal(period, flags.parse_num("amplitude", 0.6)?),
        _ => unreachable!("patterns validated above"),
    })
}

fn cmd_calibrate(args: &[String]) -> Result<(), String> {
    use mvcloud::engine::ThroughputModel;
    use mvcloud::units::Gb;
    use mvcloud::CalibrationConfig;

    let flags = parse_flags(args)?;
    flags.expect_known(
        &[
            &[
                "domain",
                "queries",
                "rows",
                "frequency",
                "seed",
                "epochs",
                "scale",
                "instances",
                "pattern",
                "rate",
                "factor",
                "amplitude",
                "period",
                "synthetic-rate",
                "synthetic-overhead",
            ],
            &SCENARIO_FLAGS[..],
        ]
        .concat(),
    )?;
    let queries: usize = flags.parse_num("queries", 5)?;
    let rows: usize = flags.parse_num("rows", 10_000)?;
    let frequency: f64 = flags.parse_num("frequency", 1.0)?;
    let seed: u64 = flags.parse_num("seed", 42)?;
    let epochs: usize = flags.parse_num("epochs", 6)?;
    let scale: f64 = flags.parse_num("scale", 500.0)?;
    let instances: u32 = flags.parse_num("instances", 2)?;
    let synthetic_rate: f64 = flags.parse_num("synthetic-rate", 100.0)?;
    let synthetic_overhead: f64 = flags.parse_num("synthetic-overhead", 0.0)?;
    if rows == 0 {
        return Err("--rows must be ≥ 1".to_string());
    }
    if epochs < 2 {
        return Err("--epochs must be ≥ 2 (the last epoch is held out of the fit)".to_string());
    }
    if !(scale > 0.0 && scale.is_finite()) {
        return Err("--scale must be a positive number of simulated GB".to_string());
    }
    if instances == 0 {
        return Err("--instances must be ≥ 1".to_string());
    }
    if !(synthetic_rate > 0.0 && synthetic_rate.is_finite()) {
        return Err("--synthetic-rate must be a positive GB/h/unit rate".to_string());
    }
    if !(synthetic_overhead >= 0.0 && synthetic_overhead.is_finite()) {
        return Err("--synthetic-overhead must be ≥ 0 hours".to_string());
    }
    let evolution = parse_evolution(&flags, "static")?;
    let scenario = parse_scenario(&flags)?;

    let domain = match flags.get("domain").unwrap_or("sales") {
        "sales" => {
            if !(1..=10).contains(&queries) {
                return Err("--queries must be 1..=10 (the paper's workload)".to_string());
            }
            sales_domain(rows, queries, frequency, seed)
        }
        "ssb" => {
            if flags.get("queries").is_some() {
                return Err(
                    "--queries does not apply to --domain ssb (fixed 13-query flight workload)"
                        .to_string(),
                );
            }
            mvcloud::ssb_domain(rows, frequency, seed)
        }
        other => return Err(format!("--domain must be sales or ssb, got {other:?}")),
    };
    let advisor = Advisor::build(
        domain,
        AdvisorConfig {
            nb_instances: instances,
            simulated_dataset: Gb::new(scale),
            ..AdvisorConfig::default()
        },
    )
    .map_err(|e| e.to_string())?;
    let config = CalibrationConfig {
        epochs,
        evolution,
        synthetic: ThroughputModel::calibrated(synthetic_rate, Hours::new(synthetic_overhead)),
    };
    let report = advisor
        .calibrate(scenario, &config)
        .map_err(|e| e.to_string())?;
    println!("{}", calibrate_json(&report, scenario));
    Ok(())
}

/// Renders a calibration report's reconciliation timeline as JSON
/// (through the shared [`mvcloud::json`] writer, like [`horizon_json`]).
fn calibrate_json(report: &mvcloud::CalibrationReport, scenario: Scenario) -> String {
    let epochs = Json::Arr(
        report
            .epochs
            .iter()
            .map(|e| {
                Json::obj(vec![
                    ("epoch", Json::UInt(e.epoch as u64)),
                    ("queries_via_views", Json::UInt(e.queries_via_views as u64)),
                    ("metered_gb", Json::Fixed(e.metered_gb, 6)),
                    (
                        "measured_bill",
                        Json::Fixed(e.measured_bill.to_dollars_f64(), 6),
                    ),
                    (
                        "planned_bill",
                        Json::Fixed(e.planned_bill.to_dollars_f64(), 6),
                    ),
                    (
                        "fitted_bill",
                        Json::Fixed(e.fitted_bill.to_dollars_f64(), 6),
                    ),
                    (
                        "synthetic_bill",
                        Json::Fixed(e.synthetic_bill.to_dollars_f64(), 6),
                    ),
                    ("planned_rel_error", Json::Fixed(e.planned_rel_error, 6)),
                    ("fitted_rel_error", Json::Fixed(e.fitted_rel_error, 6)),
                    ("synthetic_rel_error", Json::Fixed(e.synthetic_rel_error, 6)),
                ])
            })
            .collect(),
    );
    let fitted = report.fitted_throughput();
    Json::obj(vec![
        ("scenario", Json::str(scenario.label())),
        ("epochs", epochs),
        (
            "fitted",
            Json::obj(vec![
                (
                    "scan_gb_per_hour_per_unit",
                    Json::Fixed(fitted.scan_gb_per_hour_per_unit, 6),
                ),
                (
                    "job_overhead_hours",
                    Json::Fixed(fitted.job_overhead.value(), 6),
                ),
            ]),
        ),
        ("samples", Json::UInt(report.samples as u64)),
        ("holdout_epoch", Json::UInt(report.holdout_epoch as u64)),
        (
            "holdout_fitted_rel_error",
            Json::Fixed(report.holdout_fitted_rel_error, 6),
        ),
        (
            "holdout_synthetic_rel_error",
            Json::Fixed(report.holdout_synthetic_rel_error, 6),
        ),
        (
            "mean_planned_rel_error",
            Json::Fixed(report.mean_planned_rel_error, 6),
        ),
        (
            "mean_fitted_rel_error",
            Json::Fixed(report.mean_fitted_rel_error, 6),
        ),
    ])
    .render_pretty()
}

fn cmd_market(args: &[String]) -> Result<(), String> {
    use mvcloud::market::{
        AnnouncedCut, MarketConfig, MarketScenario, PriceProcess, SpotMarket, StorageDecay,
    };
    use mvcloud::pricing::CommitmentPlan;

    let mut args: Vec<String> = args.to_vec();
    let commitment_flag = extract_switch(&mut args, "--commitment");
    let flat = extract_switch(&mut args, "--flat");
    let flags = parse_flags(&args)?;
    flags.expect_known(
        &[
            &[
                "queries",
                "rows",
                "epochs",
                "paths",
                "seed",
                "volatility",
                "spot-mean",
                "bid",
                "cut-epoch",
                "cut-factor",
                "decay",
            ],
            &SCENARIO_FLAGS[..],
        ]
        .concat(),
    )?;
    let queries: usize = flags.parse_num("queries", 5)?;
    let rows: usize = flags.parse_num("rows", 10_000)?;
    let epochs: usize = flags.parse_num("epochs", 12)?;
    let paths: usize = flags.parse_num("paths", 16)?;
    let seed: u64 = flags.parse_num("seed", 42)?;
    let volatility: f64 = flags.parse_num("volatility", 0.3)?;
    let spot_mean: f64 = flags.parse_num("spot-mean", 1.0)?;
    let bid: f64 = flags.parse_num("bid", 1.2)?;
    let cut_factor: f64 = flags.parse_num("cut-factor", 0.8)?;
    let decay: f64 = flags.parse_num("decay", 0.0)?;
    if !(1..=10).contains(&queries) {
        return Err("--queries must be 1..=10 (the paper's workload)".to_string());
    }
    if rows == 0 {
        return Err("--rows must be ≥ 1".to_string());
    }
    if epochs == 0 || paths == 0 {
        return Err("--epochs and --paths must be ≥ 1".to_string());
    }
    let scenario = parse_scenario(&flags)?;

    if volatility < 0.0 {
        return Err("--volatility must be ≥ 0".to_string());
    }
    let mut market = MarketScenario::constant(epochs, seed);
    if volatility > 0.0 || spot_mean != 1.0 {
        // A zero-volatility spot with a non-unit mean is still a price
        // regime (a flat discount); only the fully-default case means
        // "no spot process at all".
        market = market.with(PriceProcess::Spot(SpotMarket {
            mean: spot_mean,
            start: spot_mean,
            bid,
            ..SpotMarket::with_volatility(volatility)
        }));
    } else if flags.get("bid").is_some() {
        return Err("--bid needs --volatility > 0 or a non-unit --spot-mean".to_string());
    }
    if let Some(e) = flags.get("cut-epoch") {
        let effective: usize = e.parse().map_err(|_| "--cut-epoch: not an epoch index")?;
        market = market.with(PriceProcess::Cut(AnnouncedCut::compute(
            effective, cut_factor,
        )));
    } else if flags.get("cut-factor").is_some() {
        return Err("--cut-factor needs --cut-epoch".to_string());
    }
    if decay > 0.0 {
        market = market.with(PriceProcess::StorageDecay(StorageDecay::new(decay, 0.25)));
    }

    let domain = sales_domain(rows, queries, 1.0, 42);
    let advisor = Advisor::build(domain, AdvisorConfig::default()).map_err(|e| e.to_string())?;
    let config = MarketConfig {
        market,
        paths,
        commitment: commitment_flag.then(CommitmentPlan::aws_small_1yr),
        flat,
        ..MarketConfig::default()
    };
    let report = advisor
        .solve_market(scenario, &config)
        .map_err(|e| e.to_string())?;
    println!("{}", market_json(&report, scenario, paths));
    Ok(())
}

fn cmd_fleet(args: &[String]) -> Result<(), String> {
    use mvcloud::fleet::FleetConfig;
    use mvcloud::market::{CorrelatedHazard, MarketScenario, PriceProcess, SpotMarket};
    use mvcloud::pricing::{CommitmentPlan, FleetPlan};

    let mut args: Vec<String> = args.to_vec();
    let commitment_flag = extract_switch(&mut args, "--commitment");
    let no_compare = extract_switch(&mut args, "--no-compare");
    let flat = extract_switch(&mut args, "--flat");
    let flags = parse_flags(&args)?;
    flags.expect_known(
        &[
            &[
                "queries",
                "rows",
                "epochs",
                "paths",
                "seed",
                "spot-mean",
                "volatility",
                "crunch-share",
                "persistence",
                "crunch-hazard",
                "crunch-factor",
                "reserved-rate",
                "pin",
            ],
            &SCENARIO_FLAGS[..],
        ]
        .concat(),
    )?;
    let queries: usize = flags.parse_num("queries", 5)?;
    let rows: usize = flags.parse_num("rows", 10_000)?;
    let epochs: usize = flags.parse_num("epochs", 12)?;
    let paths: usize = flags.parse_num("paths", 16)?;
    let seed: u64 = flags.parse_num("seed", 42)?;
    let spot_mean: f64 = flags.parse_num("spot-mean", 0.5)?;
    let volatility: f64 = flags.parse_num("volatility", 0.3)?;
    let crunch_share: f64 = flags.parse_num("crunch-share", 0.25)?;
    let persistence: f64 = flags.parse_num("persistence", 0.7)?;
    let crunch_hazard: f64 = flags.parse_num("crunch-hazard", 0.5)?;
    let crunch_factor: f64 = flags.parse_num("crunch-factor", 1.3)?;
    let reserved_rate: f64 = flags.parse_num("reserved-rate", 1.0)?;
    if !(1..=10).contains(&queries) {
        return Err("--queries must be 1..=10 (the paper's workload)".to_string());
    }
    if rows == 0 {
        return Err("--rows must be ≥ 1".to_string());
    }
    if epochs == 0 || paths == 0 {
        return Err("--epochs and --paths must be ≥ 1".to_string());
    }
    if volatility < 0.0 {
        return Err("--volatility must be ≥ 0".to_string());
    }
    let scenario = parse_scenario(&flags)?;

    let mut market = MarketScenario::constant(epochs, seed);
    if volatility > 0.0 || spot_mean != 1.0 {
        market = market.with(PriceProcess::Spot(SpotMarket::discounted(
            spot_mean, volatility,
        )));
    }
    // A crunch regime matters as soon as crunch months exist and are
    // distinguishable — by hazard OR by a compute spike (a hazard-free
    // price-only crunch is a configuration CorrelatedHazard supports).
    if crunch_share > 0.0 && (crunch_hazard > 0.0 || crunch_factor != 1.0) {
        market = market.with(PriceProcess::Correlated(
            CorrelatedHazard::bursty(crunch_share, persistence, crunch_hazard)
                .with_crunch_compute(crunch_factor),
        ));
    }

    let mut fleet = match flags.get("pin") {
        None => FleetPlan::hedged("hedged"),
        Some("spot") => FleetPlan::pure_spot(),
        Some("reserved") => FleetPlan::pure_reserved(),
        Some(other) => return Err(format!("--pin must be spot or reserved, got {other:?}")),
    };
    fleet.reserved.rate_factor = reserved_rate;
    if commitment_flag {
        fleet.reserved.commitment = Some(CommitmentPlan::aws_small_1yr());
    }

    let domain = sales_domain(rows, queries, 1.0, 42);
    let advisor = Advisor::build(domain, AdvisorConfig::default()).map_err(|e| e.to_string())?;
    let config = FleetConfig {
        market,
        paths,
        fleet,
        compare_pure: !no_compare,
        flat,
        ..FleetConfig::default()
    };
    let report = advisor
        .solve_fleet(scenario, &config)
        .map_err(|e| e.to_string())?;
    println!("{}", fleet_json(&report, scenario, paths));
    Ok(())
}

/// Renders one [`mvcloud::Quantiles`] as a JSON object — the ONE place
/// the six-field schema lives; the market and fleet renderers share it.
fn quantiles_json(q: &mvcloud::Quantiles) -> Json {
    Json::obj(vec![
        ("min", Json::Fixed(q.min, 6)),
        ("p10", Json::Fixed(q.p10, 6)),
        ("median", Json::Fixed(q.median, 6)),
        ("p90", Json::Fixed(q.p90, 6)),
        ("max", Json::Fixed(q.max, 6)),
        ("mean", Json::Fixed(q.mean, 6)),
    ])
}

/// The shared `{plan,spot_compute,reserved,saving,reserved_wins_share}`
/// commitment object of the market and fleet reports.
fn spot_commitment_json(c: &mvcloud::SpotCommitmentReport) -> Json {
    Json::obj(vec![
        ("plan", Json::str(c.plan.clone())),
        ("spot_compute", quantiles_json(&c.spot_compute)),
        ("reserved", quantiles_json(&c.reserved)),
        ("saving", quantiles_json(&c.saving)),
        ("reserved_wins_share", Json::Fixed(c.reserved_wins_share, 4)),
    ])
}

/// A JSON array of quoted names.
fn str_list_json(names: &[String]) -> Json {
    Json::Arr(names.iter().map(Json::str).collect())
}

/// Renders a fleet report's hedge/quantile timeline as JSON
/// (through the shared writer, like [`market_json`]).
fn fleet_json(report: &mvcloud::FleetReport, scenario: Scenario, paths: usize) -> String {
    let q = quantiles_json;
    let epochs = Json::Arr(
        report
            .epochs
            .iter()
            .map(|e| {
                Json::obj(vec![
                    ("epoch", Json::UInt(e.epoch as u64)),
                    ("charged_cost", q(&e.charged_cost)),
                    ("cumulative_cost", q(&e.cumulative_cost)),
                    ("hedge_ratio", q(&e.hedge_ratio)),
                    ("compute_factor", q(&e.compute_factor)),
                    ("interruption", q(&e.interruption)),
                    ("distinct_plans", Json::UInt(e.distinct_plans as u64)),
                    ("modal_share", Json::Fixed(e.modal_share, 4)),
                    ("modal_selection", str_list_json(&e.modal_selection)),
                ])
            })
            .collect(),
    );
    let comparison = Json::opt(report.comparison.as_ref().map(|c| {
        Json::obj(vec![
            ("hedged", q(&c.hedged)),
            ("pure_spot", q(&c.pure_spot)),
            ("pure_reserved", q(&c.pure_reserved)),
            ("hedged_wins_share", Json::Fixed(c.hedged_wins_share, 4)),
        ])
    }));
    let moves: usize = report.paths.iter().map(|p| p.moves).sum();
    Json::obj(vec![
        ("scenario", Json::str(scenario.label())),
        ("fleet", Json::str(report.fleet.clone())),
        ("paths", Json::UInt(paths as u64)),
        ("distinct_solves", Json::UInt(report.distinct_solves as u64)),
        (
            "tree_nodes",
            Json::opt(report.tree_nodes.map(|n| Json::UInt(n as u64))),
        ),
        ("epochs", epochs),
        ("total_cost", q(&report.total_cost)),
        ("hedge_ratio", q(&report.hedge_ratio)),
        ("plan_stability", Json::Fixed(report.plan_stability, 4)),
        (
            "placement_moves_per_path",
            Json::Fixed(moves as f64 / report.paths.len() as f64, 2),
        ),
        ("comparison", comparison),
        (
            "commitment",
            Json::opt(report.commitment.as_ref().map(spot_commitment_json)),
        ),
    ])
    .render_pretty()
}

/// Renders a market report's quantile timeline as JSON (through the
/// shared writer, like [`horizon_json`]).
fn market_json(report: &mvcloud::MarketReport, scenario: Scenario, paths: usize) -> String {
    let q = quantiles_json;
    let epochs = Json::Arr(
        report
            .epochs
            .iter()
            .map(|e| {
                Json::obj(vec![
                    ("epoch", Json::UInt(e.epoch as u64)),
                    ("charged_cost", q(&e.charged_cost)),
                    ("cumulative_cost", q(&e.cumulative_cost)),
                    ("time_hours", q(&e.time_hours)),
                    ("compute_factor", q(&e.compute_factor)),
                    ("interruption", q(&e.interruption)),
                    ("distinct_plans", Json::UInt(e.distinct_plans as u64)),
                    ("modal_share", Json::Fixed(e.modal_share, 4)),
                    ("modal_selection", str_list_json(&e.modal_selection)),
                ])
            })
            .collect(),
    );
    Json::obj(vec![
        ("scenario", Json::str(scenario.label())),
        ("paths", Json::UInt(paths as u64)),
        ("distinct_solves", Json::UInt(report.distinct_solves as u64)),
        (
            "tree_nodes",
            Json::opt(report.tree_nodes.map(|n| Json::UInt(n as u64))),
        ),
        ("epochs", epochs),
        ("total_cost", q(&report.total_cost)),
        ("total_time_hours", q(&report.total_time_hours)),
        ("plan_stability", Json::Fixed(report.plan_stability, 4)),
        (
            "commitment",
            Json::opt(report.commitment.as_ref().map(spot_commitment_json)),
        ),
    ])
    .render_pretty()
}

/// Renders a horizon report as JSON (the vendored serde is a no-op
/// marker crate, so the timeline goes through [`mvcloud::json`]).
fn horizon_json(report: &mvcloud::HorizonReport, scenario: Scenario, myopic: bool) -> String {
    let epochs = Json::Arr(
        report
            .epochs
            .iter()
            .map(|e| {
                Json::obj(vec![
                    ("epoch", Json::UInt(e.epoch as u64)),
                    ("selected", str_list_json(&e.selected)),
                    ("added", str_list_json(&e.added)),
                    ("kept", str_list_json(&e.kept)),
                    ("dropped", str_list_json(&e.dropped)),
                    ("time_hours", Json::Fixed(e.time_hours, 6)),
                    (
                        "charged_cost",
                        Json::Fixed(e.charged_cost.to_dollars_f64(), 6),
                    ),
                    (
                        "full_price_cost",
                        Json::Fixed(e.full_price_cost.to_dollars_f64(), 6),
                    ),
                    (
                        "cumulative_cost",
                        Json::Fixed(e.cumulative_cost.to_dollars_f64(), 6),
                    ),
                ])
            })
            .collect(),
    );
    let commitment = Json::opt(report.commitment.as_ref().map(|c| {
        Json::obj(vec![
            ("plan", Json::str(c.plan.clone())),
            (
                "billed_instance_hours",
                Json::Fixed(c.billed_instance_hours.value(), 6),
            ),
            ("on_demand", Json::Fixed(c.on_demand.to_dollars_f64(), 6)),
            ("reserved", Json::Fixed(c.reserved.to_dollars_f64(), 6)),
            ("saving", Json::Fixed(c.saving().to_dollars_f64(), 6)),
            ("reserved_wins", Json::Bool(c.reserved_wins())),
        ])
    }));
    Json::obj(vec![
        ("scenario", Json::str(scenario.label())),
        ("policy", Json::str(if myopic { "myopic" } else { "chain" })),
        ("epochs", epochs),
        (
            "total_cost",
            Json::Fixed(report.total_cost.to_dollars_f64(), 6),
        ),
        (
            "total_time_hours",
            Json::Fixed(report.total_time.value(), 6),
        ),
        (
            "billed_instance_hours",
            Json::Fixed(report.billed_instance_hours.value(), 6),
        ),
        ("commitment", commitment),
    ])
    .render_pretty()
}

/// The resident advisor loop: catalog-backed startup, scripted or CSV
/// ingest behind the high-water mark, drift-triggered warm re-solves,
/// and a final status document (plus a final catalog spill).
fn cmd_serve(args: &[String]) -> Result<(), String> {
    use mvcloud::{AdvisorService, ServiceConfig};

    let flags = parse_flags(args)?;
    flags.expect_known(
        &[
            &[
                "queries",
                "rows",
                "frequency",
                "provider",
                "instances",
                "catalog",
                "ingest",
                "script",
                "drift",
                "moves",
            ],
            &SCENARIO_FLAGS[..],
        ]
        .concat(),
    )?;
    let queries: usize = flags.parse_num("queries", 3)?;
    let rows: usize = flags.parse_num("rows", 2_000)?;
    let frequency: f64 = flags.parse_num("frequency", 1.0)?;
    let instances: u32 = flags.parse_num("instances", 2)?;
    let drift: f64 = flags.parse_num("drift", 0.25)?;
    let moves: usize = flags.parse_num("moves", 64)?;
    if !(1..=10).contains(&queries) {
        return Err("--queries must be 1..=10 (the paper's workload)".to_string());
    }
    if rows == 0 {
        return Err("--rows must be ≥ 1".to_string());
    }
    if !(0.0..=2.0).contains(&drift) {
        return Err("--drift must be in [0,2] (L1 distance of distributions)".to_string());
    }
    if flags.get("ingest").is_some() && flags.get("script").is_some() {
        return Err("choose at most one of --ingest, --script".to_string());
    }
    let provider = flags.get("provider").unwrap_or("aws-2012");
    let pricing = presets::all()
        .into_iter()
        .find(|p| p.name == provider)
        .ok_or_else(|| format!("unknown provider {provider:?} (see `pricing`)"))?;
    let instance = pricing
        .compute
        .catalog
        .cheapest_with_units(1.0)
        .ok_or("provider has no 1-unit instance")?
        .name
        .clone();
    let advisor_config = AdvisorConfig {
        pricing,
        instance,
        nb_instances: instances,
        ..AdvisorConfig::default()
    };
    let service_config = ServiceConfig {
        scenario: parse_scenario(&flags)?,
        drift_threshold: drift,
        resolve_moves: moves,
    };

    let catalog_path = flags.get("catalog").map(std::path::PathBuf::from);
    let mut svc = match &catalog_path {
        // Warm restart: reload the measured charges; never re-measure.
        Some(path) if path.exists() => {
            AdvisorService::open(path, advisor_config, service_config).map_err(|e| e.to_string())?
        }
        _ => {
            let domain = sales_domain(rows, queries, frequency, 42);
            let advisor = Advisor::build(domain, advisor_config).map_err(|e| e.to_string())?;
            let svc = AdvisorService::from_advisor(&advisor, service_config)
                .map_err(|e| e.to_string())?;
            // Spill immediately so even a crash before the first event
            // leaves a reloadable catalog on disk.
            if let Some(path) = &catalog_path {
                svc.spill(path).map_err(|e| e.to_string())?;
            }
            svc
        }
    };

    if let Some(csv_path) = flags.get("ingest") {
        let text =
            std::fs::read_to_string(csv_path).map_err(|e| format!("--ingest {csv_path:?}: {e}"))?;
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let event = parse_event_csv(line)
                .map_err(|e| format!("--ingest {csv_path:?} line {}: {e}", lineno + 1))?;
            // One batch per event: stream semantics, a drift check per
            // observed execution.
            let out = svc.ingest(&[event]).map_err(|e| e.to_string())?;
            if out.resolved {
                println!(
                    "resolved after line {}: {} views selected",
                    lineno + 1,
                    svc.plan().num_selected()
                );
            }
        }
    } else if let Some(script_path) = flags.get("script") {
        let text = std::fs::read_to_string(script_path)
            .map_err(|e| format!("--script {script_path:?}: {e}"))?;
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            run_script_line(&mut svc, line, catalog_path.as_deref())
                .map_err(|e| format!("--script {script_path:?} line {}: {e}", lineno + 1))?;
        }
    }

    if let Some(path) = &catalog_path {
        svc.spill(path).map_err(|e| e.to_string())?;
    }
    println!("{}", svc.status_json().render_pretty());
    Ok(())
}

/// Parses one `timestamp,query_id,query` CSV stream line.
fn parse_event_csv(line: &str) -> Result<mvcloud::QueryEvent, String> {
    let mut parts = line.splitn(3, ',');
    let (Some(ts), Some(id), Some(name)) = (parts.next(), parts.next(), parts.next()) else {
        return Err(format!("expected 'timestamp,query_id,query', got {line:?}"));
    };
    Ok(mvcloud::QueryEvent {
        timestamp: ts
            .trim()
            .parse()
            .map_err(|_| format!("bad timestamp {ts:?}"))?,
        query_id: id
            .trim()
            .parse()
            .map_err(|_| format!("bad query_id {id:?}"))?,
        query: name.trim().to_string(),
    })
}

/// Executes one `--script` command against the resident service.
fn run_script_line(
    svc: &mut mvcloud::AdvisorService,
    line: &str,
    catalog_path: Option<&std::path::Path>,
) -> Result<(), String> {
    let words: Vec<&str> = line.split_whitespace().collect();
    match words.as_slice() {
        ["ingest", ts, id, name] => {
            let event = mvcloud::QueryEvent {
                timestamp: ts.parse().map_err(|_| format!("bad timestamp {ts:?}"))?,
                query_id: id.parse().map_err(|_| format!("bad query_id {id:?}"))?,
                query: (*name).to_string(),
            };
            let out = svc.ingest(&[event]).map_err(|e| e.to_string())?;
            if out.resolved {
                println!("resolved: {} views selected", svc.plan().num_selected());
            }
            Ok(())
        }
        ["resolve"] => {
            svc.resolve().map_err(|e| e.to_string())?;
            println!("resolved: {} views selected", svc.plan().num_selected());
            Ok(())
        }
        ["spill"] => {
            let path = catalog_path.ok_or("spill needs --catalog")?;
            svc.spill(path).map_err(|e| e.to_string())
        }
        ["status"] => {
            println!("{}", svc.status_json().render());
            Ok(())
        }
        ["whatif", toggles @ ..] if !toggles.is_empty() => {
            let ks: Vec<usize> = toggles
                .iter()
                .map(|t| t.parse().map_err(|_| format!("bad candidate index {t:?}")))
                .collect::<Result<_, String>>()?;
            let n = svc.catalog().candidates.len();
            if let Some(k) = ks.iter().find(|&&k| k >= n) {
                return Err(format!("candidate index {k} out of range (have {n})"));
            }
            let probe = svc.what_if_toggle(&ks);
            println!(
                "whatif {:?}: {} views, {:.4} h, ${:.2}",
                ks,
                probe.num_selected(),
                probe.time.value(),
                probe.cost().to_dollars_f64()
            );
            Ok(())
        }
        _ => Err(format!(
            "unknown script command {line:?} (ingest TS ID NAME | resolve | spill | status | whatif K..)"
        )),
    }
}

fn cmd_sql(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    flags.expect_known(&["rows", "format"])?;
    let statement = flags
        .positional
        .first()
        .ok_or("sql requires a statement argument")?;
    let rows: usize = flags.parse_num("rows", 10_000)?;
    if rows == 0 {
        return Err("--rows must be ≥ 1".to_string());
    }
    let parsed = parse_query(statement).map_err(|e| e.to_string())?;
    let table = match parsed.table.as_str() {
        "sales" => datagen::generate_sales(&SalesConfig::with_rows(rows)),
        "lineorder" => {
            mvcloud::engine::ssb::generate_lineorder(&mvcloud::engine::SsbConfig { rows, seed: 7 })
        }
        other => {
            return Err(format!(
                "unknown table {other:?}: use 'sales' or 'lineorder'"
            ))
        }
    };
    let (result, stats) = parsed.query.execute(&table).map_err(|e| e.to_string())?;
    if flags.get("format") == Some("csv") {
        println!("{}", csv::table_to_csv(&result));
    } else {
        println!("{}", result.render(40));
    }
    eprintln!(
        "({} rows in, {} groups out, {} bytes scanned)",
        stats.rows_scanned, stats.groups, stats.bytes_scanned
    );
    Ok(())
}

fn cmd_pricing() -> Result<(), String> {
    for p in presets::all() {
        println!("{}", p.name);
        for i in p.compute.catalog.all() {
            println!(
                "  {:<10} {} per hour, {} ECU",
                i.name, i.hourly, i.compute_units
            );
        }
    }
    Ok(())
}

fn cmd_excerpt() -> Result<(), String> {
    println!("{}", datagen::paper_excerpt().render(4));
    Ok(())
}
