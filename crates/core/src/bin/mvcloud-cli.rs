//! `mvcloud-cli` — command-line front-end for the advisor.
//!
//! ```text
//! mvcloud-cli advise [--queries N] [--rows N] [--provider P] [--instances K]
//!                    (--budget $X | --time-limit H | --alpha A)
//!                    [--solver knapsack|exhaustive|greedy|bnb|local]
//! mvcloud-cli sql "SELECT ... FROM sales ..." [--rows N]
//! mvcloud-cli pricing
//! mvcloud-cli excerpt
//! ```
//!
//! Argument parsing is deliberately dependency-free (the offline crate set
//! has no CLI parser); flags are `--name value` pairs.

use std::env;
use std::process::ExitCode;

use mvcloud::engine::{csv, datagen, parse_query, SalesConfig};
use mvcloud::pricing::presets;
use mvcloud::report::summarize;
use mvcloud::units::{Hours, Money};
use mvcloud::{sales_domain, Advisor, AdvisorConfig, Scenario, SolverKind};

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("advise") => cmd_advise(&args[1..]),
        Some("sql") => cmd_sql(&args[1..]),
        Some("pricing") => cmd_pricing(),
        Some("excerpt") => cmd_excerpt(),
        Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?} (try --help)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "mvcloud-cli — cost-aware view materialization advisor\n\
         \n\
         USAGE:\n\
           mvcloud-cli advise [--queries N] [--rows N] [--provider P] [--instances K]\n\
                              (--budget X | --time-limit H | --alpha A) [--solver S]\n\
           mvcloud-cli sql \"SELECT sum(profit) FROM sales GROUP BY year\" [--rows N]\n\
           mvcloud-cli pricing          list provider presets\n\
           mvcloud-cli excerpt          print the paper's Table 1\n\
         \n\
         advise flags:\n\
           --queries N      workload size, 1-10 paper queries    [default 5]\n\
           --rows N         generated fact rows                  [default 10000]\n\
           --provider P     aws-2012|cumulus|stratus|flat-rate   [default aws-2012]\n\
           --instances K    number of identical instances        [default 2]\n\
           --budget X       MV1: minimize time under $X total\n\
           --time-limit H   MV2: minimize cost under H hours\n\
           --alpha A        MV3: weighted tradeoff, A in [0,1]\n\
           --solver S       knapsack|exhaustive|greedy|bnb|local [default knapsack]"
    );
}

/// Reads `--name value` pairs; unknown flags are an error.
struct Flags<'a> {
    pairs: Vec<(&'a str, &'a str)>,
    positional: Vec<&'a str>,
}

fn parse_flags(args: &[String]) -> Result<Flags<'_>, String> {
    let mut pairs = Vec::new();
    let mut positional = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("flag --{name} needs a value"))?;
            pairs.push((name, value.as_str()));
            i += 2;
        } else {
            positional.push(args[i].as_str());
            i += 1;
        }
    }
    Ok(Flags { pairs, positional })
}

impl<'a> Flags<'a> {
    fn get(&self, name: &str) -> Option<&'a str> {
        self.pairs.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }

    fn parse_num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse::<T>()
                .map_err(|_| format!("--{name}: cannot parse {v:?}")),
        }
    }
}

fn cmd_advise(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let queries: usize = flags.parse_num("queries", 5)?;
    let rows: usize = flags.parse_num("rows", 10_000)?;
    let instances: u32 = flags.parse_num("instances", 2)?;
    let provider = flags.get("provider").unwrap_or("aws-2012");
    let pricing = presets::all()
        .into_iter()
        .find(|p| p.name == provider)
        .ok_or_else(|| format!("unknown provider {provider:?} (see `pricing`)"))?;
    let instance = pricing
        .compute
        .catalog
        .cheapest_with_units(1.0)
        .ok_or("provider has no 1-unit instance")?
        .name
        .clone();

    let solver = match flags.get("solver").unwrap_or("knapsack") {
        "knapsack" => SolverKind::PaperKnapsack,
        "exhaustive" => SolverKind::Exhaustive,
        "greedy" => SolverKind::Greedy,
        "bnb" => SolverKind::BranchAndBound,
        "local" => SolverKind::LocalSearch,
        other => return Err(format!("unknown solver {other:?}")),
    };

    let scenario = match (
        flags.get("budget"),
        flags.get("time-limit"),
        flags.get("alpha"),
    ) {
        (Some(b), None, None) => {
            Scenario::budget(Money::from_dollars_str(b).map_err(|e| format!("--budget: {e}"))?)
        }
        (None, Some(t), None) => Scenario::time_limit(Hours::new(
            t.parse::<f64>().map_err(|_| "--time-limit: not a number")?,
        )),
        (None, None, Some(a)) => {
            let alpha: f64 = a.parse().map_err(|_| "--alpha: not a number")?;
            if !(0.0..=1.0).contains(&alpha) {
                return Err("--alpha must be in [0,1]".to_string());
            }
            Scenario::tradeoff_normalized(alpha)
        }
        _ => return Err("choose exactly one of --budget, --time-limit, --alpha".to_string()),
    };

    if !(1..=10).contains(&queries) {
        return Err("--queries must be 1..=10 (the paper's workload)".to_string());
    }
    let domain = sales_domain(rows, queries, 1.0, 42);
    let advisor = Advisor::build(
        domain,
        AdvisorConfig {
            pricing,
            instance,
            nb_instances: instances,
            ..AdvisorConfig::default()
        },
    )
    .map_err(|e| e.to_string())?;

    let outcome = advisor.solve(scenario, solver);
    let names: Vec<String> = advisor
        .candidates()
        .iter()
        .map(|c| c.label.clone())
        .collect();
    println!("{}", summarize(&outcome, &names));
    Ok(())
}

fn cmd_sql(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let statement = flags
        .positional
        .first()
        .ok_or("sql requires a statement argument")?;
    let rows: usize = flags.parse_num("rows", 10_000)?;
    let parsed = parse_query(statement).map_err(|e| e.to_string())?;
    let table = match parsed.table.as_str() {
        "sales" => datagen::generate_sales(&SalesConfig::with_rows(rows)),
        "lineorder" => {
            mvcloud::engine::ssb::generate_lineorder(&mvcloud::engine::SsbConfig { rows, seed: 7 })
        }
        other => {
            return Err(format!(
                "unknown table {other:?}: use 'sales' or 'lineorder'"
            ))
        }
    };
    let (result, stats) = parsed.query.execute(&table).map_err(|e| e.to_string())?;
    if flags.get("format") == Some("csv") {
        println!("{}", csv::table_to_csv(&result));
    } else {
        println!("{}", result.render(40));
    }
    eprintln!(
        "({} rows in, {} groups out, {} bytes scanned)",
        stats.rows_scanned, stats.groups, stats.bytes_scanned
    );
    Ok(())
}

fn cmd_pricing() -> Result<(), String> {
    for p in presets::all() {
        println!("{}", p.name);
        for i in p.compute.catalog.all() {
            println!(
                "  {:<10} {} per hour, {} ECU",
                i.name, i.hourly, i.compute_units
            );
        }
    }
    Ok(())
}

fn cmd_excerpt() -> Result<(), String> {
    println!("{}", datagen::paper_excerpt().render(4));
    Ok(())
}
