//! # mvcloud — cost-aware view materialization in the cloud
//!
//! End-to-end reproduction of *"Cost Models for View Materialization in the
//! Cloud"* (Nguyen, d'Orazio, Bimonte, Darmont — EDBT/ICDT DanaC 2012):
//! given a dataset, a roll-up workload and a cloud pricing policy, decide
//! which aggregation views to materialize under a budget (MV1), a response
//! time limit (MV2), or a weighted tradeoff (MV3).
//!
//! The heavy lifting lives in the workspace crates, re-exported here:
//!
//! * [`units`] — fixed-point money, sizes, durations;
//! * [`pricing`] — tiered CSP pricing, billing simulator, presets;
//! * [`engine`] — the columnar aggregation engine (the "cluster");
//! * [`lattice`] — cuboid lattice, size estimation, candidate generation;
//! * [`cost`] — the paper's cost formulas (plus interruption-risk
//!   charging);
//! * [`select`] — MV1/MV2/MV3 scenarios and the four solvers;
//! * [`market`] — cloud price dynamics (spot markets, announced cuts,
//!   storage decay) and the Monte-Carlo market advisor.
//!
//! The [`Advisor`] wires them together — measuring once, then solving a
//! single period ([`Advisor::solve`]), a lazy candidate stream
//! ([`Advisor::solve_streaming`]), a whole multi-epoch billing
//! horizon with drifting workloads and transition-aware carry-over
//! ([`Advisor::solve_horizon`], [`horizon`]), that same horizon
//! against `K` sampled price trajectories with risk-adjusted charging
//! and quantile envelopes ([`Advisor::solve_market`], [`market`]), or
//! a hedged **mixed fleet** where each view's reserved-vs-spot
//! placement is searched jointly with the selection against correlated
//! interruption epochs ([`Advisor::solve_fleet`], [`fleet`]):
//!
//! For long-running deployments the advisor also runs *resident*: the
//! [`service`] module keeps the measured charges in a persistent
//! [`catalog`] (atomic spill, bit-identical reload), ingests live query
//! traffic behind a `(timestamp, query_id)` high-water mark, and
//! re-solves warm — retarget only, never an evaluator rebuild — when
//! the observed frequency mix drifts past a threshold
//! ([`AdvisorService`]). Concurrent what-if probes run on evaluator
//! forks with snapshot isolation. `mvcloud-cli serve` drives the loop
//! from a CSV event stream or a script.
//!
//! ```
//! use mvcloud::{sales_domain, Advisor, AdvisorConfig, Scenario, SolverKind};
//! use mvcloud::units::Money;
//!
//! let domain = sales_domain(1_000, 3, 1.0, 42);
//! let advisor = Advisor::build(domain, AdvisorConfig::default()).unwrap();
//! let outcome = advisor.solve(
//!     Scenario::budget(Money::from_dollars(100)),
//!     SolverKind::PaperKnapsack,
//! );
//! assert!(outcome.feasible());
//! // Materializing views always shortens the workload here.
//! assert!(outcome.evaluation.time < outcome.baseline.time);
//! ```

mod advisor;
pub mod calibrate;
pub mod catalog;
mod dedup;
mod domain;
mod error;
pub mod fleet;
pub mod horizon;
pub mod json;
pub mod market;
pub mod report;
pub mod scale;
pub mod service;
pub mod whatif;

pub use advisor::{
    Advisor, AdvisorConfig, CandidateStrategy, MeasuredCandidate, SizingMode, StreamStrategy,
    StreamingConfig, StreamingReport,
};
pub use calibrate::{CalibrationConfig, CalibrationReport, EpochCalibration};
pub use catalog::{CandidateCatalog, HighWaterMark};
pub use domain::{sales_domain, ssb_domain, Domain};
pub use error::AdvisorError;
pub use fleet::{FleetComparison, FleetConfig, FleetEpochReport, FleetPathSummary, FleetReport};
pub use horizon::{EpochReport, HorizonConfig, HorizonReport};
pub use market::{
    MarketConfig, MarketEpochReport, MarketPathSummary, MarketReport, Quantiles,
    SpotCommitmentReport,
};
pub use scale::scale_problem;
pub use service::{AdvisorService, IngestOutcome, QueryEvent, ServiceConfig};

// Re-export the sub-crates under stable names.
pub use mv_cost as cost;
pub use mv_engine as engine;
pub use mv_lattice as lattice;
pub use mv_obs as obs;
pub use mv_pricing as pricing;
pub use mv_select as select;
pub use mv_units as units;

// The most-used types, flattened for ergonomic imports.
pub use mv_cost::{CloudCostModel, CostBreakdown, CostContext, QueryCharge, ViewCharge};
pub use mv_select::{Evaluation, Outcome, Scenario, SelectionProblem, SolverKind};
