//! The engine↔advisor calibration loop.
//!
//! Everything upstream of this module *predicts*: the advisor meters the
//! workload once, the cost models turn parameters into bills, the chain
//! solvers pick plans. This module closes the loop — it **runs** the
//! chosen plan through the engine and reconciles what the meter records
//! against what the models promised:
//!
//! 1. replay a multi-epoch query stream through
//!    [`mv_engine::ReplayDriver`], applying the horizon plan's view
//!    transitions (materialize added views, drop removed ones, refresh
//!    the standing set) and metering every scan/build/refresh;
//! 2. convert metered bytes to cloud gigabytes ([`mv_engine::SimScale`])
//!    and observe
//!    each job's cluster-hours under the advisor's configured
//!    [`ThroughputModel`] — the reference oracle standing in for the
//!    paper's Hadoop wall-clock;
//! 3. fit the cost-model parameters (per-GB scan rate and per-job
//!    overhead, per work kind) from the `(gigabytes, hours)` samples by
//!    least squares ([`CalibratedParams`]), holding out the final epoch;
//! 4. re-predict every epoch's bill under the fitted parameters and
//!    under a deliberately mis-specified *synthetic* prior
//!    ([`CalibrationConfig::synthetic`]), and report per-epoch relative
//!    errors against the engine-metered bill.
//!
//! The acceptance bar (asserted in `tests/calibrate.rs`): the fitted
//! parameters predict the held-out epoch's metered bill with lower
//! relative error than the synthetic defaults.

use mv_cost::{CalibratedParams, MeterSample, WorkKind};
use mv_engine::{ReplayDriver, ThroughputModel};
use mv_lattice::WorkloadEvolution;
use mv_select::Scenario;
use mv_units::{Gb, Hours, Money};
use serde::Serialize;

use crate::advisor::{monthly_delta, CandidateMeter};
use crate::{Advisor, AdvisorError, HorizonConfig};

/// Shape of a calibration run.
#[derive(Debug, Clone)]
pub struct CalibrationConfig {
    /// Number of replayed billing epochs (≥ 2: the last one is held out
    /// of the fit and used to score generalization).
    pub epochs: usize,
    /// How query frequencies evolve across epochs.
    pub evolution: WorkloadEvolution,
    /// The a-priori throughput guess the fit must beat — what an advisor
    /// would assume about the cluster *before* measuring it.
    pub synthetic: ThroughputModel,
}

impl Default for CalibrationConfig {
    /// Six epochs, fixed workload, and a synthetic prior that is 4×
    /// optimistic about scan rate and ignores job startup — a plausible
    /// "spec-sheet" guess for the paper's Hadoop 0.20 cluster.
    fn default() -> Self {
        CalibrationConfig {
            epochs: 6,
            evolution: WorkloadEvolution::fixed(),
            synthetic: ThroughputModel::calibrated(100.0, Hours::ZERO),
        }
    }
}

/// One replayed epoch's reconciliation.
#[derive(Debug, Clone, Serialize)]
pub struct EpochCalibration {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// How many workload queries the engine answered from a view.
    pub queries_via_views: usize,
    /// Frequency-weighted cloud gigabytes of metered work this epoch.
    pub metered_gb: f64,
    /// The engine-metered bill: replayed work priced through the
    /// provider ledger under the reference oracle.
    pub measured_bill: Money,
    /// What the advisor's horizon solve predicted this epoch would cost
    /// (cost-model arithmetic over the *measured-once* charges).
    pub planned_bill: Money,
    /// The metered work re-billed under the fitted parameters.
    pub fitted_bill: Money,
    /// The metered work re-billed under the synthetic prior.
    pub synthetic_bill: Money,
    /// |planned − measured| / measured.
    pub planned_rel_error: f64,
    /// |fitted − measured| / measured.
    pub fitted_rel_error: f64,
    /// |synthetic − measured| / measured.
    pub synthetic_rel_error: f64,
}

/// The rendered calibration loop: per-epoch reconciliation, the fitted
/// parameters, and the held-out generalization score.
#[derive(Debug, Clone, Serialize)]
pub struct CalibrationReport {
    /// Per-epoch reconciliation, in replay order.
    pub epochs: Vec<EpochCalibration>,
    /// The fitted cost-model parameters.
    pub params: CalibratedParams,
    /// Metered samples the fit consumed (held-out epoch excluded).
    pub samples: usize,
    /// Index of the held-out epoch (always the last).
    pub holdout_epoch: usize,
    /// Fitted-parameter relative error on the held-out epoch's bill.
    pub holdout_fitted_rel_error: f64,
    /// Synthetic-prior relative error on the same held-out bill.
    pub holdout_synthetic_rel_error: f64,
    /// Mean planned-vs-measured relative error across all epochs.
    pub mean_planned_rel_error: f64,
    /// Mean fitted-vs-measured relative error across all epochs.
    pub mean_fitted_rel_error: f64,
    /// Telemetry delta covering this calibration run, when [`mv_obs`]
    /// was enabled at entry; `None` otherwise.
    pub telemetry: Option<mv_obs::Snapshot>,
}

impl CalibrationReport {
    /// The fitted scan law as an engine [`ThroughputModel`], ready to
    /// drop into an [`crate::AdvisorConfig`] for re-advising.
    pub fn fitted_throughput(&self) -> ThroughputModel {
        ThroughputModel::calibrated(
            self.params.scan_gb_per_hour_per_unit(),
            self.params.job_overhead(),
        )
    }

    /// Renders the reconciliation as CSV (one row per epoch).
    pub fn timeline_csv(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .epochs
            .iter()
            .map(|e| {
                vec![
                    e.epoch.to_string(),
                    e.queries_via_views.to_string(),
                    format!("{:.6}", e.metered_gb),
                    format!("{:.6}", e.measured_bill.to_dollars_f64()),
                    format!("{:.6}", e.planned_bill.to_dollars_f64()),
                    format!("{:.6}", e.fitted_bill.to_dollars_f64()),
                    format!("{:.6}", e.synthetic_bill.to_dollars_f64()),
                    format!("{:.6}", e.planned_rel_error),
                    format!("{:.6}", e.fitted_rel_error),
                    format!("{:.6}", e.synthetic_rel_error),
                ]
            })
            .collect();
        crate::report::render_csv(
            &[
                "epoch",
                "queries_via_views",
                "metered_gb",
                "measured_bill",
                "planned_bill",
                "fitted_bill",
                "synthetic_bill",
                "planned_rel_error",
                "fitted_rel_error",
                "synthetic_rel_error",
            ],
            &rows,
        )
    }
}

/// One metered job awaiting pricing: work kind, projected cloud size,
/// and how many times it runs this epoch (query frequency; 1.0 for
/// builds and refreshes).
#[derive(Debug, Clone, Copy)]
struct MeteredJob {
    kind: WorkKind,
    gb: Gb,
    weight: f64,
}

/// The metered record of one replayed epoch, projected to cloud scale.
#[derive(Debug, Clone)]
struct EpochMeter {
    jobs: Vec<MeteredJob>,
    result_gb: Gb,
    views_gb: Gb,
    queries_via_views: usize,
}

impl EpochMeter {
    fn metered_gb(&self) -> f64 {
        self.jobs.iter().map(|j| j.gb.value() * j.weight).sum()
    }
}

impl Advisor {
    /// Runs the calibration loop: solve the horizon plan, replay it
    /// through the engine epoch by epoch, fit the throughput law from
    /// the metered samples (final epoch held out), and reconcile
    /// predicted against metered bills. See the module docs.
    pub fn calibrate(
        &self,
        scenario: Scenario,
        config: &CalibrationConfig,
    ) -> Result<CalibrationReport, AdvisorError> {
        if config.epochs < 2 {
            // One epoch cannot be split into a fit set and a held-out
            // epoch, so the loop cannot be scored.
            return Err(AdvisorError::EmptyHorizon);
        }
        let telemetry_base = mv_obs::enabled().then(mv_obs::Snapshot::capture);
        let meter = CandidateMeter::new(self.domain(), self.config())?;
        let units = meter.units;
        let oracle = self.config().throughput;
        let scale = self.scale();
        let horizon = HorizonConfig {
            epochs: config.epochs,
            evolution: config.evolution,
            commitment: None,
        };

        // The plan under test: the transition-aware horizon solve over
        // the advisor's measured candidate pool.
        let chain = self.epoch_chain(&horizon);
        let steps = chain.solve(scenario);

        // Replay it. The driver owns the live view set; each epoch
        // applies the plan's transitions and meters every byte.
        let mut driver =
            ReplayDriver::new(&self.domain().base).with_threads(self.config().threads.max(1));
        let delta = monthly_delta(self.domain(), self.config().maintenance_delta_fraction);
        let holdout = config.epochs - 1;
        let mut samples: Vec<MeterSample> = Vec::new();
        let mut meters = Vec::with_capacity(steps.len());
        for (e, step) in steps.iter().enumerate() {
            mv_obs::span!("calibrate/epoch");
            let added = step
                .added
                .iter()
                .map(|&k| self.candidates()[k].view.def().clone())
                .collect();
            let dropped: Vec<String> = step
                .dropped
                .iter()
                .map(|&k| self.candidates()[k].label.clone())
                .collect();
            let replay = driver.replay_epoch(added, &dropped, self.queries(), delta.as_ref())?;

            let freqs = horizon.evolution.frequencies(&self.domain().workload, e);
            let mut jobs = Vec::new();
            let mut result_gb = Gb::ZERO;
            for (q, &f) in replay.queries.iter().zip(&freqs) {
                jobs.push(MeteredJob {
                    kind: WorkKind::Scan,
                    gb: scale.bytes_to_cloud(q.stats.bytes_scanned),
                    weight: f,
                });
                result_gb += scale.bytes_to_cloud(q.stats.bytes_out) * f;
            }
            for (_, s) in &replay.builds {
                jobs.push(MeteredJob {
                    kind: WorkKind::Materialize,
                    gb: scale.bytes_to_cloud(s.bytes_scanned),
                    weight: 1.0,
                });
            }
            for (_, s) in &replay.refreshes {
                jobs.push(MeteredJob {
                    kind: WorkKind::Refresh,
                    gb: scale.bytes_to_cloud(s.bytes_scanned),
                    weight: 1.0,
                });
            }
            if e != holdout {
                for j in &jobs {
                    let hours = oracle_hours(&oracle, j, units)?;
                    mv_obs::inc(mv_obs::Counter::CalibrateSamples);
                    if mv_obs::enabled() {
                        mv_obs::event(
                            "calibration_sample",
                            &[
                                ("epoch", e as f64),
                                ("gb", j.gb.value()),
                                ("hours", hours.value()),
                            ],
                        );
                    }
                    samples.push(MeterSample::new(j.kind, j.gb, hours));
                }
            }
            let views_gb = driver
                .catalog()
                .names()
                .iter()
                .map(|n| {
                    driver
                        .catalog()
                        .get(n)
                        .map(|v| scale.bytes_to_cloud(v.data().heap_bytes()))
                })
                .sum::<Result<Gb, _>>()?;
            meters.push(EpochMeter {
                jobs,
                result_gb,
                views_gb,
                queries_via_views: replay.queries_via_views(),
            });
        }

        let params = CalibratedParams::fit(&samples, units)
            .ok_or(AdvisorError::CalibrationUnderdetermined)?;
        let synthetic = CalibratedParams::from_throughput(
            config.synthetic.scan_gb_per_hour_per_unit,
            config.synthetic.job_overhead,
            units,
        );

        // Reconcile: re-bill every epoch's metered work under the three
        // parameterizations and compare to the plan's prediction.
        let mut epochs = Vec::with_capacity(meters.len());
        for (e, ((m, step), model)) in meters.iter().zip(&steps).zip(chain.epochs()).enumerate() {
            let measured = self.bill_metered(model, m, |j| oracle_hours(&oracle, j, units))?;
            let fitted = self.bill_metered(model, m, |j| Ok(params.hours_for(j.kind, j.gb)))?;
            let synth = self.bill_metered(model, m, |j| Ok(synthetic.hours_for(j.kind, j.gb)))?;
            let planned = step.outcome.evaluation.cost();
            let rel = |b: Money| -> f64 {
                let meas = measured.to_dollars_f64();
                (b.to_dollars_f64() - meas).abs() / meas.max(f64::MIN_POSITIVE)
            };
            epochs.push(EpochCalibration {
                epoch: e,
                queries_via_views: m.queries_via_views,
                metered_gb: m.metered_gb(),
                measured_bill: measured,
                planned_bill: planned,
                fitted_bill: fitted,
                synthetic_bill: synth,
                planned_rel_error: rel(planned),
                fitted_rel_error: rel(fitted),
                synthetic_rel_error: rel(synth),
            });
        }
        let mean = |f: fn(&EpochCalibration) -> f64| -> f64 {
            epochs.iter().map(f).sum::<f64>() / epochs.len() as f64
        };
        Ok(CalibrationReport {
            telemetry: telemetry_base.map(|base| mv_obs::Snapshot::capture().since(&base)),
            holdout_epoch: holdout,
            holdout_fitted_rel_error: epochs[holdout].fitted_rel_error,
            holdout_synthetic_rel_error: epochs[holdout].synthetic_rel_error,
            mean_planned_rel_error: mean(|e| e.planned_rel_error),
            mean_fitted_rel_error: mean(|e| e.fitted_rel_error),
            samples: samples.len(),
            params,
            epochs,
        })
    }

    /// Prices one epoch's metered work through the provider-side ledger:
    /// per-kind compute hours under `hours` (weighted by run count),
    /// storage of dataset + standing views, and the metered outbound
    /// results — the same ledger shape the predicted horizon bills use,
    /// so the comparison isolates the throughput parameters.
    fn bill_metered(
        &self,
        model: &mv_cost::CloudCostModel,
        m: &EpochMeter,
        hours: impl Fn(&MeteredJob) -> Result<Hours, AdvisorError>,
    ) -> Result<Money, AdvisorError> {
        let config = self.config();
        let mut by_kind = [Hours::ZERO; 3];
        for j in &m.jobs {
            let idx = match j.kind {
                WorkKind::Scan => 0,
                WorkKind::Materialize => 1,
                WorkKind::Refresh => 2,
            };
            by_kind[idx] += hours(j)? * j.weight;
        }
        let mut ledger = mv_pricing::UsageLedger::new();
        for (label, t) in [
            ("workload processing (metered)", by_kind[0]),
            ("view materialization (metered)", by_kind[1]),
            ("view maintenance (metered)", by_kind[2]),
        ] {
            if t > Hours::ZERO {
                ledger.record_compute(label, &config.instance, config.nb_instances, t);
            }
        }
        ledger.record_storage(
            "dataset + views (metered)",
            model.storage_timeline(m.views_gb),
        );
        ledger.record_transfer_out("query results (metered)", m.result_gb);
        let invoice = ledger.invoice(&config.pricing)?;
        Ok(invoice.total())
    }
}

/// The reference oracle's observation of one metered job.
fn oracle_hours(
    oracle: &ThroughputModel,
    job: &MeteredJob,
    units: f64,
) -> Result<Hours, AdvisorError> {
    oracle
        .hours_for_scan(job.gb, units)
        .map_err(AdvisorError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sales_domain, AdvisorConfig};

    #[test]
    fn calibration_closes_the_loop_on_the_sales_domain() {
        // The paper's 500 GB running-example scale: compute hours are
        // large enough that per-record hour rounding cannot mask the
        // difference between the fitted and synthetic throughput laws.
        let config_500gb = AdvisorConfig {
            simulated_dataset: mv_units::Gb::new(500.0),
            ..AdvisorConfig::default()
        };
        let advisor = Advisor::build(sales_domain(1_000, 3, 2.0, 42), config_500gb).unwrap();
        let config = CalibrationConfig {
            epochs: 4,
            ..CalibrationConfig::default()
        };
        let report = advisor
            .calibrate(Scenario::tradeoff_normalized(0.5), &config)
            .unwrap();
        assert_eq!(report.epochs.len(), 4);
        assert_eq!(report.holdout_epoch, 3);
        assert!(report.samples > 0);
        for e in &report.epochs {
            assert!(e.measured_bill > Money::ZERO);
            assert!(e.metered_gb > 0.0);
            assert!(e.fitted_rel_error.is_finite());
        }
        // The fit recovers the oracle's law from the metered samples, so
        // it generalizes to the held-out epoch far better than the
        // mis-specified synthetic prior.
        assert!(report.holdout_fitted_rel_error < report.holdout_synthetic_rel_error);
        assert!(report.holdout_fitted_rel_error < 0.05);
        let t = report.fitted_throughput();
        let o = ThroughputModel::default();
        assert!((t.scan_gb_per_hour_per_unit - o.scan_gb_per_hour_per_unit).abs() < 1.0);
        let csv = report.timeline_csv();
        assert_eq!(csv.lines().count(), 5);
        assert!(csv.starts_with("epoch,queries_via_views"));
    }

    #[test]
    fn single_epoch_calibration_is_an_error() {
        let advisor =
            Advisor::build(sales_domain(400, 3, 1.0, 7), AdvisorConfig::default()).unwrap();
        let config = CalibrationConfig {
            epochs: 1,
            ..CalibrationConfig::default()
        };
        assert!(matches!(
            advisor.calibrate(Scenario::tradeoff_normalized(0.5), &config),
            Err(AdvisorError::EmptyHorizon)
        ));
    }
}
