//! The end-to-end advisor.
//!
//! [`Advisor::build`] runs the whole measurement pipeline the paper
//! describes (select on the client, materialize in the cloud):
//!
//! 1. execute the workload on the base table and meter it;
//! 2. generate candidate cuboids from the lattice;
//! 3. materialize every candidate in the engine, metering build cost,
//!    stored size, incremental-maintenance cost, and the improved time of
//!    every workload query it can answer;
//! 4. convert metered work to simulated cluster-hours and cloud gigabytes;
//! 5. assemble the [`SelectionProblem`] over the paper's cost models.
//!
//! [`Advisor::solve`] then runs any scenario × solver combination, and
//! [`Advisor::materialize_selection`] registers the chosen views in a
//! catalog, ready to serve queries.

use mv_cost::{CloudCostModel, CostContext, QueryCharge, ViewCharge};
use mv_engine::{
    AggQuery, AggSpec, MaterializedView, SimScale, Table, ThroughputModel, ViewCatalog,
    ViewDefinition,
};
use mv_lattice::{candidates, Cuboid, SizeEstimator};
use mv_pricing::{PricingPolicy, UsageLedger};
use mv_select::{Outcome, Scenario, SelectionProblem, SolverKind};
use mv_units::{Gb, Hours, Months};
use serde::{Deserialize, Serialize};

use crate::{AdvisorError, Domain};

/// How candidate views are generated from the lattice (the paper's
/// "existing materialized view selection method").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CandidateStrategy {
    /// Every non-base cuboid.
    FullLattice,
    /// Workload cuboids plus pairwise least-common-ancestors.
    WorkloadClosure,
    /// HRU greedy benefit-per-space, bounded to `k` views.
    HruGreedy(usize),
}

/// How engine measurements are projected to the simulated cloud scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SizingMode {
    /// Multiply all engine byte counts by the dataset scale factor. Only
    /// correct when the engine table *is* the full dataset (scale ≈ 1):
    /// aggregate results and views do not grow linearly with the fact
    /// table.
    MeasuredScaled,
    /// Scale scan work by the cloud/engine *row* ratio and project result
    /// and view row counts with Cardenas' formula over the lattice's key
    /// domains — group counts saturate, exactly as they would at full
    /// scale. This is the default and matches how the paper's 10 GB
    /// evaluation behaves.
    Extrapolated,
}

/// Advisor configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdvisorConfig {
    /// Provider pricing policy.
    pub pricing: PricingPolicy,
    /// Rented instance configuration name (must be in the catalog).
    pub instance: String,
    /// Number of identical instances (`nbIC`).
    pub nb_instances: u32,
    /// Billing horizon for storage.
    pub months: Months,
    /// Simulated ("cloud") dataset size the engine table represents; the
    /// paper's evaluation uses 10 GB.
    pub simulated_dataset: Gb,
    /// Work → hours conversion.
    pub throughput: ThroughputModel,
    /// Candidate generation strategy.
    pub candidates: CandidateStrategy,
    /// Engine threads for materialization.
    pub threads: usize,
    /// Size of the monthly insert batch used to meter view maintenance, as
    /// a fraction of the base rows. `0.0` models the paper's §6 evaluation
    /// where the dataset is static during the period (no refresh charge).
    pub maintenance_delta_fraction: f64,
    /// Engine-to-cloud projection mode.
    pub sizing: SizingMode,
}

impl Default for AdvisorConfig {
    /// The paper's experimental setup: AWS-2012 pricing, two small
    /// instances, a 10 GB dataset, one-month horizon, full-lattice
    /// candidates.
    fn default() -> Self {
        AdvisorConfig {
            pricing: mv_pricing::presets::aws_2012(),
            instance: "small".to_string(),
            nb_instances: 2,
            months: Months::new(1.0),
            simulated_dataset: Gb::new(10.0),
            throughput: ThroughputModel::default(),
            candidates: CandidateStrategy::FullLattice,
            threads: 1,
            maintenance_delta_fraction: 0.02,
            sizing: SizingMode::Extrapolated,
        }
    }
}

/// One measured candidate: the lattice cuboid, its engine view, and the
/// derived [`ViewCharge`].
#[derive(Debug, Clone)]
pub struct MeasuredCandidate {
    /// The cuboid this candidate materializes.
    pub cuboid: Cuboid,
    /// Human-readable label (`"month×country"`).
    pub label: String,
    /// The materialized engine view (kept for later registration).
    pub view: MaterializedView,
    /// The cost-model attributes fed to the optimizer.
    pub charge: ViewCharge,
}

/// The built advisor: measured workload + candidates + selection problem.
#[derive(Debug)]
pub struct Advisor {
    domain: Domain,
    config: AdvisorConfig,
    scale: SimScale,
    queries: Vec<AggQuery>,
    measured: Vec<MeasuredCandidate>,
    problem: SelectionProblem,
}

impl Advisor {
    /// Runs the measurement pipeline over `domain`.
    pub fn build(domain: Domain, config: AdvisorConfig) -> Result<Advisor, AdvisorError> {
        domain.validate()?;
        let instance = config
            .pricing
            .compute
            .instance(&config.instance)
            .map_err(|_| AdvisorError::UnknownInstance {
                name: config.instance.clone(),
            })?
            .clone();
        let units = instance.compute_units * config.nb_instances as f64;
        let scale = SimScale::mapping(domain.base.size(), config.simulated_dataset);

        // Extrapolation parameters: the cloud-side fact table has the same
        // per-row width as the engine table but `cloud_rows` rows; group
        // counts at cloud scale come from Cardenas over the key domain.
        let engine_rows = domain.base.num_rows().max(1) as f64;
        let row_bytes = domain.base.heap_bytes() as f64 / engine_rows;
        let cloud_rows = config.simulated_dataset.as_bytes() as f64 / row_bytes.max(1.0);
        let cloud_groups = |cuboid: &Cuboid| -> f64 {
            mv_lattice::cardenas(cloud_rows as u64, domain.lattice.domain_size(cuboid))
        };
        // Scan work projected to cloud scale: engine bytes × how many more
        // input rows the cloud table has.
        let scan_hours = |bytes_scanned: u64, input_rows_engine: f64, input_rows_cloud: f64| {
            let bytes = bytes_scanned as f64 * (input_rows_cloud / input_rows_engine.max(1.0));
            config
                .throughput
                .hours_for_scan(Gb::from_bytes(bytes as u64), units)
        };

        // 1. Measure the workload on the base table.
        let queries: Vec<AggQuery> = domain
            .workload
            .queries
            .iter()
            .map(|q| {
                let cols = domain.lattice.key_columns(&q.cuboid);
                let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
                AggQuery::new(
                    q.name.clone(),
                    &col_refs,
                    vec![AggSpec::sum(domain.measure.clone())],
                )
            })
            .collect();
        let mut charges = Vec::with_capacity(queries.len());
        for (q, lq) in queries.iter().zip(&domain.workload.queries) {
            let (out, stats) = q
                .execute_with_threads(&domain.base, config.threads)
                .map_err(AdvisorError::from)?;
            let (result_size, base_time) = match config.sizing {
                SizingMode::MeasuredScaled => (
                    scale.bytes_to_cloud(stats.bytes_out),
                    config.throughput.hours_for(&stats, units, scale),
                ),
                SizingMode::Extrapolated => {
                    let rows_cloud = cloud_groups(&lq.cuboid);
                    let width = out.schema().row_byte_width() as f64;
                    (
                        Gb::from_bytes((rows_cloud * width) as u64),
                        scan_hours(stats.bytes_scanned, engine_rows, cloud_rows),
                    )
                }
            };
            charges.push(QueryCharge {
                name: q.name.clone(),
                result_size,
                base_time,
                frequency: lq.frequency,
            });
        }

        // 2. Generate candidate cuboids.
        let estimator = SizeEstimator::new(domain.base.num_rows() as u64);
        let cuboids: Vec<Cuboid> = match config.candidates {
            CandidateStrategy::FullLattice => candidates::full_lattice(&domain.lattice),
            CandidateStrategy::WorkloadClosure => {
                candidates::workload_closure(&domain.lattice, &domain.workload)
            }
            CandidateStrategy::HruGreedy(k) => {
                candidates::hru_greedy(&domain.lattice, &estimator, &domain.workload, k)
            }
        };

        // 3 & 4. Materialize and meter every candidate.
        let delta = monthly_delta(&domain, config.maintenance_delta_fraction);
        let mut measured = Vec::with_capacity(cuboids.len());
        for cuboid in cuboids {
            let label = domain.lattice.label(&cuboid);
            let cols = domain.lattice.key_columns(&cuboid);
            let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
            let def = ViewDefinition::canonical(
                label.clone(),
                &col_refs,
                &[AggSpec::sum(domain.measure.clone())],
            );
            let view =
                MaterializedView::materialize_with_threads(def, &domain.base, config.threads)
                    .map_err(AdvisorError::from)?;
            let build = *view.build_stats();
            let view_rows_engine = view.data().num_rows().max(1) as f64;
            let view_rows_cloud = cloud_groups(&cuboid);

            // Maintenance: incremental refresh of one monthly delta batch.
            let maintenance = match &delta {
                Some(d) if d.num_rows() > 0 => {
                    let mut clone = view.clone();
                    let stats = clone.refresh_incremental(d).map_err(AdvisorError::from)?;
                    match config.sizing {
                        SizingMode::MeasuredScaled => {
                            config.throughput.hours_for(&stats, units, scale)
                        }
                        SizingMode::Extrapolated => scan_hours(
                            stats.bytes_scanned,
                            d.num_rows().max(1) as f64,
                            cloud_rows * config.maintenance_delta_fraction,
                        ),
                    }
                }
                _ => Hours::ZERO,
            };

            let (view_size, materialization) = match config.sizing {
                SizingMode::MeasuredScaled => (
                    scale.bytes_to_cloud(view.data().heap_bytes()),
                    config.throughput.hours_for(&build, units, scale),
                ),
                SizingMode::Extrapolated => {
                    let width = view.data().heap_bytes() as f64 / view_rows_engine;
                    (
                        Gb::from_bytes((view_rows_cloud * width) as u64),
                        // Building a view scans the whole base table.
                        scan_hours(build.bytes_scanned, engine_rows, cloud_rows),
                    )
                }
            };
            let mut charge = ViewCharge::new(
                label.clone(),
                view_size,
                materialization,
                maintenance,
                queries.len(),
            );
            for (i, q) in queries.iter().enumerate() {
                if view.can_answer(q).is_ok() {
                    let (_, stats) = view.answer(q).map_err(AdvisorError::from)?;
                    let t = match config.sizing {
                        SizingMode::MeasuredScaled => {
                            config.throughput.hours_for(&stats, units, scale)
                        }
                        SizingMode::Extrapolated => {
                            scan_hours(stats.bytes_scanned, view_rows_engine, view_rows_cloud)
                        }
                    };
                    charge = charge.answers(i, t);
                }
            }
            measured.push(MeasuredCandidate {
                cuboid,
                label,
                view,
                charge,
            });
        }

        // 5. Assemble the selection problem.
        let model = CloudCostModel::new(CostContext {
            pricing: config.pricing.clone(),
            instance,
            nb_instances: config.nb_instances,
            months: config.months,
            dataset_size: config.simulated_dataset,
            inserts: vec![],
            workload: charges,
        });
        let problem =
            SelectionProblem::new(model, measured.iter().map(|m| m.charge.clone()).collect());

        Ok(Advisor {
            domain,
            config,
            scale,
            queries,
            measured,
            problem,
        })
    }

    /// The underlying selection problem.
    pub fn problem(&self) -> &SelectionProblem {
        &self.problem
    }

    /// The measured candidates, aligned with the problem's candidate order.
    pub fn candidates(&self) -> &[MeasuredCandidate] {
        &self.measured
    }

    /// The domain being advised.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// The configuration.
    pub fn config(&self) -> &AdvisorConfig {
        &self.config
    }

    /// The engine-to-cloud scale factor in use.
    pub fn scale(&self) -> SimScale {
        self.scale
    }

    /// The executable workload queries (aligned with the cost workload).
    pub fn queries(&self) -> &[AggQuery] {
        &self.queries
    }

    /// Solves a scenario with the requested solver.
    pub fn solve(&self, scenario: Scenario, solver: SolverKind) -> Outcome {
        mv_select::solve(&self.problem, scenario, solver)
    }

    /// An [`mv_select::IncrementalEvaluator`] positioned at the empty
    /// selection over this advisor's problem — the O(m)-per-flip probe
    /// interface for interactive what-if exploration and custom search
    /// loops over the measured candidates.
    pub fn evaluator(&self) -> mv_select::IncrementalEvaluator<'_> {
        mv_select::IncrementalEvaluator::new(&self.problem)
    }

    /// The full (time, cost) solution space over the measured candidates,
    /// swept in parallel when the candidate count warrants it.
    pub fn solution_space(&self) -> Vec<mv_select::pareto::SpacePoint> {
        mv_select::pareto::solution_space(&self.problem)
    }

    /// Registers the outcome's selected views in a fresh catalog — the
    /// "materialize them in the cloud" step. Queries routed through the
    /// catalog then actually use the chosen views.
    pub fn materialize_selection(&self, outcome: &Outcome) -> Result<ViewCatalog, AdvisorError> {
        let catalog = ViewCatalog::new();
        for k in outcome.evaluation.selection.ones() {
            catalog
                .register(self.measured[k].view.clone())
                .map_err(AdvisorError::from)?;
        }
        Ok(catalog)
    }

    /// Builds the provider-side usage ledger for an outcome: what the bill
    /// would record if the selection ran for one period. Integration tests
    /// reconcile its invoice against the predicted cost breakdown.
    pub fn usage_ledger(&self, outcome: &Outcome) -> UsageLedger {
        let model = self.problem.model();
        let candidates = self.problem.candidates();
        let selection = &outcome.evaluation.selection;
        let mut ledger = UsageLedger::new();
        ledger.record_compute(
            "workload processing",
            &self.config.instance,
            self.config.nb_instances,
            model.processing_time_with_views(candidates, selection),
        );
        let maintenance = model.maintenance_time(candidates, selection);
        if maintenance > Hours::ZERO {
            ledger.record_compute(
                "view maintenance",
                &self.config.instance,
                self.config.nb_instances,
                maintenance,
            );
        }
        let materialization = model.materialization_time(candidates, selection);
        if materialization > Hours::ZERO {
            ledger.record_compute(
                "view materialization",
                &self.config.instance,
                self.config.nb_instances,
                materialization,
            );
        }
        ledger.record_storage(
            "dataset + views",
            model.storage_timeline(model.views_size(candidates, selection)),
        );
        ledger.record_transfer_out("query results", model.context().total_result_size());
        ledger
    }
}

/// A monthly insert batch for maintenance metering: `fraction` of the base
/// rows, landing in the month after the dataset's range (sales domain) or
/// a replayed sample (other domains). `fraction == 0` disables maintenance.
fn monthly_delta(domain: &Domain, fraction: f64) -> Option<Table> {
    if fraction <= 0.0 {
        return None;
    }
    let rows = ((domain.base.num_rows() as f64 * fraction) as usize).max(1);
    if domain.name == "sales" {
        let cfg = mv_engine::SalesConfig::default();
        Some(mv_engine::datagen::generate_delta(&cfg, rows, 2011, 1))
    } else {
        // Generic fallback: replay a sample of existing rows as the delta
        // (aggregation-wise equivalent to new inserts in the same domains).
        let mut delta = Table::empty(domain.base.schema().clone());
        for r in 0..rows {
            let idx = (r * 37) % domain.base.num_rows();
            delta
                .push_row(&domain.base.row(idx))
                .expect("row from the same schema");
        }
        Some(delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sales_domain;
    use mv_units::Money;

    fn small_advisor() -> Advisor {
        let domain = sales_domain(2_000, 3, 1.0, 42);
        Advisor::build(domain, AdvisorConfig::default()).unwrap()
    }

    #[test]
    fn builds_and_measures() {
        let a = small_advisor();
        // Full lattice minus base = 15 candidates.
        assert_eq!(a.candidates().len(), 15);
        assert_eq!(a.problem().len(), 15);
        // Base times are positive and queries metered.
        let ctx = a.problem().model().context();
        assert_eq!(ctx.workload.len(), 3);
        for q in &ctx.workload {
            assert!(q.base_time > Hours::ZERO);
            assert!(q.result_size > Gb::ZERO);
        }
        // Every candidate that covers a query answers it faster than base
        // (coarser views scan fewer bytes).
        for m in a.candidates() {
            for t in m.charge.query_times.iter().flatten() {
                assert!(*t > Hours::ZERO);
            }
        }
    }

    #[test]
    fn views_make_things_faster() {
        let a = small_advisor();
        let o = a.solve(
            Scenario::budget(Money::from_dollars(1_000)),
            SolverKind::Greedy,
        );
        assert!(o.feasible());
        assert!(o.evaluation.time < o.baseline.time);
        assert!(o.time_improvement() > 0.5, "{}", o.time_improvement());
    }

    #[test]
    fn materialized_selection_serves_queries() {
        let a = small_advisor();
        let o = a.solve(
            Scenario::budget(Money::from_dollars(1_000)),
            SolverKind::Greedy,
        );
        let catalog = a.materialize_selection(&o).unwrap();
        assert_eq!(catalog.len(), o.evaluation.num_selected());
        // Each workload query answered through the catalog matches base.
        for q in a.queries() {
            let (via_catalog, _, _) = catalog.execute(q, &a.domain().base).unwrap();
            let (direct, _) = q.execute(&a.domain().base).unwrap();
            assert_eq!(via_catalog.to_sorted_rows(), direct.to_sorted_rows());
        }
    }

    #[test]
    fn invoice_reconciles_with_prediction() {
        let a = small_advisor();
        let o = a.solve(
            Scenario::tradeoff_normalized(0.5),
            SolverKind::PaperKnapsack,
        );
        let invoice = a.usage_ledger(&o).invoice(&a.config().pricing).unwrap();
        assert_eq!(invoice.total(), o.evaluation.cost());
        assert_eq!(invoice.compute, o.evaluation.breakdown.compute());
        assert_eq!(invoice.storage, o.evaluation.breakdown.storage);
        assert_eq!(invoice.transfer, o.evaluation.breakdown.transfer);
    }

    #[test]
    fn candidate_strategies_shrink_the_problem() {
        let domain = sales_domain(1_000, 3, 1.0, 42);
        let closure = Advisor::build(
            domain.clone(),
            AdvisorConfig {
                candidates: CandidateStrategy::WorkloadClosure,
                ..AdvisorConfig::default()
            },
        )
        .unwrap();
        assert!(closure.problem().len() < 15);
        let hru = Advisor::build(
            domain,
            AdvisorConfig {
                candidates: CandidateStrategy::HruGreedy(4),
                ..AdvisorConfig::default()
            },
        )
        .unwrap();
        assert!(hru.problem().len() <= 4);
    }

    #[test]
    fn unknown_instance_rejected() {
        let domain = sales_domain(100, 3, 1.0, 1);
        let err = Advisor::build(
            domain,
            AdvisorConfig {
                instance: "mainframe".to_string(),
                ..AdvisorConfig::default()
            },
        );
        assert!(matches!(err, Err(AdvisorError::UnknownInstance { .. })));
    }
}
