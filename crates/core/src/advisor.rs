//! The end-to-end advisor.
//!
//! [`Advisor::build`] runs the whole measurement pipeline the paper
//! describes (select on the client, materialize in the cloud):
//!
//! 1. execute the workload on the base table and meter it;
//! 2. generate candidate cuboids from the lattice;
//! 3. materialize every candidate in the engine, metering build cost,
//!    stored size, incremental-maintenance cost, and the improved time of
//!    every workload query it can answer;
//! 4. convert metered work to simulated cluster-hours and cloud gigabytes;
//! 5. assemble the [`SelectionProblem`] over the paper's cost models.
//!
//! [`Advisor::solve`] then runs any scenario × solver combination, and
//! [`Advisor::materialize_selection`] registers the chosen views in a
//! catalog, ready to serve queries.

use mv_cost::{CloudCostModel, CostContext, QueryCharge, ViewCharge};
use mv_engine::{
    AggQuery, AggSpec, MaterializedView, SimScale, Table, ThroughputModel, ViewCatalog,
    ViewDefinition,
};
use mv_lattice::{candidates, CandidateStream, Cuboid, SizeEstimator};
use mv_pricing::{PricingPolicy, UsageLedger};
use mv_select::{
    local_search, IncrementalEvaluator, Outcome, Scenario, SelectionProblem, SolverKind,
};
use mv_units::{Gb, Hours, Months};
use serde::{Deserialize, Serialize};

use crate::{AdvisorError, Domain};

/// How candidate views are generated from the lattice (the paper's
/// "existing materialized view selection method").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CandidateStrategy {
    /// Every non-base cuboid.
    FullLattice,
    /// Workload cuboids plus pairwise least-common-ancestors.
    WorkloadClosure,
    /// HRU greedy benefit-per-space, bounded to `k` views.
    HruGreedy(usize),
}

/// How engine measurements are projected to the simulated cloud scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SizingMode {
    /// Multiply all engine byte counts by the dataset scale factor. Only
    /// correct when the engine table *is* the full dataset (scale ≈ 1):
    /// aggregate results and views do not grow linearly with the fact
    /// table.
    MeasuredScaled,
    /// Scale scan work by the cloud/engine *row* ratio and project result
    /// and view row counts with Cardenas' formula over the lattice's key
    /// domains — group counts saturate, exactly as they would at full
    /// scale. This is the default and matches how the paper's 10 GB
    /// evaluation behaves.
    Extrapolated,
}

/// Advisor configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdvisorConfig {
    /// Provider pricing policy.
    pub pricing: PricingPolicy,
    /// Rented instance configuration name (must be in the catalog).
    pub instance: String,
    /// Number of identical instances (`nbIC`).
    pub nb_instances: u32,
    /// Billing horizon for storage.
    pub months: Months,
    /// Simulated ("cloud") dataset size the engine table represents; the
    /// paper's evaluation uses 10 GB.
    pub simulated_dataset: Gb,
    /// Work → hours conversion.
    pub throughput: ThroughputModel,
    /// Candidate generation strategy.
    pub candidates: CandidateStrategy,
    /// Engine threads for materialization.
    pub threads: usize,
    /// Size of the monthly insert batch used to meter view maintenance, as
    /// a fraction of the base rows. `0.0` models the paper's §6 evaluation
    /// where the dataset is static during the period (no refresh charge).
    pub maintenance_delta_fraction: f64,
    /// Engine-to-cloud projection mode.
    pub sizing: SizingMode,
}

impl Default for AdvisorConfig {
    /// The paper's experimental setup: AWS-2012 pricing, two small
    /// instances, a 10 GB dataset, one-month horizon, full-lattice
    /// candidates.
    fn default() -> Self {
        AdvisorConfig {
            pricing: mv_pricing::presets::aws_2012(),
            instance: "small".to_string(),
            nb_instances: 2,
            months: Months::new(1.0),
            simulated_dataset: Gb::new(10.0),
            throughput: ThroughputModel::default(),
            candidates: CandidateStrategy::FullLattice,
            threads: 1,
            maintenance_delta_fraction: 0.02,
            sizing: SizingMode::Extrapolated,
        }
    }
}

/// How [`Advisor::solve_streaming`] pulls candidate cuboids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StreamStrategy {
    /// HRU greedy benefit order over the lazily-walked lattice, optionally
    /// capped at a pull budget.
    HruGreedy(Option<usize>),
    /// Workload-closure members in static benefit-per-space order.
    WorkloadClosure,
}

/// Tuning knobs for the streaming solve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamingConfig {
    /// Candidate source and order.
    pub strategy: StreamStrategy,
    /// Local-search improvement moves budgeted after each admission (0
    /// disables mid-stream repair; the newcomer probe always runs).
    pub moves_per_pull: usize,
    /// Improvement budget for each polish pass at stream drain.
    pub final_moves: usize,
    /// Retire dominated, deselected candidates as they accrue, bounding
    /// the live pool.
    pub retire_dominated: bool,
    /// Dominance slack for retirement, following Aouiche, Jouve &
    /// Darmont's observation that near-duplicate candidate views (views
    /// whose sizes and speedups differ only marginally) can be pruned
    /// as a cluster without hurting the reachable optimum: candidate
    /// `b` is retired when some live `a` is within a `(1 + ε)` factor
    /// of `b` on every charge axis and strictly better somewhere. `0.0`
    /// (the default) is exact strict Pareto dominance — retirement then
    /// provably cannot push the reachable optimum up. Positive ε trades
    /// a bounded optimum regression for a smaller live pool on lattices
    /// full of near-duplicates.
    pub retire_epsilon: f64,
    /// Pull-adaptive stopping: when set, the stream stops early once
    /// the marginal benefit per measurement — the improvement of the
    /// scenario's objective (or, while infeasible, its violation)
    /// produced by a pull's admission + repair — stays below this
    /// threshold for [`StreamingConfig::stop_patience`] consecutive
    /// pulls. `None` (the default) drains the stream fully. Because
    /// streams yield in estimated-benefit order, a dry spell is
    /// evidence the tail is dry too — huge lattices never need a full
    /// drain.
    pub stop_marginal: Option<f64>,
    /// Consecutive below-threshold pulls tolerated before stopping
    /// (only meaningful with `stop_marginal`; a benefit-ordered stream
    /// can still interleave a few duds before a useful candidate).
    pub stop_patience: usize,
}

impl Default for StreamingConfig {
    fn default() -> Self {
        StreamingConfig {
            strategy: StreamStrategy::HruGreedy(None),
            moves_per_pull: 2,
            final_moves: 64,
            retire_dominated: true,
            retire_epsilon: 0.0,
            stop_marginal: None,
            stop_patience: 3,
        }
    }
}

/// Accounting for one streaming solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct StreamingReport {
    /// Cuboids pulled from the stream (each was materialized + metered).
    pub pulled: usize,
    /// Candidates surviving in the advisor's problem at drain.
    pub admitted: usize,
    /// Dominated candidates retired mid-stream.
    pub retired: usize,
    /// Whether the pull-adaptive stopping rule cut the stream before it
    /// drained (always `false` when `stop_marginal` is `None`).
    pub stopped_early: bool,
}

/// One measured candidate: the lattice cuboid, its engine view, and the
/// derived [`ViewCharge`].
#[derive(Debug, Clone)]
pub struct MeasuredCandidate {
    /// The cuboid this candidate materializes.
    pub cuboid: Cuboid,
    /// Human-readable label (`"month×country"`).
    pub label: String,
    /// The materialized engine view (kept for later registration).
    pub view: MaterializedView,
    /// The cost-model attributes fed to the optimizer.
    pub charge: ViewCharge,
}

/// The built advisor: measured workload + candidates + selection problem.
#[derive(Debug)]
pub struct Advisor {
    domain: Domain,
    config: AdvisorConfig,
    scale: SimScale,
    queries: Vec<AggQuery>,
    measured: Vec<MeasuredCandidate>,
    problem: SelectionProblem,
}

/// The shared measurement context: validated instance capacity, the
/// engine→cloud scale mapping, the executable workload, and the
/// extrapolation parameters. Both the batch pipeline
/// ([`Advisor::build`]) and the streaming pipeline
/// ([`Advisor::solve_streaming`]) meter candidates through one of
/// these, so a streamed candidate's [`ViewCharge`] is bit-identical to
/// the batch measurement of the same cuboid.
pub(crate) struct CandidateMeter<'a> {
    domain: &'a Domain,
    config: &'a AdvisorConfig,
    instance: mv_pricing::InstanceType,
    scale: SimScale,
    pub(crate) units: f64,
    engine_rows: f64,
    cloud_rows: f64,
    queries: Vec<AggQuery>,
    delta: Option<Table>,
}

impl<'a> CandidateMeter<'a> {
    /// Validates the domain/config pair and precomputes the projection
    /// parameters.
    pub(crate) fn new(domain: &'a Domain, config: &'a AdvisorConfig) -> Result<Self, AdvisorError> {
        domain.validate()?;
        if domain.base.num_rows() == 0 {
            return Err(AdvisorError::EmptyDataset);
        }
        let instance = config
            .pricing
            .compute
            .instance(&config.instance)
            .map_err(|_| AdvisorError::UnknownInstance {
                name: config.instance.clone(),
            })?
            .clone();
        let units = instance.compute_units * config.nb_instances as f64;
        if units.is_nan() || units <= 0.0 {
            return Err(AdvisorError::InvalidComputeUnits {
                instance: config.instance.clone(),
            });
        }
        let scale = SimScale::mapping(domain.base.size(), config.simulated_dataset);
        // Extrapolation parameters: the cloud-side fact table has the same
        // per-row width as the engine table but `cloud_rows` rows; group
        // counts at cloud scale come from Cardenas over the key domain.
        let engine_rows = domain.base.num_rows().max(1) as f64;
        let row_bytes = domain.base.heap_bytes() as f64 / engine_rows;
        let cloud_rows = config.simulated_dataset.as_bytes() as f64 / row_bytes.max(1.0);
        // Lower the lattice workload to executable group-bys in ONE place
        // (`LatticeWorkload::lower`), so calibration replays exactly the
        // queries the advisor metered.
        let queries: Vec<AggQuery> = domain
            .workload
            .lower(&domain.lattice)
            .into_iter()
            .map(|lq| {
                let col_refs: Vec<&str> = lq.group_by.iter().map(String::as_str).collect();
                AggQuery::new(
                    lq.name,
                    &col_refs,
                    vec![AggSpec::sum(domain.measure.clone())],
                )
            })
            .collect();
        let delta = monthly_delta(domain, config.maintenance_delta_fraction);
        Ok(CandidateMeter {
            domain,
            config,
            instance,
            scale,
            units,
            engine_rows,
            cloud_rows,
            queries,
            delta,
        })
    }

    /// Cloud-scale group count of `cuboid` (Cardenas over its key domain).
    fn cloud_groups(&self, cuboid: &Cuboid) -> f64 {
        mv_lattice::cardenas(
            self.cloud_rows as u64,
            self.domain.lattice.domain_size(cuboid),
        )
    }

    /// Scan work projected to cloud scale (engine bytes × how many more
    /// input rows the cloud table has) and converted to simulated
    /// cluster-hours under the configured throughput model.
    fn scan_hours(
        &self,
        bytes_scanned: u64,
        input_rows_engine: f64,
        input_rows_cloud: f64,
    ) -> Result<Hours, AdvisorError> {
        let bytes = bytes_scanned as f64 * (input_rows_cloud / input_rows_engine.max(1.0));
        self.config
            .throughput
            .hours_for_scan(Gb::from_bytes(bytes as u64), self.units)
            .map_err(AdvisorError::from)
    }

    /// Executes the workload on the base table and derives its charges
    /// (the paper's step 1).
    pub(crate) fn workload_charges(&self) -> Result<Vec<QueryCharge>, AdvisorError> {
        let mut charges = Vec::with_capacity(self.queries.len());
        for (q, lq) in self.queries.iter().zip(&self.domain.workload.queries) {
            let (out, stats) = q
                .execute_with_threads(&self.domain.base, self.config.threads)
                .map_err(AdvisorError::from)?;
            let (result_size, base_time) = match self.config.sizing {
                SizingMode::MeasuredScaled => (
                    self.scale.bytes_to_cloud(stats.bytes_out),
                    self.config
                        .throughput
                        .hours_for(&stats, self.units, self.scale)?,
                ),
                SizingMode::Extrapolated => {
                    let rows_cloud = self.cloud_groups(&lq.cuboid);
                    let width = out.schema().row_byte_width() as f64;
                    (
                        Gb::from_bytes((rows_cloud * width) as u64),
                        self.scan_hours(stats.bytes_scanned, self.engine_rows, self.cloud_rows)?,
                    )
                }
            };
            charges.push(QueryCharge {
                name: q.name.clone(),
                result_size,
                base_time,
                frequency: lq.frequency,
            });
        }
        Ok(charges)
    }

    /// Materializes and meters one candidate cuboid (the paper's steps
    /// 3 & 4 for a single view).
    pub(crate) fn measure(&self, cuboid: Cuboid) -> Result<MeasuredCandidate, AdvisorError> {
        let label = self.domain.lattice.label(&cuboid);
        let cols = self.domain.lattice.key_columns(&cuboid);
        let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
        let def = ViewDefinition::canonical(
            label.clone(),
            &col_refs,
            &[AggSpec::sum(self.domain.measure.clone())],
        );
        let view =
            MaterializedView::materialize_with_threads(def, &self.domain.base, self.config.threads)
                .map_err(AdvisorError::from)?;
        let build = *view.build_stats();
        let view_rows_engine = view.data().num_rows().max(1) as f64;
        let view_rows_cloud = self.cloud_groups(&cuboid);

        // Maintenance: incremental refresh of one monthly delta batch.
        let maintenance = match &self.delta {
            Some(d) if d.num_rows() > 0 => {
                let mut clone = view.clone();
                let stats = clone.refresh_incremental(d).map_err(AdvisorError::from)?;
                match self.config.sizing {
                    SizingMode::MeasuredScaled => self
                        .config
                        .throughput
                        .hours_for(&stats, self.units, self.scale)?,
                    SizingMode::Extrapolated => self.scan_hours(
                        stats.bytes_scanned,
                        d.num_rows().max(1) as f64,
                        self.cloud_rows * self.config.maintenance_delta_fraction,
                    )?,
                }
            }
            _ => Hours::ZERO,
        };

        let (view_size, materialization) = match self.config.sizing {
            SizingMode::MeasuredScaled => (
                self.scale.bytes_to_cloud(view.data().heap_bytes()),
                self.config
                    .throughput
                    .hours_for(&build, self.units, self.scale)?,
            ),
            SizingMode::Extrapolated => {
                let width = view.data().heap_bytes() as f64 / view_rows_engine;
                (
                    Gb::from_bytes((view_rows_cloud * width) as u64),
                    // Building a view scans the whole base table.
                    self.scan_hours(build.bytes_scanned, self.engine_rows, self.cloud_rows)?,
                )
            }
        };
        let mut charge = ViewCharge::new(
            label.clone(),
            view_size,
            materialization,
            maintenance,
            self.queries.len(),
        );
        for (i, q) in self.queries.iter().enumerate() {
            if view.can_answer(q).is_ok() {
                let (_, stats) = view.answer(q).map_err(AdvisorError::from)?;
                let t = match self.config.sizing {
                    SizingMode::MeasuredScaled => self
                        .config
                        .throughput
                        .hours_for(&stats, self.units, self.scale)?,
                    SizingMode::Extrapolated => {
                        self.scan_hours(stats.bytes_scanned, view_rows_engine, view_rows_cloud)?
                    }
                };
                charge = charge.answers(i, t);
            }
        }
        Ok(MeasuredCandidate {
            cuboid,
            label,
            view,
            charge,
        })
    }

    /// Assembles the paper's cost model over the metered workload.
    pub(crate) fn cost_model(&self, charges: Vec<QueryCharge>) -> CloudCostModel {
        CloudCostModel::new(CostContext {
            pricing: self.config.pricing.clone(),
            instance: self.instance.clone(),
            nb_instances: self.config.nb_instances,
            months: self.config.months,
            dataset_size: self.config.simulated_dataset,
            inserts: vec![],
            workload: charges,
        })
    }
}

impl Advisor {
    /// Runs the measurement pipeline over `domain`.
    pub fn build(domain: Domain, config: AdvisorConfig) -> Result<Advisor, AdvisorError> {
        let meter = CandidateMeter::new(&domain, &config)?;

        // 1. Measure the workload on the base table.
        let charges = meter.workload_charges()?;

        // 2. Generate candidate cuboids.
        let estimator = SizeEstimator::new(domain.base.num_rows() as u64);
        let cuboids: Vec<Cuboid> = match config.candidates {
            CandidateStrategy::FullLattice => candidates::full_lattice(&domain.lattice),
            CandidateStrategy::WorkloadClosure => {
                candidates::workload_closure(&domain.lattice, &domain.workload)
            }
            CandidateStrategy::HruGreedy(k) => {
                candidates::hru_greedy(&domain.lattice, &estimator, &domain.workload, k)
            }
        };

        // 3 & 4. Materialize and meter every candidate.
        let mut measured = Vec::with_capacity(cuboids.len());
        for cuboid in cuboids {
            measured.push(meter.measure(cuboid)?);
        }

        // 5. Assemble the selection problem.
        let model = meter.cost_model(charges);
        let CandidateMeter { scale, queries, .. } = meter;
        let problem =
            SelectionProblem::new(model, measured.iter().map(|m| m.charge.clone()).collect());

        Ok(Advisor {
            domain,
            config,
            scale,
            queries,
            measured,
            problem,
        })
    }

    /// Streaming counterpart of [`Advisor::build`] + [`Advisor::solve`]:
    /// pulls candidate cuboids lazily from a benefit-ordered
    /// [`CandidateStream`], materializes and meters each one *on
    /// admission*, splices it into a dynamic [`IncrementalEvaluator`]
    /// (O(m), no rebuild), keeps the running selection locally repaired
    /// with bounded flip/swap local search, and retires (ε-)dominated
    /// candidates so the live pool stays small
    /// ([`StreamingConfig::retire_epsilon`]; 0 = strict dominance).
    /// With [`StreamingConfig::stop_marginal`] set, the stream also
    /// stops early once the marginal benefit per measurement stays
    /// below the threshold for [`StreamingConfig::stop_patience`]
    /// consecutive pulls — huge lattices never need a full drain.
    ///
    /// The search is *anytime* — after every pull the evaluator holds a
    /// feasibility-ranked answer — and at drain a greedy-restart
    /// multi-start pass guarantees the reported outcome is never worse
    /// than batch greedy over the same candidate pool (property-tested in
    /// `tests/streaming.rs`). Returns the advisor over the surviving
    /// pool (usable for sweeps, materialization, ledgers), the chosen
    /// outcome, and pull/retire accounting.
    pub fn solve_streaming(
        domain: Domain,
        config: AdvisorConfig,
        scenario: Scenario,
        streaming: StreamingConfig,
    ) -> Result<(Advisor, Outcome, StreamingReport), AdvisorError> {
        let meter = CandidateMeter::new(&domain, &config)?;
        let charges = meter.workload_charges()?;
        let model = meter.cost_model(charges);
        let mut ev = IncrementalEvaluator::from_problem(SelectionProblem::new(model, Vec::new()));
        let baseline = ev.problem().baseline();
        let estimator = SizeEstimator::new(domain.base.num_rows() as u64);
        let mut stream = match streaming.strategy {
            StreamStrategy::HruGreedy(limit) => {
                let s = CandidateStream::hru(&domain.lattice, &estimator, &domain.workload);
                match limit {
                    Some(k) => s.with_limit(k),
                    None => s,
                }
            }
            StreamStrategy::WorkloadClosure => {
                CandidateStream::closure(&domain.lattice, &estimator, &domain.workload)
            }
        };

        let mut measured: Vec<MeasuredCandidate> = Vec::new();
        let mut current = baseline.clone();
        let mut pulled = 0usize;
        let mut retired = 0usize;
        let mut stalled = 0usize;
        let mut stopped_early = false;
        for cuboid in stream.by_ref() {
            pulled += 1;
            let before = current.clone();
            let mc = meter.measure(cuboid)?;
            let k = ev.add_candidate(mc.charge.clone());
            measured.push(mc);
            // Admission probe: select the newcomer iff it improves the
            // scenario ordering right now.
            ev.flip(k);
            let e = ev.snapshot();
            if scenario.better(&e, &current, &baseline) {
                current = e;
            } else {
                ev.unflip(k);
            }
            // Bounded repair keeps the running (anytime) answer locally
            // optimal as the pool evolves.
            if streaming.moves_per_pull > 0 {
                current =
                    local_search::improve(&mut ev, scenario, &baseline, streaming.moves_per_pull);
            }
            if streaming.retire_dominated {
                retired += retire_dominated(&mut ev, &mut measured, streaming.retire_epsilon);
            }
            // Pull-adaptive stopping: a measurement is "worth it" while
            // it keeps buying progress in the scenario's own ordering.
            if let Some(threshold) = streaming.stop_marginal {
                let gain = marginal_gain(scenario, &before, &current, &baseline);
                if gain < threshold {
                    stalled += 1;
                    if stalled >= streaming.stop_patience.max(1) {
                        stopped_early = true;
                        break;
                    }
                } else {
                    stalled = 0;
                }
            }
        }
        drop(stream);

        // Drain: polish the streamed answer, then multi-start against a
        // greedy fill from empty over the surviving pool; keep the better.
        let streamed = local_search::improve(&mut ev, scenario, &baseline, streaming.final_moves);
        for k in 0..ev.problem().len() {
            if ev.is_selected(k) {
                ev.unflip(k);
            }
        }
        local_search::greedy_fill(&mut ev, scenario, &baseline);
        let restart = local_search::improve(&mut ev, scenario, &baseline, streaming.final_moves);
        let best = if scenario.better(&restart, &streamed, &baseline) {
            restart
        } else {
            streamed
        };

        let problem = ev.into_problem();
        // Re-derive the baseline over the *final* problem so the outcome's
        // baseline selection has the same length as its evaluation's (as
        // the batch path guarantees); the cost/time values are identical
        // to the zero-candidate baseline used during the stream.
        let outcome = Outcome::new(best, problem.baseline(), scenario, SolverKind::LocalSearch);
        let CandidateMeter { scale, queries, .. } = meter;
        let advisor = Advisor {
            domain,
            config,
            scale,
            queries,
            measured,
            problem,
        };
        let report = StreamingReport {
            pulled,
            admitted: advisor.problem.len(),
            retired,
            stopped_early,
        };
        Ok((advisor, outcome, report))
    }

    /// The underlying selection problem.
    pub fn problem(&self) -> &SelectionProblem {
        &self.problem
    }

    /// The measured candidates, aligned with the problem's candidate order.
    pub fn candidates(&self) -> &[MeasuredCandidate] {
        &self.measured
    }

    /// The domain being advised.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// The configuration.
    pub fn config(&self) -> &AdvisorConfig {
        &self.config
    }

    /// The engine-to-cloud scale factor in use.
    pub fn scale(&self) -> SimScale {
        self.scale
    }

    /// The executable workload queries (aligned with the cost workload).
    pub fn queries(&self) -> &[AggQuery] {
        &self.queries
    }

    /// Solves a scenario with the requested solver.
    pub fn solve(&self, scenario: Scenario, solver: SolverKind) -> Outcome {
        mv_obs::span!("advisor/solve");
        mv_select::solve(&self.problem, scenario, solver)
    }

    /// An [`mv_select::IncrementalEvaluator`] positioned at the empty
    /// selection over this advisor's problem — the O(m)-per-flip probe
    /// interface for interactive what-if exploration and custom search
    /// loops over the measured candidates.
    pub fn evaluator(&self) -> mv_select::IncrementalEvaluator<'_> {
        mv_select::IncrementalEvaluator::new(&self.problem)
    }

    /// The full (time, cost) solution space over the measured candidates,
    /// swept in parallel when the candidate count warrants it.
    pub fn solution_space(&self) -> Vec<mv_select::pareto::SpacePoint> {
        mv_select::pareto::solution_space(&self.problem)
    }

    /// Registers the outcome's selected views in a fresh catalog — the
    /// "materialize them in the cloud" step. Queries routed through the
    /// catalog then actually use the chosen views.
    pub fn materialize_selection(&self, outcome: &Outcome) -> Result<ViewCatalog, AdvisorError> {
        let catalog = ViewCatalog::new();
        for k in outcome.evaluation.selection.ones() {
            catalog
                .register(self.measured[k].view.clone())
                .map_err(AdvisorError::from)?;
        }
        Ok(catalog)
    }

    /// Builds the provider-side usage ledger for an outcome: what the bill
    /// would record if the selection ran for one period. Integration tests
    /// reconcile its invoice against the predicted cost breakdown.
    pub fn usage_ledger(&self, outcome: &Outcome) -> UsageLedger {
        let model = self.problem.model();
        let candidates = self.problem.candidates();
        let selection = &outcome.evaluation.selection;
        let mut ledger = UsageLedger::new();
        ledger.record_compute(
            "workload processing",
            &self.config.instance,
            self.config.nb_instances,
            model.processing_time_with_views(candidates, selection),
        );
        let maintenance = model.maintenance_time(candidates, selection);
        if maintenance > Hours::ZERO {
            ledger.record_compute(
                "view maintenance",
                &self.config.instance,
                self.config.nb_instances,
                maintenance,
            );
        }
        let materialization = model.materialization_time(candidates, selection);
        if materialization > Hours::ZERO {
            ledger.record_compute(
                "view materialization",
                &self.config.instance,
                self.config.nb_instances,
                materialization,
            );
        }
        ledger.record_storage(
            "dataset + views",
            model.storage_timeline(model.views_size(candidates, selection)),
        );
        ledger.record_transfer_out("query results", model.context().total_result_size());
        ledger
    }
}

/// The scenario-ordered improvement a pull bought: while either end is
/// infeasible, progress is measured as constraint-violation reduction;
/// once feasible, as objective reduction. Negative when the pull (plus
/// repair) made things worse under that measure — the stopping rule
/// treats that as a stalled pull too.
fn marginal_gain(
    scenario: Scenario,
    before: &mv_select::Evaluation,
    after: &mv_select::Evaluation,
    baseline: &mv_select::Evaluation,
) -> f64 {
    let (vb, va) = (scenario.violation(before), scenario.violation(after));
    if vb > 0.0 || va > 0.0 {
        vb - va
    } else {
        scenario.objective(before, baseline) - scenario.objective(after, baseline)
    }
}

/// Retires every deselected candidate (ε-)dominated by a live one,
/// keeping `measured` aligned with the evaluator's candidate order
/// (mirrored `swap_remove`s). With `epsilon == 0` this is strict Pareto
/// dominance: any selection using a dominated view maps to one using
/// its dominator that is never slower, never costlier and never
/// infeasible-when-the-original-was-feasible, so retirement cannot push
/// the reachable optimum up. Positive `epsilon` additionally collapses
/// near-duplicates (Aouiche et al.-style pruning) at the cost of a
/// bounded optimum regression. Returns how many were retired.
fn retire_dominated(
    ev: &mut IncrementalEvaluator<'static>,
    measured: &mut Vec<MeasuredCandidate>,
    epsilon: f64,
) -> usize {
    let mut removed = 0;
    // One descending pass suffices: removing index j swap-moves only the
    // (already-checked) last index down, and strict dominance is
    // transitive, so anything dominated by a victim is also dominated by
    // the victim's own surviving dominator — no rescan needed. O(n²·m)
    // total instead of O(n³·m) restart-per-removal. (ε-dominance is not
    // transitive; a single pass may then retire fewer than a fixpoint
    // would, which only errs on the safe side.)
    let mut j = ev.problem().len();
    while j > 0 {
        j -= 1;
        if ev.is_selected(j) {
            continue;
        }
        let candidates = ev.problem().candidates();
        if (0..candidates.len())
            .any(|i| i != j && dominates_within(&candidates[i], &candidates[j], epsilon))
        {
            ev.remove_candidate(j);
            measured.swap_remove(j);
            removed += 1;
        }
    }
    removed
}

/// (ε-)Pareto dominance of view charges: `a` ε-dominates `b` when, with
/// slack factor `r = 1 + epsilon`, `a` answers every query `b` answers
/// in at most `r×` the time, costs at most `r×` as much to
/// store/maintain/build, and is *strictly* better somewhere in the
/// unrelaxed comparison. At `epsilon == 0` this is exactly strict
/// Pareto dominance: exact duplicates dominate in neither direction, so
/// ties are never retired. (With `epsilon > 0`, two near-duplicates can
/// ε-dominate each other; retirement order then decides which of the
/// cluster survives — the clustering-based pruning rationale of Aouiche
/// et al.)
fn dominates_within(a: &ViewCharge, b: &ViewCharge, epsilon: f64) -> bool {
    debug_assert!(epsilon >= 0.0, "dominance slack must be non-negative");
    let r = 1.0 + epsilon;
    if a.size.value() > b.size.value() * r
        || a.maintenance.value() > b.maintenance.value() * r
        || a.materialization.value() > b.materialization.value() * r
    {
        return false;
    }
    let mut strict =
        a.size < b.size || a.maintenance < b.maintenance || a.materialization < b.materialization;
    // Merge-join the two sparse profiles (both ascending by query id):
    // a query answered only by `a` is a strict win, only by `b` kills
    // the dominance, answered by both compares under the slack factor.
    let (aq, at) = (a.profile.query_ids(), a.profile.times());
    let (bq, bt) = (b.profile.query_ids(), b.profile.times());
    let (mut i, mut j) = (0, 0);
    while i < aq.len() || j < bq.len() {
        match (aq.get(i), bq.get(j)) {
            (Some(qa), Some(qb)) if qa == qb => {
                if at[i].value() > bt[j].value() * r {
                    return false;
                }
                if at[i] < bt[j] {
                    strict = true;
                }
                i += 1;
                j += 1;
            }
            (Some(qa), Some(qb)) if qa < qb => {
                strict = true;
                i += 1;
            }
            (Some(_), None) => {
                strict = true;
                i += 1;
            }
            _ => return false,
        }
    }
    strict
}

/// A monthly insert batch for maintenance metering: `fraction` of the base
/// rows, landing in the month after the dataset's range (sales domain) or
/// a replayed sample (other domains). `fraction == 0` disables maintenance.
pub(crate) fn monthly_delta(domain: &Domain, fraction: f64) -> Option<Table> {
    if fraction <= 0.0 {
        return None;
    }
    let rows = ((domain.base.num_rows() as f64 * fraction) as usize).max(1);
    if domain.name == "sales" {
        let cfg = mv_engine::SalesConfig::default();
        Some(mv_engine::datagen::generate_delta(&cfg, rows, 2011, 1))
    } else {
        // Generic fallback: replay a sample of existing rows as the delta
        // (aggregation-wise equivalent to new inserts in the same domains).
        let mut delta = Table::empty(domain.base.schema().clone());
        for r in 0..rows {
            let idx = (r * 37) % domain.base.num_rows();
            delta
                .push_row(&domain.base.row(idx))
                .expect("row from the same schema");
        }
        Some(delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sales_domain;
    use mv_units::Money;

    fn small_advisor() -> Advisor {
        let domain = sales_domain(2_000, 3, 1.0, 42);
        Advisor::build(domain, AdvisorConfig::default()).unwrap()
    }

    #[test]
    fn builds_and_measures() {
        let a = small_advisor();
        // Full lattice minus base = 15 candidates.
        assert_eq!(a.candidates().len(), 15);
        assert_eq!(a.problem().len(), 15);
        // Base times are positive and queries metered.
        let ctx = a.problem().model().context();
        assert_eq!(ctx.workload.len(), 3);
        for q in &ctx.workload {
            assert!(q.base_time > Hours::ZERO);
            assert!(q.result_size > Gb::ZERO);
        }
        // Every candidate that covers a query answers it faster than base
        // (coarser views scan fewer bytes).
        for m in a.candidates() {
            for t in m.charge.profile.times() {
                assert!(*t > Hours::ZERO);
            }
        }
    }

    #[test]
    fn views_make_things_faster() {
        let a = small_advisor();
        let o = a.solve(
            Scenario::budget(Money::from_dollars(1_000)),
            SolverKind::Greedy,
        );
        assert!(o.feasible());
        assert!(o.evaluation.time < o.baseline.time);
        assert!(o.time_improvement() > 0.5, "{}", o.time_improvement());
    }

    #[test]
    fn materialized_selection_serves_queries() {
        let a = small_advisor();
        let o = a.solve(
            Scenario::budget(Money::from_dollars(1_000)),
            SolverKind::Greedy,
        );
        let catalog = a.materialize_selection(&o).unwrap();
        assert_eq!(catalog.len(), o.evaluation.num_selected());
        // Each workload query answered through the catalog matches base.
        for q in a.queries() {
            let (via_catalog, _, _) = catalog.execute(q, &a.domain().base).unwrap();
            let (direct, _) = q.execute(&a.domain().base).unwrap();
            assert_eq!(via_catalog.to_sorted_rows(), direct.to_sorted_rows());
        }
    }

    #[test]
    fn invoice_reconciles_with_prediction() {
        let a = small_advisor();
        let o = a.solve(
            Scenario::tradeoff_normalized(0.5),
            SolverKind::PaperKnapsack,
        );
        let invoice = a.usage_ledger(&o).invoice(&a.config().pricing).unwrap();
        assert_eq!(invoice.total(), o.evaluation.cost());
        assert_eq!(invoice.compute, o.evaluation.breakdown.compute());
        assert_eq!(invoice.storage, o.evaluation.breakdown.storage);
        assert_eq!(invoice.transfer, o.evaluation.breakdown.transfer);
    }

    #[test]
    fn candidate_strategies_shrink_the_problem() {
        let domain = sales_domain(1_000, 3, 1.0, 42);
        let closure = Advisor::build(
            domain.clone(),
            AdvisorConfig {
                candidates: CandidateStrategy::WorkloadClosure,
                ..AdvisorConfig::default()
            },
        )
        .unwrap();
        assert!(closure.problem().len() < 15);
        let hru = Advisor::build(
            domain,
            AdvisorConfig {
                candidates: CandidateStrategy::HruGreedy(4),
                ..AdvisorConfig::default()
            },
        )
        .unwrap();
        assert!(hru.problem().len() <= 4);
    }

    #[test]
    fn streaming_solve_reports_and_reproduces() {
        let domain = sales_domain(1_200, 4, 2.0, 42);
        let scenario = Scenario::tradeoff_normalized(0.5);
        let (advisor, outcome, report) = Advisor::solve_streaming(
            domain,
            AdvisorConfig::default(),
            scenario,
            StreamingConfig::default(),
        )
        .unwrap();
        assert!(report.pulled > 0);
        assert_eq!(report.admitted + report.retired, report.pulled);
        assert_eq!(report.admitted, advisor.problem().len());
        assert_eq!(advisor.candidates().len(), advisor.problem().len());
        // measured stays aligned with the problem's candidate order
        // through retirement swap-removes.
        for (m, c) in advisor
            .candidates()
            .iter()
            .zip(advisor.problem().candidates())
        {
            assert_eq!(m.charge, *c);
        }
        // The outcome reproduces by full evaluation on the surviving pool,
        // and its baseline is the final problem's baseline (same selection
        // length as the evaluation, like the batch path).
        assert_eq!(
            outcome.evaluation,
            advisor.problem().evaluate(&outcome.evaluation.selection)
        );
        assert_eq!(outcome.baseline, advisor.problem().baseline());
        assert_eq!(outcome.solver, SolverKind::LocalSearch);
        assert!(outcome.evaluation.time < outcome.baseline.time);
        // The streamed advisor is a full advisor: its selection
        // materializes and serves queries.
        let catalog = advisor.materialize_selection(&outcome).unwrap();
        assert_eq!(catalog.len(), outcome.evaluation.num_selected());
    }

    #[test]
    fn streaming_with_pull_budget_is_anytime() {
        let domain = sales_domain(800, 3, 1.0, 7);
        let scenario = Scenario::budget(Money::from_dollars(1_000));
        let (advisor, outcome, report) = Advisor::solve_streaming(
            domain,
            AdvisorConfig::default(),
            scenario,
            StreamingConfig {
                strategy: StreamStrategy::HruGreedy(Some(2)),
                ..StreamingConfig::default()
            },
        )
        .unwrap();
        // The pull budget caps measurement work, yet a usable (feasible,
        // improving) answer still comes back.
        assert!(report.pulled <= 2);
        assert!(advisor.problem().len() <= 2);
        assert!(outcome.feasible());
        assert!(outcome.evaluation.time < outcome.baseline.time);
    }

    #[test]
    fn dominance_is_strict_and_directional() {
        let a = ViewCharge::new("a", Gb::new(1.0), Hours::new(0.1), Hours::new(0.1), 2)
            .answers(0, Hours::new(0.01));
        // Bigger, slower, answers nothing extra: dominated.
        let b = ViewCharge::new("b", Gb::new(2.0), Hours::new(0.1), Hours::new(0.1), 2)
            .answers(0, Hours::new(0.02));
        assert!(dominates_within(&a, &b, 0.0));
        assert!(!dominates_within(&b, &a, 0.0));
        // Answering an extra query protects from domination.
        let c = ViewCharge::new("c", Gb::new(5.0), Hours::new(0.1), Hours::new(0.1), 2)
            .answers(0, Hours::new(0.02))
            .answers(1, Hours::new(0.5));
        assert!(!dominates_within(&a, &c, 0.0));
        // Exact duplicates dominate in neither direction (never retired).
        assert!(!dominates_within(&a, &a.clone(), 0.0));
    }

    #[test]
    fn epsilon_dominance_collapses_near_duplicates() {
        // `a` is marginally larger than `d` (within 5%) but strictly
        // faster: strict dominance keeps both, ε-dominance retires `d`.
        let a = ViewCharge::new("a", Gb::new(1.02), Hours::new(0.1), Hours::new(0.1), 2)
            .answers(0, Hours::new(0.01));
        let d = ViewCharge::new("d", Gb::new(1.0), Hours::new(0.1), Hours::new(0.1), 2)
            .answers(0, Hours::new(0.02));
        assert!(!dominates_within(&a, &d, 0.0));
        assert!(dominates_within(&a, &d, 0.05));
        // The slack is bounded: a 30% size premium still protects `d`.
        let fat = ViewCharge::new("fat", Gb::new(1.3), Hours::new(0.1), Hours::new(0.1), 2)
            .answers(0, Hours::new(0.01));
        assert!(!dominates_within(&fat, &d, 0.05));
        // Exact duplicates still dominate in neither direction: the
        // strict-somewhere requirement is unrelaxed.
        assert!(!dominates_within(&d, &d.clone(), 0.5));
        // The slack never excuses being slower: `d` answers Q0 in 2×
        // `a`'s time, far outside 5%.
        assert!(!dominates_within(&d, &a, 0.05));
    }

    #[test]
    fn epsilon_zero_streaming_matches_strict_default() {
        // The ε knob's default must preserve the pre-ε behavior bit for
        // bit: an explicit 0.0 is the same solve as the default config.
        let domain = sales_domain(900, 4, 2.0, 13);
        let scenario = Scenario::tradeoff_normalized(0.5);
        let (a1, o1, r1) = Advisor::solve_streaming(
            domain.clone(),
            AdvisorConfig::default(),
            scenario,
            StreamingConfig::default(),
        )
        .unwrap();
        let (a2, o2, r2) = Advisor::solve_streaming(
            domain,
            AdvisorConfig::default(),
            scenario,
            StreamingConfig {
                retire_epsilon: 0.0,
                ..StreamingConfig::default()
            },
        )
        .unwrap();
        assert_eq!(r1, r2);
        assert_eq!(o1.evaluation, o2.evaluation);
        assert_eq!(a1.problem().len(), a2.problem().len());
    }

    #[test]
    fn generous_epsilon_retires_at_least_as_many() {
        let domain = sales_domain(900, 4, 2.0, 13);
        let scenario = Scenario::tradeoff_normalized(0.5);
        let strict = Advisor::solve_streaming(
            domain.clone(),
            AdvisorConfig::default(),
            scenario,
            StreamingConfig::default(),
        )
        .unwrap()
        .2;
        let eps = Advisor::solve_streaming(
            domain,
            AdvisorConfig::default(),
            scenario,
            StreamingConfig {
                retire_epsilon: 0.25,
                ..StreamingConfig::default()
            },
        )
        .unwrap()
        .2;
        assert!(eps.retired >= strict.retired);
        assert_eq!(eps.admitted + eps.retired, eps.pulled);
    }

    #[test]
    fn pull_adaptive_stopping_cuts_the_stream() {
        let domain = sales_domain(1_000, 4, 2.0, 42);
        let scenario = Scenario::tradeoff_normalized(0.5);
        // Reference: full drain.
        let (_, _, full) = Advisor::solve_streaming(
            domain.clone(),
            AdvisorConfig::default(),
            scenario,
            StreamingConfig::default(),
        )
        .unwrap();
        assert!(!full.stopped_early);
        // An impossible per-pull bar stops as soon as patience runs out.
        let (advisor, outcome, cut) = Advisor::solve_streaming(
            domain,
            AdvisorConfig::default(),
            scenario,
            StreamingConfig {
                stop_marginal: Some(f64::INFINITY),
                stop_patience: 2,
                ..StreamingConfig::default()
            },
        )
        .unwrap();
        assert!(cut.stopped_early);
        assert_eq!(cut.pulled, 2, "patience bounds the pulls");
        assert!(cut.pulled < full.pulled);
        assert_eq!(cut.admitted + cut.retired, cut.pulled);
        // The truncated solve still returns a coherent, usable advisor.
        assert_eq!(advisor.problem().len(), cut.admitted);
        assert_eq!(
            outcome.evaluation,
            advisor.problem().evaluate(&outcome.evaluation.selection)
        );
    }

    #[test]
    fn lenient_threshold_drains_like_default() {
        // Every useful pull clears a tiny threshold, so the stream
        // drains and the outcome matches the unstopped solve.
        let domain = sales_domain(900, 3, 5.0, 7);
        let scenario = Scenario::budget(Money::from_dollars(1_000));
        let (_, o_full, r_full) = Advisor::solve_streaming(
            domain.clone(),
            AdvisorConfig::default(),
            scenario,
            StreamingConfig::default(),
        )
        .unwrap();
        let (_, o_stop, r_stop) = Advisor::solve_streaming(
            domain,
            AdvisorConfig::default(),
            scenario,
            StreamingConfig {
                stop_marginal: Some(1e-12),
                stop_patience: r_full.pulled,
                ..StreamingConfig::default()
            },
        )
        .unwrap();
        assert!(!r_stop.stopped_early);
        assert_eq!(r_stop.pulled, r_full.pulled);
        assert_eq!(o_stop.evaluation, o_full.evaluation);
    }

    #[test]
    fn zero_instances_is_a_typed_error() {
        // Reachable from `mvcloud-cli advise --instances 0`: must surface
        // as an error, not divide metered work by zero.
        let domain = sales_domain(100, 3, 1.0, 1);
        let err = Advisor::build(
            domain,
            AdvisorConfig {
                nb_instances: 0,
                ..AdvisorConfig::default()
            },
        );
        assert!(matches!(err, Err(AdvisorError::InvalidComputeUnits { .. })));
    }

    #[test]
    fn empty_dataset_is_a_typed_error() {
        // Reachable from `--rows 0`: must not trip the SimScale assert.
        let domain = sales_domain(0, 3, 1.0, 1);
        let err = Advisor::build(domain, AdvisorConfig::default());
        assert!(matches!(err, Err(AdvisorError::EmptyDataset)));
    }

    #[test]
    fn unknown_instance_rejected() {
        let domain = sales_domain(100, 3, 1.0, 1);
        let err = Advisor::build(
            domain,
            AdvisorConfig {
                instance: "mainframe".to_string(),
                ..AdvisorConfig::default()
            },
        );
        assert!(matches!(err, Err(AdvisorError::UnknownInstance { .. })));
    }
}
