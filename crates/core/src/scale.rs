//! Charged problems at benchmark scale.
//!
//! [`mv_lattice::ScaleShape`] generates coverage *structure* (which
//! candidate answers which query, how much faster) as pure numbers;
//! this module is where that structure gets priced into a real
//! [`SelectionProblem`] — workload query charges, per-view
//! storage/build/maintenance charges, AWS-2012 pricing — so the CLI
//! and the `scale` benchmarks share one construction path for the
//! n = 2 000 / m = 50 000 regime.

use mv_cost::{CloudCostModel, CostContext, QueryCharge, ViewCharge};
use mv_lattice::ScaleShape;
use mv_pricing::presets;
use mv_units::{Gb, Hours, Months};

use crate::SelectionProblem;

/// Builds a charged selection problem from a synthetic scale shape:
/// query base times 0.05–1 h with skewed frequencies, view sizes
/// 1 MB–8 GB, answer times = base × the coverage speedup fraction.
/// Deterministic per `shape.seed`.
pub fn scale_problem(shape: &ScaleShape) -> SelectionProblem {
    let cov = shape.sparse_coverage();
    let mut rng = XorShift(shape.seed ^ 0x4368_6172_6765);
    let workload: Vec<QueryCharge> = (0..shape.queries)
        .map(|i| {
            let mut q = QueryCharge::new(
                format!("Q{i}"),
                Gb::new(rng.range(0.05, 2.0)),
                Hours::new(rng.range(0.05, 1.0)),
            );
            q.frequency = rng.range(0.2, 5.0);
            q
        })
        .collect();
    let pricing = presets::aws_2012();
    let instance = pricing
        .compute
        .instance("small")
        .expect("aws-2012 preset ships a small instance")
        .clone();
    let model = CloudCostModel::new(CostContext {
        pricing,
        instance,
        nb_instances: 2,
        months: Months::new(1.0),
        dataset_size: Gb::new(100.0),
        inserts: vec![],
        workload: workload.clone(),
    });
    let candidates: Vec<ViewCharge> = (0..cov.candidates())
        .map(|k| {
            let mut v = ViewCharge::new(
                format!("v{k}"),
                Gb::new(rng.range(0.001, 8.0)),
                Hours::new(rng.range(0.01, 0.4)),
                Hours::new(rng.range(0.0, 0.2)),
                shape.queries,
            );
            let (ids, speedups) = cov.answer_list(k);
            for (&q, &f) in ids.iter().zip(speedups) {
                let base = workload[q as usize].base_time.value();
                v = v.answers(q as usize, Hours::new(base * f));
            }
            v
        })
        .collect();
    SelectionProblem::new(model, candidates)
}

/// The fixtures' splitmix-style generator, local so charging stays
/// deterministic without an RNG dependency.
struct XorShift(u64);

impl XorShift {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        self.0 = x;
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_select::{IncrementalEvaluator, SelectionSet};

    fn small_shape() -> ScaleShape {
        ScaleShape {
            queries: 300,
            candidates: 25,
            mean_coverage: 5,
            seed: 11,
        }
    }

    #[test]
    fn problem_matches_the_shape_and_is_deterministic() {
        let p = scale_problem(&small_shape());
        assert_eq!(p.len(), 25);
        assert_eq!(p.model().context().workload.len(), 300);
        let q = scale_problem(&small_shape());
        assert_eq!(p.candidates(), q.candidates());
    }

    #[test]
    fn answers_beat_their_base_times() {
        let p = scale_problem(&small_shape());
        let workload = &p.model().context().workload;
        for c in p.candidates() {
            assert!(c.profile.answered() >= 1);
            for (i, t) in c.profile.entries() {
                assert!(t < workload[i].base_time, "answer slower than base");
            }
        }
    }

    #[test]
    fn evaluator_parity_holds_on_a_scaled_problem() {
        let p = scale_problem(&small_shape());
        let mut ev = IncrementalEvaluator::new(&p);
        let mut sel = SelectionSet::empty(p.len());
        for k in (0..p.len()).step_by(3) {
            ev.flip(k);
            sel.set(k, true);
        }
        assert_eq!(ev.snapshot(), p.evaluate(&sel));
    }
}
