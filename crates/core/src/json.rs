//! The one JSON emitter (and a minimal parser) for the CLI surface.
//!
//! The vendored serde is a no-op marker crate, so every report the CLI
//! prints is rendered by hand. Before this module each subcommand
//! rolled its own `format!` emitter; now they all build a [`Json`]
//! value and render it through the same escaping-correct writer — as
//! does the `--metrics` telemetry snapshot ([`snapshot_json`]).
//!
//! Two renderers:
//! * [`Json::render`] — compact, single line.
//! * [`Json::render_pretty`] — the report layout the CLI has always
//!   printed: the root object gets one key per line (2-space indent),
//!   arrays directly under a root key get one element per line
//!   (4-space indent), and everything deeper stays compact.
//!
//! [`Json::parse`] is the inverse — enough of a reader for tests (and
//! CI) to load a rendered report or metrics snapshot and assert on it.
//! `parse(render(x))` loses only numeric formatting (fixed-precision
//! renders come back as plain numbers).
//!
//! # Non-finite floats
//!
//! JSON has no token for `NaN` or `±inf`, so the policy is explicit and
//! symmetric: the renderers emit non-finite [`Json::Num`]/[`Json::Fixed`]
//! values as `null` (a lossy but always-valid document), and the parser
//! *rejects* any numeric literal that overflows `f64` to infinity (e.g.
//! `1e999`) instead of silently materializing a non-finite value that a
//! later render would degrade to `null`. A finite `f64` round-trips
//! through `render` → `parse` bit-identically (Rust's `{}` float
//! formatting is shortest-roundtrip), which is what lets the candidate
//! catalog ([`crate::catalog`]) reload measured charges exactly.
//!
//! [`write_atomic`] is the shared durable-write primitive (temp file +
//! rename) used by both the catalog spill and the CLI's `--metrics`
//! emitter, so a crash mid-write never leaves a partial document at the
//! destination path.

use std::fmt::Write as _;
use std::path::Path;

/// A JSON value, plus a fixed-precision number variant so renders can
/// reproduce the CLI's historical `{:.6}`/`{:.4}` formatting exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Integer, rendered without a decimal point.
    Int(i64),
    /// Unsigned integer (counter values exceed `i64` in theory).
    UInt(u64),
    /// Float rendered as `{:.prec$}` — non-finite values become `null`.
    Fixed(f64, usize),
    /// Float rendered naturally — non-finite values become `null`.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An object from `(key, value)` pairs (insertion order preserved).
    pub fn obj(pairs: Vec<(impl Into<String>, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// `value` if present, else `null`.
    pub fn opt(value: Option<Json>) -> Json {
        value.unwrap_or(Json::Null)
    }

    // ---- rendering ----

    /// Compact single-line render.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// The CLI's report layout (see module docs).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        match self {
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str("  ");
                    write_str(&mut out, k);
                    out.push(':');
                    match v {
                        Json::Arr(items) if !items.is_empty() => {
                            out.push_str("[\n");
                            for (j, item) in items.iter().enumerate() {
                                out.push_str("    ");
                                item.write_compact(&mut out);
                                if j + 1 < items.len() {
                                    out.push(',');
                                }
                                out.push('\n');
                            }
                            out.push_str("  ]");
                        }
                        other => other.write_compact(&mut out),
                    }
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push('}');
            }
            other => other.write_compact(&mut out),
        }
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Fixed(v, prec) => {
                if v.is_finite() {
                    let _ = write!(out, "{v:.prec$}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    // ---- accessors (for parsed values) ----

    /// Member `key` of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Any numeric variant as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(i) => Some(i as f64),
            Json::UInt(u) => Some(u as f64),
            Json::Fixed(v, _) | Json::Num(v) => Some(v),
            _ => None,
        }
    }

    /// Any numeric variant as `u64` (must be a non-negative integer).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Int(i) => u64::try_from(i).ok(),
            Json::UInt(u) => Some(u),
            Json::Fixed(v, _) | Json::Num(v) => {
                (v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64).then_some(v as u64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    // ---- parsing ----

    /// Parses a JSON document (numbers come back as [`Json::Num`] or
    /// [`Json::Int`]; trailing garbage is an error).
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(value)
    }
}

/// Escapes and writes one JSON string (quotes, backslashes, control
/// characters — the escaping every emitter now goes through).
fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {} (found {:?})",
            b as char,
            *pos,
            bytes.get(*pos).map(|&c| c as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    other => return Err(format!("expected ',' or '}}', found {other:?}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    other => return Err(format!("expected ',' or ']', found {other:?}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if text.is_empty() || text == "-" {
        return Err(format!("invalid number at byte {start}"));
    }
    if !float {
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Json::Int(i));
        }
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Json::UInt(u));
        }
    }
    let value: f64 = text
        .parse()
        .map_err(|e| format!("invalid number {text:?}: {e}"))?;
    // JSON has no non-finite tokens; a literal that overflows f64 (e.g.
    // `1e999` → inf) must be an error, not a silent infinity that the
    // next render would degrade to `null` (see the module policy).
    if !value.is_finite() {
        return Err(format!("number {text:?} overflows f64 at byte {start}"));
    }
    Ok(Json::Num(value))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    let mut chunk_start = *pos;
    while *pos < bytes.len() {
        match bytes[*pos] {
            b'"' => {
                out.push_str(
                    std::str::from_utf8(&bytes[chunk_start..*pos]).map_err(|e| e.to_string())?,
                );
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                out.push_str(
                    std::str::from_utf8(&bytes[chunk_start..*pos]).map_err(|e| e.to_string())?,
                );
                *pos += 1;
                let esc = bytes.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .ok_or("truncated \\u escape")
                            .and_then(|h| std::str::from_utf8(h).map_err(|_| "bad \\u escape"))?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape hex")?;
                        *pos += 4;
                        // Surrogate pairs are not emitted by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("unknown escape '\\{}'", *other as char)),
                }
                chunk_start = *pos;
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

/// Renders an [`mv_obs::Snapshot`] as the versioned `--metrics` JSON
/// schema: counters and histograms keyed by name, spans as an array of
/// `{path,count,total_ns,max_ns}`, and the bounded event tail.
pub fn snapshot_json(snapshot: &mv_obs::Snapshot) -> Json {
    let counters = Json::Obj(
        snapshot
            .counters
            .iter()
            .map(|&(name, v)| (name.to_string(), Json::UInt(v)))
            .collect(),
    );
    let histograms = Json::Obj(
        snapshot
            .histograms
            .iter()
            .map(|h| {
                let buckets = Json::Arr(
                    h.buckets
                        .iter()
                        .map(|&(upper, n)| {
                            Json::Arr(vec![upper.map_or(Json::Null, Json::UInt), Json::UInt(n)])
                        })
                        .collect(),
                );
                (
                    h.name.to_string(),
                    Json::obj(vec![
                        ("count", Json::UInt(h.count)),
                        ("sum", Json::UInt(h.sum)),
                        ("buckets", buckets),
                    ]),
                )
            })
            .collect(),
    );
    let spans = Json::Arr(
        snapshot
            .spans
            .iter()
            .map(|s| {
                Json::obj(vec![
                    ("path", Json::str(s.path.clone())),
                    ("count", Json::UInt(s.count)),
                    ("total_ns", Json::UInt(s.total_ns)),
                    ("max_ns", Json::UInt(s.max_ns)),
                ])
            })
            .collect(),
    );
    let events = Json::Arr(
        snapshot
            .events
            .iter()
            .map(|e| {
                let fields = Json::Obj(
                    e.fields
                        .iter()
                        .map(|&(k, v)| (k.to_string(), Json::Num(v)))
                        .collect(),
                );
                Json::obj(vec![
                    ("seq", Json::UInt(e.seq)),
                    ("kind", Json::str(e.kind)),
                    ("fields", fields),
                ])
            })
            .collect(),
    );
    Json::obj(vec![
        ("version", Json::UInt(mv_obs::snapshot::SCHEMA_VERSION)),
        ("counters", counters),
        ("histograms", histograms),
        ("spans", spans),
        ("events", events),
        ("events_seen", Json::UInt(snapshot.events_seen)),
    ])
}

/// Durably replaces the file at `path` with `contents`: writes a
/// sibling temp file, then renames it over the destination. Rename is
/// atomic on POSIX filesystems, so a reader (or a restart after a
/// mid-write crash) sees either the old document or the new one in
/// full — never a truncated prefix. The temp file carries a
/// `.tmp.<pid>` suffix beside the destination; a crash can strand one,
/// which the next successful write of the same path replaces.
pub fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    let file_name = path
        .file_name()
        .ok_or_else(|| std::io::Error::other(format!("no file name in {}", path.display())))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    std::fs::write(&tmp, contents)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            // Leave no temp droppings behind a failed rename.
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_round_trips() {
        let nasty = "a\"b\\c\nd\te\rf\u{0007}g❦";
        let rendered = Json::str(nasty).render();
        assert_eq!(Json::parse(&rendered).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn fixed_precision_matches_historical_format() {
        assert_eq!(Json::Fixed(1.5, 6).render(), "1.500000");
        assert_eq!(Json::Fixed(0.25, 4).render(), "0.2500");
        assert_eq!(Json::Fixed(f64::NAN, 6).render(), "null");
        assert_eq!(Json::Fixed(f64::INFINITY, 6).render(), "null");
    }

    #[test]
    fn pretty_layout_expands_root_keys_and_arrays() {
        let doc = Json::obj(vec![
            ("scenario", Json::str("s")),
            (
                "epochs",
                Json::Arr(vec![
                    Json::obj(vec![("epoch", Json::Int(0))]),
                    Json::obj(vec![("epoch", Json::Int(1))]),
                ]),
            ),
            ("commitment", Json::Null),
        ]);
        assert_eq!(
            doc.render_pretty(),
            "{\n  \"scenario\":\"s\",\n  \"epochs\":[\n    {\"epoch\":0},\n    \
             {\"epoch\":1}\n  ],\n  \"commitment\":null\n}"
        );
    }

    #[test]
    fn parse_handles_numbers_and_nesting() {
        let doc = Json::parse(
            "{\"a\": [1, -2.5, 1e3], \"b\": {\"c\": true, \"d\": null}, \"e\": 18446744073709551615}",
        )
        .unwrap();
        let a = doc.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].as_f64(), Some(-2.5));
        assert_eq!(a[2].as_f64(), Some(1000.0));
        assert_eq!(
            doc.get("b").unwrap().get("c").unwrap().as_bool(),
            Some(true)
        );
        assert!(doc.get("b").unwrap().get("d").unwrap().is_null());
        assert_eq!(doc.get("e").unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn parse_rejects_trailing_garbage() {
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
    }

    #[test]
    fn parse_rejects_nonfinite_overflow() {
        // `1e999` is a syntactically valid JSON number that overflows
        // f64 to infinity; accepting it would smuggle a non-finite
        // value past the render-side `null` policy.
        assert!(Json::parse("1e999").is_err());
        assert!(Json::parse("-1e999").is_err());
        assert!(Json::parse("{\"a\": [0.5, 1e309]}").is_err());
        // The largest finite f64 still parses.
        let max = format!("{:e}", f64::MAX);
        assert_eq!(Json::parse(&max).unwrap().as_f64(), Some(f64::MAX));
    }

    #[test]
    fn nonfinite_renders_as_null_and_round_trips_to_null() {
        // The documented policy end to end: a non-finite Num renders as
        // `null`, and parsing that render yields Json::Null — never a
        // non-finite number.
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let rendered = Json::Num(v).render();
            assert_eq!(rendered, "null");
            assert!(Json::parse(&rendered).unwrap().is_null());
        }
    }

    #[test]
    fn finite_floats_round_trip_bit_identically() {
        // Shortest-roundtrip `{}` formatting: render → parse is exact
        // for finite f64, the invariant the candidate catalog's
        // bit-identical reload rests on.
        for v in [
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            -2.2250738585072014e-308,
            123456.789e-30,
        ] {
            let rendered = Json::Num(v).render();
            let back = Json::parse(&rendered).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v:?} vs {back:?}");
        }
    }

    #[test]
    fn write_atomic_replaces_whole_documents() {
        let dir = std::env::temp_dir().join(format!("mvcloud-json-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("doc.json");
        write_atomic(&path, "{\"v\":1}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"v\":1}");
        write_atomic(&path, "{\"v\":2}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"v\":2}");
        // No temp droppings after successful writes.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n.to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
