//! What-if analyses over a built advisor.
//!
//! The advisor measures once; these helpers then sweep a decision variable
//! and re-solve, which is cheap because the selection problem is already
//! assembled. Three sweeps users actually ask for:
//!
//! * **budget sweep** — how much faster does each extra dollar make the
//!   workload (the curve behind the paper's Figure 5(a));
//! * **deadline sweep** — the cheapest bill at each response-time target;
//! * **α sweep** — the MV3 pivot between the two optima;
//! * **horizon sweep** — cumulative chain-vs-myopic bills as a billing
//!   horizon grows (re-exported from [`crate::horizon`]): where
//!   transition-aware re-optimization starts paying for itself.
//!
//! Sweep points are independent solves over the same immutable problem,
//! so they fan out across threads (contiguous chunks, results stitched
//! back in order — identical output to a serial sweep).

use mv_select::{Scenario, SelectionProblem, SolverKind};
use mv_units::{Hours, Money};
use serde::Serialize;

use crate::Advisor;

pub use crate::horizon::{horizon_growth_sweep, horizon_sweep_csv, HorizonSweepPoint};

/// One point of a what-if sweep.
#[derive(Debug, Clone, Serialize)]
pub struct SweepPoint {
    /// The swept variable's value (dollars, hours, or α).
    pub x: f64,
    /// Workload processing time at the optimum.
    pub time_hours: f64,
    /// Total period cost at the optimum.
    pub cost_dollars: f64,
    /// Number of selected views.
    pub views: usize,
    /// Whether the constraint was satisfiable.
    pub feasible: bool,
}

/// Solves every `(x, scenario)` point, in parallel when the point count
/// warrants it. Chunks are contiguous and re-stitched in order, so the
/// result is identical to a serial map for any thread count.
fn solve_points(
    problem: &SelectionProblem,
    points: Vec<(f64, Scenario)>,
    solver: SolverKind,
) -> Vec<SweepPoint> {
    let to_point = |x: f64, o: mv_select::Outcome| SweepPoint {
        x,
        time_hours: o.evaluation.time.value(),
        cost_dollars: o.evaluation.cost().to_dollars_f64(),
        views: o.evaluation.num_selected(),
        feasible: o.feasible(),
    };
    let threads = std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(points.len());
    if threads <= 1 || points.len() < 4 {
        // Single-threaded sweep: let the solver use its own parallelism.
        return points
            .iter()
            .map(|&(x, s)| to_point(x, mv_select::solve(problem, s, solver)))
            .collect();
    }
    let chunk = points.len().div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = points
            .chunks(chunk)
            .map(|slice| {
                scope.spawn(move |_| {
                    slice
                        .iter()
                        // The sweep layer already owns every core: run the
                        // solver serially so thread pools don't nest.
                        .map(|&(x, s)| to_point(x, mv_select::solve_serial(problem, s, solver)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    })
    .expect("sweep scope failed")
}

/// [`budget_sweep`] over a bare [`SelectionProblem`] — the entry point
/// for problems assembled outside a batch advisor, e.g. the surviving
/// pool of a streaming solve ([`crate::Advisor::solve_streaming`]).
pub fn budget_sweep_problem(
    problem: &SelectionProblem,
    span: Money,
    steps: usize,
    solver: SolverKind,
) -> Vec<SweepPoint> {
    let base_cost = problem.baseline().cost();
    let points = (0..=steps)
        .map(|i| {
            let extra = Money::from_micros(span.micros() * i as i128 / steps.max(1) as i128);
            let budget = base_cost + extra;
            (budget.to_dollars_f64(), Scenario::budget(budget))
        })
        .collect();
    solve_points(problem, points, solver)
}

/// Sweeps MV1 budgets from the no-view baseline cost upward in `steps`
/// equal increments of `span`.
pub fn budget_sweep(
    advisor: &Advisor,
    span: Money,
    steps: usize,
    solver: SolverKind,
) -> Vec<SweepPoint> {
    budget_sweep_problem(advisor.problem(), span, steps, solver)
}

/// [`deadline_sweep`] over a bare [`SelectionProblem`].
pub fn deadline_sweep_problem(
    problem: &SelectionProblem,
    fractions: &[f64],
    solver: SolverKind,
) -> Vec<SweepPoint> {
    let base_time = problem.baseline().time;
    let points = fractions
        .iter()
        .map(|&f| {
            let limit = Hours::new(base_time.value() * f);
            (limit.value(), Scenario::time_limit(limit))
        })
        .collect();
    solve_points(problem, points, solver)
}

/// Sweeps MV2 deadlines as fractions of the no-view workload time.
pub fn deadline_sweep(advisor: &Advisor, fractions: &[f64], solver: SolverKind) -> Vec<SweepPoint> {
    deadline_sweep_problem(advisor.problem(), fractions, solver)
}

/// [`alpha_sweep`] over a bare [`SelectionProblem`].
pub fn alpha_sweep_problem(
    problem: &SelectionProblem,
    steps: usize,
    solver: SolverKind,
) -> Vec<SweepPoint> {
    let points = (0..=steps)
        .map(|i| {
            let alpha = i as f64 / steps.max(1) as f64;
            (alpha, Scenario::tradeoff_normalized(alpha))
        })
        .collect();
    solve_points(problem, points, solver)
}

/// Sweeps MV3's α over `steps` equal increments of [0, 1].
pub fn alpha_sweep(advisor: &Advisor, steps: usize, solver: SolverKind) -> Vec<SweepPoint> {
    alpha_sweep_problem(advisor.problem(), steps, solver)
}

/// Renders sweep points as CSV.
pub fn sweep_csv(points: &[SweepPoint], x_name: &str) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.6}", p.x),
                format!("{:.6}", p.time_hours),
                format!("{:.6}", p.cost_dollars),
                p.views.to_string(),
                p.feasible.to_string(),
            ]
        })
        .collect();
    crate::report::render_csv(
        &[x_name, "time_hours", "cost_dollars", "views", "feasible"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sales_domain, Advisor, AdvisorConfig};

    fn advisor() -> Advisor {
        Advisor::build(sales_domain(1_500, 5, 30.0, 42), AdvisorConfig::default()).unwrap()
    }

    #[test]
    fn budget_sweep_time_is_monotone() {
        let a = advisor();
        let points = budget_sweep(&a, Money::from_dollars(5), 6, SolverKind::Exhaustive);
        assert_eq!(points.len(), 7);
        for w in points.windows(2) {
            assert!(w[1].time_hours <= w[0].time_hours + 1e-12);
        }
        // Budget respected everywhere.
        for p in &points {
            assert!(p.feasible);
            assert!(p.cost_dollars <= p.x + 1e-9);
        }
    }

    #[test]
    fn deadline_sweep_cost_falls_with_looser_limits() {
        let a = advisor();
        let points = deadline_sweep(&a, &[0.1, 0.5, 1.0], SolverKind::Exhaustive);
        let feasible: Vec<&SweepPoint> = points.iter().filter(|p| p.feasible).collect();
        assert!(!feasible.is_empty());
        for w in feasible.windows(2) {
            assert!(w[1].cost_dollars <= w[0].cost_dollars + 1e-9);
        }
    }

    #[test]
    fn alpha_sweep_pivots() {
        let a = advisor();
        let points = alpha_sweep(&a, 4, SolverKind::Exhaustive);
        assert_eq!(points.len(), 5);
        // Time falls (or stays) as alpha rises; cost rises (or stays).
        for w in points.windows(2) {
            assert!(w[1].time_hours <= w[0].time_hours + 1e-12);
            assert!(w[1].cost_dollars + 1e-9 >= w[0].cost_dollars);
        }
    }

    #[test]
    fn streamed_problem_sweeps_like_a_batch_one() {
        // The problem a streaming solve leaves behind is a first-class
        // sweep target: same shape guarantees as the batch sweeps.
        let (advisor, _, _) = crate::Advisor::solve_streaming(
            crate::sales_domain(900, 4, 10.0, 11),
            crate::AdvisorConfig::default(),
            mv_select::Scenario::tradeoff_normalized(0.5),
            crate::StreamingConfig::default(),
        )
        .unwrap();
        let points = alpha_sweep_problem(advisor.problem(), 4, SolverKind::LocalSearch);
        assert_eq!(points.len(), 5);
        for w in points.windows(2) {
            assert!(w[1].time_hours <= w[0].time_hours + 1e-12);
            assert!(w[1].cost_dollars + 1e-9 >= w[0].cost_dollars);
        }
        let budget = budget_sweep_problem(
            advisor.problem(),
            Money::from_dollars(5),
            4,
            SolverKind::LocalSearch,
        );
        assert!(budget.iter().all(|p| p.feasible));
        for w in budget.windows(2) {
            assert!(w[1].time_hours <= w[0].time_hours + 1e-12);
        }
    }

    #[test]
    fn csv_shape() {
        let a = advisor();
        let points = alpha_sweep(&a, 2, SolverKind::Greedy);
        let csv = sweep_csv(&points, "alpha");
        assert_eq!(csv.lines().count(), 4);
        assert!(csv.starts_with("alpha,time_hours,cost_dollars,views,feasible"));
    }
}
