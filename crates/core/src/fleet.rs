//! Hedged mixed-fleet advising: joint selection + placement against
//! sampled price paths with correlated interruption epochs.
//!
//! [`Advisor::solve_market`] prices one homogeneous fleet against one
//! sampled price sheet — reserved-vs-spot is an all-or-nothing
//! comparison of whole fleets. [`Advisor::solve_fleet`] makes the
//! hedge a **per-view decision**: an [`mv_pricing::FleetPlan`] splits
//! capacity into a reserved pool and a spot pool, each view's
//! [`Placement`] decides which pool its build/refresh work (and
//! storage) bills against, and the transition-aware chain searches
//! placements jointly with the selection itself
//! (`EpochChain::solve_fleet` — placement-flip local-search moves on
//! the same warm `retarget`/`update_charge` path, one evaluator per
//! path, never a rebuild; asserted in `tests/market_no_rebuild.rs`).
//!
//! The shared charges (workload processing, dataset storage,
//! transfer) follow the plan's *primary* pool: a spot primary rides
//! the sampled market sheet exactly like `solve_market`, a reserved
//! primary keeps the contract sheet and only spot-*placed* views feel
//! the market. Cross-pool rate differentials are folded into
//! effective billable hours by [`mv_cost::PoolCharge`], and spot
//! interruption premiums apply **only to spot-placed views** — which
//! is what makes the degenerate plans exact:
//! [`FleetPlan::pure_spot`] reproduces `solve_market` bit-for-bit per
//! path, and [`FleetPlan::pure_reserved`] reproduces the risk-free
//! `solve_horizon` (both property-tested in `tests/fleet.rs`).
//!
//! Interruption hazards can additionally be *correlated* across
//! epochs ([`mv_market::CorrelatedHazard`]): capacity crunches arrive
//! in runs, which is exactly when pre-placing a view on reserved
//! capacity ahead of the crunch beats reacting to it — the lookahead
//! gap `EpochChain::solve_dp_fleet` quantifies.
//!
//! The report is the market report's mixed-fleet generalization:
//! per-pool bills and hours, per-epoch **hedge-ratio quantiles** (the
//! spot-placed share of the selection across paths), placement churn,
//! and a hedged-vs-pure-spot-vs-pure-reserved comparison priced on
//! the same sampled paths.

use std::collections::HashMap;

use mv_cost::{CloudCostModel, InterruptionRisk, PoolCharge, SelectionSet, ViewCharge};
use mv_lattice::WorkloadEvolution;
use mv_market::{EpochQuote, MarketPath, MarketScenario, ScenarioTree};
use mv_pricing::{FleetPlan, Placement};
use mv_select::epoch::{EpochChain, EpochStep, EpochTree, EpochTreeNode};
use mv_select::Scenario;
use mv_units::{Hours, Money};
use serde::Serialize;

use crate::market::{Quantiles, SpotCommitmentReport};
use crate::{Advisor, AdvisorError};

/// Shape of a mixed-fleet Monte-Carlo solve.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The price-dynamics scenario (horizon length, seed, processes).
    pub market: MarketScenario,
    /// Number of sampled price paths `K`.
    pub paths: usize,
    /// How query frequencies evolve across epochs.
    pub evolution: WorkloadEvolution,
    /// The fleet split: pool terms, primary sheet, placement freedom.
    pub fleet: FleetPlan,
    /// Also solve every path with the fleet pinned all-spot and
    /// all-reserved and report the three-way comparison (three chain
    /// solves per path instead of one).
    pub compare_pure: bool,
    /// Use the flat per-path reference loop instead of the scenario
    /// tree. Results are bit-identical either way (pinned by
    /// `tests/tree_identity.rs`); the tree is the default hot path.
    pub flat: bool,
}

impl Default for FleetConfig {
    /// 16 paths over a year of constant prices, a rebalancing hedged
    /// fleet, pure comparators on, scenario-tree solving.
    fn default() -> Self {
        FleetConfig {
            market: MarketScenario::constant(12, 42),
            paths: 16,
            evolution: WorkloadEvolution::fixed(),
            fleet: FleetPlan::hedged("hedged"),
            compare_pure: true,
            flat: false,
        }
    }
}

/// Per-path accounting of one sampled trajectory under the fleet.
#[derive(Debug, Clone, Serialize)]
pub struct FleetPathSummary {
    /// Path index (aligned with [`MarketScenario::path`]).
    pub path: usize,
    /// Total charged cost along the path.
    pub total_cost: Money,
    /// Total processing hours along the path.
    pub total_time: Hours,
    /// Total billable instance-hours (per-component rounding applied,
    /// fleet-multiplied, effective pool hours included).
    pub billed_instance_hours: Hours,
    /// Raw (pre-rounding) work hours run on the reserved pool:
    /// processing when reserved is primary, plus reserved-placed
    /// views' effective build/refresh hours.
    pub reserved_hours: Hours,
    /// Raw work hours run on the spot pool, risk-premium included.
    pub spot_hours: Hours,
    /// The compute component of the path's bill.
    pub compute_bill: Money,
    /// Epoch boundaries at which the selected set changed.
    pub switches: usize,
    /// Placement moves across the horizon (each re-paid a build).
    pub moves: usize,
    /// Sampled interruption events along the path.
    pub interruptions: usize,
    /// Mean spot-placed share of the selection across epochs.
    pub spot_share: f64,
    /// Per-epoch charged cost.
    pub epoch_costs: Vec<Money>,
    /// Per-epoch selected sets.
    pub selections: Vec<SelectionSet>,
    /// Per-epoch placement assignments (selected entries meaningful).
    pub placements: Vec<Vec<Placement>>,
}

/// One epoch of the fleet's Monte-Carlo envelope.
#[derive(Debug, Clone, Serialize)]
pub struct FleetEpochReport {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Transition-aware charged cost across paths, in dollars.
    pub charged_cost: Quantiles,
    /// Running cumulative bill across paths, in dollars.
    pub cumulative_cost: Quantiles,
    /// The spot-placed share of the selected views across paths (the
    /// hedge ratio; 0 = all reserved, 1 = all spot).
    pub hedge_ratio: Quantiles,
    /// The sampled compute price factor across paths.
    pub compute_factor: Quantiles,
    /// The per-epoch interruption probability across paths.
    pub interruption: Quantiles,
    /// How many distinct selected sets the paths chose this epoch.
    pub distinct_plans: usize,
    /// Share of paths choosing the most common selected set.
    pub modal_share: f64,
    /// Labels of that most common selected set.
    pub modal_selection: Vec<String>,
}

/// The hedged fleet priced against its own pinned pure fleets, on the
/// same sampled paths.
#[derive(Debug, Clone, Serialize)]
pub struct FleetComparison {
    /// Per-path total cost of the hedged (rebalancing) fleet.
    pub hedged: Quantiles,
    /// Per-path total cost with every view pinned to spot.
    pub pure_spot: Quantiles,
    /// Per-path total cost with every view pinned to reserved.
    pub pure_reserved: Quantiles,
    /// Share of paths where the hedge is no dearer than the better
    /// pure fleet. Note the pure plans also move the *shared* charges
    /// (processing, dataset storage) onto their pool's sheet, which a
    /// fixed-primary hedge does not imitate — so a pure fleet can
    /// legitimately win when the market discounts the shared work.
    pub hedged_wins_share: f64,
}

/// The Monte-Carlo envelope of a mixed-fleet horizon solve.
#[derive(Debug, Clone, Serialize)]
pub struct FleetReport {
    /// The fleet plan's name.
    pub fleet: String,
    /// Per-path accounting, in path order.
    pub paths: Vec<FleetPathSummary>,
    /// The per-epoch quantile timeline.
    pub epochs: Vec<FleetEpochReport>,
    /// Total charged cost across paths, in dollars.
    pub total_cost: Quantiles,
    /// Total processing hours across paths.
    pub total_time_hours: Quantiles,
    /// Per-path mean hedge ratio across paths.
    pub hedge_ratio: Quantiles,
    /// Mean modal share across epochs (1.0 = every path agrees).
    pub plan_stability: f64,
    /// Hedged-vs-pure pricing on the same paths, when requested.
    pub comparison: Option<FleetComparison>,
    /// Reserved-pool commitment pricing of the fleet's compute, when
    /// the reserved pool carries a plan — the same arithmetic as
    /// `solve_market`'s report ([`SpotCommitmentReport::from_path_bills`]).
    pub commitment: Option<SpotCommitmentReport>,
    /// Distinct full-horizon solves actually performed for the K
    /// requested paths of the *hedged* fleet: distinct scenario-tree
    /// leaves (tree mode) or distinct quote sequences after hash dedup
    /// (flat mode); 1 when the fleet never sees the market at all.
    pub distinct_solves: usize,
    /// Scenario-tree node count — the number of epoch-solves the tree
    /// route paid. `None` when the flat reference path (or the
    /// market-insulated shortcut) was used.
    pub tree_nodes: Option<usize>,
    /// Telemetry delta covering this solve, when [`mv_obs`] was
    /// enabled at entry; `None` otherwise (and never serialized by
    /// the CLI report emitters — surfaced via `--metrics`).
    pub telemetry: Option<mv_obs::Snapshot>,
}

impl FleetReport {
    /// Renders the quantile timeline as CSV (one row per epoch).
    pub fn timeline_csv(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .epochs
            .iter()
            .map(|e| {
                vec![
                    e.epoch.to_string(),
                    format!("{:.6}", e.charged_cost.p10),
                    format!("{:.6}", e.charged_cost.median),
                    format!("{:.6}", e.charged_cost.p90),
                    format!("{:.6}", e.cumulative_cost.median),
                    format!("{:.4}", e.hedge_ratio.median),
                    format!("{:.6}", e.compute_factor.mean),
                    format!("{:.6}", e.interruption.mean),
                    e.distinct_plans.to_string(),
                    format!("{:.4}", e.modal_share),
                ]
            })
            .collect();
        crate::report::render_csv(
            &[
                "epoch",
                "cost_p10",
                "cost_median",
                "cost_p90",
                "cumulative_median",
                "hedge_ratio_median",
                "compute_factor_mean",
                "interruption_mean",
                "distinct_plans",
                "modal_share",
            ],
            &rows,
        )
    }
}

/// One solved fleet path (the summary already folds in everything the
/// renderer needs from the chain steps).
#[derive(Debug, Clone)]
struct SolvedFleetPath {
    summary: FleetPathSummary,
    path: MarketPath,
}

impl Advisor {
    /// The per-epoch costing models the fleet's *primary* pool induces
    /// for one sampled path: a spot primary rides the path's quotes
    /// exactly like [`Advisor::market_epoch_models`]; a reserved
    /// primary keeps the base sheet (market dynamics reach only the
    /// spot-placed views' charges). Non-parity primary terms scale the
    /// sheet on top; parity terms leave it bit-identical.
    pub fn fleet_epoch_models(
        &self,
        path: &MarketPath,
        evolution: &WorkloadEvolution,
        fleet: &FleetPlan,
    ) -> Vec<CloudCostModel> {
        self.market_base_models(path.quotes.len(), evolution)
            .iter()
            .zip(&path.quotes)
            .map(|(base, quote)| self.fleet_quote_model(base, quote, fleet))
            .collect()
    }

    /// One epoch's base model under the fleet's primary sheet for one
    /// sampled quote — the per-node unit both the flat loop and the
    /// scenario tree compile their models from.
    fn fleet_quote_model(
        &self,
        base: &CloudCostModel,
        quote: &EpochQuote,
        fleet: &FleetPlan,
    ) -> CloudCostModel {
        let model = match fleet.primary {
            Placement::Spot => self.quote_model(base, quote),
            Placement::Reserved => base.clone(),
        };
        let terms = fleet.terms(fleet.primary);
        if terms.is_parity() {
            return model;
        }
        let mut ctx = model.context().clone();
        ctx.pricing = ctx
            .pricing
            .scale_rates(terms.rate_factor, terms.storage_factor, 1.0);
        ctx.instance = ctx
            .pricing
            .compute
            .instance(&self.config().instance)
            .expect("advisor instance validated at build")
            .clone();
        CloudCostModel::new(ctx)
    }

    /// The [`PoolCharge`] pair one sampled quote induces under a
    /// fleet: how a view placed on either pool is effectively charged
    /// against the primary sheet. The primary pool is always the exact
    /// identity on rates; the spot pool carries the quote's
    /// interruption risk.
    fn quote_pool_charges(quote: &EpochQuote, fleet: &FleetPlan) -> [PoolCharge; 2] {
        let spot_risk = InterruptionRisk::new(quote.interruption);
        let reserved_rate = fleet.reserved.rate_factor;
        let spot_rate = fleet.spot.rate_factor * quote.factors.compute;
        let pool = |p: Placement| -> PoolCharge {
            let risk = match p {
                Placement::Reserved => InterruptionRisk::NONE,
                Placement::Spot => spot_risk,
            };
            if p == fleet.primary {
                // The primary pool *is* the sheet: exact
                // identity on rates by construction.
                return PoolCharge::new(1.0, 1.0, risk);
            }
            let (rate, storage) = match p {
                Placement::Reserved => (reserved_rate, fleet.reserved.storage_factor),
                Placement::Spot => (spot_rate, fleet.spot.storage_factor),
            };
            let (primary_rate, primary_storage) = match fleet.primary {
                Placement::Reserved => (reserved_rate, fleet.reserved.storage_factor),
                Placement::Spot => (spot_rate, fleet.spot.storage_factor),
            };
            PoolCharge::new(rate / primary_rate, storage / primary_storage, risk)
        };
        [pool(Placement::Reserved), pool(Placement::Spot)]
    }

    /// The per-epoch [`PoolCharge`]s one sampled path induces under a
    /// fleet (one [`Advisor::quote_pool_charges`] pair per epoch).
    fn fleet_pool_charges(path: &MarketPath, fleet: &FleetPlan) -> Vec<[PoolCharge; 2]> {
        path.quotes
            .iter()
            .map(|q| Self::quote_pool_charges(q, fleet))
            .collect()
    }

    /// Solves the horizon across `K` sampled price paths with joint
    /// per-view selection + placement and reports the Monte-Carlo
    /// envelope. See the module docs for semantics; the per-path hot
    /// loop is one warm-started `EpochChain::solve_fleet`.
    pub fn solve_fleet(
        &self,
        scenario: Scenario,
        config: &FleetConfig,
    ) -> Result<FleetReport, AdvisorError> {
        if config.market.epochs == 0 {
            return Err(AdvisorError::EmptyHorizon);
        }
        if config.paths == 0 {
            return Err(AdvisorError::NoMarketPaths);
        }
        config.fleet.validate().map_err(AdvisorError::from)?;
        for terms in [&config.fleet.reserved, &config.fleet.spot] {
            if let Some(plan) = &terms.commitment {
                if plan.instance != self.config().instance {
                    return Err(AdvisorError::CommitmentMismatch {
                        plan: plan.name.clone(),
                        plan_instance: plan.instance.clone(),
                        advisor_instance: self.config().instance.clone(),
                    });
                }
            }
        }

        let telemetry_base = mv_obs::enabled().then(mv_obs::Snapshot::capture);
        let (solved, distinct_solves, tree_nodes) =
            self.solve_fleet_variant(scenario, config, &config.fleet);
        let comparison = config.compare_pure.then(|| {
            let hedged: Vec<f64> = solved
                .iter()
                .map(|s| s.summary.total_cost.to_dollars_f64())
                .collect();
            let totals = |fleet: &FleetPlan| -> Vec<f64> {
                self.solve_fleet_variant(scenario, config, fleet)
                    .0
                    .iter()
                    .map(|s| s.summary.total_cost.to_dollars_f64())
                    .collect()
            };
            let pure_spot = totals(&config.fleet.as_pure(Placement::Spot));
            let pure_reserved = totals(&config.fleet.as_pure(Placement::Reserved));
            let wins = hedged
                .iter()
                .zip(pure_spot.iter().zip(&pure_reserved))
                .filter(|(h, (s, r))| **h <= s.min(**r) + 1e-9)
                .count();
            FleetComparison {
                hedged: Quantiles::of(&hedged),
                pure_spot: Quantiles::of(&pure_spot),
                pure_reserved: Quantiles::of(&pure_reserved),
                hedged_wins_share: wins as f64 / hedged.len() as f64,
            }
        });
        let mut report = self.render_fleet(config, solved, comparison, distinct_solves, tree_nodes);
        if let Some(base) = telemetry_base {
            report.telemetry = Some(mv_obs::Snapshot::capture().since(&base));
        }
        Ok(report)
    }

    /// Solves all `config.paths` paths under one fleet variant,
    /// routing through the scenario tree by default. A pinned
    /// all-reserved fleet under a reserved primary never sees the
    /// market at all, so one solve covers every path regardless of its
    /// quotes (a dedup neither the tree nor the quote-sequence hash
    /// can discover — the quotes *differ*, they just don't matter).
    /// Returns the solved paths plus the
    /// (`distinct_solves`, `tree_nodes`) accounting pair.
    fn solve_fleet_variant(
        &self,
        scenario: Scenario,
        config: &FleetConfig,
        fleet: &FleetPlan,
    ) -> (Vec<SolvedFleetPath>, usize, Option<usize>) {
        let sampled: Vec<MarketPath> = (0..config.paths).map(|j| config.market.path(j)).collect();
        let insulated = fleet.primary == Placement::Reserved
            && fleet.pinned_pool() == Some(Placement::Reserved);
        if insulated {
            let solved = self.solve_fleet_paths(scenario, config, fleet, &[0]);
            let out = sampled
                .iter()
                .enumerate()
                .map(|(j, p)| {
                    let mut s = solved[0].clone();
                    s.summary.path = j;
                    // Interruption *events* are still Bernoulli-sampled
                    // per path — keep the replica's own quotes for
                    // event reporting.
                    s.path = p.clone();
                    s
                })
                .collect();
            return (out, 1, None);
        }
        if config.flat {
            self.solve_fleet_flat(scenario, config, fleet, &sampled)
        } else {
            self.solve_fleet_tree(scenario, config, fleet, &sampled)
        }
    }

    /// The scenario-tree hot path for one fleet variant: one
    /// quote-repriced primary-sheet model and one [`PoolCharge`] pair
    /// per tree *node*, solved jointly (selection + placement) in one
    /// [`EpochChain::solve_tree_fleet`] pass. Bit-identical to
    /// [`Advisor::solve_fleet_flat`].
    fn solve_fleet_tree(
        &self,
        scenario: Scenario,
        config: &FleetConfig,
        fleet: &FleetPlan,
        sampled: &[MarketPath],
    ) -> (Vec<SolvedFleetPath>, usize, Option<usize>) {
        let stree = ScenarioTree::from_paths(sampled);
        let base = self.market_base_models(stree.epochs, &config.evolution);
        let nodes: Vec<EpochTreeNode> = stree
            .nodes()
            .iter()
            .map(|n| EpochTreeNode {
                parent: n.parent,
                epoch: n.epoch,
                model: self.fleet_quote_model(&base[n.epoch], &n.quote, fleet),
            })
            .collect();
        let leaves: Vec<usize> = (0..sampled.len()).map(|j| stree.leaf_of(j)).collect();
        let tree = EpochTree::new(nodes, leaves);
        let node_pools: Vec<[PoolCharge; 2]> = stree
            .nodes()
            .iter()
            .map(|n| Self::quote_pool_charges(&n.quote, fleet))
            .collect();
        let pool_charges = self.problem().candidates().to_vec();
        let initial: Vec<Placement> = match fleet.initial {
            Some(p) => vec![p; pool_charges.len()],
            None => pool_charges.iter().map(|c| c.placement).collect(),
        };
        let chain = EpochChain::new(base, pool_charges);
        let reprice =
            |node: usize, _k: usize, p: Placement, transition: &ViewCharge| -> ViewCharge {
                node_pools[node][usize::from(p == Placement::Spot)].adjust(transition)
            };
        let per_path = chain.solve_tree_fleet(scenario, &tree, &initial, fleet.rebalance, &reprice);
        let solved = sampled
            .iter()
            .zip(per_path)
            .enumerate()
            .map(|(j, (p, steps))| {
                let pools = Self::fleet_pool_charges(p, fleet);
                let summary = self.account_fleet_path(j, fleet, &chain, &steps, &pools);
                SolvedFleetPath {
                    summary,
                    path: p.clone(),
                }
            })
            .collect();
        (solved, stree.distinct_leaves(), Some(stree.len()))
    }

    /// The flat per-path reference loop for one fleet variant: solve
    /// one representative chain per *distinct quote sequence*
    /// (fingerprint-bucketed, full-key-verified grouping —
    /// [`crate::dedup`]; a deterministic market collapses to one
    /// representative) and replicate the result to the aliases.
    fn solve_fleet_flat(
        &self,
        scenario: Scenario,
        config: &FleetConfig,
        fleet: &FleetPlan,
        sampled: &[MarketPath],
    ) -> (Vec<SolvedFleetPath>, usize, Option<usize>) {
        let groups = crate::dedup::quote_sequence_groups(sampled);
        mv_obs::add(mv_obs::Counter::FleetDedupHits, groups.duplicates() as u64);
        let (reps, rep_of) = (groups.reps, groups.rep_of);
        let solved_reps = self.solve_fleet_paths(scenario, config, fleet, &reps);
        let solved = sampled
            .iter()
            .enumerate()
            .map(|(j, p)| {
                let mut s = solved_reps[rep_of[j]].clone();
                s.summary.path = j;
                // Solve-relevant quote fields match the representative
                // bit-for-bit; interruption *events* are Bernoulli
                // -sampled per path, so keep the replica's own quotes
                // for event reporting.
                s.path = p.clone();
                s
            })
            .collect();
        (solved, reps.len(), None)
    }

    /// Solves the representative paths `reps`, fanned out across
    /// threads in contiguous chunks and merged in order (identical
    /// results for any thread count).
    fn solve_fleet_paths(
        &self,
        scenario: Scenario,
        config: &FleetConfig,
        fleet: &FleetPlan,
        reps: &[usize],
    ) -> Vec<SolvedFleetPath> {
        let threads = std::thread::available_parallelism()
            .map_or(1, |t| t.get())
            .min(reps.len());
        let solve = |i: usize| -> SolvedFleetPath {
            self.solve_fleet_path(scenario, config, fleet, reps[i])
        };
        if threads <= 1 {
            return (0..reps.len()).map(solve).collect();
        }
        let chunk = reps.len().div_ceil(threads);
        let solve = &solve;
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .filter_map(|t| {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(reps.len());
                    (lo < hi).then(|| scope.spawn(move |_| (lo..hi).map(solve).collect::<Vec<_>>()))
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("fleet path worker panicked"))
                .collect()
        })
        .expect("fleet sweep scope failed")
    }

    /// Solves one sampled path: compile the primary sheet's models and
    /// the per-pool charges, run the joint warm-started chain, account
    /// the result.
    fn solve_fleet_path(
        &self,
        scenario: Scenario,
        config: &FleetConfig,
        fleet: &FleetPlan,
        j: usize,
    ) -> SolvedFleetPath {
        mv_obs::span!("fleet/solve_path");
        mv_obs::inc(mv_obs::Counter::FleetPathSolves);
        let path = config.market.path(j);
        let models = self.fleet_epoch_models(&path, &config.evolution, fleet);
        let pools = Self::fleet_pool_charges(&path, fleet);
        let pool_charges = self.problem().candidates().to_vec();
        let initial: Vec<Placement> = match fleet.initial {
            Some(p) => vec![p; pool_charges.len()],
            None => pool_charges.iter().map(|c| c.placement).collect(),
        };
        let chain = EpochChain::new(models, pool_charges);
        let reprice = |e: usize, _k: usize, p: Placement, transition: &ViewCharge| -> ViewCharge {
            pools[e][usize::from(p == Placement::Spot)].adjust(transition)
        };
        let steps = chain.solve_fleet(scenario, &initial, fleet.rebalance, &reprice);
        let summary = self.account_fleet_path(j, fleet, &chain, &steps, &pools);
        SolvedFleetPath { summary, path }
    }

    /// Per-path accounting: totals, billable hours through the same
    /// component-rounding arithmetic as the market report (so the
    /// pure-spot fleet reconciles bit-for-bit), raw per-pool work
    /// attribution, and selection/placement churn.
    fn account_fleet_path(
        &self,
        j: usize,
        fleet: &FleetPlan,
        chain: &EpochChain,
        steps: &[EpochStep],
        pools: &[[PoolCharge; 2]],
    ) -> FleetPathSummary {
        let config = self.config();
        let rounding = config.pricing.compute.rounding;
        let pool = chain.pool();
        let mut billed = Hours::ZERO;
        let mut reserved_hours = Hours::ZERO;
        let mut spot_hours = Hours::ZERO;
        let mut compute_bill = Money::ZERO;
        let mut switches = 0;
        let mut moves = 0;
        let mut spot_share_sum = 0.0;
        let mut epoch_costs = Vec::with_capacity(steps.len());
        let mut selections = Vec::with_capacity(steps.len());
        let mut placements = Vec::with_capacity(steps.len());
        for (e, step) in steps.iter().enumerate() {
            // One pass over the selected views: each effective (risk-
            // and rate-adjusted) charge is derived once, maintenance
            // and rebuilt-materialization totals accumulate in
            // ascending candidate order (added/moved are sorted, so
            // binary_search gives O(log n) membership), and the same
            // work is attributed raw (pre-rounding) to its pool.
            let (mut res, mut spot) = (Hours::ZERO, Hours::ZERO);
            match fleet.primary {
                Placement::Reserved => res += step.outcome.evaluation.time,
                Placement::Spot => spot += step.outcome.evaluation.time,
            }
            let mut maintenance = Hours::ZERO;
            let mut materialization = Hours::ZERO;
            let mut selected = 0usize;
            let mut spot_selected = 0usize;
            for k in step.selection().ones() {
                selected += 1;
                let eff =
                    pools[e][usize::from(step.placements[k] == Placement::Spot)].adjust(&pool[k]);
                maintenance += eff.maintenance;
                let rebuilt =
                    step.added.binary_search(&k).is_ok() || step.moved.binary_search(&k).is_ok();
                if rebuilt {
                    materialization += eff.materialization;
                }
                let work = eff.maintenance
                    + if rebuilt {
                        eff.materialization
                    } else {
                        Hours::ZERO
                    };
                match step.placements[k] {
                    Placement::Reserved => res += work,
                    Placement::Spot => {
                        spot += work;
                        spot_selected += 1;
                    }
                }
            }
            // Billable hours: rounded per component exactly like the
            // market report (the pure-spot conformance pin).
            for t in [step.outcome.evaluation.time, maintenance, materialization] {
                if t > Hours::ZERO {
                    billed += rounding.apply(t) * config.nb_instances as f64;
                }
            }
            reserved_hours += res;
            spot_hours += spot;
            spot_share_sum += if selected == 0 {
                0.0
            } else {
                spot_selected as f64 / selected as f64
            };
            compute_bill += step.outcome.evaluation.breakdown.compute();
            if e > 0 && !(step.added.is_empty() && step.dropped.is_empty()) {
                switches += 1;
            }
            moves += step.moved.len();
            epoch_costs.push(step.outcome.evaluation.cost());
            selections.push(step.selection().clone());
            placements.push(step.placements.clone());
        }
        FleetPathSummary {
            path: j,
            total_cost: epoch_costs.iter().copied().sum(),
            total_time: steps.iter().map(|s| s.outcome.evaluation.time).sum(),
            billed_instance_hours: billed,
            reserved_hours,
            spot_hours,
            compute_bill,
            switches,
            moves,
            interruptions: 0, // filled by the caller from the sampled path
            spot_share: spot_share_sum / steps.len() as f64,
            epoch_costs,
            selections,
            placements,
        }
    }

    /// Aggregates solved fleet paths into the quantile envelope.
    fn render_fleet(
        &self,
        config: &FleetConfig,
        mut solved: Vec<SolvedFleetPath>,
        comparison: Option<FleetComparison>,
        distinct_solves: usize,
        tree_nodes: Option<usize>,
    ) -> FleetReport {
        let epochs = config.market.epochs;
        let labels: Vec<String> = self.candidates().iter().map(|m| m.label.clone()).collect();
        for s in &mut solved {
            s.summary.interruptions = s.path.interruptions();
        }

        let mut epoch_reports = Vec::with_capacity(epochs);
        let mut cumulative: Vec<f64> = vec![0.0; solved.len()];
        let mut stability_sum = 0.0;
        for e in 0..epochs {
            let costs: Vec<f64> = solved
                .iter()
                .map(|s| s.summary.epoch_costs[e].to_dollars_f64())
                .collect();
            for (c, s) in cumulative.iter_mut().zip(&solved) {
                *c += s.summary.epoch_costs[e].to_dollars_f64();
            }
            let ratios: Vec<f64> = solved
                .iter()
                .map(|s| {
                    let selected: Vec<usize> = s.summary.selections[e].ones().collect();
                    if selected.is_empty() {
                        0.0
                    } else {
                        selected
                            .iter()
                            .filter(|&&k| s.summary.placements[e][k] == Placement::Spot)
                            .count() as f64
                            / selected.len() as f64
                    }
                })
                .collect();
            let factors: Vec<f64> = solved
                .iter()
                .map(|s| s.path.quotes[e].factors.compute)
                .collect();
            let probs: Vec<f64> = solved
                .iter()
                .map(|s| s.path.quotes[e].interruption)
                .collect();
            let mut plans: HashMap<&SelectionSet, usize> = HashMap::new();
            for s in &solved {
                *plans.entry(&s.summary.selections[e]).or_insert(0) += 1;
            }
            // Tie-break modal plans deterministically (last maximal in
            // path order), not by HashMap iteration order — the report
            // must reproduce bit-for-bit from the seed.
            let modal_set = solved
                .iter()
                .map(|s| &s.summary.selections[e])
                .max_by_key(|sel| plans[*sel])
                .expect("at least one path");
            let modal_share = plans[modal_set] as f64 / solved.len() as f64;
            stability_sum += modal_share;
            epoch_reports.push(FleetEpochReport {
                epoch: e,
                charged_cost: Quantiles::of(&costs),
                cumulative_cost: Quantiles::of(&cumulative),
                hedge_ratio: Quantiles::of(&ratios),
                compute_factor: Quantiles::of(&factors),
                interruption: Quantiles::of(&probs),
                distinct_plans: plans.len(),
                modal_share,
                modal_selection: modal_set.ones().map(|k| labels[k].clone()).collect(),
            });
        }

        let totals: Vec<f64> = solved
            .iter()
            .map(|s| s.summary.total_cost.to_dollars_f64())
            .collect();
        let total_times: Vec<f64> = solved
            .iter()
            .map(|s| s.summary.total_time.value())
            .collect();
        let shares: Vec<f64> = solved.iter().map(|s| s.summary.spot_share).collect();
        let commitment = config.fleet.reserved.commitment.as_ref().map(|plan| {
            let total_months = self.config().months * epochs as f64;
            let spot: Vec<f64> = solved
                .iter()
                .map(|s| s.summary.compute_bill.to_dollars_f64())
                .collect();
            let reserved: Vec<f64> = solved
                .iter()
                .map(|s| {
                    plan.fleet_horizon_cost(
                        total_months,
                        s.summary.billed_instance_hours,
                        self.config().nb_instances,
                    )
                    .to_dollars_f64()
                })
                .collect();
            SpotCommitmentReport::from_path_bills(&plan.name, &spot, &reserved)
        });
        FleetReport {
            fleet: config.fleet.name.clone(),
            paths: solved.into_iter().map(|s| s.summary).collect(),
            epochs: epoch_reports,
            total_cost: Quantiles::of(&totals),
            total_time_hours: Quantiles::of(&total_times),
            hedge_ratio: Quantiles::of(&shares),
            plan_stability: stability_sum / epochs as f64,
            comparison,
            commitment,
            distinct_solves,
            tree_nodes,
            telemetry: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sales_domain, AdvisorConfig};
    use mv_market::{CorrelatedHazard, PriceProcess, SpotMarket};

    fn advisor() -> Advisor {
        Advisor::build(sales_domain(1_000, 4, 5.0, 42), AdvisorConfig::default()).unwrap()
    }

    #[test]
    fn constant_market_hedged_fleet_collapses_quantiles() {
        let a = advisor();
        let scenario = Scenario::tradeoff_normalized(0.5);
        let report = a
            .solve_fleet(
                scenario,
                &FleetConfig {
                    market: MarketScenario::constant(4, 7),
                    paths: 8,
                    ..FleetConfig::default()
                },
            )
            .unwrap();
        assert_eq!(report.paths.len(), 8);
        assert_eq!(report.epochs.len(), 4);
        assert_eq!(report.plan_stability, 1.0);
        for e in &report.epochs {
            assert_eq!(e.charged_cost.spread(), 0.0);
            assert_eq!(e.distinct_plans, 1);
            // No market advantage: nothing should move to spot.
            assert_eq!(e.hedge_ratio.max, 0.0);
        }
        let cmp = report.comparison.expect("pure comparison on by default");
        // On a flat riskless market at parity terms all three fleets
        // price identically.
        assert_eq!(cmp.hedged.median, cmp.pure_spot.median);
        assert_eq!(cmp.hedged.median, cmp.pure_reserved.median);
        assert_eq!(cmp.hedged_wins_share, 1.0);
    }

    #[test]
    fn discounted_spot_pulls_views_onto_the_spot_pool() {
        // A deep flat spot discount with zero risk, priced per minute
        // (Cumulus) so the pool differential survives rounding: the
        // rebalancing fleet should spot-place its views and strictly
        // beat staying all-reserved. (Pure-spot also moves the *shared
        // processing* onto the discounted sheet, which a
        // reserved-primary hedge deliberately does not imitate.)
        let pricing = mv_pricing::presets::cumulus();
        let a = Advisor::build(
            sales_domain(1_000, 4, 5.0, 42),
            AdvisorConfig {
                pricing,
                instance: "c.std".to_string(),
                ..AdvisorConfig::default()
            },
        )
        .unwrap();
        let scenario = Scenario::tradeoff_normalized(0.5);
        let config = FleetConfig {
            market: MarketScenario::constant(6, 3)
                .with(PriceProcess::Spot(SpotMarket::discounted(0.3, 0.0))),
            paths: 4,
            ..FleetConfig::default()
        };
        let report = a.solve_fleet(scenario, &config).unwrap();
        assert!(
            report.hedge_ratio.median > 0.0,
            "the discount should pull views onto spot: {:?}",
            report.hedge_ratio
        );
        let cmp = report.comparison.expect("comparison");
        assert!(
            cmp.hedged.median < cmp.pure_reserved.median,
            "hedged {} vs pure reserved {}",
            cmp.hedged.median,
            cmp.pure_reserved.median
        );
    }

    #[test]
    fn correlated_crunches_spread_the_envelope_reproducibly() {
        let a = advisor();
        let scenario = Scenario::tradeoff_normalized(0.5);
        let config = FleetConfig {
            market: MarketScenario::constant(6, 11)
                .with(PriceProcess::Spot(SpotMarket::discounted(0.4, 0.2)))
                .with(PriceProcess::Correlated(
                    CorrelatedHazard::bursty(0.3, 0.8, 0.6).with_crunch_compute(1.4),
                )),
            paths: 12,
            ..FleetConfig::default()
        };
        let r1 = a.solve_fleet(scenario, &config).unwrap();
        let r2 = a.solve_fleet(scenario, &config).unwrap();
        assert_eq!(r1.total_cost, r2.total_cost);
        assert_eq!(r1.hedge_ratio, r2.hedge_ratio);
        // The crunch regime genuinely varies across paths somewhere.
        assert!(r1.epochs.iter().any(|e| e.interruption.spread() > 0.0));
        let csv = r1.timeline_csv();
        assert_eq!(csv.lines().count(), 7);
        assert!(csv.starts_with("epoch,cost_p10"));
    }

    #[test]
    fn tree_route_is_bit_identical_to_the_flat_loop() {
        let a = advisor();
        let scenario = Scenario::tradeoff_normalized(0.5);
        let tree_cfg = FleetConfig {
            market: MarketScenario::constant(6, 11)
                .with(PriceProcess::Spot(SpotMarket::discounted(0.4, 0.2)))
                .with(PriceProcess::Correlated(
                    CorrelatedHazard::bursty(0.3, 0.8, 0.6).with_crunch_compute(1.4),
                )),
            paths: 10,
            ..FleetConfig::default()
        };
        let flat_cfg = FleetConfig {
            flat: true,
            ..tree_cfg.clone()
        };
        let tree = a.solve_fleet(scenario, &tree_cfg).unwrap();
        let flat = a.solve_fleet(scenario, &flat_cfg).unwrap();
        assert_eq!(tree.total_cost, flat.total_cost);
        assert_eq!(tree.hedge_ratio, flat.hedge_ratio);
        assert_eq!(tree.plan_stability, flat.plan_stability);
        for (t, f) in tree.paths.iter().zip(&flat.paths) {
            assert_eq!(t.total_cost, f.total_cost);
            assert_eq!(t.billed_instance_hours, f.billed_instance_hours);
            assert_eq!(t.reserved_hours, f.reserved_hours);
            assert_eq!(t.spot_hours, f.spot_hours);
            assert_eq!(t.selections, f.selections);
            assert_eq!(t.placements, f.placements);
            assert_eq!(t.moves, f.moves);
            assert_eq!(t.interruptions, f.interruptions);
        }
        let (tc, fc) = (tree.comparison.unwrap(), flat.comparison.unwrap());
        assert_eq!(tc.hedged, fc.hedged);
        assert_eq!(tc.pure_spot, fc.pure_spot);
        assert_eq!(tc.pure_reserved, fc.pure_reserved);
        assert_eq!(tree.distinct_solves, flat.distinct_solves);
        let nodes = tree.tree_nodes.expect("tree route reports its size");
        assert!(nodes < tree.distinct_solves * 6, "no prefix shared");
        assert!(flat.tree_nodes.is_none());
    }

    #[test]
    fn insulated_fleet_pays_one_solve_even_on_a_volatile_market() {
        let a = advisor();
        let scenario = Scenario::tradeoff_normalized(0.5);
        let mut config = FleetConfig {
            market: MarketScenario::constant(4, 5)
                .with(PriceProcess::Spot(SpotMarket::with_volatility(0.5))),
            paths: 8,
            compare_pure: false,
            ..FleetConfig::default()
        };
        config.fleet = config.fleet.as_pure(Placement::Reserved);
        let report = a.solve_fleet(scenario, &config).unwrap();
        // The quotes differ across paths but never reach the solve.
        assert_eq!(report.distinct_solves, 1);
        assert!(report.tree_nodes.is_none());
        assert_eq!(report.total_cost.spread(), 0.0);
    }

    #[test]
    fn degenerate_configs_are_errors() {
        let a = advisor();
        let scenario = Scenario::tradeoff_normalized(0.5);
        assert!(matches!(
            a.solve_fleet(
                scenario,
                &FleetConfig {
                    paths: 0,
                    ..FleetConfig::default()
                }
            ),
            Err(AdvisorError::NoMarketPaths)
        ));
        assert!(matches!(
            a.solve_fleet(
                scenario,
                &FleetConfig {
                    market: MarketScenario::constant(0, 1),
                    ..FleetConfig::default()
                }
            ),
            Err(AdvisorError::EmptyHorizon)
        ));
        let mut bad = FleetConfig::default();
        bad.fleet.spot.rate_factor = -1.0;
        assert!(matches!(
            a.solve_fleet(scenario, &bad),
            Err(AdvisorError::Pricing(_))
        ));
        let mut mismatched = FleetConfig::default();
        let mut plan = mv_pricing::CommitmentPlan::aws_small_1yr();
        plan.instance = "large".to_string();
        mismatched.fleet.reserved.commitment = Some(plan);
        assert!(matches!(
            a.solve_fleet(scenario, &mismatched),
            Err(AdvisorError::CommitmentMismatch { .. })
        ));
    }

    #[test]
    fn reserved_commitment_prices_the_fleet_compute() {
        let a = advisor();
        let mut config = FleetConfig {
            market: MarketScenario::constant(12, 3)
                .with(PriceProcess::Spot(SpotMarket::discounted(0.4, 0.3))),
            paths: 8,
            compare_pure: false,
            ..FleetConfig::default()
        };
        config.fleet.reserved.commitment = Some(mv_pricing::CommitmentPlan::aws_small_1yr());
        let report = a
            .solve_fleet(Scenario::tradeoff_normalized(0.5), &config)
            .unwrap();
        let cmp = report.commitment.expect("plan supplied");
        assert!(cmp.spot_compute.min > 0.0);
        assert!(cmp.reserved.min > 0.0);
        assert!((0.0..=1.0).contains(&cmp.reserved_wins_share));
    }
}
