//! Advisor error type.

use std::fmt;

use mv_engine::EngineError;
use mv_lattice::LatticeError;
use mv_pricing::PricingError;

/// Errors raised while building or running the advisor pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdvisorError {
    /// Engine-side failure (query planning, materialization, refresh).
    Engine(EngineError),
    /// Lattice-side failure (bad cuboid, unmappable workload).
    Lattice(LatticeError),
    /// Pricing-side failure (invoicing, catalog lookups).
    Pricing(PricingError),
    /// A commitment plan targets a different instance type than the
    /// advisor rents.
    CommitmentMismatch {
        /// The plan's name.
        plan: String,
        /// The instance type the plan reserves.
        plan_instance: String,
        /// The instance type the advisor is configured with.
        advisor_instance: String,
    },
    /// The configured instance name is not in the pricing catalog.
    UnknownInstance {
        /// Requested configuration name.
        name: String,
    },
    /// The domain's measure column is missing from the base table.
    MissingMeasure {
        /// The measure column name.
        column: String,
    },
    /// The configuration requests zero queries or an empty workload.
    EmptyWorkload,
    /// A horizon was configured with zero epochs.
    EmptyHorizon,
    /// A market solve was configured with zero sampled price paths.
    NoMarketPaths,
    /// The domain's base table has no rows — nothing to meter or scale.
    EmptyDataset,
    /// The rented configuration resolves to zero (or negative) compute
    /// units, so metered work cannot be converted to hours.
    InvalidComputeUnits {
        /// The instance configuration name.
        instance: String,
    },
    /// A metric fed to summary statistics was NaN or infinite.
    NonFiniteMetric {
        /// Which metric misbehaved.
        metric: String,
    },
    /// Calibration could not fit the throughput law (too few metered
    /// samples, or no spread in the metered work).
    CalibrationUnderdetermined,
    /// A candidate-catalog spill or reload failed at the filesystem
    /// level (the `io::Error` is carried as its display string so this
    /// enum stays `Eq`).
    CatalogIo {
        /// The catalog path involved.
        path: String,
        /// The underlying I/O failure.
        message: String,
    },
    /// A candidate-catalog file exists but does not parse back into a
    /// catalog (truncated non-atomic write, wrong schema version, or
    /// hand-edited damage).
    CatalogCorrupt {
        /// The catalog path involved.
        path: String,
        /// What failed to decode.
        message: String,
    },
    /// A stream event names a query that is not in the catalog's
    /// workload.
    UnknownQuery {
        /// The event's query name.
        name: String,
    },
}

impl fmt::Display for AdvisorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdvisorError::Engine(e) => write!(f, "engine error: {e}"),
            AdvisorError::Lattice(e) => write!(f, "lattice error: {e}"),
            AdvisorError::Pricing(e) => write!(f, "pricing error: {e}"),
            AdvisorError::CommitmentMismatch {
                plan,
                plan_instance,
                advisor_instance,
            } => write!(
                f,
                "commitment plan {plan:?} reserves {plan_instance:?} but the advisor rents {advisor_instance:?}"
            ),
            AdvisorError::UnknownInstance { name } => {
                write!(f, "instance {name:?} is not in the pricing catalog")
            }
            AdvisorError::MissingMeasure { column } => {
                write!(f, "measure column {column:?} is not in the base table")
            }
            AdvisorError::EmptyWorkload => write!(f, "the workload has no queries"),
            AdvisorError::EmptyHorizon => write!(f, "the horizon has no epochs"),
            AdvisorError::NoMarketPaths => {
                write!(f, "a market solve needs at least one sampled price path")
            }
            AdvisorError::EmptyDataset => {
                write!(f, "the base dataset has no rows (need --rows >= 1)")
            }
            AdvisorError::InvalidComputeUnits { instance } => write!(
                f,
                "instance configuration {instance:?} yields zero compute units (need at least one instance)"
            ),
            AdvisorError::NonFiniteMetric { metric } => {
                write!(f, "metric {metric:?} is NaN or infinite")
            }
            AdvisorError::CalibrationUnderdetermined => write!(
                f,
                "calibration could not fit the throughput law: too few metered samples or no spread in metered work"
            ),
            AdvisorError::CatalogIo { path, message } => {
                write!(f, "catalog {path:?}: {message}")
            }
            AdvisorError::CatalogCorrupt { path, message } => {
                write!(f, "catalog {path:?} is corrupt: {message}")
            }
            AdvisorError::UnknownQuery { name } => {
                write!(f, "query {name:?} is not in the catalog workload")
            }
        }
    }
}

impl std::error::Error for AdvisorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AdvisorError::Engine(e) => Some(e),
            AdvisorError::Lattice(e) => Some(e),
            AdvisorError::Pricing(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for AdvisorError {
    fn from(e: EngineError) -> Self {
        AdvisorError::Engine(e)
    }
}

impl From<LatticeError> for AdvisorError {
    fn from(e: LatticeError) -> Self {
        AdvisorError::Lattice(e)
    }
}

impl From<PricingError> for AdvisorError {
    fn from(e: PricingError) -> Self {
        AdvisorError::Pricing(e)
    }
}
