//! Advisor error type.

use std::fmt;

use mv_engine::EngineError;
use mv_lattice::LatticeError;

/// Errors raised while building or running the advisor pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdvisorError {
    /// Engine-side failure (query planning, materialization, refresh).
    Engine(EngineError),
    /// Lattice-side failure (bad cuboid, unmappable workload).
    Lattice(LatticeError),
    /// The configured instance name is not in the pricing catalog.
    UnknownInstance {
        /// Requested configuration name.
        name: String,
    },
    /// The domain's measure column is missing from the base table.
    MissingMeasure {
        /// The measure column name.
        column: String,
    },
    /// The configuration requests zero queries or an empty workload.
    EmptyWorkload,
}

impl fmt::Display for AdvisorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdvisorError::Engine(e) => write!(f, "engine error: {e}"),
            AdvisorError::Lattice(e) => write!(f, "lattice error: {e}"),
            AdvisorError::UnknownInstance { name } => {
                write!(f, "instance {name:?} is not in the pricing catalog")
            }
            AdvisorError::MissingMeasure { column } => {
                write!(f, "measure column {column:?} is not in the base table")
            }
            AdvisorError::EmptyWorkload => write!(f, "the workload has no queries"),
        }
    }
}

impl std::error::Error for AdvisorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AdvisorError::Engine(e) => Some(e),
            AdvisorError::Lattice(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for AdvisorError {
    fn from(e: EngineError) -> Self {
        AdvisorError::Engine(e)
    }
}

impl From<LatticeError> for AdvisorError {
    fn from(e: LatticeError) -> Self {
        AdvisorError::Lattice(e)
    }
}
