//! Shared quote-sequence dedup for the flat Monte-Carlo loops.
//!
//! The market and fleet `--flat` reference routes solve one
//! representative chain per *distinct quote sequence* and replicate the
//! result to the aliases. Both used to roll their own
//! `HashMap<Vec<[u64;4]>, usize>` over [`EpochQuote::solve_key`]
//! sequences; this module is the one implementation, structured so the
//! collision-safety property is explicit and testable: items are
//! *bucketed* on a cheap 64-bit fingerprint, but two items only ever
//! merge after their **full keys** compare equal. A fingerprint
//! collision therefore costs a linear probe of one bucket, never a
//! wrong merge — pinned by the forced-collision test below, which runs
//! the grouping with a constant fingerprint and asserts distinct
//! sequences still come out distinct.

use std::collections::HashMap;

use mv_market::{EpochQuote, MarketPath};

/// The outcome of grouping a slice by key: `reps[s]` is the index of
/// group `s`'s representative (first occurrence, in input order), and
/// `rep_of[j]` is the group of item `j`.
pub(crate) struct DedupGroups {
    /// Representative input index per group, in first-seen order.
    pub reps: Vec<usize>,
    /// Group slot of every input item (`rep_of.len() == items.len()`).
    pub rep_of: Vec<usize>,
}

impl DedupGroups {
    /// How many items were aliased onto an earlier representative.
    pub fn duplicates(&self) -> usize {
        self.rep_of.len() - self.reps.len()
    }
}

/// Groups `items` by the full equality key `key`, bucketing on
/// `fingerprint` first. The fingerprint only routes items into buckets;
/// membership in a group is decided by full-key equality alone, so a
/// colliding (even constant) fingerprint degrades performance, not
/// correctness.
pub(crate) fn group_by_key<T, K, F, H>(items: &[T], key: F, fingerprint: H) -> DedupGroups
where
    K: PartialEq,
    F: Fn(&T) -> K,
    H: Fn(&K) -> u64,
{
    let mut reps: Vec<usize> = Vec::new();
    let mut rep_of: Vec<usize> = Vec::with_capacity(items.len());
    let mut buckets: HashMap<u64, Vec<(K, usize)>> = HashMap::new();
    for (j, item) in items.iter().enumerate() {
        let k = key(item);
        let bucket = buckets.entry(fingerprint(&k)).or_default();
        let slot = match bucket.iter().find(|(existing, _)| *existing == k) {
            Some((_, slot)) => *slot,
            None => {
                reps.push(j);
                let slot = reps.len() - 1;
                bucket.push((k, slot));
                slot
            }
        };
        rep_of.push(slot);
    }
    DedupGroups { reps, rep_of }
}

/// Groups sampled market paths by their epoch quote *sequences* (the
/// solve-relevant fields of every [`EpochQuote`], via
/// [`EpochQuote::solve_key`]; sampled interruption events are reporting
/// -only and deliberately excluded). This is the dedup both flat loops
/// ([`crate::Advisor::solve_market`] `--flat` and the fleet variant)
/// key their representative solves on.
pub(crate) fn quote_sequence_groups(sampled: &[MarketPath]) -> DedupGroups {
    group_by_key(
        sampled,
        |p| -> Vec<[u64; 4]> { p.quotes.iter().map(EpochQuote::solve_key).collect() },
        |key| fingerprint_words(key.iter().flat_map(|quad| quad.iter().copied())),
    )
}

/// Order-sensitive 64-bit fingerprint of a word sequence (splitmix64
/// finalizer folded over the words). Quality only affects bucket
/// balance — see [`group_by_key`].
fn fingerprint_words(words: impl Iterator<Item = u64>) -> u64 {
    let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
    for w in words {
        h = splitmix64(h ^ w);
    }
    h
}

/// The splitmix64 finalizer (Steele, Lea & Flood's mixing function).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mv_market::PriceFactors;

    fn path(j: usize, computes: &[f64]) -> MarketPath {
        MarketPath {
            path: j,
            quotes: computes
                .iter()
                .map(|&c| EpochQuote {
                    factors: PriceFactors {
                        compute: c,
                        storage: 1.0,
                        transfer: 1.0,
                    },
                    interruption: 0.0,
                    interrupted: false,
                })
                .collect(),
        }
    }

    #[test]
    fn forced_fingerprint_collision_never_merges_distinct_keys() {
        // Every item lands in ONE bucket; only full-key equality may
        // merge. With hash-equality-alone dedup this degenerate
        // fingerprint would alias all four sequences onto one solve.
        let items: Vec<Vec<u64>> = vec![vec![1, 2, 3], vec![1, 2, 4], vec![1, 2, 3], vec![3, 2, 1]];
        let groups = group_by_key(&items, |k| k.clone(), |_| 0);
        assert_eq!(groups.reps, vec![0, 1, 3]);
        assert_eq!(groups.rep_of, vec![0, 1, 0, 2]);
        assert_eq!(groups.duplicates(), 1);
    }

    #[test]
    fn quote_sequences_group_on_solve_fields_only() {
        let a = path(0, &[1.0, 1.2]);
        let b = path(1, &[1.0, 1.3]);
        // Same factors as `a`, different sampled interruption event:
        // solve-irrelevant by design, so it aliases onto `a`.
        let mut c = path(2, &[1.0, 1.2]);
        c.quotes[1].interrupted = true;
        let groups = quote_sequence_groups(&[a, b, c]);
        assert_eq!(groups.reps, vec![0, 1]);
        assert_eq!(groups.rep_of, vec![0, 1, 0]);
    }

    #[test]
    fn representatives_preserve_first_seen_order() {
        let paths = vec![
            path(0, &[2.0]),
            path(1, &[1.0]),
            path(2, &[2.0]),
            path(3, &[1.0]),
            path(4, &[3.0]),
        ];
        let groups = quote_sequence_groups(&paths);
        assert_eq!(groups.reps, vec![0, 1, 4]);
        assert_eq!(groups.rep_of, vec![0, 1, 0, 1, 2]);
        assert_eq!(groups.duplicates(), 2);
    }
}
