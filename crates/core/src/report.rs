//! Report rendering: paper-style result tables, CSV series, and the
//! scenario summaries used by every experiment binary.

use mv_select::Outcome;
use mv_units::Money;

/// Renders a markdown-ish aligned table from a header row and data rows.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| -> String {
        let mut line = String::from("|");
        for (cell, w) in cells.iter().zip(&widths) {
            line.push_str(&format!(" {cell:<w$} |"));
        }
        line
    };
    let mut out = fmt_row(
        &header
            .iter()
            .map(|h| h.to_string())
            .collect::<Vec<String>>(),
    );
    out.push('\n');
    out.push_str(&format!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    ));
    for row in rows {
        out.push('\n');
        out.push_str(&fmt_row(row));
    }
    out
}

/// Renders rows as CSV (quotes fields containing separators).
pub fn render_csv(header: &[&str], rows: &[Vec<String>]) -> String {
    let escape = |s: &str| -> String {
        if s.contains(',') || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    };
    let mut out = header
        .iter()
        .map(|h| escape(h))
        .collect::<Vec<_>>()
        .join(",");
    for row in rows {
        out.push('\n');
        out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
    }
    out
}

/// Formats a ratio as the paper's percentage style (`"60%"`).
pub fn pct(x: f64) -> String {
    format!("{:.0}%", x * 100.0)
}

/// One-paragraph scenario summary used by the experiment binaries.
pub fn summarize(outcome: &Outcome, candidate_names: &[String]) -> String {
    let sel = outcome.selected_names(candidate_names);
    format!(
        "{scenario} [{solver}] selected {n} view(s): {views}\n  time {bt} -> {t}  ({ip} faster)\n  cost {bc} -> {c}  ({ic})\n  feasible: {feas}",
        scenario = outcome.scenario.label(),
        solver = outcome.solver.name(),
        n = sel.len(),
        views = if sel.is_empty() {
            "(none)".to_string()
        } else {
            sel.join(", ")
        },
        bt = outcome.baseline.time,
        t = outcome.evaluation.time,
        ip = pct(outcome.time_improvement()),
        bc = outcome.baseline.cost(),
        c = outcome.evaluation.cost(),
        ic = if outcome.evaluation.cost() <= outcome.baseline.cost() {
            format!("{} cheaper", pct(outcome.cost_improvement()))
        } else {
            format!("{} dearer", pct(-outcome.cost_improvement()))
        },
        feas = outcome.feasible(),
    )
}

/// A cross-provider cost comparison row: provider name, total, and the
/// breakdown triple.
pub fn provider_row(name: &str, compute: Money, storage: Money, transfer: Money) -> Vec<String> {
    vec![
        name.to_string(),
        (compute + storage + transfer).to_string(),
        compute.to_string(),
        storage.to_string(),
        transfer.to_string(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["queries", "rate"],
            &[
                vec!["3".to_string(), "25%".to_string()],
                vec!["10".to_string(), "60%".to_string()],
            ],
        );
        assert!(t.contains("| queries | rate |"));
        assert!(t.contains("| 10      | 60%  |"));
    }

    #[test]
    fn csv_escaping() {
        let c = render_csv(&["a", "b"], &[vec!["1,5".to_string(), "x\"y".to_string()]]);
        assert_eq!(c, "a,b\n\"1,5\",\"x\"\"y\"");
    }

    #[test]
    fn pct_rounds() {
        assert_eq!(pct(0.256), "26%");
        assert_eq!(pct(0.6), "60%");
        assert_eq!(pct(0.0), "0%");
    }

    #[test]
    fn provider_rows() {
        let r = provider_row(
            "aws",
            Money::from_dollars(1),
            Money::from_dollars(2),
            Money::from_cents(50),
        );
        assert_eq!(r[0], "aws");
        assert_eq!(r[1], "$3.50");
    }
}
