//! Regression pin: large-neighborhood search never returns a worse
//! objective than the flip/swap improvement pass from the same start —
//! the LNS counterpart of PR 2's streaming-vs-greedy pin.
//!
//! The guarantee is by construction (`lns::refine` runs
//! `local_search::improve` first when `polish_moves > 0`, and rounds
//! only replace the incumbent on strict improvement), so any regression
//! here means the rollback or acceptance logic broke.

use mv_select::lns::{refine, LnsConfig};
use mv_select::local_search::{default_move_budget, improve};
use mv_select::{
    fixtures, solve_lns, solve_local_search, IncrementalEvaluator, Scenario, SelectionSet,
};
use mv_units::{Hours, Money};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// From an arbitrary starting selection, `refine` with the polish
    /// pass on is never worse than `improve` alone with the same move
    /// budget — across all three scenario families.
    #[test]
    fn refine_never_worse_than_improve_from_the_same_start(
        seed in 0u64..10_000,
        n_queries in 1usize..20,
        n_candidates in 2usize..12,
        density_pct in 10u8..90,
        mask in 0u64..(1 << 12),
        which in 0u8..3,
    ) {
        let p = fixtures::random_sparse_problem(
            seed, n_queries, n_candidates, density_pct as f64 / 100.0);
        let baseline = p.baseline();
        let scenario = match which {
            0 => Scenario::budget(baseline.cost() + Money::from_cents(60)),
            1 => Scenario::time_limit(Hours::new(0.4)),
            _ => Scenario::tradeoff_normalized(0.5),
        };
        let start = SelectionSet::from_mask(mask & ((1u64 << p.len()) - 1), p.len());
        let budget = default_move_budget(p.len());

        let mut plain_ev = IncrementalEvaluator::with_selection(&p, &start);
        let plain = improve(&mut plain_ev, scenario, &baseline, budget);

        let mut lns_ev = IncrementalEvaluator::with_selection(&p, &start);
        let cfg = LnsConfig {
            polish_moves: budget,
            ..LnsConfig::for_problem(p.len())
        };
        let refined = refine(&mut lns_ev, scenario, &baseline, &cfg);

        prop_assert!(
            !scenario.better(&plain, &refined, &baseline),
            "improve beat LNS: improve {:?} vs lns {:?} ({})",
            plain.time, refined.time, scenario.label()
        );
        // And the reported evaluation is honest: re-evaluating its
        // selection from scratch reproduces it bit-for-bit.
        prop_assert_eq!(&refined, &p.evaluate(&refined.selection));
    }

    /// The solver-level wrapper inherits the guarantee: `solve_lns` is
    /// never worse than `solve_local_search` on small pools (where the
    /// polish pass is on by default).
    #[test]
    fn solve_lns_never_worse_than_solve_local_search(
        seed in 0u64..10_000,
        n_queries in 1usize..8,
        n_candidates in 2usize..10,
        which in 0u8..3,
    ) {
        let p = fixtures::random_problem(seed, n_queries, n_candidates);
        let baseline = p.baseline();
        let scenario = match which {
            0 => Scenario::budget(baseline.cost() + Money::from_cents(60)),
            1 => Scenario::time_limit(Hours::new(0.4)),
            _ => Scenario::tradeoff_normalized(0.5),
        };
        let ls = solve_local_search(&p, scenario);
        let lns = solve_lns(&p, scenario);
        prop_assert!(
            !scenario.better(&ls.evaluation, &lns.evaluation, &lns.baseline),
            "local search beat LNS under {}", scenario.label()
        );
    }
}
