//! Property: the incremental evaluator agrees **exactly** with full
//! re-evaluation — time, total cost, and every breakdown component —
//! over random problems and random flip sequences.
//!
//! This is the contract every solver now leans on: greedy, the knapsack
//! repair, branch-and-bound and the exhaustive/Pareto sweeps all probe
//! through [`IncrementalEvaluator`], so a single bit of drift here would
//! silently change solver outcomes.

use mv_select::{fixtures, IncrementalEvaluator, SelectionSet};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary flip/unflip walks leave the evaluator bit-identical to
    /// `SelectionProblem::evaluate` at every step.
    #[test]
    fn random_flip_walks_match_full_evaluation(
        seed in 0u64..10_000,
        n_queries in 1usize..6,
        n_candidates in 1usize..12,
        flips in proptest::collection::vec(0usize..12, 1..40),
    ) {
        let problem = fixtures::random_problem(seed, n_queries, n_candidates);
        let mut ev = IncrementalEvaluator::new(&problem);
        let mut sel = SelectionSet::empty(problem.len());
        for (step, &raw) in flips.iter().enumerate() {
            let k = raw % problem.len();
            ev.toggle(k);
            sel.set(k, !sel.contains(k));

            let incremental = ev.snapshot();
            let full = problem.evaluate(&sel);
            prop_assert_eq!(&incremental.selection, &full.selection,
                "selection diverged at step {}", step);
            prop_assert_eq!(incremental.time, full.time,
                "time diverged at step {}", step);
            prop_assert_eq!(&incremental.breakdown, &full.breakdown,
                "breakdown diverged at step {}", step);
            // cost() is derived from the breakdown, but assert anyway —
            // it is the value the scenario orderings consume.
            prop_assert_eq!(incremental.cost(), full.cost(),
                "cost diverged at step {}", step);
        }
    }

    /// Positioning an evaluator at an arbitrary selection (the parallel
    /// sweeps' chunk starts do this) matches evaluating that selection.
    #[test]
    fn with_selection_matches_full_evaluation(
        seed in 0u64..10_000,
        n_queries in 1usize..6,
        n_candidates in 1usize..12,
        mask in 0u64..(1 << 12),
    ) {
        let problem = fixtures::random_problem(seed, n_queries, n_candidates);
        let mask = mask & ((1u64 << problem.len()) - 1);
        let sel = SelectionSet::from_mask(mask, problem.len());
        let ev = IncrementalEvaluator::with_selection(&problem, &sel);
        prop_assert_eq!(ev.snapshot(), problem.evaluate(&sel));
    }

    /// Problems with insert events exercise the evaluator's storage
    /// interval template (multi-interval timelines).
    #[test]
    fn storage_intervals_survive_inserts(
        seed in 0u64..10_000,
        insert_month in 1u8..11,
        insert_gb in 1u32..500,
        mask in 0u64..(1 << 6),
    ) {
        use mv_cost::CloudCostModel;
        use mv_units::{Gb, Months};

        let base = fixtures::random_problem(seed, 3, 6);
        let mut ctx = base.model().context().clone();
        ctx.months = Months::new(12.0);
        ctx.inserts = vec![(Months::new(insert_month as f64), Gb::new(insert_gb as f64))];
        let problem = mv_select::SelectionProblem::new(
            CloudCostModel::new(ctx),
            base.candidates().to_vec(),
        );

        let sel = SelectionSet::from_mask(mask, problem.len());
        let ev = IncrementalEvaluator::with_selection(&problem, &sel);
        prop_assert_eq!(ev.snapshot(), problem.evaluate(&sel));
    }
}
